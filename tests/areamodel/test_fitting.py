"""Calibration tests: the committed constants must reproduce the
paper's printed totals."""

import pytest

from repro.areamodel.anchors import (
    ALL_ANCHORS,
    TEXT_QUOTE_TLB_512_8WAY,
)
from repro.areamodel.constants import CALIBRATED_CONSTANTS
from repro.areamodel.fitting import (
    PARAM_NAMES,
    anchor_residuals,
    build_system,
    fit_constants,
    structure_coefficients,
)
from repro.areamodel.tlb_area import tlb_area_rbe


class TestAnchorSystem:
    def test_every_anchor_has_three_structures(self):
        for specs, total in ALL_ANCHORS:
            assert len(specs) == 3
            assert total > 100_000

    def test_design_matrix_shape(self):
        matrix, totals = build_system(ALL_ANCHORS)
        assert matrix.shape == (len(ALL_ANCHORS), len(PARAM_NAMES))
        assert totals.shape == (len(ALL_ANCHORS),)

    def test_structure_coefficients_reject_unknown_kind(self):
        with pytest.raises(ValueError):
            structure_coefficients(("register_file", 32))


class TestCommittedConstants:
    def test_anchors_reproduce_within_tolerance(self):
        # Every Table 6/7 total must reproduce within 2%.
        for (specs, total), predicted, rel in anchor_residuals(CALIBRATED_CONSTANTS):
            assert abs(rel) < 0.02, (specs, total, predicted)

    def test_mean_absolute_error_is_small(self):
        residuals = [abs(rel) for *_, rel in anchor_residuals(CALIBRATED_CONSTANTS)]
        assert sum(residuals) / len(residuals) < 0.005

    def test_constants_physically_sensible(self):
        c = CALIBRATED_CONSTANTS
        assert 0.5 <= c.sram_cell <= 0.7       # MQF pins SRAM at ~0.6 rbe
        assert c.cam_cell > c.sram_cell        # CAM embeds a comparator
        assert c.sense >= 0
        assert c.drive >= 0
        assert c.comparator >= 0
        assert c.control >= 0

    def test_refit_matches_committed_values(self):
        pytest.importorskip("scipy")
        fitted = fit_constants()
        for name in PARAM_NAMES:
            assert getattr(fitted, name) == pytest.approx(
                getattr(CALIBRATED_CONSTANTS, name), rel=0.02, abs=1.0
            )

    def test_text_quote_tlb_roughly_matches(self):
        # "a 512-entry, 8-way set-associative TLB costs just 19,000
        # rbes" — loose, the quote is rounded.
        area = tlb_area_rbe(512, 8)
        assert area == pytest.approx(TEXT_QUOTE_TLB_512_8WAY, rel=0.15)
