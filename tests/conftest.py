"""Shared fixtures: small, session-scoped traces and an isolated cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace.generator import generate_trace

SMALL_REFERENCES = 90_000


@pytest.fixture(scope="session")
def ultrix_trace():
    """A small deterministic mpeg_play/Ultrix trace shared by tests."""
    return generate_trace("mpeg_play", "ultrix", SMALL_REFERENCES, seed=11)


@pytest.fixture(scope="session")
def mach_trace():
    """A small deterministic mpeg_play/Mach trace shared by tests."""
    return generate_trace("mpeg_play", "mach", SMALL_REFERENCES, seed=11)


@pytest.fixture(scope="session")
def iozone_traces():
    """IOzone traces under both OSes (service-heavy workload)."""
    return {
        "ultrix": generate_trace("IOzone", "ultrix", SMALL_REFERENCES, seed=8),
        "mach": generate_trace("IOzone", "mach", SMALL_REFERENCES, seed=8),
    }


@pytest.fixture(scope="session", autouse=True)
def _isolated_measurement_cache(tmp_path_factory):
    """Point the measurement cache at a temp dir for the whole session
    so tests (including module-scoped fixtures, which instantiate
    before any function-scoped fixture) never read a developer's
    working cache."""
    import os

    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    # Same isolation for the curve store: experiments prefer the
    # service path whenever a store exists, so tests must never see a
    # developer's working store.
    old_store = os.environ.get("REPRO_STORE_DIR")
    os.environ["REPRO_STORE_DIR"] = str(tmp_path_factory.mktemp("repro-store"))
    # And for the zero-copy trace plane, which would otherwise publish
    # test-sized traces into the working tree's .repro-trace-cache.
    old_traces = os.environ.get("REPRO_TRACE_CACHE")
    os.environ["REPRO_TRACE_CACHE"] = str(
        tmp_path_factory.mktemp("repro-trace-cache")
    )
    yield
    for key, value in (
        ("REPRO_CACHE_DIR", old),
        ("REPRO_STORE_DIR", old_store),
        ("REPRO_TRACE_CACHE", old_traces),
    ):
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value


@pytest.fixture
def rng():
    """A seeded generator for test-local randomness."""
    return np.random.default_rng(1234)
