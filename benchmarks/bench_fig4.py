"""Benchmark: regenerate Figure 4 (TLB area vs size/associativity)."""

from repro.experiments import fig4
from repro.experiments.common import format_table


def test_fig4(benchmark, show):
    rows = benchmark(fig4.run)
    show("Figure 4: TLB area (rbe)", format_table(rows))
    by_entries = {r["entries"]: r for r in rows}
    assert by_entries[512]["full"] > by_entries[512]["8-way"]
