"""Benchmark: regenerate Table 7 (allocations with 1-/2-way caches)."""

from repro.experiments import table6, table7
from repro.experiments.common import format_table


def test_table7(benchmark, show):
    rows = benchmark(table7.run)
    show("Table 7: best allocations with 1-/2-way caches (Mach)",
         format_table(rows))
    best_restricted = rows[0]["total_cpi"]
    best_free = table6.run(limit=1)[0]["total_cpi"]
    assert best_restricted >= best_free
