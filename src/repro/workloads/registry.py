"""Registry of the paper's benchmark suite (Table 2)."""

from __future__ import annotations

from repro.workloads.base import WorkloadSpec
from repro.workloads.iozone import IOZONE
from repro.workloads.jpeg_play import JPEG_PLAY
from repro.workloads.mab import MAB
from repro.workloads.mpeg_play import MPEG_PLAY
from repro.workloads.ousterhout import OUSTERHOUT
from repro.workloads.video_play import VIDEO_PLAY

WORKLOADS: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (IOZONE, JPEG_PLAY, MAB, MPEG_PLAY, OUSTERHOUT, VIDEO_PLAY)
}


def workload_names() -> list[str]:
    """All benchmark names, in the paper's Table 2/4 order."""
    return ["mpeg_play", "mab", "jpeg_play", "ousterhout", "IOzone", "video_play"]


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload by name with a helpful error."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None
