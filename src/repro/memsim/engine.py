"""Fast multi-configuration LRU stack-depth engine.

The readable stack-distance kernels walk every reference through
per-set Python list "stacks" — one interpreted pass per (line size,
set count) pair, which is ~10M slow loop iterations for the full
Table 5 sweep.  This module computes the same per-reference capped LRU
stack depths through three interchangeable, bit-identical backends:

* ``native`` — a ~30-line C loop (``_native.c``) compiled on demand
  with the system C compiler and called through ctypes.  Fastest;
  optional (falls back cleanly when no compiler is available).
* ``vector`` — a pure-NumPy rank-batched kernel.  References are
  scheduled into conflict-free *rank batches*: batch ``r`` holds, for
  every pass and every set, that set's r-th surviving access, so a
  batch is one vectorized update of a ``(rows, max_assoc)``
  most-recently-used id matrix.  Before scheduling, re-references to a
  set's most recent id (guaranteed depth-0 hits, 35-65% of real
  instruction/data streams) are answered closed-form and dropped from
  the schedule, and passes capped at associativity <= 2 are answered
  entirely closed-form.  In ``auto`` a cost model additionally routes
  the sparse per-set tails (ranks with few surviving sets) to the
  seeded Python loop.
* ``python`` — the seed per-reference loop, kept as the semantic
  reference for differential tests.

``REPRO_ENGINE`` selects ``auto`` (native when available, else the
hybrid vector path), or forces ``native`` / ``vector`` / ``python``
for benchmarking and differential testing.
"""

from __future__ import annotations

import os

import numpy as np

from repro.memsim import _native

ENGINE_MODES = ("auto", "native", "vector", "python")

_BATCH_OVERHEAD_S = 2e-5
"""Approximate fixed NumPy-dispatch cost of one rank batch."""

_PYTHON_REF_S = 3.5e-7
"""Approximate per-reference cost of the Python stack loop."""

_TAIL_SETUP_S = 4e-6
"""Approximate per-set cost of seeding a Python tail stack."""

_VECTOR_MIN_UNITS = 8192
"""Below this many total units the schedule build itself dominates."""


def engine_mode(engine: str | None = None) -> str:
    """Resolve the engine selection (argument wins over REPRO_ENGINE)."""
    mode = engine if engine is not None else os.environ.get("REPRO_ENGINE", "auto")
    if mode not in ENGINE_MODES:
        raise ValueError(f"engine must be one of {ENGINE_MODES}, got {mode!r}")
    return mode


def native_available() -> bool:
    """True when the compiled C kernel can be used on this machine."""
    return _native.available()


def _check_pass(n_sets: int, max_assoc: int) -> None:
    if n_sets < 1 or n_sets & (n_sets - 1):
        raise ValueError("n_sets must be a positive power of two")
    if max_assoc < 1:
        raise ValueError("max_assoc must be >= 1")


def _pass_depths_python(
    ids: np.ndarray, n_sets: int, max_assoc: int, out: np.ndarray
) -> None:
    """The seed algorithm: per-set list stacks, one ref at a time."""
    mask = n_sets - 1
    stacks: dict[int, list[int]] = {}
    for i, ref in enumerate(ids.tolist()):
        stack = stacks.setdefault(ref & mask, [])
        try:
            depth = stack.index(ref)
        except ValueError:
            out[i] = max_assoc
            stack.insert(0, ref)
            if len(stack) > max_assoc:
                stack.pop()
            continue
        if depth:
            del stack[depth]
            stack.insert(0, ref)
        out[i] = depth


def _finish_tail(
    values: list[int],
    positions: list[int],
    stack: list[int],
    max_assoc: int,
    out: np.ndarray,
) -> None:
    """Run one set's remaining references through a seeded list stack."""
    for ref, i in zip(values, positions):
        try:
            depth = stack.index(ref)
        except ValueError:
            out[i] = max_assoc
            stack.insert(0, ref)
            if len(stack) > max_assoc:
                stack.pop()
            continue
        if depth:
            del stack[depth]
            stack.insert(0, ref)
        out[i] = depth


class _Pass:
    """One (stream, set count) simulation and its schedule bookkeeping."""

    __slots__ = (
        "group",
        "n_sets",
        "out",
        "out_base",
        "comp_src",
        "starts",
        "lengths",
        "row_base",
        "n_rows",
    )

    def __init__(self, group: int, n_sets: int, out: np.ndarray, out_base: int):
        self.group = group
        self.n_sets = n_sets
        self.out = out
        self.out_base = out_base


def multi_group_depths(
    groups: list[tuple[np.ndarray, list[int]]],
    max_assoc: int,
    engine: str | None = None,
) -> list[dict[int, np.ndarray]]:
    """Capped LRU stack depths for many (stream, set counts) passes.

    Args:
        groups: ``(ids, set_counts)`` pairs.  ``ids`` is a stream of
            nonnegative integer identifiers whose low bits index the
            set; it is simulated once per entry of ``set_counts``.
        max_assoc: stack depth cap.  Returned depths lie in
            ``[0, max_assoc]``; the value ``max_assoc`` means the
            reference missed at every associativity <= max_assoc.
        engine: ``auto`` / ``native`` / ``vector`` / ``python``
            (default: the REPRO_ENGINE environment variable, then
            ``auto``).

    Returns:
        A list aligned with ``groups``: each entry maps ``n_sets`` to
        an int16 per-reference depth array.
    """
    mode = engine_mode(engine)
    if mode == "native" and not _native.available():
        raise RuntimeError(
            f"native engine unavailable: {_native.load_error()}"
        )

    streams: list[np.ndarray] = []
    shapes: list[tuple[int, list[int]]] = []
    total_units = 0
    for ids, set_counts in groups:
        ids = np.ascontiguousarray(np.asarray(ids, dtype=np.int64))
        if len(ids) and int(ids.min()) < 0:
            raise ValueError("ids must be nonnegative")
        unique_counts = list(dict.fromkeys(set_counts))
        for n_sets in unique_counts:
            _check_pass(n_sets, max_assoc)
            total_units += len(ids)
        streams.append(ids)
        shapes.append((len(ids), unique_counts))

    # Per-pass outputs are views into one flat backing array so the
    # vectorized path can resolve every pass with a single scatter.
    flat = np.empty(total_units, dtype=np.int16)
    results: list[dict[int, np.ndarray]] = []
    passes: list[_Pass] = []
    out_base = 0
    for group, (n, unique_counts) in enumerate(shapes):
        results.append({})
        for n_sets in unique_counts:
            out = flat[out_base : out_base + n]
            results[-1][n_sets] = out
            passes.append(_Pass(group, n_sets, out, out_base))
            out_base += n

    if mode == "auto":
        if _native.available():
            mode = "native"
        elif total_units < _VECTOR_MIN_UNITS:
            mode = "python"
        else:
            mode = "auto"  # hybrid vector + python tails

    if mode == "python":
        for p in passes:
            _pass_depths_python(streams[p.group], p.n_sets, max_assoc, p.out)
    elif mode == "native":
        for p in passes:
            _native.pass_depths(streams[p.group], p.n_sets, max_assoc, p.out)
    else:
        _run_vectorized(streams, passes, max_assoc, mode, flat)
    return results


def _set_dtype(n_sets: int):
    # int16 keeps the stable argsort a radix sort (~4x faster than the
    # comparison sorts NumPy uses for wider integers).
    return np.int16 if n_sets <= (1 << 15) else np.int32


def _closed_form_pass(
    ids: np.ndarray, n_sets: int, max_assoc: int, out: np.ndarray
) -> None:
    """Exact depths for max_assoc <= 2 without any sequential state.

    With the stream sorted by set, a reference's depth is 0 iff it
    repeats the previous id of its set; after dropping those repeats,
    adjacent ids within a set differ, so the two most recently used
    ids are simply the previous two surviving entries — depth 1 iff
    the id two back matches.  Everything else misses the cap.
    """
    n = len(ids)
    out[:] = max_assoc
    if n == 0:
        return
    sets = (ids & (n_sets - 1)).astype(_set_dtype(n_sets))
    order = np.argsort(sets, kind="stable")
    ss = sets[order]
    vs = ids[order]
    dup = np.zeros(n, dtype=bool)
    dup[1:] = (ss[1:] == ss[:-1]) & (vs[1:] == vs[:-1])
    out[order[dup]] = 0
    if max_assoc == 2:
        comp = np.flatnonzero(~dup)
        if len(comp) > 2:
            gc = ss[comp]
            wc = vs[comp]
            second = (gc[2:] == gc[:-2]) & (wc[2:] == wc[:-2])
            out[order[comp[2:][second]]] = 1


def _run_vectorized(
    streams: list[np.ndarray],
    passes: list[_Pass],
    max_assoc: int,
    mode: str,
    flat: np.ndarray,
) -> None:
    if max_assoc <= 2:
        for p in passes:
            _closed_form_pass(streams[p.group], p.n_sets, max_assoc, p.out)
        return

    id_max = max((int(s.max()) for s in streams if len(s)), default=0)
    id_dtype = np.int32 if id_max < (1 << 31) else np.int64
    out_dtype = np.int32 if len(flat) < (1 << 31) else np.int64

    # --- Per-pass schedule build, all in set-sorted space. ----------
    # A reference re-touching its set's most recent id is a guaranteed
    # depth-0 hit that leaves the LRU stack unchanged, so it is
    # answered here and never scheduled.
    rank_chunks: list[np.ndarray] = []
    val_chunks: list[np.ndarray] = []
    row_chunks: list[np.ndarray] = []
    out_chunks: list[np.ndarray] = []
    row_base = 0
    batch_depth = 0
    for p in passes:
        ids = streams[p.group]
        n = len(ids)
        p.row_base = row_base
        if n == 0:
            p.n_rows = 0
            p.comp_src = np.empty(0, dtype=np.int64)
            p.starts = np.empty(0, dtype=np.int64)
            p.lengths = np.empty(0, dtype=np.int64)
            continue
        sets = (ids & (p.n_sets - 1)).astype(_set_dtype(p.n_sets))
        order = np.argsort(sets, kind="stable")
        ss = sets[order]
        vs = ids[order].astype(id_dtype)
        new_group = np.empty(n, dtype=bool)
        new_group[0] = True
        np.not_equal(ss[1:], ss[:-1], out=new_group[1:])
        dup = np.zeros(n, dtype=bool)
        dup[1:] = ~new_group[1:] & (vs[1:] == vs[:-1])
        p.out[order[dup]] = 0
        comp = np.flatnonzero(~dup)
        m = len(comp)
        group_flag = new_group[comp]
        starts = np.flatnonzero(group_flag)
        group_ord = np.cumsum(group_flag) - 1
        rank = (np.arange(m, dtype=np.int64) - starts[group_ord]).astype(
            np.int32
        )
        p.n_rows = len(starts)
        p.comp_src = order[comp]
        p.starts = starts
        p.lengths = np.diff(np.append(starts, m))
        batch_depth = max(batch_depth, int(p.lengths.max()) if m else 0)
        rank_chunks.append(rank)
        val_chunks.append(vs[comp])
        row_chunks.append((row_base + group_ord).astype(np.int32))
        out_chunks.append((p.out_base + p.comp_src).astype(out_dtype))
        row_base += p.n_rows

    if not rank_chunks or batch_depth == 0:
        return

    r_all = np.concatenate(rank_chunks)
    per_rank = np.bincount(r_all, minlength=batch_depth)
    rank_start = np.concatenate(([0], np.cumsum(per_rank)))
    scheduled = int(rank_start[-1])

    if mode == "vector":
        cut = batch_depth
    else:
        # cost(R) = R batches of dispatch overhead + the Python tail
        # (its per-reference loop plus per-set stack seeding).
        # per_rank[R] is exactly the number of sets surviving past R.
        ranks = np.arange(batch_depth + 1, dtype=np.float64)
        tail_units = scheduled - rank_start
        alive = np.append(per_rank, 0)
        cost = (
            ranks * _BATCH_OVERHEAD_S
            + tail_units * _PYTHON_REF_S
            + alive * _TAIL_SETUP_S
        )
        cut = int(np.argmin(cost))

    mru = None
    if cut > 0:
        # Stable sort by rank: within a batch every unit belongs to a
        # distinct (pass, set) row, so batches are conflict-free.
        # (Units past the cut are scheduled too — filtering them out
        # costs more than sorting the small surviving tail.)
        if batch_depth <= (1 << 15):
            sched = np.argsort(r_all.astype(np.int16), kind="stable")
        else:
            sched = np.argsort(r_all, kind="stable")
        done = int(rank_start[cut])
        live = sched[:done]
        gv = np.concatenate(val_chunks)[live]
        gr = np.concatenate(row_chunks)[live]
        go = np.concatenate(out_chunks)[live]
        gdepth = np.empty(done, dtype=np.int16)

        mru = np.full((row_base, max_assoc), -1, dtype=id_dtype)
        biggest = int(per_rank[1:cut].max()) if cut > 1 else 0
        rows_buf = np.empty((biggest, max_assoc), dtype=id_dtype)
        shift_buf = np.empty((biggest, max_assoc), dtype=id_dtype)
        eq_buf = np.empty((biggest, max_assoc), dtype=bool)
        keep_buf = np.empty((biggest, max_assoc), dtype=bool)
        hit_buf = np.empty(biggest, dtype=bool)
        d_buf = np.empty(biggest, dtype=np.intp)
        col = np.arange(max_assoc, dtype=np.intp)
        for r in range(cut):
            s, e = int(rank_start[r]), int(rank_start[r + 1])
            g = gr[s:e]
            v = gv[s:e]
            if r == 0:
                # Rank 0 is each set's first surviving reference: a
                # guaranteed miss that seeds the MRU slot.
                gdepth[s:e] = max_assoc
                mru[g, 0] = v
                continue
            m = e - s
            rows = np.take(mru, g, axis=0, out=rows_buf[:m], mode="clip")
            eq = np.equal(rows, v[:, None], out=eq_buf[:m])
            hit = np.any(eq, axis=1, out=hit_buf[:m])
            d = np.argmax(eq, axis=1, out=d_buf[:m])
            np.logical_not(hit, out=hit)
            np.copyto(d, max_assoc, where=hit)
            gdepth[s:e] = d
            np.minimum(d, max_assoc - 1, out=d)
            shifted = shift_buf[:m]
            shifted[:, 0] = v
            shifted[:, 1:] = rows[:, :-1]
            keep = np.less_equal(col, d[:, None], out=keep_buf[:m])
            np.copyto(rows, shifted, where=keep)
            mru[g] = rows

        # Per-pass outputs are views into `flat`, so one scatter
        # resolves every vector-processed unit across all passes.
        flat[go] = gdepth

    # Python continuation for the sparse tails (sets deeper than cut).
    for p in passes:
        ids = streams[p.group]
        deep = np.flatnonzero(p.lengths > cut)
        for t in deep.tolist():
            if mru is not None:
                row = mru[p.row_base + t].tolist()
                stack = [x for x in row if x != -1]
            else:
                stack = []
            lo = int(p.starts[t]) + cut
            hi = int(p.starts[t]) + int(p.lengths[t])
            positions = p.comp_src[lo:hi]
            _finish_tail(
                ids[positions].tolist(),
                positions.tolist(),
                stack,
                max_assoc,
                p.out,
            )


def lru_depths(
    ids: np.ndarray, n_sets: int, max_assoc: int, engine: str | None = None
) -> np.ndarray:
    """Capped LRU stack depth of every reference for one structure.

    Convenience single-pass wrapper around :func:`multi_group_depths`:
    depth ``d < max_assoc`` means the reference hits every cache of
    associativity ``> d`` at this set count; ``d == max_assoc`` means
    it misses at every associativity up to the cap.
    """
    return multi_group_depths([(ids, [n_sets])], max_assoc, engine=engine)[0][n_sets]
