"""Benchmark: regenerate Figure 10 (set-associative I-cache performance)."""

import pytest

from repro.experiments import fig10
from repro.experiments.common import format_table


@pytest.mark.parametrize("os_name", ["ultrix", "mach"])
def test_fig10(benchmark, show, os_name):
    panels = benchmark(fig10.run, os_name)
    show(
        f"Figure 10 ({os_name}): I-cache miss ratio (4-word line)",
        format_table(panels["miss_ratio"]),
    )
    show(
        f"Figure 10 ({os_name}): I-cache CPI contribution",
        format_table(panels["cpi"]),
    )
    assert len(panels["miss_ratio"]) == 5
