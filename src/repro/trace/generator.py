"""Trace generation: drive an OS model with a workload.

``generate_trace("mpeg_play", "mach", target_references=500_000)`` is
the package's substitute for the paper's Monster-captured DECstation
traces.  Generation is fully deterministic given (workload, OS, seed).
"""

from __future__ import annotations

from repro.osmodel.base import OperatingSystemModel
from repro.osmodel.context import GenerationContext
from repro.osmodel.mach import MachModel
from repro.osmodel.ultrix import UltrixModel
from repro.trace.events import ChunkedTraceBuilder, ReferenceTrace
from repro.workloads.base import WorkloadSpec
from repro.workloads.registry import get_workload

OS_MODELS: dict[str, type[OperatingSystemModel]] = {
    "ultrix": UltrixModel,
    "mach": MachModel,
}

TRACE_FORMAT_VERSION = 1
"""Version stamp of the generated-trace semantics.

Bump this whenever a change to the generator, the OS models, the
workload specs or the physical-frame mapper alters the bytes of a
generated trace: the on-disk trace cache (``repro.trace.tracestore``)
keys every entry by this value, so a bump invalidates all cached
traces automatically instead of silently replaying stale ones."""

# Mach executions spend a larger share of their instructions in
# OS/server code, which has fewer FP and multicycle-integer interlocks
# than the user computation, so the non-memory "Other" stall component
# dilutes (Table 3: mpeg_play drops from 0.15 to 0.08).
MACH_OTHER_CPI_DILUTION = 0.6


class TraceGenerator:
    """Reusable generator for one (workload, OS) pair.

    Args:
        workload: a workload name or spec.
        os_name: "ultrix" or "mach".
        seed: master seed; layout and reference randomness derive from it.
    """

    def __init__(self, workload: str | WorkloadSpec, os_name: str, seed: int = 1):
        if isinstance(workload, str):
            workload = get_workload(workload)
        try:
            model_cls = OS_MODELS[os_name]
        except KeyError:
            raise KeyError(
                f"unknown OS {os_name!r}; available: {sorted(OS_MODELS)}"
            ) from None
        self.workload = workload
        self.os_name = os_name
        self.seed = seed
        self.model = model_cls(workload, seed=seed)

    def generate(self, target_references: int) -> ReferenceTrace:
        """Produce a trace of at least *target_references* references."""
        ctx = GenerationContext(seed=self.seed + 7919, target_references=target_references)
        self.model.generate(ctx)
        other_cpi = self.workload.other_cpi
        if self.os_name == "mach":
            other_cpi *= MACH_OTHER_CPI_DILUTION
        return ctx.builder.build(
            page_faults=ctx.page_faults,
            other_cpi=other_cpi,
            workload=self.workload.name,
            os_name=self.os_name,
            physical_seed=self.seed + 104729,
        )

    def generate_stream(
        self, target_references: int, sink, chunk_references: int
    ) -> dict:
        """Stream a trace to ``sink`` in fixed-size virtual-field chunks.

        ``sink(addresses, kinds, asids, mapped, kernel)`` is called with
        full ``chunk_references``-sized chunks (plus one trailing partial
        chunk), in program order.  Only the virtual fields are streamed
        here: physical addresses need the complete page set, so the
        caller (``tracestore.generate_stream``) collects pages during
        this pass and derives physical/ifetch/load streams in a second
        pass over the chunks it stored.

        The emitted reference stream is bit-identical to
        :meth:`generate` for the same arguments — the same
        ``GenerationContext`` seed and models run, only the builder
        drains instead of accumulating.

        Returns a meta dict with ``page_faults``, ``other_cpi``,
        ``workload``, ``os_name``, ``references`` (actual count) and
        ``physical_seed`` (the seed the physical pass must use to stay
        bit-identical with the batch path).
        """
        builder = ChunkedTraceBuilder(sink, chunk_references)
        ctx = GenerationContext(
            seed=self.seed + 7919,
            target_references=target_references,
            builder=builder,
        )
        self.model.generate(ctx)
        builder.flush()
        other_cpi = self.workload.other_cpi
        if self.os_name == "mach":
            other_cpi *= MACH_OTHER_CPI_DILUTION
        return {
            "page_faults": ctx.page_faults,
            "other_cpi": other_cpi,
            "workload": self.workload.name,
            "os_name": self.os_name,
            "references": builder.count,
            "physical_seed": self.seed + 104729,
        }


def generate_trace(
    workload: str | WorkloadSpec,
    os_name: str,
    target_references: int,
    seed: int = 1,
) -> ReferenceTrace:
    """One-shot convenience wrapper around :class:`TraceGenerator`."""
    return TraceGenerator(workload, os_name, seed=seed).generate(target_references)
