"""Performance benchmark harness: writes BENCH_perf.json.

Times the four layers the fast path accelerates:

1. The Table 5 cache-miss-ratio grid on a 700k-reference instruction
   stream — interpreted baseline vs the engine (and each forced engine
   mode), with a bit-identity check.
2. A full StructureCurves measurement (all units for one
   (workload, OS) pair), serial and with ``--jobs 4``.
3. The zero-copy trace plane: cold generation+publish vs warm memmap
   load, and warm-cache curve measurement serial vs ``--jobs 4``
   through the persistent worker pool.
4. Chunk-streaming scaling: references vs wall seconds vs peak RSS for
   streaming generation + simulation, one fresh subprocess per size so
   each row's ``resource.getrusage`` high-water mark is its own.
5. Compressed trace entries: the format-3 zlib layout vs raw format 2
   — on-disk bytes, decode bit-identity, and warm-load-vs-regenerate
   speedup.
6. Allocator scaling: the greedy marginal-utility optimizer vs
   chunked-vectorized exhaustive search on the two-level (TLB, L1I,
   L1D, L2) space — ~10^7 design points — over a sweep of area
   budgets, with an optimum-equality check per budget.
7. Write-buffer kernel: the vectorized carried-state timing pass vs
   the scalar event loop on a multi-million-store arrival stream, with
   a bit-identity check.

Usage::

    PYTHONPATH=src python scripts/bench_perf.py [--output BENCH_perf.json]
        [--section {all,grid,curves,trace_plane,streaming,
                    trace_compression,alloc_scaling,write_buffer}]
        [--check-scaling] [--sizes N,N,...]

The streaming sizes default to ``REPRO_BENCH_SIZES`` (comma-separated
reference counts) when set, so CI points and the 1B-reference run
share one code path; the streaming rows write compressed entries
unless ``REPRO_TRACE_COMPRESS=off``.

``--check-scaling`` exits non-zero when (a) the host has >= 4 cores and
warm-cache ``jobs=4`` measurement is slower than serial (the
parallel-measurement inversion the trace plane removed), (b) any
streaming-scaling row's peak RSS reaches 1 GiB — the bounded-RSS
guarantee of the chunk-streaming trace plane (a >= 100M-reference trace
must generate and simulate well under 1 GB), (c) the trace_compression
section ran and compressed entries are larger than 0.6x raw, decode
differently, or warm-load less than 10x faster than regenerating, or
(d) the alloc_scaling section ran and greedy either missed an
exhaustive optimum or came in under a 100x median speedup.

``REPRO_SCALE`` is ignored: the numbers are defined at full trace
length so they are comparable across runs and machines.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro.core import measure
from repro.core.measure import measure_workload
from repro.core.space import (
    TABLE5_CACHE_ASSOCS,
    TABLE5_CACHE_CAPACITIES,
    TABLE5_CACHE_LINES,
)
from repro.memsim.engine import engine_mode, native_available
from repro.memsim.multiconfig import (
    cache_miss_ratio_grid,
    cache_miss_ratio_grid_reference,
)
from repro.trace import tracestore
from repro.trace.generator import generate_trace

BENCH_REFERENCES = 700_000
WORKLOAD = "mpeg_play"
OS_NAME = "mach"


def best_of(fn, reps: int = 3) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench_grid(trace) -> dict:
    stream = np.asarray(trace.ifetch_physical(), dtype=np.int64)
    args = (
        stream,
        list(TABLE5_CACHE_CAPACITIES),
        list(TABLE5_CACHE_LINES),
        list(TABLE5_CACHE_ASSOCS),
    )
    t0 = time.perf_counter()
    reference = cache_miss_ratio_grid_reference(*args)
    reference_s = time.perf_counter() - t0

    modes = ["auto", "vector", "python"] + (
        ["native"] if native_available() else []
    )
    results: dict = {
        "stream": "ifetch",
        "references": int(len(stream)),
        "reference_seconds": round(reference_s, 3),
        "engines": {},
    }
    for mode in modes:
        seconds, grid = best_of(
            lambda: cache_miss_ratio_grid(*args, engine=mode)
        )
        results["engines"][mode] = {
            "seconds": round(seconds, 4),
            "speedup": round(reference_s / seconds, 1),
            "bit_identical": grid == reference,
        }
    return results


def bench_curves() -> dict:
    """The historical serial-then-jobs4 protocol, from a cold plane.

    ``serial_seconds`` pays one cold trace generation (plus, now, the
    publish); ``jobs4_seconds`` then rides the warm plane — the pair of
    numbers the trace plane exists to un-invert.  A throwaway cache
    directory keeps re-runs comparable (the serial leg is always
    cold).
    """
    cache_dir = tempfile.mkdtemp(prefix="repro-trace-bench-")
    saved = os.environ.get("REPRO_TRACE_CACHE")
    os.environ["REPRO_TRACE_CACHE"] = cache_dir
    measure._worker_traces.clear()
    try:

        def run(jobs):
            return measure_workload(
                WORKLOAD,
                OS_NAME,
                references=BENCH_REFERENCES,
                use_cache=False,
                jobs=jobs,
            )

        t0 = time.perf_counter()
        serial = run(1)
        serial_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = run(4)
        parallel_s = time.perf_counter() - t0
        return {
            "workload": WORKLOAD,
            "os": OS_NAME,
            "references": BENCH_REFERENCES,
            "serial_seconds": round(serial_s, 2),
            "jobs4_seconds": round(parallel_s, 2),
            "identical": serial == parallel,
        }
    finally:
        measure.shutdown_measurement_pool()
        measure._worker_traces.clear()
        if saved is None:
            os.environ.pop("REPRO_TRACE_CACHE", None)
        else:
            os.environ["REPRO_TRACE_CACHE"] = saved
        shutil.rmtree(cache_dir, ignore_errors=True)


def bench_trace_plane() -> dict:
    """Cold generation vs warm memmap load, serial vs jobs=4 curves.

    Runs against a throwaway trace-cache directory so the numbers are
    cold/warm by construction, not by whatever the working tree holds.
    Three curve timings are reported: ``serial_no_plane_seconds`` (the
    historical baseline — plane disabled, trace regenerated
    in-process), ``warm_serial_seconds``, and ``warm_jobs4_seconds``.
    ``jobs4_not_slower`` asserts the inversion reversal: warm-cache
    ``jobs=4`` must not be slower than the old serial baseline.  On a
    single-core host warm serial and warm jobs=4 are compute-bound to
    parity; on multicore hosts ``check_scaling`` additionally gates
    warm jobs=4 against warm serial.
    """
    cache_dir = tempfile.mkdtemp(prefix="repro-trace-bench-")
    saved = os.environ.get("REPRO_TRACE_CACHE")
    os.environ["REPRO_TRACE_CACHE"] = cache_dir
    measure._worker_traces.clear()
    try:
        key = tracestore.key_for(WORKLOAD, OS_NAME, BENCH_REFERENCES, 1)
        t0 = time.perf_counter()
        generated = tracestore.get_trace(
            WORKLOAD, OS_NAME, BENCH_REFERENCES, seed=1
        )
        cold_s = time.perf_counter() - t0

        load_s, loaded = best_of(lambda: tracestore.load(key))

        def load_and_touch() -> int:
            trace = tracestore.load(key)
            return int(
                trace.addresses[-1]
                + trace.physical.sum()
                + trace.ifetch_physical().sum()
                + trace.load_physical().sum()
            )

        touch_s, _ = best_of(load_and_touch)
        identical = all(
            np.array_equal(getattr(generated, name), getattr(loaded, name))
            for name in (
                "addresses", "physical", "kinds", "asids", "mapped", "kernel"
            )
        ) and np.array_equal(
            generated.ifetch_physical(), loaded.ifetch_physical()
        ) and np.array_equal(generated.load_physical(), loaded.load_physical())

        def run(jobs):
            return measure_workload(
                WORKLOAD,
                OS_NAME,
                references=BENCH_REFERENCES,
                use_cache=False,
                jobs=jobs,
            )

        # Historical baseline: the plane disabled, trace regenerated
        # in-process — what ``serial`` cost when the jobs=4 inversion
        # (0.67 s vs 0.39 s) was recorded.
        def run_baseline():
            os.environ["REPRO_TRACE_CACHE"] = "off"
            measure._worker_traces.clear()
            try:
                return measure_workload(
                    WORKLOAD,
                    OS_NAME,
                    references=BENCH_REFERENCES,
                    use_cache=False,
                    jobs=1,
                )
            finally:
                os.environ["REPRO_TRACE_CACHE"] = cache_dir

        baseline_s, baseline = best_of(run_baseline, reps=2)
        measure._worker_traces.clear()
        serial_s, serial = best_of(lambda: run(1))
        jobs4_s, parallel = best_of(lambda: run(4))
        return {
            "workload": WORKLOAD,
            "os": OS_NAME,
            "references": BENCH_REFERENCES,
            "cold_generate_seconds": round(cold_s, 4),
            "warm_load_seconds": round(load_s, 4),
            "warm_load_touch_seconds": round(touch_s, 4),
            "load_speedup": round(cold_s / load_s, 1),
            "load_bit_identical": identical,
            "serial_no_plane_seconds": round(baseline_s, 3),
            "warm_serial_seconds": round(serial_s, 3),
            "warm_jobs4_seconds": round(jobs4_s, 3),
            "jobs4_not_slower": jobs4_s <= baseline_s,
            "curves_identical": serial == parallel == baseline,
            "cpu_count": os.cpu_count(),
        }
    finally:
        measure.shutdown_measurement_pool()
        measure._worker_traces.clear()
        if saved is None:
            os.environ.pop("REPRO_TRACE_CACHE", None)
        else:
            os.environ["REPRO_TRACE_CACHE"] = saved
        shutil.rmtree(cache_dir, ignore_errors=True)


STREAMING_SIZES = (2_097_152, 16_777_216, 104_857_600)
PEAK_RSS_LIMIT = 1 << 30  # the streaming plane's bounded-RSS guarantee


def default_sizes() -> tuple[int, ...]:
    """Streaming sizes: ``REPRO_BENCH_SIZES`` (comma-separated) beats
    the built-in CI triple — so the 1B-reference run and the CI points
    share one code path, differing only in this knob / ``--sizes``."""
    env = os.environ.get("REPRO_BENCH_SIZES", "").strip()
    if not env:
        return STREAMING_SIZES
    return tuple(int(n) for n in env.split(",") if n.strip())


# Runs in a fresh interpreter per trace size: generates the trace
# chunk-streaming into a throwaway plane, simulates a representative
# cache grid over the stored chunks, and reports its own wall times,
# on-disk footprint (raw logical bytes vs what the store holds, which
# differ exactly when REPRO_TRACE_COMPRESS is on), a timed re-read of
# the stored stream (cold load vs regenerate), and the getrusage
# peak-RSS high-water mark as JSON on stdout.
_STREAMING_CHILD = """
import json, os, resource, sys, time
import numpy as np
from repro.memsim.multiconfig import cache_miss_ratio_grid_chunked
from repro.trace import tracestore

workload, os_name, references = sys.argv[1], sys.argv[2], int(sys.argv[3])
t0 = time.perf_counter()
stream = tracestore.stream(workload, os_name, references, seed=1)
generate_s = time.perf_counter() - t0
t0 = time.perf_counter()
grid = cache_miss_ratio_grid_chunked(
    (f["ifetch_physical"] for _s, _e, f in stream.chunks(("ifetch_physical",))),
    stream.count("ifetch_physical"),
    [4096, 65536], [4], [1, 2], warmup_fraction=0.4,
)
simulate_s = time.perf_counter() - t0
key = tracestore.key_for(workload, os_name, references, 1)
entry = tracestore.entry_path(key)
header = json.loads((entry / "header.json").read_text())
raw_bytes = sum(
    spec["count"] * np.dtype(spec["dtype"]).itemsize
    for spec in header["arrays"]
)
disk_bytes = tracestore.entry_nbytes(entry)
t0 = time.perf_counter()
reread = tracestore.open_stream(key)
count = reread.count("ifetch_physical")
total = 0
for start in range(0, count, reread.chunk_references):
    stop = min(start + reread.chunk_references, count)
    total += int(reread.read("ifetch_physical", start, stop)[-1])
reload_s = time.perf_counter() - t0
rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps({
    "references": stream.references,
    "chunk_references": stream.chunk_references,
    "codec": header.get("codec"),
    "generate_seconds": round(generate_s, 2),
    "simulate_seconds": round(simulate_s, 2),
    "reload_seconds": round(reload_s, 2),
    "reload_speedup": round(generate_s / reload_s, 1) if reload_s else None,
    "raw_bytes": raw_bytes,
    "disk_bytes": disk_bytes,
    "compression_ratio": round(disk_bytes / raw_bytes, 4),
    "peak_rss_bytes": rss_kib * 1024,
    "design_points": len(grid),
}))
"""


def bench_streaming(sizes: tuple[int, ...]) -> dict:
    """References vs seconds vs peak RSS for the streaming trace plane.

    Each size runs in a fresh subprocess against its own throwaway
    cache directory, so ``ru_maxrss`` (a per-process high-water mark)
    reflects exactly that size's generation + simulation and no state
    leaks between rows.
    """
    rows = []
    for references in sizes:
        cache_dir = tempfile.mkdtemp(prefix="repro-stream-bench-")
        env = dict(os.environ)
        env["REPRO_TRACE_CACHE"] = cache_dir
        # The scaling rows exercise the compressed plane by default
        # (that is what runs at 1B-reference scale); REPRO_TRACE_COMPRESS=off
        # in the caller's environment reverts to raw format-2 rows.
        env.setdefault("REPRO_TRACE_COMPRESS", "zlib")
        env.pop("REPRO_SCALE", None)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        try:
            result = subprocess.run(
                [
                    sys.executable,
                    "-c",
                    _STREAMING_CHILD,
                    WORKLOAD,
                    OS_NAME,
                    str(references),
                ],
                env=env,
                capture_output=True,
                text=True,
                check=True,
            )
        finally:
            shutil.rmtree(cache_dir, ignore_errors=True)
        rows.append(json.loads(result.stdout.strip().splitlines()[-1]))
    return {
        "workload": WORKLOAD,
        "os": OS_NAME,
        "peak_rss_limit_bytes": PEAK_RSS_LIMIT,
        "rows": rows,
    }


def check_streaming_rss(streaming: dict) -> int:
    """CI tripwire: every streaming row must stay under 1 GiB RSS."""
    failed = 0
    for row in streaming["rows"]:
        rss_mib = row["peak_rss_bytes"] / (1 << 20)
        if row["peak_rss_bytes"] >= PEAK_RSS_LIMIT:
            print(
                f"peak-RSS check FAILED: {row['references']:,} refs "
                f"peaked at {rss_mib:.0f} MiB (limit 1024 MiB)"
            )
            failed = 1
        else:
            print(
                f"peak-RSS check OK: {row['references']:,} refs "
                f"peaked at {rss_mib:.0f} MiB"
            )
    return failed


COMPRESSION_RATIO_LIMIT = 0.6
"""CI ceiling on compressed-vs-raw on-disk bytes for the default codec."""
WARM_SPEEDUP_FLOOR = 10.0
"""CI floor on the warm serving read vs cold regeneration."""


def bench_trace_compression() -> dict:
    """Format-3 compressed entries vs the raw layout, same trace.

    Publishes the benchmark trace twice — once raw (format 2), once
    through ``REPRO_TRACE_COMPRESS=zlib`` (format 3) — into separate
    throwaway planes, then checks the three contracts the compressed
    plane ships under: decoded arrays bit-identical to the raw
    layout's, on-disk bytes at most ``COMPRESSION_RATIO_LIMIT`` of
    raw, and the warm serving read at least ``WARM_SPEEDUP_FLOOR``
    times faster than regenerating.

    Two warm timings are reported.  ``warm_load_seconds`` materializes
    every field (inflate-bound end to end — zlib holds it to roughly
    4-7x of regeneration, and at 1B references a full materialization
    would need ~36 GB so it is not the at-scale path at all).
    ``warm_stream_seconds`` is how the plane is actually consumed at
    scale and is what the speedup gate runs on: a chunked
    :class:`~repro.trace.tracestore.TraceStream` pass over the
    simulated stream, decoding only the field the grid sweep reads —
    the compressed analogue of format 2's lazy memmap paging, which
    likewise never faults in untouched fields.
    """
    saved = {
        name: os.environ.get(name)
        for name in ("REPRO_TRACE_CACHE", "REPRO_TRACE_COMPRESS")
    }
    raw_dir = tempfile.mkdtemp(prefix="repro-comp-raw-")
    comp_dir = tempfile.mkdtemp(prefix="repro-comp-zlib-")
    key = tracestore.key_for(WORKLOAD, OS_NAME, BENCH_REFERENCES, 1)
    try:
        os.environ["REPRO_TRACE_CACHE"] = raw_dir
        os.environ.pop("REPRO_TRACE_COMPRESS", None)
        t0 = time.perf_counter()
        raw_trace = tracestore.get_trace(
            WORKLOAD, OS_NAME, BENCH_REFERENCES, seed=1
        )
        cold_s = time.perf_counter() - t0
        raw_bytes = tracestore.entry_nbytes(tracestore.entry_path(key))

        os.environ["REPRO_TRACE_CACHE"] = comp_dir
        os.environ["REPRO_TRACE_COMPRESS"] = "zlib"
        t0 = time.perf_counter()
        tracestore.get_trace(WORKLOAD, OS_NAME, BENCH_REFERENCES, seed=1)
        cold_compressed_s = time.perf_counter() - t0
        comp_bytes = tracestore.entry_nbytes(tracestore.entry_path(key))
        warm_s, loaded = best_of(lambda: tracestore.load(key))

        def stream_pass() -> int:
            reader = tracestore.open_stream(key)
            count = reader.count("ifetch_physical")
            step = reader.chunk_references
            total = 0
            for start in range(0, count, step):
                stop = min(start + step, count)
                total += int(reader.read("ifetch_physical", start, stop)[-1])
            return total

        stream_s, _ = best_of(stream_pass)
        identical = all(
            np.array_equal(getattr(raw_trace, name), getattr(loaded, name))
            for name in (
                "addresses", "physical", "kinds", "asids", "mapped", "kernel"
            )
        ) and np.array_equal(
            raw_trace.ifetch_physical(), loaded.ifetch_physical()
        ) and np.array_equal(
            raw_trace.load_physical(), loaded.load_physical()
        )
        return {
            "workload": WORKLOAD,
            "os": OS_NAME,
            "references": BENCH_REFERENCES,
            "codec": "zlib",
            "raw_bytes": raw_bytes,
            "compressed_bytes": comp_bytes,
            "compression_ratio": round(comp_bytes / raw_bytes, 4),
            "ratio_limit": COMPRESSION_RATIO_LIMIT,
            "cold_generate_seconds": round(cold_s, 3),
            "cold_generate_compressed_seconds": round(cold_compressed_s, 3),
            "warm_load_seconds": round(warm_s, 4),
            "warm_load_speedup": round(cold_s / warm_s, 1),
            "warm_stream_seconds": round(stream_s, 4),
            "warm_speedup": round(cold_s / stream_s, 1),
            "warm_speedup_floor": WARM_SPEEDUP_FLOOR,
            "bit_identical": identical,
        }
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        shutil.rmtree(raw_dir, ignore_errors=True)
        shutil.rmtree(comp_dir, ignore_errors=True)


def check_trace_compression(comp: dict) -> int:
    """CI tripwire: ratio <= 0.6x, decode bit-identical, warm >= 10x."""
    failed = 0
    if not comp["bit_identical"]:
        print("compression check FAILED: decoded arrays differ from raw")
        failed = 1
    if comp["compression_ratio"] > COMPRESSION_RATIO_LIMIT:
        print(
            f"compression check FAILED: ratio {comp['compression_ratio']} "
            f"above the {COMPRESSION_RATIO_LIMIT} ceiling"
        )
        failed = 1
    if comp["warm_speedup"] < WARM_SPEEDUP_FLOOR:
        print(
            f"compression check FAILED: warm serving read only "
            f"{comp['warm_speedup']}x faster than regeneration "
            f"(floor {WARM_SPEEDUP_FLOOR:.0f}x)"
        )
        failed = 1
    if not failed:
        print(
            f"compression check OK: ratio {comp['compression_ratio']} "
            f"(<= {COMPRESSION_RATIO_LIMIT}), bit-identical, warm "
            f"serving read {comp['warm_speedup']}x faster than "
            f"regeneration"
        )
    return failed


ALLOC_BUDGET_COUNT = 8
ALLOC_SPEEDUP_FLOOR = 100.0
"""CI floor on the median greedy-vs-exhaustive speedup."""


def bench_alloc_scaling() -> dict:
    """Greedy vs exhaustive on the two-level space, per-budget.

    The space is built from one measured (workload, OS) curve set on
    the full Table 5 grid — ~10^7 points, the scale the paper's
    exhaustive method was quoted as "a few minutes of workstation
    time" *per level* and which an L2 axis multiplies out of reach.
    Budgets sweep the feasible range; each row checks the greedy CPI
    equals the exhaustive optimum (the area-only exactness contract of
    :mod:`repro.core.multiopt`).
    """
    from repro.core.hierarchy import build_two_level_space

    curves = measure_workload(
        WORKLOAD, OS_NAME, references=BENCH_REFERENCES
    )
    space = build_two_level_space(curves)
    areas = [s.areas for s in space.structures]
    min_area = float(sum(a.min() for a in areas))
    max_area = float(sum(a.max() for a in areas))
    budgets = [
        min_area + (max_area - min_area) * (i + 1) / (ALLOC_BUDGET_COUNT + 1)
        for i in range(ALLOC_BUDGET_COUNT)
    ]

    rows = []
    for budget in budgets:
        greedy_s, greedy = best_of(lambda: space.best(budget))
        t0 = time.perf_counter()
        exact = space.best_exhaustive(budget)
        exact_s = time.perf_counter() - t0
        rows.append(
            {
                "budget_rbe": round(budget, 1),
                "greedy_seconds": round(greedy_s, 5),
                "exhaustive_seconds": round(exact_s, 3),
                "speedup": round(exact_s / greedy_s, 1),
                "greedy_cpi": greedy.cpi,
                "exhaustive_cpi": exact.cpi,
                "optimal": greedy.cpi == exact.cpi,
            }
        )
    speedups = sorted(row["speedup"] for row in rows)
    return {
        "workload": WORKLOAD,
        "os": OS_NAME,
        "references": BENCH_REFERENCES,
        "space_points": space.size,
        "median_speedup": speedups[len(speedups) // 2],
        "all_optimal": all(row["optimal"] for row in rows),
        "rows": rows,
    }


WRITE_BUFFER_STORES = 2_000_000


def bench_write_buffer() -> dict:
    """Vectorized vs scalar write-buffer timing, bit-identity checked.

    The arrival stream mimics what the timing pipeline feeds the
    buffer: non-decreasing store times with bursty gaps (runs of
    back-to-back stores that fill the buffer, separated by quiet
    stretches that drain it), which exercises both the long clean
    vector segments and the stall-cluster scalar runs.
    """
    from repro.memsim.write_buffer import (
        simulate_write_buffer,
        simulate_write_buffer_reference,
    )

    rng = np.random.default_rng(1)
    streams = {
        # Stall-heavy: a quarter of the stores arrive back-to-back, so
        # the buffer fills constantly and the kernel spends much of its
        # time in the post-stall scalar runs — its worst case.
        "bursty": np.where(
            rng.random(WRITE_BUFFER_STORES) < 0.25,
            rng.integers(0, 3, WRITE_BUFFER_STORES),
            rng.integers(6, 40, WRITE_BUFFER_STORES),
        ),
        # Typical pipeline output: stores mostly spaced past the retire
        # time, occasional short bursts — long clean vector segments.
        "sparse": np.where(
            rng.random(WRITE_BUFFER_STORES) < 0.05,
            rng.integers(0, 3, WRITE_BUFFER_STORES),
            rng.integers(8, 60, WRITE_BUFFER_STORES),
        ),
    }
    rows = {}
    for name, gaps in streams.items():
        times = np.cumsum(gaps, dtype=np.int64)
        t0 = time.perf_counter()
        reference = simulate_write_buffer_reference(times)
        reference_s = time.perf_counter() - t0
        vector_s, result = best_of(lambda: simulate_write_buffer(times))
        rows[name] = {
            "reference_seconds": round(reference_s, 3),
            "vector_seconds": round(vector_s, 4),
            "speedup": round(reference_s / vector_s, 1),
            "bit_identical": (
                result.stores == reference.stores
                and result.stall_cycles == reference.stall_cycles
            ),
            "stall_cycles": int(result.stall_cycles),
        }
    return {"stores": WRITE_BUFFER_STORES, "streams": rows}


def check_alloc_scaling(alloc: dict) -> int:
    """CI tripwire: greedy must stay optimal and >= 100x faster."""
    failed = 0
    if not alloc["all_optimal"]:
        bad = [r["budget_rbe"] for r in alloc["rows"] if not r["optimal"]]
        print(f"alloc check FAILED: greedy missed the optimum at {bad}")
        failed = 1
    if alloc["median_speedup"] < ALLOC_SPEEDUP_FLOOR:
        print(
            f"alloc check FAILED: median speedup {alloc['median_speedup']}x "
            f"below the {ALLOC_SPEEDUP_FLOOR:.0f}x floor"
        )
        failed = 1
    if not failed:
        print(
            f"alloc check OK: optimal at all {len(alloc['rows'])} budgets, "
            f"median speedup {alloc['median_speedup']}x over "
            f"{alloc['space_points']:,} points"
        )
    return failed


def check_scaling(plane: dict) -> int:
    """CI tripwire: warm jobs=4 must not lose to serial on big hosts."""
    cores = os.cpu_count() or 1
    if cores < 4:
        print(
            f"scaling check skipped: host has {cores} core(s), needs >= 4"
        )
        return 0
    serial = plane["warm_serial_seconds"]
    jobs4 = plane["warm_jobs4_seconds"]
    if jobs4 > serial * 1.10:  # small tolerance for timer noise
        print(
            f"scaling check FAILED: warm jobs=4 took {jobs4}s vs "
            f"serial {serial}s on a {cores}-core host"
        )
        return 1
    print(
        f"scaling check OK: warm jobs=4 {jobs4}s <= serial {serial}s "
        f"(tolerance 10%)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default="BENCH_perf.json", help="output JSON path"
    )
    parser.add_argument(
        "--section",
        choices=(
            "all", "grid", "curves", "trace_plane", "streaming",
            "trace_compression", "alloc_scaling", "write_buffer",
        ),
        default="all",
        help="benchmark only one section (default: all)",
    )
    parser.add_argument(
        "--check-scaling",
        action="store_true",
        help="exit non-zero if warm jobs=4 measurement is slower than "
        "serial on a >= 4-core host, if any streaming-scaling row "
        "peaks at >= 1 GiB RSS, or if the trace_compression section "
        "breaks its ratio / bit-identity / warm-speedup contracts "
        "(gates only the sections that ran)",
    )
    parser.add_argument(
        "--sizes",
        default=",".join(str(n) for n in default_sizes()),
        help="comma-separated reference counts for the streaming "
        "scaling section (default: REPRO_BENCH_SIZES or the CI triple)",
    )
    args = parser.parse_args(argv)
    out_dir = os.path.dirname(os.path.abspath(args.output))
    if not os.path.isdir(out_dir):
        parser.error(f"output directory does not exist: {out_dir}")
    try:
        sizes = tuple(int(n) for n in args.sizes.split(",") if n.strip())
    except ValueError:
        parser.error(f"--sizes must be comma-separated integers: {args.sizes!r}")
    if not sizes or any(n < 1 for n in sizes):
        parser.error(f"--sizes needs positive reference counts: {args.sizes!r}")
    sections = (
        {
            "grid", "curves", "trace_plane", "streaming",
            "trace_compression", "alloc_scaling", "write_buffer",
        }
        if args.section == "all"
        else {args.section}
    )

    payload = {
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "default_engine": engine_mode(),
            "native_kernel": native_available(),
        },
    }

    if "grid" in sections:
        print(
            f"generating {BENCH_REFERENCES:,}-reference "
            f"{WORKLOAD}/{OS_NAME} trace ..."
        )
        trace = generate_trace(WORKLOAD, OS_NAME, BENCH_REFERENCES, seed=1)
        print("benchmarking Table 5 grid sweep ...")
        grid = bench_grid(trace)
        for mode, row in grid["engines"].items():
            print(
                f"  {mode:>7}: {row['seconds']:.3f}s "
                f"({row['speedup']}x, identical={row['bit_identical']})"
            )
        payload["grid_sweep"] = grid

    if "curves" in sections:
        print("benchmarking full StructureCurves measurement ...")
        curves = bench_curves()
        print(
            f"  serial: {curves['serial_seconds']}s   "
            f"jobs=4: {curves['jobs4_seconds']}s   "
            f"identical={curves['identical']}"
        )
        payload["structure_curves"] = curves

    plane = None
    if "trace_plane" in sections:
        print("benchmarking zero-copy trace plane ...")
        plane = bench_trace_plane()
        print(
            f"  cold generate: {plane['cold_generate_seconds']}s   "
            f"warm memmap load: {plane['warm_load_seconds']}s "
            f"({plane['load_speedup']}x, "
            f"identical={plane['load_bit_identical']})"
        )
        print(
            f"  curves no-plane serial: {plane['serial_no_plane_seconds']}s   "
            f"warm serial: {plane['warm_serial_seconds']}s   "
            f"warm jobs=4: {plane['warm_jobs4_seconds']}s   "
            f"identical={plane['curves_identical']}"
        )
        payload["trace_plane"] = plane

    streaming = None
    if "streaming" in sections:
        print("benchmarking chunk-streaming scaling ...")
        streaming = bench_streaming(sizes)
        for row in streaming["rows"]:
            print(
                f"  {row['references']:>13,} refs: "
                f"generate {row['generate_seconds']}s   "
                f"simulate {row['simulate_seconds']}s   "
                f"reload {row['reload_seconds']}s   "
                f"disk {row['disk_bytes'] / (1 << 20):.0f}/"
                f"{row['raw_bytes'] / (1 << 20):.0f} MiB "
                f"(ratio {row['compression_ratio']})   "
                f"peak RSS {row['peak_rss_bytes'] / (1 << 20):.0f} MiB"
            )
        payload["streaming_scaling"] = streaming

    compression = None
    if "trace_compression" in sections:
        print("benchmarking compressed trace entries ...")
        compression = bench_trace_compression()
        print(
            f"  raw {compression['raw_bytes'] / (1 << 20):.1f} MiB -> "
            f"zlib {compression['compressed_bytes'] / (1 << 20):.1f} MiB "
            f"(ratio {compression['compression_ratio']})   "
            f"cold {compression['cold_generate_seconds']}s   "
            f"warm load {compression['warm_load_seconds']}s "
            f"({compression['warm_load_speedup']}x)   "
            f"warm stream {compression['warm_stream_seconds']}s "
            f"({compression['warm_speedup']}x, "
            f"identical={compression['bit_identical']})"
        )
        payload["trace_compression"] = compression

    alloc = None
    if "alloc_scaling" in sections:
        print("benchmarking greedy vs exhaustive allocation ...")
        alloc = bench_alloc_scaling()
        print(
            f"  two-level space: {alloc['space_points']:,} points   "
            f"median speedup {alloc['median_speedup']}x   "
            f"all optimal={alloc['all_optimal']}"
        )
        for row in alloc["rows"]:
            print(
                f"  budget {row['budget_rbe']:>12,.0f}: "
                f"greedy {row['greedy_seconds']*1e3:.1f}ms   "
                f"exhaustive {row['exhaustive_seconds']}s   "
                f"({row['speedup']}x, optimal={row['optimal']})"
            )
        payload["alloc_scaling"] = alloc

    if "write_buffer" in sections:
        print("benchmarking write-buffer timing kernel ...")
        wb = bench_write_buffer()
        for name, row in wb["streams"].items():
            print(
                f"  {wb['stores']:,} {name} stores: "
                f"scalar {row['reference_seconds']}s   "
                f"vector {row['vector_seconds']}s   "
                f"({row['speedup']}x, identical={row['bit_identical']})"
            )
        payload["write_buffer"] = wb

    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")
    status = 0
    if args.check_scaling:
        if plane is not None:
            status |= check_scaling(plane)
        if streaming is not None:
            status |= check_streaming_rss(streaming)
        if compression is not None:
            status |= check_trace_compression(compression)
        if alloc is not None:
            status |= check_alloc_scaling(alloc)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
