"""Tests for the full-system timing simulation."""

import numpy as np
import pytest

from repro.memsim.timing import DECSTATION_3100, SystemConfig, simulate_system
from repro.trace.events import ReferenceTrace

SMALL_CONFIG = SystemConfig(
    icache_bytes=1024,
    icache_line_words=4,
    icache_assoc=1,
    dcache_bytes=1024,
    dcache_line_words=4,
    dcache_assoc=1,
    tlb_entries=8,
    tlb_assoc="full",
)


def make_trace(addresses, kinds, mapped=None, kernel=None, other_cpi=0.0):
    n = len(addresses)
    addresses = np.asarray(addresses, dtype=np.int64)
    return ReferenceTrace(
        addresses=addresses,
        physical=addresses.copy(),
        kinds=np.asarray(kinds, dtype=np.uint8),
        asids=np.zeros(n, dtype=np.uint8),
        mapped=np.asarray(
            mapped if mapped is not None else np.ones(n, dtype=bool), dtype=bool
        ),
        kernel=np.asarray(
            kernel if kernel is not None else np.zeros(n, dtype=bool), dtype=bool
        ),
        other_cpi=other_cpi,
    )


class TestCpiAccounting:
    def test_all_hits_cpi_is_one_plus_other(self):
        # Two instructions in one line, same page, warmed by repetition.
        addrs = [0, 4] * 50
        kinds = [0, 0] * 50
        trace = make_trace(addrs, kinds, other_cpi=0.25)
        result = simulate_system(trace, SMALL_CONFIG, warmup_fraction=0.5)
        assert result.cpi == pytest.approx(1.25, abs=0.05)

    def test_icache_miss_penalty_applied(self):
        # Alternate between two conflicting lines so every fetch misses.
        addrs = [0, 1024] * 100
        kinds = [0] * 200
        trace = make_trace(addrs, kinds)
        result = simulate_system(trace, SMALL_CONFIG, warmup_fraction=0.5)
        penalty = SMALL_CONFIG.cache_penalty(4)
        assert result.cpi_components["icache"] == pytest.approx(penalty, rel=0.05)

    def test_store_misses_do_not_stall_dcache(self):
        # Stores are write-through/no-allocate: D-cache component 0.
        addrs = []
        kinds = []
        for i in range(100):
            addrs += [0, 4096 + 16 * i]
            kinds += [0, 2]
        trace = make_trace(addrs, kinds)
        result = simulate_system(trace, SMALL_CONFIG, warmup_fraction=0.2)
        assert result.cpi_components["dcache"] == 0.0

    def test_tlb_kernel_penalty(self):
        # Mapped kernel references cycling through more pages than TLB
        # entries: kernel misses at the expensive penalty.
        pages = np.arange(16) * 4096
        addrs = np.tile(pages, 20)
        kinds = np.zeros(len(addrs), dtype=np.uint8)
        kernel = np.ones(len(addrs), dtype=bool)
        trace = make_trace(addrs, kinds, kernel=kernel)
        result = simulate_system(trace, SMALL_CONFIG, warmup_fraction=0.2)
        assert result.tlb_kernel_misses > 0
        assert result.tlb_user_misses == 0
        assert result.cpi_components["tlb"] > 1.0  # 400-cycle misses

    def test_unmapped_references_bypass_tlb(self):
        pages = np.arange(16) * 4096
        addrs = np.tile(pages, 20)
        kinds = np.zeros(len(addrs), dtype=np.uint8)
        mapped = np.zeros(len(addrs), dtype=bool)
        trace = make_trace(addrs, kinds, mapped=mapped)
        result = simulate_system(trace, SMALL_CONFIG)
        assert result.tlb_user_misses == 0
        assert result.tlb_kernel_misses == 0

    def test_components_sum_to_cpi(self, ultrix_trace):
        result = simulate_system(ultrix_trace, DECSTATION_3100, warmup_fraction=0.4)
        assert result.cpi == pytest.approx(
            1.0 + sum(result.cpi_components.values()), rel=1e-6
        )

    def test_component_fractions_sum_to_one(self, ultrix_trace):
        result = simulate_system(ultrix_trace, DECSTATION_3100, warmup_fraction=0.4)
        assert sum(result.component_fractions().values()) == pytest.approx(1.0)


class TestWarmup:
    def test_warmup_restricts_measured_window(self, ultrix_trace):
        cold = simulate_system(ultrix_trace, DECSTATION_3100)
        warm = simulate_system(ultrix_trace, DECSTATION_3100, warmup_fraction=0.5)
        assert warm.instructions < cold.instructions
        assert warm.icache_misses < cold.icache_misses

    def test_warmup_removes_compulsory_misses_on_cyclic_trace(self):
        # A strictly cyclic trace misses only during the first pass, so
        # measuring after warmup yields CPI ~= 1.
        pages = (np.arange(64) * 16).astype(np.int64)
        addrs = np.tile(pages, 20)
        kinds = np.zeros(len(addrs), dtype=np.uint8)
        trace = make_trace(addrs, kinds)
        warm = simulate_system(trace, SMALL_CONFIG, warmup_fraction=0.5)
        assert warm.cpi == pytest.approx(1.0, abs=0.01)

    def test_bigger_caches_never_hurt(self, mach_trace):
        small = SystemConfig(
            icache_bytes=4096, icache_line_words=4, icache_assoc=1,
            dcache_bytes=4096, dcache_line_words=4, dcache_assoc=1,
            tlb_entries=32, tlb_assoc="full",
        )
        big = SystemConfig(
            icache_bytes=32768, icache_line_words=4, icache_assoc=1,
            dcache_bytes=32768, dcache_line_words=4, dcache_assoc=1,
            tlb_entries=512, tlb_assoc="full",
        )
        cpi_small = simulate_system(mach_trace, small, warmup_fraction=0.4).cpi
        cpi_big = simulate_system(mach_trace, big, warmup_fraction=0.4).cpi
        assert cpi_big <= cpi_small
