"""Table 4: CPI stall components for all workloads under both OSes."""

from __future__ import annotations

import numpy as np

from repro.experiments.common import WARMUP_FRACTION, format_table, get_trace, suite
from repro.monitor.monster import COMPONENT_ORDER, Monster


def run() -> list[dict]:
    """Return Table 4 rows (one per workload/OS plus suite averages)."""
    monster = Monster(warmup_fraction=WARMUP_FRACTION)
    rows = []
    sums: dict[str, dict[str, list[float]]] = {
        "ultrix": {k: [] for k in (*COMPONENT_ORDER, "cpi")},
        "mach": {k: [] for k in (*COMPONENT_ORDER, "cpi")},
    }
    for workload in suite():
        for os_name in ("ultrix", "mach"):
            report = monster.measure(get_trace(workload, os_name))
            row = {
                "workload": workload,
                "os": os_name,
                "cpi": round(report.cpi, 2),
            }
            for key in COMPONENT_ORDER:
                row[key] = (
                    f"{report.components[key]:.2f} "
                    f"({round(100 * report.fractions[key])}%)"
                )
                sums[os_name][key].append(report.components[key])
            sums[os_name]["cpi"].append(report.cpi)
            rows.append(row)
    for os_name in ("ultrix", "mach"):
        avg_components = {
            k: float(np.mean(sums[os_name][k])) for k in COMPONENT_ORDER
        }
        overhead = sum(avg_components.values())
        row = {
            "workload": "Average",
            "os": os_name,
            "cpi": round(float(np.mean(sums[os_name]["cpi"])), 2),
        }
        for key in COMPONENT_ORDER:
            pct = round(100 * avg_components[key] / overhead) if overhead else 0
            row[key] = f"{avg_components[key]:.2f} ({pct}%)"
        rows.append(row)
    return rows


def main() -> None:
    """Print Table 4."""
    print("Table 4: CPI stall components for all workloads")
    print(format_table(run()))


if __name__ == "__main__":
    main()
