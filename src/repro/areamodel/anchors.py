"""Calibration anchors extracted from the paper.

Each anchor is the total-cost column of one row of Table 6 or Table 7:
the summed rbe area of one TLB, one I-cache and one D-cache
configuration.  These are the only absolute rbe values the ISCA paper
prints in bulk, so they are what the model constants are fitted to.

Caches are written ``("cache", capacity_bytes, line_words, assoc)`` and
TLBs ``("tlb", entries, assoc)`` where ``assoc`` may be the string
``"full"``.
"""

from __future__ import annotations

from repro.areamodel.tlb_area import FULLY_ASSOCIATIVE
from repro.units import KB

StructureSpec = tuple
Anchor = tuple[tuple[StructureSpec, ...], float]

TABLE6_ANCHORS: list[Anchor] = [
    ((("tlb", 512, 8), ("cache", 16 * KB, 8, 8), ("cache", 8 * KB, 8, 8)), 163_438.0),
    ((("tlb", 512, 4), ("cache", 16 * KB, 8, 8), ("cache", 8 * KB, 8, 8)), 162_497.0),
    ((("tlb", 512, 2), ("cache", 16 * KB, 8, 8), ("cache", 8 * KB, 8, 8)), 162_579.0),
    ((("tlb", 512, 8), ("cache", 32 * KB, 16, 8), ("cache", 8 * KB, 8, 8)), 249_089.0),
    ((("tlb", 512, 4), ("cache", 32 * KB, 16, 8), ("cache", 8 * KB, 8, 8)), 248_148.0),
    ((("tlb", 512, 8), ("cache", 32 * KB, 8, 4), ("cache", 8 * KB, 8, 8)), 243_502.0),
    ((("tlb", 512, 2), ("cache", 32 * KB, 16, 8), ("cache", 8 * KB, 8, 8)), 248_230.0),
    ((("tlb", 512, 4), ("cache", 32 * KB, 8, 4), ("cache", 8 * KB, 8, 8)), 242_561.0),
    ((("tlb", 512, 2), ("cache", 32 * KB, 8, 4), ("cache", 8 * KB, 8, 8)), 242_643.0),
    ((("tlb", 512, 8), ("cache", 16 * KB, 16, 8), ("cache", 8 * KB, 8, 8)), 167_815.0),
]

TABLE7_ANCHORS: list[Anchor] = [
    ((("tlb", 512, 8), ("cache", 32 * KB, 8, 2), ("cache", 8 * KB, 4, 2)), 239_259.0),
    ((("tlb", 512, 8), ("cache", 32 * KB, 4, 2), ("cache", 8 * KB, 8, 2)), 248_628.0),
    ((("tlb", 512, 8), ("cache", 32 * KB, 16, 2), ("cache", 8 * KB, 8, 2)), 232_040.0),
    ((("tlb", 512, 8), ("cache", 32 * KB, 16, 2), ("cache", 8 * KB, 2, 2)), 241_256.0),
    ((("tlb", 512, 8), ("cache", 32 * KB, 4, 2), ("cache", 4 * KB, 4, 2)), 228_214.0),
    ((("tlb", 256, 8), ("cache", 32 * KB, 4, 2), ("cache", 8 * KB, 2, 2)), 249_684.0),
    (
        (
            ("tlb", 64, FULLY_ASSOCIATIVE),
            ("cache", 32 * KB, 8, 2),
            ("cache", 8 * KB, 4, 2),
        ),
        225_438.0,
    ),
    ((("tlb", 128, 8), ("cache", 32 * KB, 8, 2), ("cache", 8 * KB, 4, 2)), 226_971.0),
    ((("tlb", 512, 8), ("cache", 32 * KB, 16, 2), ("cache", 8 * KB, 16, 2)), 232_117.0),
    ((("tlb", 512, 8), ("cache", 16 * KB, 8, 2), ("cache", 16 * KB, 2, 2)), 212_442.0),
    ((("tlb", 512, 8), ("cache", 16 * KB, 4, 2), ("cache", 16 * KB, 2, 2)), 219_138.0),
    ((("tlb", 512, 8), ("cache", 16 * KB, 8, 2), ("cache", 8 * KB, 8, 2)), 151_875.0),
    (
        (
            ("tlb", 64, FULLY_ASSOCIATIVE),
            ("cache", 32 * KB, 4, 2),
            ("cache", 8 * KB, 8, 2),
        ),
        234_807.0,
    ),
    ((("tlb", 64, 4), ("cache", 8 * KB, 1, 1), ("cache", 16 * KB, 2, 1)), 176_909.0),
]

ALL_ANCHORS: list[Anchor] = TABLE6_ANCHORS + TABLE7_ANCHORS

# In-text quotes from Section 5.4 of the paper.  They are rounded
# ("just 19,000", "over 74,000") so they are validated loosely and not
# used in the least-squares fit.
TEXT_QUOTE_TLB_512_8WAY = 19_000.0
TEXT_QUOTE_CACHE_8KB_DM_4WORD = 74_000.0
