"""Consistent-hash ring with virtual nodes for shard placement.

Each node contributes :data:`DEFAULT_VNODES` points on a 64-bit ring
(the first 8 bytes of ``SHA-256("node#i")``); a key hashes to the same
space and is owned by the first node point at or clockwise of it.  Two
properties make this the right structure for a serving fleet:

* **balance** — with 128 virtual nodes per server the per-node share
  of key space concentrates tightly around 1/N (the property tests
  bound max/mean load);
* **minimal remap** — adding or removing one node moves only the keys
  in the arcs that node's points cover, ~1/N of the space; every other
  key keeps its owner, so a membership change invalidates ~1/N of the
  fleet's warm caches instead of all of them.

Keys are the service's *priced-space* identity — the ``(OS mix,
config-space restriction)`` pair from a normalized request (see
:func:`shard_key`) — because that is the unit of expensive server
state (loaded curves, priced space, budget index, byte cache).  Every
budget against one priced space lands on the same replica set, so the
sweep that prices a space once keeps hitting the node that priced it.

The ring is immutable: :meth:`Ring.add_node` / :meth:`Ring.remove_node`
return new rings, so a reader never observes a half-updated point
array (membership swaps are one attribute store).
"""

from __future__ import annotations

import bisect
import hashlib

DEFAULT_VNODES = 128


def hash_key(key: str) -> int:
    """A key's 64-bit position on the ring (SHA-256 prefix)."""
    return int.from_bytes(hashlib.sha256(key.encode()).digest()[:8], "big")


def shard_key(normalized: dict) -> str:
    """The ring key for one *normalized* request (see
    :func:`repro.service.requests.validate_request`).

    Budgets are deliberately excluded: every budget against one
    ``(OS mix, restriction)`` shares the node that holds its priced
    space.  Batch requests key on the full OS-name list so a sweep
    stays on one replica set.
    """
    if normalized.get("type") == "batch":
        os_part = ",".join(normalized["os_names"])
    else:
        os_part = normalized["os"]
    return (
        f"{os_part}|assoc={normalized.get('max_cache_assoc')}"
        f"|t={normalized.get('max_access_time_ns')}"
    )


class Ring:
    """An immutable consistent-hash ring over a set of node labels.

    Args:
        nodes: node labels (deduplicated; order is irrelevant).
        vnodes: virtual node points per node (128 balances well; the
            property tests pin the max/mean bound at this default).
    """

    __slots__ = ("nodes", "vnodes", "_points", "_owners")

    def __init__(self, nodes, vnodes: int = DEFAULT_VNODES):
        unique = tuple(sorted(set(map(str, nodes))))
        if not unique:
            raise ValueError("a ring needs at least one node")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.nodes = unique
        self.vnodes = vnodes
        points = []
        for node in unique:
            for i in range(vnodes):
                points.append((hash_key(f"{node}#{i}"), node))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [node for _, node in points]

    def owner(self, key: str) -> str:
        """The node owning ``key`` (its first clockwise ring point)."""
        index = bisect.bisect_right(self._points, hash_key(key))
        return self._owners[index % len(self._owners)]

    def preference(self, key: str, n: int) -> list[str]:
        """The first ``min(n, len(nodes))`` *distinct* nodes clockwise
        of ``key`` — the replica set, owner first.

        Walking successor points (rather than hashing the key N times)
        keeps the minimal-remap property for replicas too: a membership
        change only perturbs preference lists whose arcs it touches.
        """
        want = min(n, len(self.nodes))
        start = bisect.bisect_right(self._points, hash_key(key))
        owners = self._owners
        total = len(owners)
        picked: list[str] = []
        seen = set()
        for step in range(total):
            node = owners[(start + step) % total]
            if node not in seen:
                seen.add(node)
                picked.append(node)
                if len(picked) == want:
                    break
        return picked

    def add_node(self, node: str) -> "Ring":
        """A new ring with ``node`` added (self is unchanged)."""
        return Ring(self.nodes + (str(node),), vnodes=self.vnodes)

    def remove_node(self, node: str) -> "Ring":
        """A new ring without ``node`` (self is unchanged)."""
        remaining = [n for n in self.nodes if n != node]
        if len(remaining) == len(self.nodes):
            raise ValueError(f"node {node!r} is not on the ring")
        return Ring(remaining, vnodes=self.vnodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return f"Ring(nodes={list(self.nodes)}, vnodes={self.vnodes})"
