"""Calibration harness: print Table 3/4-style CPI rows and Fig 9 anchors.

Used during development to tune workload/OS model parameters; the
formal versions live in repro.experiments.
"""

import sys
import time

import numpy as np

from repro.memsim.multiconfig import cache_miss_ratio_grid
from repro.memsim.timing import DECSTATION_3100, simulate_system
from repro.trace.generator import generate_trace
from repro.workloads.registry import workload_names

# Paper targets (Table 4): CPI components per workload/OS.
TARGETS = {
    ("mpeg_play", "ultrix"): (1.66, 0.01, 0.10, 0.26, 0.14, 0.15),
    ("mpeg_play", "mach"): (2.06, 0.15, 0.32, 0.30, 0.21, 0.08),
    ("mab", "ultrix"): (1.88, 0.02, 0.18, 0.38, 0.26, 0.04),
    ("mab", "mach"): (2.13, 0.12, 0.48, 0.28, 0.21, 0.04),
    ("jpeg_play", "ultrix"): (1.31, 0.00, 0.02, 0.13, 0.06, 0.10),
    ("jpeg_play", "mach"): (1.51, 0.05, 0.08, 0.17, 0.10, 0.11),
    ("ousterhout", "ultrix"): (2.19, 0.00, 0.11, 0.80, 0.24, 0.04),
    ("ousterhout", "mach"): (2.26, 0.21, 0.44, 0.27, 0.31, 0.03),
    ("IOzone", "ultrix"): (2.09, 0.01, 0.10, 0.71, 0.18, 0.09),
    ("IOzone", "mach"): (2.25, 0.17, 0.34, 0.39, 0.31, 0.04),
    ("video_play", "ultrix"): (2.48, 0.05, 0.35, 0.82, 0.23, 0.03),
    ("video_play", "mach"): (2.51, 0.28, 0.49, 0.43, 0.27, 0.04),
}

REFS = int(sys.argv[1]) if len(sys.argv) > 1 else 400_000
only = sys.argv[2] if len(sys.argv) > 2 else None

print(f"{'workload':<12}{'os':<8}{'CPI':>6}{'tlb':>7}{'i$':>7}{'d$':>7}{'wb':>7}{'oth':>6}   (paper in parens)")
imiss_rows = []
for wl in workload_names():
    if only and wl != only:
        continue
    for osn in ("ultrix", "mach"):
        t0 = time.time()
        tr = generate_trace(wl, osn, REFS, seed=1)
        res = simulate_system(tr, DECSTATION_3100, warmup_fraction=0.5)
        c = res.cpi_components
        tgt = TARGETS[(wl, osn)]
        print(
            f"{wl:<12}{osn:<8}{res.cpi:>6.2f}{c['tlb']:>7.3f}{c['icache']:>7.3f}"
            f"{c['dcache']:>7.3f}{c['write_buffer']:>7.3f}{c['other']:>6.2f}"
            f"   ({tgt[0]:.2f} | {tgt[1]:.2f} {tgt[2]:.2f} {tgt[3]:.2f} {tgt[4]:.2f} {tgt[5]:.2f})"
            f"  [{time.time()-t0:.1f}s]"
        )
        # Fig 9 anchor: 8KB and 32KB direct-mapped, 4-word line I-cache.
        grid = cache_miss_ratio_grid(
            tr.ifetch_physical(), [8192, 32768], [4], [1], warmup_fraction=0.5
        )
        imiss_rows.append(
            (wl, osn, grid[(8192, 4, 1)], grid[(32768, 4, 1)])
        )

print("\nFig 9 anchors (I-cache DM 4-word line): paper avg ultrix 8K=0.028 32K=0.013; mach 8K=0.065")
for wl, osn, m8, m32 in imiss_rows:
    print(f"  {wl:<12}{osn:<8}8K={m8:.3f}  32K={m32:.3f}")
avg = {}
for wl, osn, m8, m32 in imiss_rows:
    avg.setdefault(osn, []).append((m8, m32))
for osn, vals in avg.items():
    a8 = np.mean([v[0] for v in vals]); a32 = np.mean([v[1] for v in vals])
    print(f"  AVG {osn}: 8K={a8:.3f} 32K={a32:.3f}")
