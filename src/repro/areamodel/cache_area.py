"""MQF-style area model for on-chip caches.

A cache is modelled as ``assoc`` identical SRAM ways.  Each way holds
``sets`` rows; a row stores one line of data plus its tag and status
bits.  Periphery overhead is charged per row (wordline drivers), per
column per way (sense amplifiers), per way (tag comparator) and per
structure (control logic).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.areamodel.constants import CALIBRATED_CONSTANTS, AreaConstants
from repro.errors import ConfigurationError
from repro.units import ADDRESS_BITS, WORD_BYTES, is_pow2, log2i

STATUS_BITS_PER_LINE = 2
"""Valid + dirty bits per cache line."""


@dataclass(frozen=True)
class CacheGeometry:
    """Derived geometry of a cache configuration.

    Attributes:
        capacity_bytes: total data capacity.
        line_bytes: line size in bytes.
        assoc: set associativity (1 = direct-mapped).
        sets: number of sets.
        lines: total number of lines.
        tag_bits: address tag width per line.
        bits_per_line: data + tag + status bits stored per line.
        storage_bits: total bits stored in the array.
    """

    capacity_bytes: int
    line_bytes: int
    assoc: int
    sets: int
    lines: int
    tag_bits: int
    bits_per_line: int
    storage_bits: int

    @classmethod
    def from_config(
        cls, capacity_bytes: int, line_words: int, assoc: int
    ) -> "CacheGeometry":
        """Derive the geometry for a (capacity, line size, associativity) triple.

        Args:
            capacity_bytes: total data capacity in bytes (power of two).
            line_words: line size in 4-byte words (power of two).
            assoc: set associativity (power of two, 1 = direct-mapped).

        Raises:
            ConfigurationError: if the parameters are inconsistent (e.g.
                fewer lines than ways) or not powers of two.
        """
        for name, value in (
            ("capacity_bytes", capacity_bytes),
            ("line_words", line_words),
            ("assoc", assoc),
        ):
            if not is_pow2(value):
                raise ConfigurationError(f"{name}={value} must be a power of two")
        line_bytes = line_words * WORD_BYTES
        if line_bytes > capacity_bytes:
            raise ConfigurationError(
                f"line size {line_bytes}B exceeds capacity {capacity_bytes}B"
            )
        lines = capacity_bytes // line_bytes
        if assoc > lines:
            raise ConfigurationError(
                f"associativity {assoc} exceeds line count {lines}"
            )
        sets = lines // assoc
        offset_bits = log2i(line_bytes)
        index_bits = log2i(sets)
        tag_bits = ADDRESS_BITS - index_bits - offset_bits
        bits_per_line = 8 * line_bytes + tag_bits + STATUS_BITS_PER_LINE
        return cls(
            capacity_bytes=capacity_bytes,
            line_bytes=line_bytes,
            assoc=assoc,
            sets=sets,
            lines=lines,
            tag_bits=tag_bits,
            bits_per_line=bits_per_line,
            storage_bits=lines * bits_per_line,
        )


def cache_area_rbe(
    capacity_bytes: int,
    line_words: int,
    assoc: int,
    constants: AreaConstants = CALIBRATED_CONSTANTS,
) -> float:
    """Estimate the die area of a cache in register-bit equivalents.

    Args:
        capacity_bytes: total data capacity in bytes.
        line_words: line size in 4-byte words.
        assoc: set associativity (1 = direct-mapped).
        constants: technology constants (defaults to the values
            calibrated against the paper's Tables 6/7).

    Returns:
        Estimated area in rbe.
    """
    geom = CacheGeometry.from_config(capacity_bytes, line_words, assoc)
    storage = geom.storage_bits * constants.sram_cell
    sense = geom.assoc * geom.bits_per_line * constants.sense
    drive = geom.lines * constants.drive
    comparators = geom.assoc * geom.tag_bits * constants.comparator
    return storage + sense + drive + comparators + constants.control
