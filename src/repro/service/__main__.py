"""Command-line front end: ``python -m repro.service``.

JSON in, JSON out — suitable for scripting::

    # Characterize once (expensive; honours REPRO_SCALE / --jobs):
    python -m repro.service build --os mach --store .repro-store --jobs 4

    # Query forever after (cheap, no re-simulation):
    echo '{"type": "point", "os": "mach", "budget": 250000, "limit": 10}' \
        | python -m repro.service query --store .repro-store

    python -m repro.service query --request \
        '{"type": "pareto", "os": "mach", "max_budget": 400000}'

    # Or serve the same queries over HTTP (JSON request logs on
    # stderr; socket timeouts, overload shedding and fault injection
    # are tunable):
    python -m repro.service serve --store .repro-store --port 8023 \
        --timeout 30 --max-inflight 64 [--workers N] [--faults SPEC] [--quiet]

Failures print a structured JSON error object to stderr and exit
non-zero; exit code 2 marks a bad request, 3 a store problem, 4 an
unsatisfiable budget.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.errors import (
    BudgetError,
    ConfigError,
    ReproError,
    RequestError,
    StoreError,
)
from repro.service.engine import QueryEngine
from repro.service.faults import parse_faults, set_injector
from repro.service.http import (
    DEFAULT_EXECUTOR_THREADS,
    DEFAULT_MAX_INFLIGHT,
    DEFAULT_REQUEST_TIMEOUT_S,
    serve,
)
from repro.service.workers import PreforkServer, resolve_workers
from repro.store import CurveStore


def _emit_error(code: str, message: str, exit_code: int) -> int:
    json.dump({"ok": False, "error": {"code": code, "message": message}},
              sys.stderr)
    sys.stderr.write("\n")
    return exit_code


def cmd_build(args) -> int:
    from repro.trace import tracestore

    store = CurveStore.open(args.store)
    if tracestore.enabled():
        # Store warm-up goes through the zero-copy trace plane: traces
        # generate once into the mmap cache and measurement workers
        # share them, instead of regenerating per process.
        print(
            f"trace plane: {tracestore.trace_cache_dir()}", file=sys.stderr
        )
    manifests = []
    for os_name in args.os:
        print(f"measuring suite under {os_name} ...", file=sys.stderr)
        manifests.append(store.build_for_os(os_name, jobs=args.jobs))
    json.dump({"ok": True, "built": manifests}, sys.stdout, indent=2)
    sys.stdout.write("\n")
    return 0


def cmd_info(args) -> int:
    store = CurveStore.open(args.store)
    json.dump(
        {
            "ok": True,
            "store": str(store.root),
            "exists": store.exists(),
            "entries": store.entries(),
        },
        sys.stdout,
        indent=2,
    )
    sys.stdout.write("\n")
    return 0


def cmd_query(args) -> int:
    if args.request is not None:
        raw = args.request
    else:
        raw = sys.stdin.read()
    try:
        request = json.loads(raw)
    except ValueError as exc:
        return _emit_error("invalid_json", f"request is not JSON: {exc}", 2)
    engine = QueryEngine(CurveStore.open(args.store))
    result = engine.query(request)
    json.dump({"ok": True, "result": result}, sys.stdout,
              indent=None if args.compact else 2)
    sys.stdout.write("\n")
    return 0


def cmd_serve(args) -> int:
    faults = None
    if args.faults:
        faults = parse_faults(args.faults)
        set_injector(faults)  # store-load seams read the process injector
    workers = resolve_workers(args.workers)
    if workers > 1:
        store_path = args.store
        fault_spec = args.faults

        def engine_factory() -> QueryEngine:
            # Runs inside each forked worker: mmap handles and engine
            # locks must be born after fork, never inherited across it.
            if fault_spec:
                set_injector(parse_faults(fault_spec))
            return QueryEngine(CurveStore.open(store_path))

        pool = PreforkServer(
            engine_factory,
            host=args.host,
            port=args.port,
            workers=workers,
            request_timeout=args.timeout,
            max_inflight=args.max_inflight,
            verbose=not args.quiet,
            executor_threads=args.executor_threads,
        )
        pool.serve_until_interrupted()
        return 0
    engine = QueryEngine(CurveStore.open(args.store))
    serve(
        engine,
        host=args.host,
        port=args.port,
        verbose=not args.quiet,
        request_timeout=args.timeout,
        max_inflight=args.max_inflight,
        faults=faults,
        executor_threads=args.executor_threads,
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Allocation query service over a measured curve store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser(
        "build", help="measure a suite and publish it to the store"
    )
    build.add_argument(
        "--os", action="append", required=True,
        help="OS model to characterize (repeatable: --os mach --os ultrix)",
    )
    build.add_argument("--store", default=None, help="store directory")
    build.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for measurement (overrides REPRO_JOBS)",
    )
    build.set_defaults(func=cmd_build)

    info = sub.add_parser("info", help="list the store's published entries")
    info.add_argument("--store", default=None, help="store directory")
    info.set_defaults(func=cmd_info)

    query = sub.add_parser(
        "query", help="answer one JSON request (stdin or --request)"
    )
    query.add_argument("--store", default=None, help="store directory")
    query.add_argument(
        "--request", default=None, help="request JSON (default: read stdin)"
    )
    query.add_argument(
        "--compact", action="store_true", help="single-line JSON output"
    )
    query.set_defaults(func=cmd_query)

    srv = sub.add_parser("serve", help="serve queries over HTTP")
    srv.add_argument("--store", default=None, help="store directory")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8023)
    srv.add_argument(
        "--timeout", type=float, default=DEFAULT_REQUEST_TIMEOUT_S,
        help="per-connection socket timeout in seconds (default 30)",
    )
    srv.add_argument(
        "--max-inflight", type=int, default=DEFAULT_MAX_INFLIGHT,
        help="concurrent query bound; excess requests get 429 (default 64)",
    )
    srv.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault-injection spec, e.g. "
             "'corrupt_store=0.3,latency_ms=20,drop_conn=0.1,seed=7' "
             "(overrides REPRO_FAULTS)",
    )
    srv.add_argument(
        "--workers", type=int, default=None,
        help="pre-fork worker processes sharing the listening address "
             "(default: REPRO_WORKERS or 1; >1 enables the pre-fork pool)",
    )
    srv.add_argument(
        "--executor-threads", type=int, default=DEFAULT_EXECUTOR_THREADS,
        help="off-loop executor threads per worker for engine misses "
             f"(default {DEFAULT_EXECUTOR_THREADS}); cache hits are "
             "served on the event loop and never use them",
    )
    srv.add_argument(
        "--quiet", action="store_true",
        help="suppress per-request JSON log lines on stderr",
    )
    srv.set_defaults(func=cmd_serve)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pipe (head, jq -c ...) closed early: not an error.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141
    except RequestError as exc:
        return _emit_error("invalid_request", str(exc), 2)
    except StoreError as exc:
        return _emit_error("store_unavailable", str(exc), 3)
    except BudgetError as exc:
        return _emit_error("budget_unsatisfiable", str(exc), 4)
    except ConfigError as exc:
        return _emit_error("invalid_config", str(exc), 2)
    except ReproError as exc:
        return _emit_error("error", str(exc), 1)


if __name__ == "__main__":
    raise SystemExit(main())
