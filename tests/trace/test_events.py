"""Tests for trace containers and the physical frame mapper."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.memsim.types import AccessKind
from repro.trace.events import (
    ReferenceTrace,
    TraceChunkBuilder,
    assign_physical_frames,
)
from repro.units import PAGE_BYTES


class TestPhysicalFrames:
    def test_offset_bits_preserved(self):
        addrs = np.array([0x1234, 0x5678, 0x1234 + PAGE_BYTES])
        phys = assign_physical_frames(addrs, seed=0)
        assert (phys & (PAGE_BYTES - 1)).tolist() == [0x234, 0x678, 0x234]

    def test_same_page_same_frame(self):
        addrs = np.array([0x1000, 0x1234, 0x1FFC])
        phys = assign_physical_frames(addrs, seed=0)
        assert len(np.unique(phys >> 12)) == 1

    def test_distinct_pages_distinct_frames(self):
        addrs = (np.arange(200) * PAGE_BYTES).astype(np.int64)
        phys = assign_physical_frames(addrs, seed=0)
        assert len(np.unique(phys >> 12)) == 200

    def test_virtual_runs_mostly_contiguous_frames(self):
        # The modelled allocator hands out chunks of contiguous frames
        # (fragmented free list), so most — not all — adjacent virtual
        # pages get adjacent frames.
        addrs = (np.arange(64) * PAGE_BYTES).astype(np.int64)
        frames = assign_physical_frames(addrs, seed=1) >> 12
        contiguous = (np.diff(frames) == 1).mean()
        assert contiguous > 0.5

    def test_unmapped_pages_identity_mapped(self):
        addrs = (np.arange(8) * PAGE_BYTES + (5 << 20)).astype(np.int64)
        mapped = np.zeros(len(addrs), dtype=bool)
        phys = assign_physical_frames(addrs, seed=2, mapped=mapped)
        assert (phys == addrs).all()

    def test_deterministic_per_seed(self):
        addrs = (np.arange(50) * 3 * PAGE_BYTES).astype(np.int64)
        a = assign_physical_frames(addrs, seed=9)
        b = assign_physical_frames(addrs, seed=9)
        c = assign_physical_frames(addrs, seed=10)
        assert (a == b).all()
        assert not (a == c).all()


class TestReferenceTrace:
    def _small_trace(self):
        builder = TraceChunkBuilder()
        builder.append(np.array([0, 4, 8]), int(AccessKind.IFETCH), 1, True, False)
        builder.append(np.array([100]), int(AccessKind.LOAD), 1, True, False)
        builder.append(np.array([200]), int(AccessKind.STORE), 0, False, True)
        return builder.build(page_faults=2, other_cpi=0.1, workload="w", os_name="o")

    def test_counts(self):
        trace = self._small_trace()
        assert len(trace) == 5
        assert trace.instructions == 3
        assert trace.loads == 1
        assert trace.stores == 1

    def test_field_length_mismatch_rejected(self):
        with pytest.raises(TraceError):
            ReferenceTrace(
                addresses=np.zeros(3, dtype=np.int64),
                physical=np.zeros(3, dtype=np.int64),
                kinds=np.zeros(2, dtype=np.uint8),
                asids=np.zeros(3, dtype=np.uint8),
                mapped=np.ones(3, dtype=bool),
                kernel=np.zeros(3, dtype=bool),
            )

    def test_views(self):
        trace = self._small_trace()
        assert trace.ifetch_addresses().tolist() == [0, 4, 8]
        assert trace.load_addresses().tolist() == [100]
        assert len(trace.data_addresses()) == 2
        assert len(trace.ifetch_physical()) == 3

    def test_mapped_view_excludes_unmapped(self):
        trace = self._small_trace()
        vpns, asids, kernel = trace.mapped_view()
        assert len(vpns) == 4    # the store is unmapped

    def test_slice_preserves_metadata(self):
        trace = self._small_trace()
        part = trace.slice(0, 2)
        assert len(part) == 2
        assert part.workload == "w"
        assert part.other_cpi == 0.1

    def test_save_load_roundtrip(self, tmp_path):
        trace = self._small_trace()
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = ReferenceTrace.load(path)
        assert (loaded.addresses == trace.addresses).all()
        assert (loaded.physical == trace.physical).all()
        assert loaded.page_faults == 2
        assert loaded.workload == "w"

    def test_empty_build(self):
        trace = TraceChunkBuilder().build()
        assert len(trace) == 0
        assert trace.instructions == 0


class TestBuilder:
    def test_append_raw_mixed_attributes(self):
        builder = TraceChunkBuilder()
        builder.append_raw(
            addresses=np.array([0, 4096]),
            kinds=np.array([0, 1], dtype=np.uint8),
            asids=np.array([1, 0], dtype=np.uint8),
            mapped=np.array([True, False]),
            kernel=np.array([False, True]),
        )
        trace = builder.build()
        assert trace.mapped.tolist() == [True, False]
        assert trace.kernel.tolist() == [False, True]

    def test_empty_chunks_ignored(self):
        builder = TraceChunkBuilder()
        builder.append(np.array([], dtype=np.int64), 0, 0, True, False)
        assert builder.count == 0
