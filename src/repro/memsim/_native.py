"""On-demand build and loading of the C stack-depth kernel.

The kernel in ``_native.c`` is a ~30-line C loop; on machines with a C
compiler it is built once into a per-user cache directory and loaded
through :mod:`ctypes`, giving the ``native`` engine mode.  Everything
here is best-effort: any failure (no compiler, read-only filesystem,
sandboxed exec) simply reports the kernel as unavailable and the NumPy
engine takes over.  No third-party packages are involved.

Environment knobs:

* ``REPRO_NATIVE=0`` — never build or load the kernel.
* ``REPRO_NATIVE_DIR`` — where to cache the shared library (default: a
  per-user directory under the system temp dir).
* ``CC`` — compiler to use (default: first of ``cc``, ``gcc``,
  ``clang`` on PATH).

Concurrent builders are safe: each compiles to a unique temporary file
and publishes it with an atomic :func:`os.replace`.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile

import numpy as np

_SOURCE_PATH = os.path.join(os.path.dirname(__file__), "_native.c")

_lib: ctypes.CDLL | None = None
_load_attempted = False
_load_error: str | None = None


def _build_dir() -> str:
    explicit = os.environ.get("REPRO_NATIVE_DIR")
    if explicit:
        return explicit
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(), f"repro-native-{uid}")


def _compiler() -> str | None:
    explicit = os.environ.get("CC")
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in ("cc", "gcc", "clang"):
        if shutil.which(name):
            return name
    return None


def _compile(source: str, lib_path: str) -> None:
    cc = _compiler()
    if cc is None:
        raise RuntimeError("no C compiler on PATH (set CC or REPRO_NATIVE=0)")
    os.makedirs(os.path.dirname(lib_path), exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        suffix=".so", dir=os.path.dirname(lib_path)
    )
    os.close(fd)
    try:
        proc = subprocess.run(
            [cc, "-O2", "-shared", "-fPIC", "-o", tmp_path, source],
            capture_output=True,
            text=True,
            timeout=120,
        )
        if proc.returncode != 0:
            raise RuntimeError(f"{cc} failed: {proc.stderr.strip()[:500]}")
        os.replace(tmp_path, lib_path)
    finally:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)


def _load() -> ctypes.CDLL | None:
    global _lib, _load_attempted, _load_error
    if _load_attempted:
        return _lib
    _load_attempted = True
    if os.environ.get("REPRO_NATIVE", "1") == "0":
        _load_error = "disabled by REPRO_NATIVE=0"
        return None
    try:
        with open(_SOURCE_PATH, "rb") as fh:
            source_bytes = fh.read()
        digest = hashlib.sha256(source_bytes).hexdigest()[:16]
        lib_path = os.path.join(_build_dir(), f"repro-lru-{digest}.so")
        if not os.path.exists(lib_path):
            _compile(_SOURCE_PATH, lib_path)
        lib = ctypes.CDLL(lib_path)
        fn = lib.repro_lru_depths
        fn.restype = None
        fn.argtypes = [
            ctypes.c_void_p,  # ids
            ctypes.c_int64,  # n
            ctypes.c_int64,  # set_mask
            ctypes.c_int32,  # max_assoc
            ctypes.c_void_p,  # stacks scratch
            ctypes.c_void_p,  # out
        ]
        _lib = lib
    except Exception as exc:  # pragma: no cover - environment dependent
        _load_error = str(exc)
        _lib = None
    return _lib


def available() -> bool:
    """True when the C kernel compiled (or was cached) and loaded."""
    return _load() is not None


def load_error() -> str | None:
    """Why the kernel is unavailable, for diagnostics; None if loaded."""
    _load()
    return _load_error


def pass_depths(
    ids: np.ndarray, n_sets: int, max_assoc: int, out: np.ndarray
) -> None:
    """Run one (stream, set count) pass through the C kernel."""
    lib = _load()
    if lib is None:
        raise RuntimeError(f"native kernel unavailable: {_load_error}")
    ids = np.ascontiguousarray(ids, dtype=np.int64)
    if out.dtype != np.int16 or not out.flags.c_contiguous:
        raise ValueError("out must be a contiguous int16 array")
    scratch = np.full(n_sets * max_assoc, -1, dtype=np.int64)
    lib.repro_lru_depths(
        ids.ctypes.data,
        len(ids),
        n_sets - 1,
        max_assoc,
        scratch.ctypes.data,
        out.ctypes.data,
    )
