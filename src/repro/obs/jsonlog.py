"""Structured JSON logging: one self-describing object per line.

The HTTP front end logs every request as a single JSON line —
``{"ts", "event", "request_id", "method", "path", "status", "dur_ms",
...}`` — so logs grep and pipe into ``jq`` without a parser, and every
line carries the request ID that the server also returns in the
``X-Request-Id`` response header.  Writes take a lock around one
``write`` call so concurrent handler threads never interleave bytes
mid-line.
"""

from __future__ import annotations

import json
import sys
import threading
import time


class JsonLogger:
    """Serialize events as JSON lines to a stream (default stderr)."""

    def __init__(self, stream=None):
        self.stream = stream
        self._lock = threading.Lock()

    def log(self, event: str, **fields) -> dict:
        """Emit one event; returns the record (tests assert on it)."""
        record = {"ts": round(time.time(), 6), "event": event}
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        line = json.dumps(record, default=str, separators=(",", ":"))
        stream = self.stream if self.stream is not None else sys.stderr
        with self._lock:
            try:
                stream.write(line + "\n")
                stream.flush()
            except (OSError, ValueError):
                pass  # a closed log stream must never fail a request
        return record


class NullLogger(JsonLogger):
    """Swallows events; the default when request logging is off."""

    def __init__(self):
        super().__init__(stream=None)

    def log(self, event: str, **fields) -> dict:
        return {}
