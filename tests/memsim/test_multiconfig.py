"""Tests for the multi-configuration sweep helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.memsim.cache import Cache
from repro.memsim.multiconfig import (
    cache_miss_ratio_grid,
    dedupe_consecutive,
    line_ids_for,
)


class TestLineIds:
    def test_line_granularity(self):
        addrs = np.array([0, 4, 16, 20, 32])
        assert line_ids_for(addrs, 4).tolist() == [0, 0, 1, 1, 2]

    def test_one_word_lines(self):
        addrs = np.array([0, 4, 8])
        assert line_ids_for(addrs, 1).tolist() == [0, 1, 2]


class TestDedupe:
    def test_removes_consecutive_repeats_only(self):
        ids = np.array([1, 1, 2, 2, 1])
        (out,) = dedupe_consecutive(ids)
        assert out.tolist() == [1, 2, 1]

    def test_flags_follow(self):
        ids = np.array([1, 1, 2])
        flags = np.array([True, False, True])
        out, out_flags = dedupe_consecutive(ids, flags)
        assert out.tolist() == [1, 2]
        assert out_flags.tolist() == [True, True]

    def test_empty(self):
        (out,) = dedupe_consecutive(np.array([], dtype=np.int64))
        assert len(out) == 0

    def test_empty_with_flags_returns_arrays(self):
        out, flags = dedupe_consecutive(np.array([], dtype=np.int64), [])
        assert isinstance(out, np.ndarray) and len(out) == 0
        assert isinstance(flags, np.ndarray) and len(flags) == 0

    def test_single_reference(self):
        out, flags = dedupe_consecutive(np.array([7]), np.array([True]))
        assert out.tolist() == [7]
        assert flags.tolist() == [True]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=200))
    def test_dedupe_preserves_miss_counts(self, raw):
        """Dropped refs are guaranteed hits, so miss counts match."""
        ids = np.array(raw, dtype=np.int64)
        (deduped,) = dedupe_consecutive(ids)
        for n_sets, assoc in ((1, 2), (4, 1), (2, 4)):
            full = Cache(n_sets * assoc * 16, 4, assoc)
            for i in ids:
                full.access(int(i) * 16)
            dedup_cache = Cache(n_sets * assoc * 16, 4, assoc)
            for i in deduped:
                dedup_cache.access(int(i) * 16)
            assert full.result.misses == dedup_cache.result.misses


class TestGrid:
    def test_grid_covers_requested_space(self):
        rng = np.random.default_rng(2)
        addrs = rng.integers(0, 1 << 16, size=4000) * 4
        capacities = [2048, 4096, 8192]
        lines = [1, 4]
        assocs = [1, 2]
        grid = cache_miss_ratio_grid(addrs, capacities, lines, assocs)
        assert set(grid) == {
            (c, l, a) for c in capacities for l in lines for a in assocs
        }

    def test_grid_matches_reference_simulator(self):
        rng = np.random.default_rng(4)
        addrs = (rng.integers(0, 1 << 12, size=3000) * 4).astype(np.int64)
        grid = cache_miss_ratio_grid(addrs, [1024, 2048], [4], [1, 2])
        for (cap, line, assoc), ratio in grid.items():
            cache = Cache(cap, line, assoc)
            for a in addrs:
                cache.access(int(a))
            assert ratio == pytest.approx(cache.result.miss_ratio)

    def test_miss_ratio_monotone_in_capacity(self):
        rng = np.random.default_rng(9)
        addrs = (rng.integers(0, 1 << 14, size=6000) * 4).astype(np.int64)
        grid = cache_miss_ratio_grid(addrs, [1024, 2048, 4096, 8192], [4], [2])
        ratios = [grid[(c, 4, 2)] for c in (1024, 2048, 4096, 8192)]
        # LRU inclusion at fixed assoc & line: bigger cache never worse.
        assert all(ratios[i] >= ratios[i + 1] for i in range(3))

    def test_warmup_fraction_reduces_cold_misses(self):
        # A stream touching fresh lines then repeating them: with
        # warmup, the repeats dominate and the ratio drops.
        ids = np.concatenate([np.arange(100), np.tile(np.arange(100), 3)])
        addrs = ids * 16
        cold = cache_miss_ratio_grid(addrs, [8192], [4], [1])
        warm = cache_miss_ratio_grid(addrs, [8192], [4], [1], warmup_fraction=0.25)
        assert warm[(8192, 4, 1)] < cold[(8192, 4, 1)]

    def test_empty_stream(self):
        grid = cache_miss_ratio_grid(np.array([], dtype=np.int64), [1024], [4], [1])
        assert grid == {}
