"""Versioned, content-addressed store for measured benefit curves."""

from repro.store.curvestore import (
    MAGIC,
    SCHEMA_VERSION,
    CurveStore,
    StoreKey,
    default_store_root,
)

__all__ = [
    "MAGIC",
    "SCHEMA_VERSION",
    "CurveStore",
    "StoreKey",
    "default_store_root",
]
