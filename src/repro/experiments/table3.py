"""Table 3: the effect of operating systems on CPU stall behaviour.

Three measurements of mpeg_play on the DECstation 3100 configuration
(64-KB off-chip direct-mapped I/D caches, 1-word lines, 64-entry FA
TLB):

* "None"  — user-only simulation (the pixie + cache2000 row): the
  trace filtered to the benchmark task's own references, which is
  exactly what a user-level tracer sees;
* "Ultrix" and "Mach" — full-system Monster measurements.
"""

from __future__ import annotations

from repro.experiments.common import WARMUP_FRACTION, format_table, get_trace
from repro.monitor.monster import COMPONENT_ORDER, Monster
from repro.trace.events import ReferenceTrace

WORKLOAD = "mpeg_play"


def user_only_trace(trace: ReferenceTrace, task_asid: int = 1) -> ReferenceTrace:
    """Filter a trace to the benchmark task's own references.

    This reproduces the blind spot of user-level tracing tools like
    pixie: OS, server and X-server activity disappears, which is the
    error the paper's Table 3 quantifies.
    """
    mask = trace.asids == task_asid
    return ReferenceTrace(
        addresses=trace.addresses[mask],
        physical=trace.physical[mask],
        kinds=trace.kinds[mask],
        asids=trace.asids[mask],
        mapped=trace.mapped[mask],
        kernel=trace.kernel[mask],
        page_faults=0,
        other_cpi=trace.other_cpi,
        workload=trace.workload,
        os_name="none",
    )


def run() -> list[dict]:
    """Return the three Table 3 rows."""
    monster = Monster(warmup_fraction=WARMUP_FRACTION)
    rows = []
    ultrix_trace = get_trace(WORKLOAD, "ultrix")
    for label, trace in (
        ("None (user-only)", user_only_trace(ultrix_trace)),
        ("Ultrix", ultrix_trace),
        ("Mach", get_trace(WORKLOAD, "mach")),
    ):
        report = monster.measure(trace)
        row = {"os": label, "cpi": round(report.cpi, 2)}
        for key in COMPONENT_ORDER:
            row[key] = (
                f"{report.components[key]:.2f} "
                f"({round(100 * report.fractions[key])}%)"
            )
        rows.append(row)
    return rows


def main() -> None:
    """Print Table 3."""
    print("Table 3: Effect of operating systems on CPU stall behaviour "
          f"({WORKLOAD}, DECstation 3100 configuration)")
    print(format_table(run()))


if __name__ == "__main__":
    main()
