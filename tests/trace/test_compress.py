"""Tests for format-3 compressed tracestore entries and compaction."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.core.space import (
    TABLE5_CACHE_ASSOCS,
    TABLE5_CACHE_CAPACITIES,
    TABLE5_CACHE_LINES,
)
from repro.errors import ConfigError
from repro.memsim.multiconfig import cache_miss_ratio_grid_chunked
from repro.trace import tracestore
from repro.trace.generator import generate_trace

REFERENCES = 40_000

TRACE_FIELDS = ("addresses", "physical", "kinds", "asids", "mapped", "kernel")
ALL_FIELDS = TRACE_FIELDS + ("ifetch_physical", "load_physical")


@pytest.fixture
def plane(tmp_path, monkeypatch):
    """An empty, isolated trace cache with zlib compression on."""
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    monkeypatch.setenv("REPRO_TRACE_COMPRESS", "zlib")
    return tmp_path / "traces"


def _publish(workload: str, os_name: str, seed: int = 3):
    trace = generate_trace(workload, os_name, REFERENCES, seed=seed)
    key = tracestore.key_for(workload, os_name, REFERENCES, seed)
    path = tracestore.publish(trace, key)
    return trace, key, path


def _header(path) -> dict:
    return json.loads((path / tracestore.HEADER_NAME).read_text())


class TestFormat3Roundtrip:
    @pytest.mark.parametrize("codec", ["zlib", "lzma"])
    def test_every_field_bit_identical(self, plane, monkeypatch, codec):
        monkeypatch.setenv("REPRO_TRACE_COMPRESS", codec)
        trace, key, path = _publish("mpeg_play", "mach")
        header = _header(path)
        assert header["format"] == tracestore.STORE_FORMAT_COMPRESSED
        assert header["codec"] == codec
        loaded = tracestore.load(key)
        assert loaded is not None
        for name in TRACE_FIELDS:
            original = getattr(trace, name)
            restored = getattr(loaded, name)
            assert restored.dtype == original.dtype, name
            assert np.array_equal(restored, original), name
        assert np.array_equal(loaded.ifetch_physical(), trace.ifetch_physical())
        assert np.array_equal(loaded.load_physical(), trace.load_physical())
        assert loaded.page_faults == trace.page_faults
        assert loaded.other_cpi == trace.other_cpi

    def test_compressed_entry_is_smaller_than_raw(
        self, plane, tmp_path, monkeypatch
    ):
        _, key, path = _publish("mpeg_play", "mach")
        compressed = tracestore.entry_nbytes(path)
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "raw"))
        monkeypatch.delenv("REPRO_TRACE_COMPRESS")
        _, _, raw_path = _publish("mpeg_play", "mach")
        raw = tracestore.entry_nbytes(raw_path)
        assert compressed <= 0.6 * raw

    def test_windowed_reads_bit_identical(self, plane):
        trace, key, _ = _publish("mpeg_play", "ultrix")
        stream = tracestore.open_stream(key)
        assert stream.format == tracestore.STORE_FORMAT_COMPRESSED
        rng = np.random.default_rng(11)
        n = len(trace)
        for _ in range(40):
            start = int(rng.integers(0, n))
            stop = int(rng.integers(start, min(n, start + 5_000) + 1))
            assert np.array_equal(
                stream.read("addresses", start, stop),
                trace.addresses[start:stop],
            )
        # Windows that straddle block boundaries decode exactly.
        block = tracestore.compress_block_references()
        for start in (0, block - 1, block, block + 1, 2 * block - 7):
            stop = min(n, start + 3 * block // 2)
            assert np.array_equal(
                stream.read("physical", start, stop),
                trace.physical[start:stop],
            )

    def test_streamed_generation_matches_batch(self, plane, monkeypatch):
        monkeypatch.setenv("REPRO_STREAM_CHUNK", "4096")
        monkeypatch.setenv("REPRO_TRACE_COMPRESS_BLOCK", "1000")
        key = tracestore.key_for("mpeg_play", "mach", REFERENCES, seed=3)
        tracestore.generate_stream("mpeg_play", "mach", REFERENCES, seed=3)
        assert _header(tracestore.entry_path(key))["format"] == (
            tracestore.STORE_FORMAT_COMPRESSED
        )
        loaded = tracestore.load(key)
        expected = generate_trace("mpeg_play", "mach", REFERENCES, seed=3)
        for name in TRACE_FIELDS:
            assert np.array_equal(
                getattr(loaded, name), getattr(expected, name)
            ), name
        assert np.array_equal(
            loaded.ifetch_physical(), expected.ifetch_physical()
        )
        assert np.array_equal(
            loaded.load_physical(), expected.load_physical()
        )

    def test_mixed_cache_reads_are_format_driven(
        self, plane, monkeypatch
    ):
        # A raw entry published before compression was switched on must
        # keep serving (and vice versa): the knob only shapes writes.
        monkeypatch.setenv("REPRO_TRACE_COMPRESS", "off")
        trace, key, path = _publish("mpeg_play", "mach")
        assert _header(path)["format"] == tracestore.STORE_FORMAT
        monkeypatch.setenv("REPRO_TRACE_COMPRESS", "zlib")
        loaded = tracestore.load(key)
        assert np.array_equal(loaded.addresses, trace.addresses)

    def test_table5_grid_differential(self, plane, tmp_path, monkeypatch):
        """The full Table-5 grid is bit-identical from either format."""
        _, key, _ = _publish("mpeg_play", "mach")
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "raw"))
        monkeypatch.delenv("REPRO_TRACE_COMPRESS")
        _publish("mpeg_play", "mach")

        def grid_from_plane():
            stream = tracestore.open_stream(key)
            count = stream.count("ifetch_physical")
            step = 4_096
            chunks = (
                stream.read("ifetch_physical", s, min(s + step, count))
                for s in range(0, count, step)
            )
            return cache_miss_ratio_grid_chunked(
                chunks,
                count,
                list(TABLE5_CACHE_CAPACITIES),
                list(TABLE5_CACHE_LINES),
                list(TABLE5_CACHE_ASSOCS),
            )

        raw_grid = grid_from_plane()
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(plane))
        monkeypatch.setenv("REPRO_TRACE_COMPRESS", "zlib")
        assert grid_from_plane() == raw_grid


class TestCrashSafety:
    """A compressing writer killed mid-entry never publishes."""

    def _kill_compressing_writer(self, key) -> None:
        # Small blocks so several compressed blocks hit the disk before
        # the SIGKILL lands — the torn state is mid-entry, pre-header.
        script = textwrap.dedent(
            f"""
            import os, signal, sys
            import numpy as np
            sys.path.insert(0, {os.path.join(os.getcwd(), "src")!r})
            os.environ["REPRO_TRACE_COMPRESS"] = "zlib"
            os.environ["REPRO_TRACE_COMPRESS_BLOCK"] = "64"
            from repro.trace import tracestore

            key = tracestore.key_for(
                {key.workload!r}, {key.os_name!r}, {key.references}, {key.seed}
            )
            writer = tracestore.StreamingTraceWriter(
                tracestore.entry_path(key), key, 64
            )
            for _ in range(3):
                writer.append_virtual(
                    np.zeros(64, dtype=np.int64),
                    np.zeros(64, dtype=np.uint8),
                    np.zeros(64, dtype=np.uint8),
                    np.zeros(64, dtype=bool),
                    np.zeros(64, dtype=bool),
                )
            writer.flush()
            os.kill(os.getpid(), signal.SIGKILL)
            """
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            env=dict(os.environ),
            cwd="/root/repo",
        )
        assert result.returncode == -signal.SIGKILL

    def test_incomplete_compressed_entry_regenerated(self, plane):
        key = tracestore.key_for("mpeg_play", "mach", REFERENCES, seed=3)
        self._kill_compressing_writer(key)
        path = tracestore.entry_path(key)
        assert path.is_dir()
        assert not (path / tracestore.HEADER_NAME).exists()
        assert not tracestore.has(key)
        assert tracestore.open_stream(key) is None
        assert not path.exists()

        self._kill_compressing_writer(key)
        recovered = tracestore.get_trace(
            "mpeg_play", "mach", REFERENCES, seed=3
        )
        expected = generate_trace("mpeg_play", "mach", REFERENCES, seed=3)
        for name in TRACE_FIELDS:
            assert np.array_equal(
                getattr(recovered, name), getattr(expected, name)
            ), name
        assert _header(tracestore.entry_path(key))["format"] == (
            tracestore.STORE_FORMAT_COMPRESSED
        )


class TestCompaction:
    def test_recompresses_cold_raw_entries(self, plane, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_COMPRESS", "off")
        trace, key, path = _publish("mpeg_play", "mach")
        os.utime(path, ns=(10, 10))
        before = tracestore.entry_nbytes(path)
        report = tracestore.compact(hot=0, codec="zlib")
        assert report["compacted"] == 1
        assert report["bytes_after"] < report["bytes_before"] == before
        assert _header(path)["format"] == tracestore.STORE_FORMAT_COMPRESSED
        # LRU stamp survives the swap, so compaction never reorders
        # eviction.
        assert path.stat().st_mtime_ns == 10
        loaded = tracestore.load(key)
        for name in TRACE_FIELDS:
            assert np.array_equal(
                getattr(loaded, name), getattr(trace, name)
            ), name

    def test_hot_entries_are_skipped(self, plane, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_COMPRESS", "off")
        _, _, path = _publish("mpeg_play", "mach")
        report = tracestore.compact(hot=1, codec="zlib")
        assert report["compacted"] == 0
        assert report["hot"] == 1
        assert _header(path)["format"] == tracestore.STORE_FORMAT

    def test_already_compacted_entries_are_skipped(self, plane):
        _, _, path = _publish("mpeg_play", "mach")
        os.utime(path, ns=(10, 10))
        report = tracestore.compact(hot=0, codec="zlib")
        assert report["compacted"] == 0
        assert report["skipped"] == 1

    def test_concurrent_reader_survives_the_swap(self, plane, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_COMPRESS", "off")
        trace, key, path = _publish("mpeg_play", "ultrix")
        os.utime(path, ns=(10, 10))
        stream = tracestore.open_stream(key)
        assert np.array_equal(
            stream.read("addresses", 0, 100), trace.addresses[:100]
        )
        assert tracestore.compact(hot=0, codec="zlib")["compacted"] == 1
        # The pre-swap reader holds the old inode: reads stay correct.
        assert np.array_equal(
            stream.read("addresses", 5_000, 6_000),
            trace.addresses[5_000:6_000],
        )
        # A fresh reader sees the compressed replacement, bit-identical.
        fresh = tracestore.open_stream(key)
        assert fresh.format == tracestore.STORE_FORMAT_COMPRESSED
        assert np.array_equal(
            fresh.read("addresses", 5_000, 6_000),
            trace.addresses[5_000:6_000],
        )

    def test_headerless_entries_are_evicted(self, plane):
        _, _, path = _publish("mpeg_play", "mach")
        (path / tracestore.HEADER_NAME).unlink()
        report = tracestore.compact(hot=0)
        assert report["evicted"] == 1
        assert not path.exists()

    def test_disabled_plane_rejected(self, plane, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        with pytest.raises(ConfigError, match="REPRO_TRACE_CACHE"):
            tracestore.compact()

    def test_cli_compact_reports_json(self, plane, capsys):
        _, _, path = _publish("mpeg_play", "mach")
        assert tracestore._main(["compact", "--hot", "0"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["entries"] == 1


class TestKnobs:
    def test_bad_codec_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_COMPRESS", "brotli")
        with pytest.raises(ConfigError, match="REPRO_TRACE_COMPRESS"):
            tracestore.compress_codec()

    def test_off_values_disable(self, monkeypatch):
        for value in ("", "off", "0", "none"):
            monkeypatch.setenv("REPRO_TRACE_COMPRESS", value)
            assert tracestore.compress_codec() is None

    def test_bad_level_rejected(self, monkeypatch):
        for bad in ("fast", "-1", "10"):
            monkeypatch.setenv("REPRO_TRACE_COMPRESS_LEVEL", bad)
            with pytest.raises(
                ConfigError, match="REPRO_TRACE_COMPRESS_LEVEL"
            ):
                tracestore.compress_level()
        monkeypatch.setenv("REPRO_TRACE_COMPRESS_LEVEL", "6")
        assert tracestore.compress_level() == 6

    def test_bad_block_rejected(self, monkeypatch):
        for bad in ("many", "0", "-5"):
            monkeypatch.setenv("REPRO_TRACE_COMPRESS_BLOCK", bad)
            with pytest.raises(
                ConfigError, match="REPRO_TRACE_COMPRESS_BLOCK"
            ):
                tracestore.compress_block_references()
        monkeypatch.setenv("REPRO_TRACE_COMPRESS_BLOCK", "512")
        assert tracestore.compress_block_references() == 512


class TestMetrics:
    def test_plane_counters_track_hits_and_generations(self, plane):
        def total(name):
            current = tracestore.METRICS.snapshot()["counters"]
            return current.get(name, {}).get("total", 0)

        hits0 = total("trace_plane_hits")
        gens0 = total("trace_plane_generations")
        tracestore.get_trace("mpeg_play", "mach", REFERENCES, seed=3)
        assert total("trace_plane_generations") == gens0 + 1
        tracestore.get_trace("mpeg_play", "mach", REFERENCES, seed=3)
        assert total("trace_plane_hits") == hits0 + 1

    def test_compaction_counter(self, plane, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_COMPRESS", "off")
        _, _, path = _publish("mpeg_play", "mach")
        os.utime(path, ns=(10, 10))

        def total():
            counters = tracestore.METRICS.snapshot()["counters"]
            return counters.get("trace_plane_compactions", {}).get("total", 0)

        before = total()
        tracestore.compact(hot=0, codec="zlib")
        assert total() == before + 1
