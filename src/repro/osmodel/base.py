"""Shared OS-model machinery.

Both OS models execute the same user-level workload (the paper runs
identical benchmark binaries under Ultrix and Mach) and the same
service *bodies* (both systems derive them from 4.3 BSD).  What differs
is everything around the body: the invocation path, the address space
the body runs in, how payloads move, and how faults and display
traffic are handled.  Subclasses implement exactly those hooks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.memsim.types import AccessKind
from repro.osmodel.addrspace import AddressSpace, Segment, SegmentAllocator
from repro.osmodel.context import DataPart, GenerationContext
from repro.osmodel.datastate import StackModel, StreamBuffer, WorkingSet
from repro.osmodel.services import ServiceSpec, lookup_service
from repro.units import KB, PAGE_BYTES
from repro.workloads.base import WorkloadSpec

KERNEL_TEXT_BYTES = 512 * KB
SERVER_TEXT_BYTES = 256 * KB
XSERVER_TEXT_BYTES = 192 * KB
STACK_BYTES = 64 * KB

# Body code is not one straight line: service routines loop over their
# work (block lists, copy chunks), so each invocation revisits a
# footprint smaller than its dynamic length.
SERVICE_BODY_REUSE = 4


class OperatingSystemModel(ABC):
    """Base class for the Ultrix and Mach structure models.

    Args:
        workload: the benchmark to run.
        seed: seed for address-space layout (reference-stream randomness
            comes from the generation context instead, so the same
            layout can be replayed under different stream seeds).
    """

    name: str = "abstract"

    def __init__(self, workload: WorkloadSpec, seed: int = 0):
        self.workload = workload
        self.allocator = SegmentAllocator(seed=seed)
        self._layout_rng = np.random.default_rng(seed + 1)
        self.spaces: dict[str, AddressSpace] = {}
        self._next_asid = 1
        self._build_common_spaces()
        self._build_os_spaces()
        self._emitters: dict[str, object] = {}

    # -- construction -------------------------------------------------------

    def _new_space(self, name: str) -> AddressSpace:
        space = AddressSpace(name=name, asid=self._next_asid)
        self._next_asid += 1
        self.spaces[name] = space
        return space

    def _build_common_spaces(self) -> None:
        wl = self.workload
        kernel = AddressSpace(name="kernel", asid=0)
        self.spaces["kernel"] = kernel
        kernel.add_segment(
            self.allocator, "text", KERNEL_TEXT_BYTES, mapped=False, kernel=True
        )
        # k0seg data: buffer cache and most kernel structures (unmapped).
        kernel.add_segment(
            self.allocator, "data_unmapped", 2 * 1024 * KB, mapped=False, kernel=True
        )
        # kseg2 data: page tables, u-areas, IPC state (mapped, expensive
        # TLB misses).
        kernel.add_segment(
            self.allocator, "data_mapped", 512 * KB, mapped=True, kernel=True
        )

        task = self._new_space("task")
        task.add_segment(self.allocator, "text", wl.text_bytes)
        task.add_segment(
            self.allocator, "heap", max(wl.heap_pages * 4, 16) * PAGE_BYTES
        )
        task.add_segment(self.allocator, "stack", STACK_BYTES)
        if wl.stream_bytes:
            task.add_segment(self.allocator, "stream", wl.stream_bytes)

        xserver = self._new_space("xserver")
        xserver.add_segment(self.allocator, "text", XSERVER_TEXT_BYTES)
        xserver.add_segment(self.allocator, "heap", 64 * PAGE_BYTES)
        xserver.add_segment(self.allocator, "stack", STACK_BYTES)
        xserver.add_segment(self.allocator, "framebuffer", 1024 * KB)

    @abstractmethod
    def _build_os_spaces(self) -> None:
        """Create OS-specific address spaces and segments."""

    def _setup_emitters(self, ctx: GenerationContext) -> None:
        wl = self.workload
        task = self.spaces["task"]
        self._emitters = {
            "task_heap": WorkingSet(
                task.segment("heap"), wl.heap_pages, wl.heap_record_words, ctx.rng
            ),
            "task_stack": StackModel(task.segment("stack"), ctx.rng),
            "kernel_meta": WorkingSet(
                self.spaces["kernel"].segment("data_unmapped"), 48, 8, ctx.rng
            ),
            "kernel_mapped": WorkingSet(
                self.spaces["kernel"].segment("data_mapped"),
                self.kernel_mapped_pages(),
                4,
                ctx.rng,
            ),
            "x_heap": WorkingSet(
                self.spaces["xserver"].segment("heap"), 24, 8, ctx.rng
            ),
            "x_stack": StackModel(self.spaces["xserver"].segment("stack"), ctx.rng),
            "x_fb": StreamBuffer(
                self.spaces["xserver"].segment("framebuffer"), 16, ctx.rng
            ),
        }
        if wl.stream_bytes:
            self._emitters["task_stream"] = StreamBuffer(
                task.segment("stream"), wl.stream_run_words, ctx.rng
            )
        self._setup_os_emitters(ctx)

    @abstractmethod
    def _setup_os_emitters(self, ctx: GenerationContext) -> None:
        """Create OS-specific data emitters."""

    @abstractmethod
    def kernel_mapped_pages(self) -> int:
        """Active page pool of mapped kernel data (kseg2 pressure)."""

    # -- generation ---------------------------------------------------------

    def generate(self, ctx: GenerationContext) -> None:
        """Fill the context's builder by running workload cycles."""
        self._setup_emitters(ctx)
        while not ctx.done:
            self.run_cycle(ctx)

    def run_cycle(self, ctx: GenerationContext) -> None:
        """One workload cycle: compute, then services, faults, display."""
        wl = self.workload
        n_compute = max(
            200, int(ctx.rng.normal(wl.compute_instructions, wl.compute_instructions * 0.2))
        )
        self.user_compute(ctx, n_compute)
        mix = wl.normalized_service_mix()
        if mix:
            # Benchmarks run in phases (a copy phase, a compile phase, a
            # read test...), so the dominant service persists across
            # cycles instead of being redrawn per call; this matches the
            # real suites and keeps the active OS code footprint small
            # at any instant.
            phase_service = self._emitters.get("_phase_service")
            if phase_service is None or ctx.rng.random() < 0.12:
                names = [m[0] for m in mix]
                probs = [m[1] for m in mix]
                phase_service = names[int(ctx.rng.choice(len(names), p=probs))]
                self._emitters["_phase_service"] = phase_service
            for _ in range(wl.services_per_cycle):
                self.invoke_service(ctx, lookup_service(phase_service))
        faults = int(ctx.rng.poisson(wl.page_fault_rate))
        for _ in range(faults):
            self.handle_page_fault(ctx)
            ctx.page_faults += 1
        if ctx.rng.random() < wl.x_interaction_rate:
            self.x_interaction(ctx)
        if ctx.rng.random() < 0.05:
            self._emitters["task_heap"].refresh()

    # -- user-level computation (shared between OSes) ------------------------

    def user_compute(self, ctx: GenerationContext, n_instr: int) -> None:
        """Emit one burst of user computation.

        Splits instructions between the workload's hot loops and walks
        over its cold code footprint, with data references drawn from
        the stack, heap working set and stream in workload-specific
        proportions.
        """
        wl = self.workload
        task = self.spaces["task"]
        text = task.segment("text")
        hot_instr = int(n_instr * wl.hot_loop_fraction)
        cold_instr = n_instr - hot_instr

        # The workload's loop nests live at a small number of fixed
        # sites; consecutive visits usually stay at the same site (one
        # phase of the algorithm), which is what lets small caches hold
        # the active nest.
        current_site = self._emitters.setdefault("_hot_site", 0)
        while hot_instr > 0:
            if ctx.rng.random() < 0.15:
                current_site = int(ctx.rng.integers(0, len(wl.hot_loop_bodies)))
            body = wl.hot_loop_bodies[current_site]
            iterations = max(
                1, int(ctx.rng.normal(wl.loop_iterations, wl.loop_iterations * 0.3))
            )
            run = min(body * iterations, hot_instr)
            iterations = max(1, run // body)
            offset = (current_site * 8 * KB) % max(text.size - body * 4, 1)
            code = ctx.loop_code(text, offset, body, iterations)
            self._emit_user_run(ctx, task, text, code)
            hot_instr -= len(code)
            # Loop nests call out to helper routines (pixel conversion,
            # memory management, maths) that live elsewhere in the
            # text: fine-grained alternation between regions at
            # uncorrelated cache colours.  These conflicts are what
            # set associativity absorbs (Figure 10).
            helper = int(ctx.rng.integers(0, 3))
            helper_offset = (128 * KB + helper * 24 * KB) % max(
                text.size - 200 * 4, 1
            )
            helper_code = ctx.loop_code(text, helper_offset, 160, 2)
            helper_run = min(len(helper_code), max(hot_instr, 0))
            if helper_run:
                self._emit_user_run(ctx, task, text, helper_code[:helper_run])
                hot_instr -= helper_run
        self._emitters["_hot_site"] = current_site

        # Cold/warm code (library calls, per-phase framework code) is
        # revisited in the same order every cycle: a cursor marching
        # through the footprint, wrapping at its end.  Each visited
        # window is executed a few times (functions call helpers and
        # loop internally — dynamic/static instruction ratios well
        # above one even outside the hot loops).
        cursor = self._emitters.setdefault("_cold_cursor", 0)
        footprint = max(wl.code_footprint_bytes, 4 * KB)
        window = 700
        reuse = 5
        while cold_instr > 0:
            run = min(window * reuse, cold_instr)
            window_instr = max(run // reuse, 1)
            base_offset = 64 * KB + (cursor % footprint)
            base_offset %= max(text.size - window_instr * 4, 1)
            code = ctx.loop_code(
                text, base_offset, window_instr, max(run // window_instr, 1), 12
            )
            self._emit_user_run(ctx, task, text, code)
            cursor += window_instr * 4
            cold_instr -= len(code)
        self._emitters["_cold_cursor"] = cursor % footprint

    def _emit_user_run(
        self,
        ctx: GenerationContext,
        task: AddressSpace,
        text: Segment,
        code: np.ndarray,
    ) -> None:
        wl = self.workload
        loads, stores = ctx.split_loads_stores(len(code), wl.load_frac, wl.store_frac)
        parts = []
        stack = self._emitters["task_stack"]
        heap = self._emitters["task_heap"]
        stream = self._emitters.get("task_stream")

        def split(count: int) -> tuple[int, int, int]:
            n_stack = int(count * 0.30)
            n_stream = int((count - n_stack) * wl.stream_frac) if stream else 0
            return n_stack, n_stream, count - n_stack - n_stream

        for count, kind in ((loads, AccessKind.LOAD), (stores, AccessKind.STORE)):
            n_stack, n_stream, n_heap = split(count)
            if n_stack:
                parts.append(
                    DataPart(stack.addresses(n_stack), kind, True, False, task.asid)
                )
            if n_stream:
                parts.append(
                    DataPart(
                        stream.addresses(n_stream),
                        kind,
                        True,
                        False,
                        task.asid,
                        run_words=wl.stream_run_words,
                    )
                )
            if n_heap:
                parts.append(
                    DataPart(
                        heap.addresses(n_heap),
                        kind,
                        True,
                        False,
                        task.asid,
                        run_words=wl.heap_record_words,
                    )
                )
        ctx.emit(task, text, code, parts)

    # -- service body (shared) ----------------------------------------------

    def run_service_body(
        self,
        ctx: GenerationContext,
        service: ServiceSpec,
        space: AddressSpace,
        text: Segment,
        metadata: WorkingSet,
        metadata_mapped: bool,
        metadata_kernel: bool,
    ) -> None:
        """Execute a service body in the given space.

        The body revisits its footprint SERVICE_BODY_REUSE times
        (routines loop over block lists and copy chunks) and reads OS
        metadata from the supplied working set.
        """
        footprint = max(service.body_instructions // SERVICE_BODY_REUSE, 64)
        code = ctx.loop_code(text, service.body_offset, footprint, SERVICE_BODY_REUSE)
        parts = [
            DataPart(
                metadata.addresses(service.metadata_refs),
                AccessKind.LOAD,
                metadata_mapped,
                metadata_kernel,
                space.asid if metadata_mapped and not metadata_kernel else 0,
                run_words=4,
            ),
            DataPart(
                metadata.addresses(service.metadata_refs // 3),
                AccessKind.STORE,
                metadata_mapped,
                metadata_kernel,
                space.asid if metadata_mapped and not metadata_kernel else 0,
                run_words=4,
            ),
        ]
        ctx.emit(space, text, code, parts)

    def emit_copy(
        self,
        ctx: GenerationContext,
        space: AddressSpace,
        text: Segment,
        code_offset: int,
        words: int,
        src: DataPart,
        dst: DataPart,
    ) -> None:
        """A copy loop: ~2 instructions, 1 load and 1 store per word.

        The loop code itself is tiny (fits in any cache); the data
        references stream through source and destination, which is what
        loads the D-cache and write buffer during I/O under Ultrix.
        """
        if words <= 0:
            return
        loop_body = 8
        iterations = max(1, (2 * words) // loop_body)
        code = ctx.loop_code(text, code_offset, loop_body, iterations)
        ctx.emit(space, text, code, [src, dst])

    # -- OS-specific hooks ----------------------------------------------------

    @abstractmethod
    def invoke_service(self, ctx: GenerationContext, service: ServiceSpec) -> None:
        """Run one service invocation, including the invocation path."""

    @abstractmethod
    def handle_page_fault(self, ctx: GenerationContext) -> None:
        """Run the page-fault path."""

    @abstractmethod
    def x_interaction(self, ctx: GenerationContext) -> None:
        """Send a display update to the X server and let it run."""
