"""Lightweight span tracing for the query path.

A :class:`Tracer` hands out context-manager spans; closed spans carry
``(trace_id, span_id, parent_id, name, dur_ms, attrs)`` and land in a
bounded ring buffer (and, optionally, a callback — the HTTP layer
feeds them to the structured log).  Parenting is thread-local, so the
engine's ``store.load`` span nests under the request's ``query`` span
on the same handler thread without any explicit context passing.

The default tracer is process-global and always on — recording a span
is two ``perf_counter`` calls and a deque append, cheap enough to keep
in production paths.  ``repro.store`` and ``repro.service.engine``
trace through this module, so a request decomposes into
``http.request → engine.query → store.load → engine.price →
engine.rank_priced`` with per-stage durations.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque

DEFAULT_SPAN_BUFFER = 512

_ids = itertools.count(1)
_id_lock = threading.Lock()


def _next_id() -> int:
    with _id_lock:
        return next(_ids)


class Span:
    """One timed operation; use as a context manager.

    Attributes are free-form JSON-compatible values; ``set`` adds them
    mid-flight (e.g. the number of allocations an answer returned).
    """

    __slots__ = (
        "tracer", "name", "trace_id", "span_id", "parent_id",
        "attrs", "start", "dur_ms", "error",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: int,
        parent_id: int | None,
        attrs: dict,
    ):
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = _next_id()
        self.parent_id = parent_id
        self.attrs = attrs
        self.start = 0.0
        self.dur_ms = 0.0
        self.error: str | None = None

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.start = time.perf_counter()
        self.tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.dur_ms = (time.perf_counter() - self.start) * 1e3
        if exc is not None:
            self.error = f"{type(exc).__name__}: {exc}"
        self.tracer._pop(self)

    def to_dict(self) -> dict:
        out = {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "dur_ms": round(self.dur_ms, 3),
        }
        if self.attrs:
            out["attrs"] = self.attrs
        if self.error is not None:
            out["error"] = self.error
        return out


class Tracer:
    """Produces spans; keeps the last ``buffer_size`` finished ones."""

    def __init__(
        self,
        buffer_size: int = DEFAULT_SPAN_BUFFER,
        on_finish=None,
    ):
        self._local = threading.local()
        self._lock = threading.Lock()
        self._finished: deque[dict] = deque(maxlen=buffer_size)
        self.on_finish = on_finish

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs) -> Span:
        stack = self._stack()
        if stack:
            parent = stack[-1]
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = _next_id(), None
        return Span(self, name, trace_id, parent_id, attrs)

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        record = span.to_dict()
        with self._lock:
            self._finished.append(record)
        if self.on_finish is not None:
            self.on_finish(record)

    def current(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def finished(self) -> list[dict]:
        """Finished spans, oldest first (a snapshot of the ring)."""
        with self._lock:
            return list(self._finished)


_default_tracer = Tracer()
_default_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide tracer the service components record into."""
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide tracer (tests); returns the previous one."""
    global _default_tracer
    with _default_lock:
        previous, _default_tracer = _default_tracer, tracer
    return previous


def trace_span(name: str, **attrs) -> Span:
    """A span on the default tracer — the one-liner call sites use."""
    return _default_tracer.span(name, **attrs)
