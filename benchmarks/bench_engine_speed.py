"""Benchmark: fast stack-distance engine vs the interpreted baseline.

Regenerates the acceptance measurement for the fast engine: the full
Table 5 cache grid on a 700,000-reference instruction stream must be
at least 5x faster than the interpreted (seed) sweep while producing
bit-identical miss ratios.  ``REPRO_SCALE`` is deliberately ignored
here — the contract is defined at full trace length.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.space import (
    TABLE5_CACHE_ASSOCS,
    TABLE5_CACHE_CAPACITIES,
    TABLE5_CACHE_LINES,
)
from repro.memsim.multiconfig import (
    cache_miss_ratio_grid,
    cache_miss_ratio_grid_reference,
)
from repro.trace.generator import generate_trace

BENCH_REFERENCES = 700_000
MIN_SPEEDUP = 5.0


def table5_args(stream):
    return (
        stream,
        list(TABLE5_CACHE_CAPACITIES),
        list(TABLE5_CACHE_LINES),
        list(TABLE5_CACHE_ASSOCS),
    )


def measure_grid_speedup(stream) -> tuple[float, float, bool]:
    """(reference seconds, engine seconds, bit-identical) on one stream."""
    args = table5_args(stream)
    t0 = time.perf_counter()
    ref = cache_miss_ratio_grid_reference(*args)
    ref_s = time.perf_counter() - t0
    # Best of three for the fast path: it is short enough that timer
    # noise and first-touch page faults matter.
    engine_s = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        fast = cache_miss_ratio_grid(*args)
        engine_s = min(engine_s, time.perf_counter() - t0)
    return ref_s, engine_s, fast == ref


def test_engine_speedup_on_700k_trace(show):
    trace = generate_trace("mpeg_play", "mach", BENCH_REFERENCES, seed=1)
    stream = np.asarray(trace.ifetch_physical(), dtype=np.int64)
    ref_s, engine_s, identical = measure_grid_speedup(stream)
    speedup = ref_s / engine_s
    show(
        "Engine speed: Table 5 grid on a 700k-reference ifetch stream",
        f"reference sweep: {ref_s:.2f}s\n"
        f"fast engine:     {engine_s:.3f}s\n"
        f"speedup:         {speedup:.1f}x (bit-identical: {identical})",
    )
    assert identical, "fast engine diverged from the reference sweep"
    assert speedup >= MIN_SPEEDUP, (
        f"engine only {speedup:.1f}x faster (need {MIN_SPEEDUP}x)"
    )
