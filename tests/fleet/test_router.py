"""Router tests: transparent proxying, failover, and the fleet view.

These drive a real :class:`RouterHTTPServer` over loopback against
in-process event-loop shards (threads, not forks — process-level chaos
lives in ``test_failover.py``).  The contract under test is the
ISSUE's: the router speaks the *exact* HTTP surface of a single
server, so every answer through it must be bit-identical to the
engine's — including ETags, the binary protocol, and 304 revalidation
— no matter which replica answers or dies.
"""

import json
import http.client
import threading

import pytest

from repro.errors import RequestError
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.engine import QueryEngine
from repro.service.http import make_server, shutdown_gracefully
from repro.fleet import HealthChecker, Ring, make_router
from repro.fleet.ring import shard_key
from repro.fleet.router import RouterEngine
from repro.service.requests import validate_request
from repro.store import CurveStore

pytestmark = pytest.mark.fleet


@pytest.fixture()
def cluster(store):
    """Three thread-shards + router, torn down in reverse order."""
    shards = []
    for _ in range(3):
        server = make_server(QueryEngine(CurveStore.open(store.root)), port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        shards.append((server, thread))
    topology = {
        f"n{i}": server.server_address[:2]
        for i, (server, _) in enumerate(shards)
    }
    health = HealthChecker(topology)
    health.probe_all()
    router = make_router(topology, replicas=2, health=health)
    router_thread = threading.Thread(target=router.serve_forever, daemon=True)
    router_thread.start()
    host, port = router.server_address[:2]
    yield {
        "router": router,
        "base": f"http://{host}:{port}",
        "shards": shards,
        "topology": topology,
        "health": health,
    }
    shutdown_gracefully(router, deadline_s=2.0)
    router_thread.join(timeout=5.0)
    for server, thread in shards:
        try:
            shutdown_gracefully(server, deadline_s=2.0)
        except OSError:
            pass
        thread.join(timeout=5.0)


def _direct(store):
    return QueryEngine(CurveStore.open(store.root))


POINT = {"type": "point", "os": "mach", "budget": 250_000, "limit": 5}
BATCH = {
    "type": "batch", "os_names": ["mach"],
    "budgets": [150_000.0, 250_000.0, 350_000.0], "limit": 3,
}
PARETO = {"type": "pareto", "os": "mach", "max_budget": 400_000}


class TestTransparentProxy:
    def test_point_batch_pareto_identical_to_engine(self, cluster, store):
        client = ServiceClient(cluster["base"])
        engine = _direct(store)
        for request in (POINT, BATCH, PARETO):
            assert client.query(dict(request)) == engine.query(dict(request))

    def test_binary_batch_identical(self, cluster, store):
        client = ServiceClient(cluster["base"], binary_batch=True)
        assert client.query(dict(BATCH)) == _direct(store).query(dict(BATCH))

    def test_etag_revalidation_at_router_edge(self, cluster):
        client = ServiceClient(cluster["base"])
        first = client.query(dict(POINT))
        again = client.query(dict(POINT))
        assert again == first
        # The repeat was a 304: the router compared the client's
        # validator against the upstream ETag and sent no body.
        assert client.not_modified_hits == 1

    def test_bad_request_is_not_retried_and_keeps_shape(self, cluster):
        client = ServiceClient(cluster["base"], retries=3)
        before = client.attempts_made
        with pytest.raises(ServiceClientError) as excinfo:
            client.query({"type": "point", "os": "mach"})  # no budget
        assert excinfo.value.status == 400
        assert client.attempts_made == before + 1  # definitive, no retry

    def test_router_health_names_nodes(self, cluster):
        host, port = cluster["router"].server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=5)
        conn.request("GET", "/v1/health")
        payload = json.loads(conn.getresponse().read())
        conn.close()
        result = payload["result"]
        assert result["role"] == "router"
        assert result["replicas"] == 2
        assert set(result["nodes"]) == {"n0", "n1", "n2"}
        for info in result["nodes"].values():
            assert info["alive"] is True


class TestFailover:
    def _key_owned_by(self, cluster, label):
        """A point request whose shard's primary owner is ``label``."""
        ring = cluster["router"].engine.ring
        for assoc in (None, 1, 2, 4, 8, 16):
            request = dict(POINT, max_cache_assoc=assoc)
            key = shard_key(validate_request(request))
            if ring.preference(key, 2)[0] == label:
                return request
        pytest.skip(f"no probe key owned by {label}")

    def test_dead_primary_fails_over_with_identical_answer(
        self, cluster, store
    ):
        victim = "n1"
        request = self._key_owned_by(cluster, victim)
        expected = _direct(store).query(dict(request))
        index = int(victim[1:])
        server, thread = cluster["shards"][index]
        shutdown_gracefully(server, deadline_s=2.0)
        thread.join(timeout=5.0)
        client = ServiceClient(cluster["base"])
        assert client.query(dict(request)) == expected
        stats = cluster["router"].engine.stats
        assert stats["failovers"] >= 1

    def test_all_replicas_down_yields_503_with_retry_after(self, cluster):
        for server, thread in cluster["shards"]:
            shutdown_gracefully(server, deadline_s=2.0)
            thread.join(timeout=5.0)
        host, port = cluster["router"].server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=10)
        conn.request(
            "POST", "/v1/query", body=json.dumps(POINT).encode(),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        raw = response.read()
        assert response.status == 503
        assert response.headers.get("Retry-After") is not None
        assert json.loads(raw)["error"]["code"] == "no_shard_available"
        conn.close()

    def test_client_sees_definitive_error_when_fleet_is_gone(self, cluster):
        for server, thread in cluster["shards"]:
            shutdown_gracefully(server, deadline_s=2.0)
            thread.join(timeout=5.0)
        client = ServiceClient(cluster["base"], retries=1, backoff_s=0.01)
        with pytest.raises(ServiceClientError) as excinfo:
            client.query(dict(POINT))
        assert excinfo.value.status == 503
        assert excinfo.value.code == "no_shard_available"


class TestFleetMetrics:
    def test_exact_merge_with_node_labels(self, cluster, store):
        client = ServiceClient(cluster["base"])
        engine = _direct(store)
        for request in (POINT, BATCH, PARETO):
            assert client.query(dict(request)) == engine.query(dict(request))
        host, port = cluster["router"].server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=10)
        conn.request("GET", "/v1/metrics")
        view = json.loads(conn.getresponse().read())["result"]
        conn.close()
        assert set(view["nodes"]) == {"n0", "n1", "n2"}
        assert view["nodes_up"] == ["n0", "n1", "n2"]
        for info in view["nodes"].values():
            assert info["status"] == "up"
        # Exact counter merge: the fleet served exactly the requests
        # the shards served, so summed per-node 200s equal the merged
        # http_responses counter for label "200".
        merged = view["counters"]["http_responses"]["by_label"].get("200", 0)
        summed = sum(
            (info.get("responses") or {}).get("200", 0)
            for info in view["nodes"].values()
        )
        assert merged == summed >= 3
        assert view["router"]["proxy"]["proxied"] >= 3

    def test_down_node_is_labelled_not_dropped(self, cluster):
        server, thread = cluster["shards"][0]
        shutdown_gracefully(server, deadline_s=2.0)
        thread.join(timeout=5.0)
        host, port = cluster["router"].server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=10)
        conn.request("GET", "/v1/metrics")
        view = json.loads(conn.getresponse().read())["result"]
        conn.close()
        assert view["nodes"]["n0"]["status"] == "down"
        assert "error" in view["nodes"]["n0"]
        assert view["nodes_up"] == ["n1", "n2"]


class TestRouterEngineUnit:
    def test_candidates_order_alive_first_but_keep_everyone(self):
        topology = {
            "n0": ("127.0.0.1", 1), "n1": ("127.0.0.1", 2),
            "n2": ("127.0.0.1", 3),
        }
        health = HealthChecker(topology, fail_threshold=1, timeout_s=0.05)
        ring = Ring(topology)
        engine = RouterEngine(
            topology, replicas=3, ring=ring, health=health
        )
        health.probe_all()  # nothing listens: everyone marks down
        key = "mach|assoc=None|t=None"
        candidates = engine.candidates(key)
        # All replicas still present — a stale health view must never
        # remove a node from consideration, only deprioritize it.
        assert sorted(candidates) == ["n0", "n1", "n2"]
        assert candidates == ring.preference(key, 3)[:0] + candidates

    def test_validation_happens_before_any_upstream_call(self):
        engine = RouterEngine({"n0": ("127.0.0.1", 1)})
        with pytest.raises(RequestError):
            engine.try_cached_bytes({"type": "nope"})
        assert engine.stats["upstream_errors"] == 0

    def test_replicas_clamped_to_node_count(self):
        engine = RouterEngine({"n0": ("127.0.0.1", 1)}, replicas=5)
        assert engine.replicas == 1
