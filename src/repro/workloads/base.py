"""Workload parameterization.

A workload spec captures everything the trace generator needs to
synthesize a benchmark's user-level behaviour; the OS model supplies
the service-invocation structure around it.  Parameters deliberately
mirror the quantities the paper identifies as performance-relevant
(Section 4 and Table 2) rather than opaque statistical knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters describing one benchmark's user-level behaviour.

    Attributes:
        name: benchmark name as used in the paper's tables.
        description: one-line description (Table 2).
        load_frac: loads per instruction.
        store_frac: stores per instruction.
        other_cpi: non-memory interlock CPI (FP/integer stalls), the
            "Other" column baseline of Tables 3/4.
        compute_instructions: mean user instructions between OS calls.
        hot_loop_bodies: instruction counts of the workload's hot inner
            loops (e.g. DCT / dither loops for mpeg_play).
        hot_loop_fraction: fraction of compute spent inside hot loops.
        loop_iterations: mean consecutive iterations per loop visit.
        code_footprint_bytes: text walked outside hot loops per cycle
            (libc, xlib, decoder framework...).
        text_bytes: total text segment size.
        heap_pages: mapped data pages in the active heap pool.
        heap_record_words: spatial run length of heap accesses.
        stream_bytes: size of the streamed buffer (file/frame data);
            zero disables streaming.
        stream_run_words: spatial run length of streamed accesses.
        stream_frac: fraction of user data references that stream.
        service_mix: relative weights of OS services invoked.
        payload_bytes: bytes moved per payload-copying service call.
        services_per_cycle: service invocations per compute cycle.
        x_interaction_rate: probability a cycle ends with a display
            update sent to the X server.
        page_fault_rate: page faults per cycle.
    """

    name: str
    description: str
    load_frac: float
    store_frac: float
    other_cpi: float
    compute_instructions: int
    hot_loop_bodies: tuple[int, ...]
    hot_loop_fraction: float
    loop_iterations: int
    code_footprint_bytes: int
    text_bytes: int
    heap_pages: int
    heap_record_words: int
    stream_bytes: int
    stream_run_words: int
    stream_frac: float
    service_mix: dict[str, float] = field(default_factory=dict)
    payload_bytes: int = 4096
    services_per_cycle: int = 1
    x_interaction_rate: float = 0.0
    page_fault_rate: float = 0.02

    def __post_init__(self):
        if not 0 <= self.load_frac < 1 or not 0 <= self.store_frac < 1:
            raise ValueError("load/store fractions must lie in [0, 1)")
        if self.hot_loop_fraction < 0 or self.hot_loop_fraction > 1:
            raise ValueError("hot_loop_fraction must lie in [0, 1]")
        if self.service_mix:
            total = sum(self.service_mix.values())
            if total <= 0:
                raise ValueError("service_mix weights must sum to > 0")

    @property
    def data_frac(self) -> float:
        """Data references per instruction."""
        return self.load_frac + self.store_frac

    def normalized_service_mix(self) -> list[tuple[str, float]]:
        """Service mix as (name, probability) pairs summing to 1."""
        total = sum(self.service_mix.values())
        return [(name, w / total) for name, w in self.service_mix.items()]
