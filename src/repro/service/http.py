"""Stdlib HTTP front end for the allocation query engine.

A thin ``http.server`` layer — no framework — exposing:

* ``GET /v1/health`` — liveness plus store metadata;
* ``POST /v1/query`` — one JSON request (see
  :mod:`repro.service.requests`), answered by the shared
  :class:`~repro.service.engine.QueryEngine`.

Every response is JSON.  Success wraps the engine's answer as
``{"ok": true, "result": ...}``; failures return a structured error
``{"ok": false, "error": {"code", "message"}}`` with a status code
matched to the failure class (400 malformed, 404 unknown path, 413
oversized body, 422 unsatisfiable budget, 503 store problems).  The
server is threading, so a slow batch sweep does not block health
checks.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import BudgetError, RequestError, StaleStoreError, StoreError
from repro.service.engine import QueryEngine

MAX_BODY_BYTES = 4 * 1024 * 1024

_ERROR_STATUS = (
    (RequestError, 400, "invalid_request"),
    (BudgetError, 422, "budget_unsatisfiable"),
    (StaleStoreError, 503, "stale_store"),
    (StoreError, 503, "store_unavailable"),
)


class ServiceHandler(BaseHTTPRequestHandler):
    """Request handler bound to the server's engine."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, code: str, message: str) -> None:
        self._send_json(
            status, {"ok": False, "error": {"code": code, "message": message}}
        )

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def do_GET(self):
        if self.path in ("/v1/health", "/health"):
            engine: QueryEngine = self.server.engine
            store = engine.store
            self._send_json(
                200,
                {
                    "ok": True,
                    "result": {
                        "status": "serving",
                        "store": str(store.root) if store is not None else None,
                        "entries": len(store.entries()) if store is not None else 0,
                        "cache": dict(engine.stats),
                    },
                },
            )
        else:
            self._send_error_json(404, "not_found", f"unknown path {self.path}")

    def do_POST(self):
        if self.path not in ("/v1/query", "/query"):
            self._send_error_json(404, "not_found", f"unknown path {self.path}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_error_json(
                400, "invalid_request", "malformed Content-Length header"
            )
            return
        if length <= 0:
            self._send_error_json(
                400, "invalid_request", "request body is required"
            )
            return
        if length > MAX_BODY_BYTES:
            self._send_error_json(
                413, "payload_too_large",
                f"request body exceeds {MAX_BODY_BYTES} bytes",
            )
            return
        try:
            request = json.loads(self.rfile.read(length))
        except ValueError as exc:
            self._send_error_json(400, "invalid_json", f"body is not JSON: {exc}")
            return
        try:
            result = self.server.engine.query(request)
        except Exception as exc:  # mapped to structured errors below
            for exc_type, status, code in _ERROR_STATUS:
                if isinstance(exc, exc_type):
                    self._send_error_json(status, code, str(exc))
                    return
            self._send_error_json(500, "internal", f"{type(exc).__name__}: {exc}")
            return
        self._send_json(200, {"ok": True, "result": result})


def make_server(
    engine: QueryEngine,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """A ready-to-run server; ``port=0`` binds an ephemeral port."""
    server = ThreadingHTTPServer((host, port), ServiceHandler)
    server.engine = engine
    server.verbose = verbose
    return server


def serve(
    engine: QueryEngine,
    host: str = "127.0.0.1",
    port: int = 8023,
    verbose: bool = True,
) -> None:
    """Serve until interrupted (the CLI's ``serve`` subcommand)."""
    server = make_server(engine, host, port, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro.service listening on http://{bound_host}:{bound_port}/v1/query")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
