"""Measurement through the zero-copy trace plane: identity and reuse."""

from __future__ import annotations

import pytest

from repro.core import measure
from repro.core.measure import (
    _measurement_pool,
    _trace_for,
    _worker_traces,
    measure_workload,
    shutdown_measurement_pool,
    warm_traces,
)
from repro.errors import ConfigError
from repro.trace import tracestore

SMALL_GRID = dict(
    capacities=(4096, 8192),
    lines=(4, 8),
    assocs=(1, 2),
    tlb_entries=(64, 128),
    tlb_assocs=(2, 4),
    tlb_full_max=64,
    references=60_000,
)


@pytest.fixture
def plane(tmp_path, monkeypatch):
    """An isolated, empty trace cache; clears the in-process memo."""
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    _worker_traces.clear()
    yield tmp_path / "traces"
    _worker_traces.clear()


class TestDifferential:
    @pytest.mark.slow
    def test_full_table5_grid_bit_identical(self, tmp_path, monkeypatch):
        """Acceptance: curves through the plane == in-process generation.

        Full Table 5 grid (every capacity, line size, associativity,
        and TLB point) for one workload/OS pair, measured once through
        a cold trace plane and once with the plane disabled.
        """
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
        _worker_traces.clear()
        via_plane = measure_workload(
            "mpeg_play", "mach", references=120_000, use_cache=False, jobs=1
        )
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        _worker_traces.clear()
        direct = measure_workload(
            "mpeg_play", "mach", references=120_000, use_cache=False, jobs=1
        )
        _worker_traces.clear()
        assert via_plane == direct

    def test_small_grid_bit_identical_and_warm_hit(self, plane, monkeypatch):
        via_plane = measure_workload(
            "IOzone", "mach", use_cache=False, jobs=1, **SMALL_GRID
        )
        # Second measurement hits the published entry (memmap load).
        _worker_traces.clear()
        warm = measure_workload(
            "IOzone", "mach", use_cache=False, jobs=1, **SMALL_GRID
        )
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        _worker_traces.clear()
        direct = measure_workload(
            "IOzone", "mach", use_cache=False, jobs=1, **SMALL_GRID
        )
        assert via_plane == direct == warm

    @pytest.mark.concurrency
    def test_parallel_on_warm_cache_bit_identical(self, plane):
        serial = measure_workload(
            "jpeg_play", "ultrix", use_cache=False, jobs=1, **SMALL_GRID
        )
        parallel = measure_workload(
            "jpeg_play", "ultrix", use_cache=False, jobs=2, **SMALL_GRID
        )
        shutdown_measurement_pool()
        assert serial == parallel


class TestWorkerTraceLru:
    """The per-process memo must evict by recency, not insertion order."""

    def test_hit_refreshes_recency(self, plane):
        refs = 5_000
        a = _trace_for("IOzone", "mach", refs, 1)
        b = _trace_for("jpeg_play", "mach", refs, 1)
        # Hit A: it becomes most-recent, so inserting C must evict B.
        assert _trace_for("IOzone", "mach", refs, 1) is a
        _trace_for("mab", "mach", refs, 1)
        assert ("jpeg_play", "mach", refs, 1) not in _worker_traces
        assert _trace_for("IOzone", "mach", refs, 1) is a

    def test_capacity_respected(self, plane):
        refs = 5_000
        for workload in ("IOzone", "jpeg_play", "mab"):
            _trace_for(workload, "ultrix", refs, 1)
        assert len(_worker_traces) <= measure._WORKER_TRACE_CAP


class TestPersistentPool:
    def test_pool_is_reused_for_same_jobs(self, plane):
        try:
            assert _measurement_pool(2) is _measurement_pool(2)
        finally:
            shutdown_measurement_pool()

    def test_env_change_retires_the_pool(self, plane, tmp_path, monkeypatch):
        try:
            first = _measurement_pool(2)
            monkeypatch.setenv(
                "REPRO_TRACE_CACHE", str(tmp_path / "other-traces")
            )
            assert _measurement_pool(2) is not first
        finally:
            shutdown_measurement_pool()

    def test_shutdown_is_idempotent(self):
        shutdown_measurement_pool()
        shutdown_measurement_pool()


class TestWarmTraces:
    def test_warm_then_cached(self, plane):
        first = warm_traces(
            os_names=("mach",),
            workloads=("IOzone", "jpeg_play"),
            references=20_000,
        )
        assert [(w, o) for w, o, _ in first] == [
            ("IOzone", "mach"),
            ("jpeg_play", "mach"),
        ]
        assert all(published for *_pair, published in first)
        again = warm_traces(
            os_names=("mach",),
            workloads=("IOzone", "jpeg_play"),
            references=20_000,
        )
        assert not any(published for *_pair, published in again)

    def test_disabled_plane_refuses(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        with pytest.raises(ConfigError, match="REPRO_TRACE_CACHE"):
            warm_traces(os_names=("mach",), workloads=("IOzone",))
