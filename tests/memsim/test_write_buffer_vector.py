"""Differential tests: vectorized write-buffer path vs scalar spec.

:func:`simulate_write_buffer` routes monotone streams through the
vectorized ``StreamingWriteBuffer`` kernel; these tests assert
bit-identity against :func:`simulate_write_buffer_reference` (the
scalar event loop) across stream shapes, chunkings, ``count_from``
values, and the non-monotone fallback.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.memsim.write_buffer import (
    StreamingWriteBuffer,
    simulate_write_buffer,
    simulate_write_buffer_reference,
)


def _streams():
    rng = np.random.default_rng(17)
    n = 5_000
    return {
        "dense": np.arange(n, dtype=np.int64),
        "sparse": np.cumsum(rng.integers(8, 60, size=n).astype(np.int64)),
        "bursty": np.cumsum(
            np.where(
                rng.random(n) < 0.25,
                rng.integers(0, 3, size=n),
                rng.integers(6, 40, size=n),
            ).astype(np.int64)
        ),
        "mixed": np.cumsum(rng.integers(0, 14, size=n).astype(np.int64)),
        "plateaus": np.repeat(
            np.cumsum(rng.integers(0, 25, size=n // 8).astype(np.int64)), 8
        ),
    }


def _assert_identical(vec, ref):
    assert vec.stores == ref.stores
    assert vec.stall_cycles == ref.stall_cycles


class TestVectorMatchesScalar:
    @pytest.mark.parametrize("name", sorted(_streams()))
    @pytest.mark.parametrize("depth,retire", [(1, 6), (4, 6), (4, 1), (8, 13)])
    def test_stream_shapes(self, name, depth, retire):
        times = _streams()[name]
        vec = simulate_write_buffer(times, depth=depth, retire_cycles=retire)
        ref = simulate_write_buffer_reference(
            times, depth=depth, retire_cycles=retire
        )
        _assert_identical(vec, ref)

    @pytest.mark.parametrize("count_from", [0, 1, 7, 500, 4_999, 5_000])
    def test_count_from(self, count_from):
        times = _streams()["bursty"]
        vec = simulate_write_buffer(times, count_from=count_from)
        ref = simulate_write_buffer_reference(times, count_from=count_from)
        _assert_identical(vec, ref)

    @pytest.mark.parametrize("chunk", [1, 3, 64, 1_000, 4_096])
    def test_chunked_equals_whole(self, chunk):
        """Feeding chunk by chunk carries slip and occupancy exactly."""
        times = _streams()["mixed"]
        sim = StreamingWriteBuffer()
        for i in range(0, times.size, chunk):
            sim.feed(times[i : i + chunk])
        _assert_identical(sim.result(), simulate_write_buffer(times))

    def test_chunked_count_from_is_chunk_relative(self):
        times = _streams()["dense"][:200]
        sim = StreamingWriteBuffer()
        sim.feed(times[:100], count_from=50)
        sim.feed(times[100:])
        ref = simulate_write_buffer_reference(times, count_from=50)
        _assert_identical(sim.result(), ref)

    def test_empty_chunks_are_noops(self):
        times = _streams()["sparse"][:300]
        sim = StreamingWriteBuffer()
        sim.feed(times[:0])
        sim.feed(times[:150])
        sim.feed(times[150:150])
        sim.feed(times[150:])
        _assert_identical(sim.result(), simulate_write_buffer(times))


class TestNonMonotoneFallback:
    def test_out_of_order_stream_matches_scalar(self):
        rng = np.random.default_rng(5)
        times = rng.integers(0, 2_000, size=1_000).astype(np.int64)
        assert not bool((times[1:] >= times[:-1]).all())
        vec = simulate_write_buffer(times)
        ref = simulate_write_buffer_reference(times)
        _assert_identical(vec, ref)

    def test_fallback_is_sticky_across_chunks(self):
        """One out-of-order chunk drops the instance into the scalar
        loop permanently; later monotone chunks stay bit-identical."""
        rng = np.random.default_rng(9)
        mono1 = np.cumsum(rng.integers(0, 10, size=400).astype(np.int64))
        disorder = mono1[-1] + rng.integers(0, 100, size=100).astype(np.int64)
        mono2 = disorder.max() + np.cumsum(
            rng.integers(0, 10, size=400).astype(np.int64)
        )
        sim = StreamingWriteBuffer()
        sim.feed(mono1)
        sim.feed(disorder)
        assert sim._scalar is not None
        sim.feed(mono2)
        whole = np.concatenate([mono1, disorder, mono2])
        _assert_identical(sim.result(), simulate_write_buffer_reference(whole))

    def test_backwards_step_across_chunk_boundary(self):
        """A chunk that is internally monotone but starts before the
        previous chunk's last presented arrival must also fall back."""
        sim = StreamingWriteBuffer(depth=2, retire_cycles=9)
        sim.feed(np.array([0, 1, 2, 50], dtype=np.int64))
        sim.feed(np.array([10, 11, 60], dtype=np.int64))
        whole = np.array([0, 1, 2, 50, 10, 11, 60], dtype=np.int64)
        ref = simulate_write_buffer_reference(whole, depth=2, retire_cycles=9)
        _assert_identical(sim.result(), ref)


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        gaps=st.lists(
            st.integers(min_value=0, max_value=30), min_size=1, max_size=300
        ),
        depth=st.integers(min_value=1, max_value=6),
        retire=st.integers(min_value=1, max_value=12),
        data=st.data(),
    )
    def test_random_monotone_streams(self, gaps, depth, retire, data):
        times = np.cumsum(np.array(gaps, dtype=np.int64))
        count_from = data.draw(
            st.integers(min_value=0, max_value=len(gaps)), label="count_from"
        )
        vec = simulate_write_buffer(
            times, depth=depth, retire_cycles=retire, count_from=count_from
        )
        ref = simulate_write_buffer_reference(
            times, depth=depth, retire_cycles=retire, count_from=count_from
        )
        _assert_identical(vec, ref)

    @settings(max_examples=25, deadline=None)
    @given(
        gaps=st.lists(
            st.integers(min_value=0, max_value=30), min_size=2, max_size=200
        ),
        splits=st.lists(
            st.integers(min_value=1, max_value=199), max_size=4, unique=True
        ),
    )
    def test_random_chunkings(self, gaps, splits):
        times = np.cumsum(np.array(gaps, dtype=np.int64))
        cuts = sorted(s for s in splits if s < times.size)
        sim = StreamingWriteBuffer()
        prev = 0
        for cut in cuts + [int(times.size)]:
            sim.feed(times[prev:cut])
            prev = cut
        _assert_identical(
            sim.result(), simulate_write_buffer_reference(times)
        )
