"""Tests for shared units, helpers and exception types."""

import pytest

from repro import errors, units


class TestUnits:
    def test_constants_consistent(self):
        assert units.PAGE_BYTES == 1 << units.PAGE_SHIFT
        assert units.VPN_BITS + units.PAGE_SHIFT == units.ADDRESS_BITS
        assert units.WORD_BYTES == 4

    @pytest.mark.parametrize("value", [1, 2, 4, 1024, 1 << 20])
    def test_is_pow2_true(self, value):
        assert units.is_pow2(value)

    @pytest.mark.parametrize("value", [0, -4, 3, 6, 1023])
    def test_is_pow2_false(self, value):
        assert not units.is_pow2(value)

    def test_log2i(self):
        assert units.log2i(1) == 0
        assert units.log2i(4096) == 12
        with pytest.raises(ValueError):
            units.log2i(12)


class TestErrors:
    def test_hierarchy(self):
        for exc in (
            errors.ConfigurationError,
            errors.TraceError,
            errors.BudgetError,
        ):
            assert issubclass(exc, errors.ReproError)
            assert issubclass(exc, Exception)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.BudgetError("nothing fits")
