"""Command-line front end: ``python -m repro.fleet``.

Launches a local serving fleet — one stateless router plus N pre-fork
shards over the same store — on one host::

    python -m repro.fleet --store .repro-store --port 8040 \\
        --nodes 3 --replicas 2 [--workers-per-shard 2] \\
        [--faults SPEC] [--quiet]

The router speaks the exact HTTP surface of ``python -m repro.service
serve`` (JSON, batch, and binary-batch ``POST /v1/query``;
``/v1/health``; ``/v1/metrics``), so any existing client points at the
router unchanged.  Node and replica counts also honour the
``REPRO_FLEET_NODES`` / ``REPRO_FLEET_REPLICAS`` environment knobs
(flags win).

Failure semantics: a query is retried on the next replica of its shard
key after a connect error, 429, or any 5xx; only when *every* replica
fails does the client see a 503 (code ``no_shard_available``) carrying
``Retry-After``.  ``--faults`` injects faults inside shard workers —
the router itself stays fault-free.

Exit codes match ``repro.service``: 2 bad request/config, 3 store
problem, 1 other failures.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ConfigError, ReproError, StoreError
from repro.fleet.local import FleetSupervisor, resolve_nodes, resolve_replicas


def _emit_error(code: str, message: str, exit_code: int) -> int:
    json.dump({"ok": False, "error": {"code": code, "message": message}},
              sys.stderr)
    sys.stderr.write("\n")
    return exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="serve a sharded, replicated allocation-query fleet",
    )
    parser.add_argument(
        "--store", required=True,
        help="path to a built curve store (shared by every shard)",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address for router and shards",
    )
    parser.add_argument(
        "--port", type=int, default=8040,
        help="router port (default 8040; shards bind ephemeral ports)",
    )
    parser.add_argument(
        "--nodes", type=int, default=None,
        help="shard count (default: REPRO_FLEET_NODES or 3)",
    )
    parser.add_argument(
        "--replicas", type=int, default=None,
        help="replication factor (default: REPRO_FLEET_REPLICAS or 2)",
    )
    parser.add_argument(
        "--workers-per-shard", type=int, default=1,
        help="pre-fork workers inside each shard (default 1)",
    )
    parser.add_argument(
        "--faults", default=None,
        help="fault-injection spec applied inside shard workers "
             "(see repro.service.faults)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress JSON request logs",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        nodes = resolve_nodes(args.nodes)
        replicas = resolve_replicas(args.replicas)
    except ValueError as exc:
        return _emit_error("invalid_config", str(exc), 2)
    fleet = FleetSupervisor(
        args.store,
        nodes=nodes,
        replicas=replicas,
        host=args.host,
        router_port=args.port,
        workers_per_shard=args.workers_per_shard,
        faults=args.faults,
        verbose=not args.quiet,
    )
    try:
        fleet.serve_until_interrupted()
    except ConfigError as exc:
        return _emit_error("invalid_config", str(exc), 2)
    except StoreError as exc:
        return _emit_error("store_error", str(exc), 3)
    except ReproError as exc:
        return _emit_error("error", str(exc), 1)
    except ValueError as exc:
        return _emit_error("invalid_config", str(exc), 2)
    except OSError as exc:
        return _emit_error("os_error", str(exc), 1)
    return 0


if __name__ == "__main__":
    sys.exit(main())
