"""Table 8 (extension): two-level allocations and the area x power surface.

The paper's Tables 6/7 stop at one cache level because exhaustive
ranking is already pushing ~250k design points.  The greedy
marginal-utility optimizer (:mod:`repro.core.multiopt`) removes that
wall, so this experiment answers the question the paper could not ask:
*given the same measured curves, where does the area go when an
on-chip L2 joins the menu — and what does a power ceiling change?*

Three parts:

* **best** — the greedy best two-level [TLB, L1I, L1D, L2] allocation
  at each of a sweep of area budgets, with the exhaustive optimum on
  the same space as the differential check (``greedy_matches``);
* **power** — the same budgets re-run under a power ceiling (greedy
  only: the joint area x power question is a documented heuristic
  upper bound, see :mod:`repro.core.multiopt`);
* **surface** — the non-dominated cells of the area x power budget
  grid, i.e. the Pareto surface the service's two-level ``pareto``
  query serves.

Like the other experiments, curves come from the service engine when
the store has an entry for this OS, and direct measurement otherwise.
"""

from __future__ import annotations

from repro.core.hierarchy import TwoLevelSpace, build_two_level_space
from repro.core.measure import BenefitCurves
from repro.core.multiopt import GreedyResult, pareto_surface
from repro.errors import BudgetError
from repro.experiments.common import format_table, is_quick
from repro.service.engine import maybe_engine, two_level_entry

DEFAULT_BUDGETS = (100_000.0, 175_000.0, 250_000.0, 400_000.0)
DEFAULT_POWER_BUDGET_MW = 25.0
SURFACE_POWER_BUDGETS_MW = (25.0, 35.0, 50.0, 80.0)


def _space(os_name: str) -> TwoLevelSpace:
    engine = maybe_engine(os_name)
    if engine is not None:
        return engine.two_level_space(os_name)
    return build_two_level_space(BenefitCurves.for_suite(os_name))


def _row(budget: float, result: GreedyResult | None) -> dict:
    if result is None:
        return {
            "budget": int(budget),
            "feasible": False,
            **{k: "-" for k in ("tlb", "l1i", "l1d", "l2")},
            "area_rbe": "-",
            "cpi": "-",
            "power_mw": "-",
        }
    entry = two_level_entry(result)
    return {
        "budget": int(budget),
        "feasible": True,
        **{k: entry[k] for k in ("tlb", "l1i", "l1d", "l2")},
        "area_rbe": round(entry["area_rbe"], 1),
        "cpi": round(entry["cpi"], 4),
        "power_mw": round(entry["power_mw"], 2),
    }


def run(
    os_name: str = "mach",
    budgets: tuple[float, ...] = DEFAULT_BUDGETS,
    power_budget_mw: float = DEFAULT_POWER_BUDGET_MW,
    check_exhaustive: bool | None = None,
) -> dict:
    """Return the three sections as JSON-ready rows.

    ``check_exhaustive`` defaults to on except under ``REPRO_QUICK``
    (the exhaustive pass scans the full cross product once per budget
    — that cost *is* the point of the alloc_scaling bench, but a smoke
    run should not pay it).
    """
    space = _space(os_name)
    if check_exhaustive is None:
        check_exhaustive = not is_quick()

    best_rows = []
    for budget in budgets:
        try:
            greedy = space.best(budget)
        except BudgetError:
            greedy = None
        row = _row(budget, greedy)
        if check_exhaustive:
            row["greedy_matches"] = "-"
            if greedy is not None:
                exact = space.best_exhaustive(budget)
                row["greedy_matches"] = greedy.cpi == exact.cpi
        best_rows.append(row)

    power_rows = []
    for budget in budgets:
        try:
            result = space.best(budget, power_budget_mw=power_budget_mw)
        except BudgetError:
            result = None
        power_rows.append(_row(budget, result))

    cells = pareto_surface(
        list(space.structures),
        list(budgets),
        list(SURFACE_POWER_BUDGETS_MW),
        fixed_cpi=space.fixed_cpi,
    )
    surface_rows = [
        {
            "area_budget": int(cell.area_budget),
            "power_budget_mw": cell.power_budget,
            **_row(cell.area_budget, cell.result),
        }
        for cell in cells
    ]
    for row in surface_rows:
        row.pop("budget", None)
        row.pop("feasible", None)

    return {
        "os": os_name,
        "space_points": space.size,
        "power_budget_mw": power_budget_mw,
        "best": best_rows,
        "power": power_rows,
        "surface": surface_rows,
    }


def main() -> None:
    """Print the two-level extension tables."""
    result = run()
    print(
        f"Table 8 (extension): two-level allocations over "
        f"{result['space_points']:,} design points (suite under Mach)"
    )
    print("\nArea budget only:")
    print(format_table(result["best"]))
    print(f"\nWith a {result['power_budget_mw']} mW power ceiling:")
    print(format_table(result["power"]))
    print("\nArea x power Pareto surface (non-dominated cells):")
    print(format_table(result["surface"]))


if __name__ == "__main__":
    main()
