"""Tests for the workload parameterizations."""

import pytest

from repro.workloads.base import WorkloadSpec
from repro.workloads.registry import WORKLOADS, get_workload, workload_names


class TestRegistry:
    def test_six_paper_benchmarks(self):
        assert set(workload_names()) == {
            "mpeg_play", "mab", "jpeg_play", "ousterhout", "IOzone", "video_play",
        }
        assert set(WORKLOADS) == set(workload_names())

    def test_lookup(self):
        assert get_workload("mpeg_play").name == "mpeg_play"
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("doom")

    def test_descriptions_present(self):
        for spec in WORKLOADS.values():
            assert spec.description


class TestSpecValidation:
    def _base_kwargs(self, **overrides):
        kwargs = dict(
            name="x", description="d", load_frac=0.2, store_frac=0.1,
            other_cpi=0.1, compute_instructions=1000, hot_loop_bodies=(100,),
            hot_loop_fraction=0.5, loop_iterations=10,
            code_footprint_bytes=8192, text_bytes=65536, heap_pages=8,
            heap_record_words=4, stream_bytes=0, stream_run_words=8,
            stream_frac=0.0,
        )
        kwargs.update(overrides)
        return kwargs

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            WorkloadSpec(**self._base_kwargs(load_frac=1.5))
        with pytest.raises(ValueError):
            WorkloadSpec(**self._base_kwargs(hot_loop_fraction=1.1))

    def test_service_mix_weights(self):
        with pytest.raises(ValueError):
            WorkloadSpec(**self._base_kwargs(service_mix={"read": 0.0}))

    def test_normalized_mix_sums_to_one(self):
        spec = WorkloadSpec(**self._base_kwargs(service_mix={"read": 2, "write": 2}))
        mix = spec.normalized_service_mix()
        assert sum(p for _, p in mix) == pytest.approx(1.0)
        assert dict(mix)["read"] == pytest.approx(0.5)

    def test_data_frac(self):
        spec = WorkloadSpec(**self._base_kwargs())
        assert spec.data_frac == pytest.approx(0.3)


class TestPaperDerivedStructure:
    def test_iozone_is_io_bound(self):
        iozone = get_workload("IOzone")
        assert set(iozone.service_mix) == {"read", "write"}
        assert iozone.stream_bytes >= 1 << 20
        assert iozone.x_interaction_rate == 0.0

    def test_ousterhout_has_highest_service_density(self):
        oust = get_workload("ousterhout")
        densities = {
            name: spec.services_per_cycle / spec.compute_instructions
            for name, spec in WORKLOADS.items()
        }
        assert densities["ousterhout"] == max(densities.values())

    def test_video_play_streams_most(self):
        assert get_workload("video_play").stream_bytes == max(
            spec.stream_bytes for spec in WORKLOADS.values()
        )

    def test_display_workloads_talk_to_x(self):
        for name in ("mpeg_play", "video_play", "jpeg_play"):
            assert get_workload(name).x_interaction_rate > 0

    def test_jpeg_play_most_compute_bound(self):
        jpeg = get_workload("jpeg_play")
        assert jpeg.hot_loop_fraction == max(
            spec.hot_loop_fraction for spec in WORKLOADS.values()
        )

    def test_all_services_exist_in_catalog(self):
        from repro.osmodel.services import SERVICE_CATALOG

        for spec in WORKLOADS.values():
            assert set(spec.service_mix) <= set(SERVICE_CATALOG)
