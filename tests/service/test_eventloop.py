"""Event-loop server: overload bursts, pipelining, and buffer bounds.

The contract tests in ``test_http_cli.py`` already pin the HTTP
surface (routes, errors, ETags, drain) — this file exercises the
behaviors that only exist because the server is a non-blocking loop:

* an **open-loop burst past saturation** answers every request with
  either the bit-identical 200 body or a structured 429 carrying
  ``Retry-After`` — no third outcome, no torn connections;
* **pipelined** requests on one connection come back in order;
* oversized request heads are cut off with a **431** before they can
  grow the read buffer without bound;
* a client that stops reading has its pipelined work **paused** (the
  write-buffer cap), then served completely once it drains;
* idle connections are reaped after ``request_timeout``, and the
  :class:`ServiceClient` transparently replays an idempotent GET when
  its kept-alive socket was reaped between requests.
"""

from __future__ import annotations

import json
import socket
import sys
import threading
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))
import loadgen  # noqa: E402

from repro.core.measure import BenefitCurves, measure_workload  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.engine import QueryEngine  # noqa: E402
from repro.service.http import (  # noqa: E402
    MAX_HEADER_BYTES,
    make_server,
    shutdown_gracefully,
)
from repro.store import CurveStore, StoreKey  # noqa: E402

TEST_REFERENCES = 60_000


@pytest.fixture(scope="module")
def curves():
    single = measure_workload("ousterhout", "mach", references=TEST_REFERENCES)
    return BenefitCurves(os_name="mach", per_workload=[single])


@pytest.fixture(scope="module")
def store(tmp_path_factory, curves):
    store = CurveStore(tmp_path_factory.mktemp("loop-store") / "store")
    store.build(curves, StoreKey.current("mach", suite=("ousterhout",)))
    return store


def _serve(engine, **kwargs):
    server = make_server(engine, port=0, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def _stop(server, thread):
    shutdown_gracefully(server, deadline_s=5.0)
    thread.join(timeout=10.0)


def _base(server) -> str:
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


def _budget_payloads(engine, count: int, seed: int) -> list[bytes]:
    import numpy as np

    priced = engine.priced_space("mach")
    rng = np.random.default_rng(seed)
    budgets = rng.uniform(
        priced.min_area() * 1.05, float(priced.area_grid.max()), count
    )
    return [
        json.dumps(
            {"type": "point", "os": "mach", "budget": float(b), "limit": 3}
        ).encode()
        for b in budgets
    ]


def _read_responses(sock: socket.socket, n: int, deadline_s: float = 30.0):
    """Read exactly n HTTP responses off a blocking socket; returns
    [(status, body_bytes)]."""
    sock.settimeout(deadline_s)
    buf = bytearray()
    out = []
    while len(out) < n:
        head_end = buf.find(b"\r\n\r\n")
        if head_end < 0:
            chunk = sock.recv(262144)
            if not chunk:
                raise AssertionError(
                    f"connection closed after {len(out)}/{n} responses"
                )
            buf += chunk
            continue
        head = bytes(buf[:head_end]).decode("latin-1")
        del buf[:head_end + 4]
        status = int(head.split("\r\n")[0].split()[1])
        length = 0
        for line in head.split("\r\n")[1:]:
            if line.lower().startswith("content-length:"):
                length = int(line.split(":", 1)[1])
        while len(buf) < length:
            chunk = sock.recv(262144)
            if not chunk:
                raise AssertionError("connection closed mid-body")
            buf += chunk
        out.append((status, bytes(buf[:length])))
        del buf[:length]
    return out


class TestOverloadBurst:
    def test_burst_past_saturation_bit_identical_or_shed(self, store):
        """2x-saturation open-loop burst of cache-busting queries:
        every answer is the exact 200 bytes or a structured 429."""
        engine = QueryEngine(store, result_cache_size=8)
        engine.priced_space("mach")
        payloads = _budget_payloads(engine, 1200, seed=91)
        server, thread = _serve(engine, max_inflight=4)
        try:
            capacity = loadgen.run_load(
                _base(server), payloads[:200], rate=None, total=200,
                connections=8,
            )["achieved_qps"]
            burst = loadgen.run_load(
                _base(server), payloads[200:],
                rate=max(100.0, capacity * 2.0), duration_s=1.5,
                connections=32, pipeline_depth=4, collect_bodies=True,
            )
        finally:
            _stop(server, thread)

        assert burst["completed"] > 0
        assert burst["dropped_conns"] == 0
        statuses = {int(k) for k in burst["statuses"]}
        assert statuses <= {200, 429}, f"unexpected statuses: {statuses}"
        assert burst["shed_429"] > 0, "overload never engaged shedding"
        # Every 429 carries Retry-After.
        assert burst["retry_after_seen"] == burst["shed_429"]

        # Differential: a fresh engine over the same store produces the
        # canonical body bytes for each request; every served 200 must
        # match them bit-for-bit, overload or not.
        reference = QueryEngine(store)
        burst_payloads = payloads[200:]
        for payload_idx, status, body in burst["bodies"]:
            request_bytes = burst_payloads[payload_idx % len(burst_payloads)]
            if status == 200:
                want, _etag = reference.query_bytes(
                    json.loads(request_bytes)
                )
                assert body == want
            else:
                shed = json.loads(body)
                assert shed["ok"] is False
                assert shed["error"]["code"] == "overloaded"
                assert shed["request_id"]


class TestPipelining:
    def test_pipelined_requests_answered_in_order(self, store):
        engine = QueryEngine(store)
        engine.priced_space("mach")
        payloads = _budget_payloads(engine, 6, seed=13)
        server, thread = _serve(engine)
        try:
            host, port = server.server_address[:2]
            wire = b"".join(
                loadgen.build_post("/v1/query", p) for p in payloads
            )
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(wire)
                responses = _read_responses(sock, len(payloads))
        finally:
            _stop(server, thread)

        reference = QueryEngine(store)
        for (status, body), payload in zip(responses, payloads):
            assert status == 200
            assert body == reference.query_bytes(json.loads(payload))[0]

    def test_stalled_reader_is_paused_then_served(self, store):
        """Pipelining big responses into a non-reading client must cap
        the write buffer (pause, don't balloon), then finish cleanly
        once the client drains."""
        engine = QueryEngine(store)
        priced = engine.priced_space("mach")
        budgets = [float(b) for b in priced.area_grid[:400]]
        body = json.dumps(
            {"type": "batch", "os": "mach", "budgets": budgets, "limit": 5}
        ).encode()
        count = 24
        server, thread = _serve(engine, max_write_buffer=256 * 1024)
        try:
            host, port = server.server_address[:2]
            with socket.create_connection((host, port), timeout=30) as sock:
                sock.sendall(
                    loadgen.build_post("/v1/query", body) * count
                )
                time.sleep(0.6)  # let the server hit the buffer cap
                responses = _read_responses(sock, count)
        finally:
            _stop(server, thread)
        assert [status for status, _ in responses] == [200] * count
        first = responses[0][1]
        assert all(body == first for _, body in responses)


class TestReadBounds:
    def test_oversized_header_rejected_431(self, store):
        engine = QueryEngine(store)
        server, thread = _serve(engine)
        try:
            host, port = server.server_address[:2]
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(b"GET /v1/health HTTP/1.1\r\nHost: x\r\n")
                filler = b"X-Filler: " + b"y" * 4096 + b"\r\n"
                sent = 0
                try:
                    while sent <= MAX_HEADER_BYTES + len(filler):
                        sock.sendall(filler)
                        sent += len(filler)
                except (BrokenPipeError, ConnectionResetError):
                    pass  # server may cut us off mid-send; fine
                status, body = _read_responses(sock, 1)[0]
                assert status == 431
                payload = json.loads(body)
                assert payload["ok"] is False
                # And the connection is closed behind the 431.
                assert sock.recv(4096) == b""
        finally:
            _stop(server, thread)

    def test_idle_connection_reaped_after_timeout(self, store):
        engine = QueryEngine(store)
        server, thread = _serve(engine, request_timeout=0.4)
        try:
            host, port = server.server_address[:2]
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.settimeout(10)
                deadline = time.monotonic() + 5.0
                while True:  # sweep cadence is 0.25s; poll until reaped
                    try:
                        if sock.recv(4096) == b"":
                            break
                    except socket.timeout:
                        pass
                    assert time.monotonic() < deadline, "never reaped"
        finally:
            _stop(server, thread)


class TestClientKeepAlive:
    def test_stale_kept_alive_socket_replayed_transparently(self, store):
        engine = QueryEngine(store)
        server, thread = _serve(engine, request_timeout=0.4)
        client = ServiceClient(_base(server))
        try:
            assert client.health()["status"] == "serving"
            assert client.stale_retries == 0
            time.sleep(1.0)  # idle past request_timeout: socket reaped
            assert client.health()["status"] == "serving"
            assert client.stale_retries == 1
            # The replay is invisible to the retry budget.
            assert client.retries_used == 0
        finally:
            client.close()
            _stop(server, thread)

    def test_keep_alive_reuses_one_connection(self, store):
        engine = QueryEngine(store)
        engine.priced_space("mach")
        server, thread = _serve(engine)
        client = ServiceClient(_base(server))
        try:
            client.health()
            first_conn = client._conn
            assert first_conn is not None
            for _ in range(5):
                client.health()
            client.query(
                {"type": "point", "os": "mach", "budget": 250_000.0}
            )
            # Same kept-alive HTTPConnection object across all of it.
            assert client._conn is first_conn
            assert client.stale_retries == 0
            assert client.attempts_made == 7
        finally:
            client.close()
            _stop(server, thread)
