"""Numpy-backed memory-reference traces.

A trace is a sequence of references, each with a byte address, an
access kind (ifetch / load / store), the address-space identifier of
the running context, and two flags: whether the reference is *mapped*
(translated through the TLB — unmapped MIPS k0seg kernel references
bypass it) and whether a mapped reference belongs to *kernel* address
space (which changes its TLB miss cost).

Traces also carry the bookkeeping the Monster-style monitor needs to
produce full CPI numbers: the number of page faults that occurred
while generating the trace (the "Other" TLB service component of
Figure 7) and the workload's non-memory interlock CPI (the "Other"
column of Tables 3/4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import TraceError
from repro.memsim.types import AccessKind
from repro.units import PAGE_BYTES, PAGE_SHIFT

PHYSICAL_FRAME_SPACE = 1 << 20
"""Number of physical frames the mapper draws from (4 GB of frames —
large enough that frame collisions cannot occur for our traces)."""

FRAME_CHUNK_MEAN_PAGES = 6
"""Mean contiguous-frame chunk handed out by the modelled allocator
(geometric); smaller values mean a more fragmented free list and more
cache-colour conflicts between regions."""


def frames_for_pages(
    unique_pages: np.ndarray, page_mapped: np.ndarray, seed: int = 0
) -> np.ndarray:
    """Assign a physical frame to every page of a sorted unique-page set.

    This is the core of :func:`assign_physical_frames`, factored out so
    the streaming generator can collect the page set incrementally (one
    chunk at a time) and still draw *bit-identical* frames: the result
    depends only on the sorted unique pages, their first-occurrence
    mapped flags and the seed — never on how many references touched
    each page or in what order.
    """
    unique_pages = np.asarray(unique_pages, dtype=np.int64)
    page_mapped = np.asarray(page_mapped, dtype=bool)
    rng = np.random.default_rng(seed)
    frames = np.empty(len(unique_pages), dtype=np.int64)
    used_bases: set[int] = set()

    def place_run(start: int, stop: int) -> None:
        """Give pages [start, stop) consecutive frames at a random base."""
        run_len = stop - start
        while True:
            base = int(rng.integers(0, PHYSICAL_FRAME_SPACE - run_len))
            # Coarse overlap check at 256-frame granularity keeps runs
            # disjoint without tracking every frame.
            blocks = range(base >> 8, ((base + run_len) >> 8) + 1)
            if all(b not in used_bases for b in blocks):
                used_bases.update(blocks)
                break
        frames[start:stop] = base + np.arange(run_len)

    run_start = 0
    for i in range(1, len(unique_pages) + 1):
        is_break = (
            i == len(unique_pages)
            or unique_pages[i] != unique_pages[i - 1] + 1
            or page_mapped[i] != page_mapped[i - 1]
        )
        if not is_break:
            continue
        run_len = i - run_start
        if not page_mapped[run_start]:
            # k0seg: physical address == virtual address.
            frames[run_start:i] = unique_pages[run_start:i]
            run_start = i
            continue
        # The free list is fragmented on a live system: long virtual
        # runs are served in chunks of a few contiguous frames each,
        # so distinct regions do collide in cache-colour space — the
        # conflicts that set associativity then absorbs (Figure 10).
        chunk_start = run_start
        while chunk_start < i:
            chunk_len = min(int(rng.geometric(1.0 / FRAME_CHUNK_MEAN_PAGES)), i - chunk_start)
            place_run(chunk_start, chunk_start + chunk_len)
            chunk_start += chunk_len
        run_start = i
    return frames


def assign_physical_frames(
    addresses: np.ndarray, seed: int = 0, mapped: np.ndarray | None = None
) -> np.ndarray:
    """Map virtual byte addresses to physical byte addresses.

    Two regimes, as on the modelled MIPS machine:

    * Unmapped (k0seg) pages are identity-mapped — kernel text and the
      buffer cache sit at fixed, contiguous physical addresses, so the
      kernel's cache-colour layout is under the kernel's control.
    * Mapped pages model a mid-90s allocator without cache colouring:
      runs of consecutive virtual pages (text segments, buffers) get
      runs of consecutive physical frames at a random base, so
      sequential code never conflicts with itself, while unrelated
      segments land at uncorrelated colours.

    Page-offset bits are preserved.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    pages = addresses >> PAGE_SHIFT
    unique_pages, first_index, inverse = np.unique(
        pages, return_index=True, return_inverse=True
    )
    if mapped is None:
        page_mapped = np.ones(len(unique_pages), dtype=bool)
    else:
        page_mapped = np.asarray(mapped, dtype=bool)[first_index]
    frames = frames_for_pages(unique_pages, page_mapped, seed=seed)
    phys_pages = frames[inverse]
    return (phys_pages << PAGE_SHIFT) | (addresses & (PAGE_BYTES - 1))


class PageFrameTable:
    """Incrementally collected virtual-page → physical-frame mapping.

    The streaming generator cannot see all addresses at once, so it
    observes virtual pages chunk by chunk, then finalizes a frame
    assignment that is bit-identical to the batch path: the per-page
    mapped flag recorded is the flag of the page's *first occurrence*
    in stream order (matching ``np.unique(..., return_index=True)``),
    and :func:`frames_for_pages` depends only on the sorted unique
    page set, those flags, and the seed.
    """

    def __init__(self) -> None:
        self._page_mapped: dict[int, bool] = {}
        self._frames: dict[int, int] | None = None

    def observe(self, addresses: np.ndarray, mapped: np.ndarray) -> None:
        """Record the pages touched by one chunk (first flag wins)."""
        if self._frames is not None:
            raise TraceError("PageFrameTable already finalized")
        pages = np.asarray(addresses, dtype=np.int64) >> PAGE_SHIFT
        unique, first_index = np.unique(pages, return_index=True)
        flags = np.asarray(mapped, dtype=bool)[first_index]
        table = self._page_mapped
        for page, flag in zip(unique.tolist(), flags.tolist()):
            if page not in table:
                table[page] = flag

    def finalize(self, seed: int) -> None:
        """Assign frames; afterwards :meth:`physical_for` is usable."""
        unique_pages = np.fromiter(
            sorted(self._page_mapped), dtype=np.int64, count=len(self._page_mapped)
        )
        page_mapped = np.fromiter(
            (self._page_mapped[p] for p in unique_pages.tolist()),
            dtype=bool,
            count=len(unique_pages),
        )
        frames = frames_for_pages(unique_pages, page_mapped, seed=seed)
        self._lookup_pages = unique_pages
        self._lookup_frames = frames
        self._frames = {}

    def physical_for(self, addresses: np.ndarray) -> np.ndarray:
        """Physical byte addresses for one chunk of virtual addresses."""
        if self._frames is None:
            raise TraceError("PageFrameTable not finalized")
        addresses = np.asarray(addresses, dtype=np.int64)
        pages = addresses >> PAGE_SHIFT
        idx = np.searchsorted(self._lookup_pages, pages)
        phys_pages = self._lookup_frames[idx]
        return (phys_pages << PAGE_SHIFT) | (addresses & (PAGE_BYTES - 1))


@dataclass
class ReferenceTrace:
    """One synthetic workload execution as parallel numpy arrays.

    Attributes:
        addresses: virtual byte addresses (int64) — what the TLB sees.
        physical: physical byte addresses (int64) — what the
            physically indexed caches see.  Pages are scattered in
            physical memory by a seeded permutation, modelling a
            non-page-colouring allocator like the DECstation's.
        kinds: :class:`AccessKind` values (uint8).
        asids: address-space identifiers (uint8).
        mapped: True where the reference is translated by the TLB.
        kernel: True where a mapped reference is to kernel space.
        page_faults: page faults taken during generation.
        other_cpi: non-memory stall CPI (FP/integer interlocks).
        workload: workload name, e.g. "mpeg_play".
        os_name: operating system name, "ultrix" or "mach".
    """

    addresses: np.ndarray
    physical: np.ndarray
    kinds: np.ndarray
    asids: np.ndarray
    mapped: np.ndarray
    kernel: np.ndarray
    page_faults: int = 0
    other_cpi: float = 0.0
    workload: str = ""
    os_name: str = ""

    def __post_init__(self):
        n = len(self.addresses)
        for name in ("physical", "kinds", "asids", "mapped", "kernel"):
            if len(getattr(self, name)) != n:
                raise TraceError(f"trace field {name} length mismatch")
        # Per-instance cache of derived streams (physical ifetch/load
        # addresses): the hot measurement units all consume them, so
        # they are materialized once per trace, not once per unit.
        # Trace arrays are never mutated after construction, and the
        # trace cache pre-seeds this dict with memmapped streams.
        self._derived: dict[str, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self.addresses)

    @property
    def instructions(self) -> int:
        """Instruction count (= number of ifetch references)."""
        return int(np.count_nonzero(self.kinds == AccessKind.IFETCH))

    @property
    def loads(self) -> int:
        """Number of load references."""
        return int(np.count_nonzero(self.kinds == AccessKind.LOAD))

    @property
    def stores(self) -> int:
        """Number of store references."""
        return int(np.count_nonzero(self.kinds == AccessKind.STORE))

    @property
    def vpns(self) -> np.ndarray:
        """Virtual page number of every reference."""
        return self.addresses >> PAGE_SHIFT

    def ifetch_addresses(self) -> np.ndarray:
        """Virtual addresses of instruction fetches, in order."""
        return self.addresses[self.kinds == AccessKind.IFETCH]

    def ifetch_physical(self) -> np.ndarray:
        """Physical addresses of instruction fetches (cache studies)."""
        stream = self._derived.get("ifetch_physical")
        if stream is None:
            stream = self.physical[self.kinds == AccessKind.IFETCH]
            self._derived["ifetch_physical"] = stream
        return stream

    def load_addresses(self) -> np.ndarray:
        """Virtual addresses of loads, in order."""
        return self.addresses[self.kinds == AccessKind.LOAD]

    def load_physical(self) -> np.ndarray:
        """Physical addresses of loads (cache studies)."""
        stream = self._derived.get("load_physical")
        if stream is None:
            stream = self.physical[self.kinds == AccessKind.LOAD]
            self._derived["load_physical"] = stream
        return stream

    def data_addresses(self) -> np.ndarray:
        """Virtual addresses of loads and stores, in order."""
        return self.addresses[self.kinds != AccessKind.IFETCH]

    def data_physical(self) -> np.ndarray:
        """Physical addresses of loads and stores, in order."""
        return self.physical[self.kinds != AccessKind.IFETCH]

    def mapped_view(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(vpn, asid, kernel) arrays for TLB-translated references."""
        mask = self.mapped
        return (
            self.addresses[mask] >> PAGE_SHIFT,
            self.asids[mask],
            self.kernel[mask],
        )

    def slice(self, start: int, stop: int) -> "ReferenceTrace":
        """A contiguous sub-trace (used by the sampling machinery)."""
        return ReferenceTrace(
            addresses=self.addresses[start:stop],
            physical=self.physical[start:stop],
            kinds=self.kinds[start:stop],
            asids=self.asids[start:stop],
            mapped=self.mapped[start:stop],
            kernel=self.kernel[start:stop],
            page_faults=self.page_faults,
            other_cpi=self.other_cpi,
            workload=self.workload,
            os_name=self.os_name,
        )

    def save(self, path: str | Path) -> None:
        """Persist the trace as a compressed .npz file."""
        np.savez_compressed(
            Path(path),
            addresses=self.addresses,
            physical=self.physical,
            kinds=self.kinds,
            asids=self.asids,
            mapped=self.mapped,
            kernel=self.kernel,
            meta=np.array(
                [self.page_faults, self.other_cpi], dtype=np.float64
            ),
            labels=np.array([self.workload, self.os_name]),
        )

    @classmethod
    def load(cls, path: str | Path) -> "ReferenceTrace":
        """Load a trace previously written by :meth:`save`."""
        with np.load(Path(path), allow_pickle=False) as data:
            meta = data["meta"]
            labels = data["labels"]
            return cls(
                addresses=data["addresses"],
                physical=data["physical"],
                kinds=data["kinds"],
                asids=data["asids"],
                mapped=data["mapped"],
                kernel=data["kernel"],
                page_faults=int(meta[0]),
                other_cpi=float(meta[1]),
                workload=str(labels[0]),
                os_name=str(labels[1]),
            )


@dataclass
class TraceChunkBuilder:
    """Accumulates reference chunks efficiently during generation.

    The generator produces runs of sequential fetches and batched data
    references as small numpy arrays; this builder concatenates them
    once at the end instead of growing arrays incrementally.
    """

    addresses: list[np.ndarray] = field(default_factory=list)
    kinds: list[np.ndarray] = field(default_factory=list)
    asids: list[np.ndarray] = field(default_factory=list)
    mapped: list[np.ndarray] = field(default_factory=list)
    kernel: list[np.ndarray] = field(default_factory=list)
    count: int = 0

    def append(
        self,
        addresses: np.ndarray,
        kind: int | np.ndarray,
        asid: int,
        mapped: bool,
        kernel: bool,
    ) -> None:
        """Add a chunk with uniform asid/mapped/kernel attributes."""
        n = len(addresses)
        if n == 0:
            return
        self.addresses.append(np.asarray(addresses, dtype=np.int64))
        if np.isscalar(kind):
            self.kinds.append(np.full(n, kind, dtype=np.uint8))
        else:
            self.kinds.append(np.asarray(kind, dtype=np.uint8))
        self.asids.append(np.full(n, asid, dtype=np.uint8))
        self.mapped.append(np.full(n, mapped, dtype=bool))
        self.kernel.append(np.full(n, kernel, dtype=bool))
        self.count += n

    def append_raw(
        self,
        addresses: np.ndarray,
        kinds: np.ndarray,
        asids: np.ndarray,
        mapped: np.ndarray,
        kernel: np.ndarray,
    ) -> None:
        """Add a chunk with fully per-reference attributes.

        Used by the generation context when a single program-order run
        interleaves references with different translation attributes
        (e.g. a kernel copy loop touching both unmapped kernel buffers
        and mapped user pages).
        """
        n = len(addresses)
        if n == 0:
            return
        self.addresses.append(np.asarray(addresses, dtype=np.int64))
        self.kinds.append(np.asarray(kinds, dtype=np.uint8))
        self.asids.append(np.asarray(asids, dtype=np.uint8))
        self.mapped.append(np.asarray(mapped, dtype=bool))
        self.kernel.append(np.asarray(kernel, dtype=bool))
        self.count += n

    def build(
        self,
        page_faults: int = 0,
        other_cpi: float = 0.0,
        workload: str = "",
        os_name: str = "",
        physical_seed: int = 0,
    ) -> ReferenceTrace:
        """Concatenate all chunks into a :class:`ReferenceTrace`.

        Virtual pages are assigned scattered physical frames by a
        seeded draw (``physical_seed``), so physically indexed cache
        behaviour does not depend on the virtual layout's contiguity.
        """
        if not self.addresses:
            empty = np.empty(0, dtype=np.int64)
            return ReferenceTrace(
                addresses=empty,
                physical=empty.copy(),
                kinds=np.empty(0, dtype=np.uint8),
                asids=np.empty(0, dtype=np.uint8),
                mapped=np.empty(0, dtype=bool),
                kernel=np.empty(0, dtype=bool),
                page_faults=page_faults,
                other_cpi=other_cpi,
                workload=workload,
                os_name=os_name,
            )
        addresses = np.concatenate(self.addresses)
        mapped = np.concatenate(self.mapped)
        return ReferenceTrace(
            addresses=addresses,
            physical=assign_physical_frames(
                addresses, seed=physical_seed, mapped=mapped
            ),
            kinds=np.concatenate(self.kinds),
            asids=np.concatenate(self.asids),
            mapped=mapped,
            kernel=np.concatenate(self.kernel),
            page_faults=page_faults,
            other_cpi=other_cpi,
            workload=workload,
            os_name=os_name,
        )


_CHUNK_FIELDS = ("addresses", "kinds", "asids", "mapped", "kernel")


class ChunkedTraceBuilder(TraceChunkBuilder):
    """A builder that drains fixed-size chunks to a sink as it fills.

    Generation models use the normal ``append``/``append_raw`` API;
    whenever at least ``chunk_references`` references are pending they
    are concatenated and handed to ``sink(addresses, kinds, asids,
    mapped, kernel)`` as full fixed-size chunks (the trailing partial
    chunk is emitted by :meth:`flush`).  Drained chunks are dropped, so
    generation RSS stays bounded by one chunk regardless of the target
    trace length.  ``count`` stays cumulative (the generation context
    uses it to decide when the target is reached).
    """

    def __init__(self, sink, chunk_references: int) -> None:
        super().__init__()
        if chunk_references <= 0:
            raise TraceError("chunk_references must be positive")
        self._sink = sink
        self._chunk_references = chunk_references
        self._pending = 0

    def append(self, addresses, kind, asid, mapped, kernel) -> None:
        before = self.count
        super().append(addresses, kind, asid, mapped, kernel)
        self._pending += self.count - before
        self._drain()

    def append_raw(self, addresses, kinds, asids, mapped, kernel) -> None:
        before = self.count
        super().append_raw(addresses, kinds, asids, mapped, kernel)
        self._pending += self.count - before
        self._drain()

    def flush(self) -> None:
        """Emit whatever is pending as one final (possibly short) chunk."""
        self._drain(final=True)

    def build(self, *args, **kwargs):
        raise TraceError(
            "ChunkedTraceBuilder streams to its sink; call flush(), not build()"
        )

    def _drain(self, final: bool = False) -> None:
        limit = self._chunk_references
        total = self._pending
        stop_at = total if final else (total // limit) * limit
        if stop_at == 0:
            return
        joined = {}
        for name in _CHUNK_FIELDS:
            parts = getattr(self, name)
            joined[name] = parts[0] if len(parts) == 1 else np.concatenate(parts)
        start = 0
        while start < stop_at:
            end = min(start + limit, stop_at)
            self._sink(*(joined[name][start:end] for name in _CHUNK_FIELDS))
            start = end
        for name in _CHUNK_FIELDS:
            rest = joined[name][stop_at:]
            # Copy so the remainder does not pin the drained chunk alive.
            setattr(self, name, [rest.copy()] if len(rest) else [])
        self._pending = total - stop_at
