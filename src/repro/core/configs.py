"""Typed configuration records for the allocation study."""

from __future__ import annotations

from dataclasses import dataclass

from repro.areamodel.cache_area import cache_area_rbe
from repro.areamodel.tlb_area import FULLY_ASSOCIATIVE, tlb_area_rbe
from repro.units import KB


@dataclass(frozen=True, order=True)
class TlbConfig:
    """A TLB design point: total entries and associativity."""

    entries: int
    assoc: int | str

    @property
    def fully_associative(self) -> bool:
        """True for a CAM-organised TLB."""
        return self.assoc == FULLY_ASSOCIATIVE

    def area_rbe(self) -> float:
        """MQF-predicted die area."""
        return tlb_area_rbe(self.entries, self.assoc)

    def label(self) -> str:
        """Human-readable label matching the paper's notation."""
        assoc = "full" if self.fully_associative else f"{self.assoc}-way"
        return f"{self.entries} {assoc}"


@dataclass(frozen=True, order=True)
class CacheConfig:
    """A cache design point: capacity, line size (words), associativity."""

    capacity_bytes: int
    line_words: int
    assoc: int

    def area_rbe(self) -> float:
        """MQF-predicted die area."""
        return cache_area_rbe(self.capacity_bytes, self.line_words, self.assoc)

    def label(self) -> str:
        """Human-readable label matching the paper's notation."""
        return (
            f"{self.capacity_bytes // KB}-KB {self.line_words}-word "
            f"{self.assoc}-way"
        )


@dataclass(frozen=True)
class MemSystemConfig:
    """One candidate allocation: a TLB, an I-cache and a D-cache."""

    tlb: TlbConfig
    icache: CacheConfig
    dcache: CacheConfig

    def area_rbe(self) -> float:
        """Total MQF-predicted die area of the three structures."""
        return self.tlb.area_rbe() + self.icache.area_rbe() + self.dcache.area_rbe()

    def label(self) -> str:
        """One-line label for tables."""
        return (
            f"TLB[{self.tlb.label()}] I[{self.icache.label()}] "
            f"D[{self.dcache.label()}]"
        )
