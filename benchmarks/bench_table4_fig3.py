"""Benchmark: regenerate Table 4 and Figure 3 (suite CPI components)."""

from repro.experiments import fig3, table4
from repro.experiments.common import format_table


def test_table4(benchmark, show):
    rows = benchmark(table4.run)
    show("Table 4: CPI stall components, all workloads", format_table(rows))
    assert len(rows) == 14  # 6 workloads x 2 OSes + 2 averages


def test_fig3(benchmark, show):
    rows = benchmark(fig3.run)
    show("Figure 3: CPI-above-1.0 components", format_table(rows))
    assert len(rows) == 12
