"""repro: reproduction of "Optimal Allocation of On-chip Memory for
Multiple-API Operating Systems" (Nagle, Uhlig, Mudge & Sechrest,
ISCA 1994).

Public API tour:

* generate a workload trace:      :func:`repro.trace.generate_trace`
* attribute its stall cycles:     :class:`repro.monitor.Monster`
* sweep TLB configurations:       :class:`repro.monitor.Tapeworm`
* price a structure in die area:  :func:`repro.areamodel.cache_area_rbe`,
                                  :func:`repro.areamodel.tlb_area_rbe`
* allocate an area budget:        :class:`repro.core.Allocator`
* regenerate the paper:           ``python -m repro.experiments.runner --all``
"""

from repro.areamodel import cache_area_rbe, tlb_area_rbe
from repro.core import Allocator, BenefitCurves, CacheConfig, MemSystemConfig, TlbConfig
from repro.memsim import Cache, SystemConfig, Tlb, simulate_system
from repro.monitor import Monster, Tapeworm
from repro.trace import ReferenceTrace, generate_trace
from repro.workloads import WorkloadSpec, get_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "cache_area_rbe",
    "tlb_area_rbe",
    "Allocator",
    "BenefitCurves",
    "CacheConfig",
    "MemSystemConfig",
    "TlbConfig",
    "Cache",
    "SystemConfig",
    "Tlb",
    "simulate_system",
    "Monster",
    "Tapeworm",
    "ReferenceTrace",
    "generate_trace",
    "WorkloadSpec",
    "get_workload",
    "workload_names",
    "__version__",
]
