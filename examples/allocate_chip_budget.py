"""Allocate a die-area budget across I-cache, D-cache and TLB.

The paper's headline experiment (Tables 6/7): measure per-structure
benefit curves for the benchmark suite under Mach, enumerate the
Table 5 configuration space, keep combinations under the budget, and
rank them by composed CPI.

Run:  REPRO_SCALE=0.5 python examples/allocate_chip_budget.py [budget_rbe]
"""

import sys

from repro.core.allocator import Allocator
from repro.core.measure import BenefitCurves
from repro.experiments.common import format_table


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 250_000
    print(f"Measuring benefit curves for the suite under Mach "
          f"(cached after the first run)...")
    curves = BenefitCurves.for_suite("mach")
    allocator = Allocator(curves, budget_rbes=budget)

    print(f"\nBest allocations within {budget:,} rbe:")
    print(format_table([a.row() for a in allocator.rank(limit=10)]))

    print("\nBest allocations when caches are limited to 2-way "
          "(access-time constraint, Table 7):")
    print(format_table([a.row() for a in allocator.rank(max_cache_assoc=2, limit=5)]))

    best = allocator.best()
    print(f"\nWinner: {best.config.label()}")
    print(f"  area {best.area_rbe:,.0f} rbe ({best.area_rbe / budget:.0%} of budget), "
          f"CPI {best.cpi:.3f}")


if __name__ == "__main__":
    main()
