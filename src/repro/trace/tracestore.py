"""Zero-copy trace plane: a chunk-streaming on-disk cache of traces.

Trace *generation* — not simulation — dominates the cold path since the
simulation kernels went native: every measurement worker used to
re-synthesize the same multi-hundred-thousand-reference trace from
scratch.  This module generates each (workload, OS, length, seed) trace
once, serializes it as raw little-endian per-field files behind a JSON
header, and loads it back with ``np.memmap`` (whole-trace consumers) or
windowed ``np.fromfile`` reads (:class:`TraceStream`) so any number of
measurement workers share one physical copy of the bytes through the
OS page cache — no regeneration, no pickling, no per-process copies.

Format 2 entries are *directories* so they can be built by streaming
appends with bounded RSS:

* ``<field>.bin`` — one contiguous raw little-endian array per field
  (the six reference arrays plus the derived physical ifetch/load
  streams).  The streaming generator appends fixed-size chunks whose
  reference count is a multiple of 64, so every chunk boundary lands on
  a 64-byte-aligned file offset in every field.
* ``header.json`` — written *last*, via tmp+rename inside the entry:
  it is the commit record.  A directory without a valid header (e.g. a
  writer killed mid-append) is an incomplete entry; readers evict it
  and regenerate rather than serve short data.

Entries are content-addressed by a :class:`TraceKey` covering
everything that determines the bytes: workload, OS model, reference
count, seed, the generator's ``TRACE_FORMAT_VERSION`` (so cache keys
invalidate automatically when generation semantics change) and
``REPRO_SCALE``.

Whole entries are published crash-safely (unique temp directory +
atomic ``os.replace``); loads validate the header, format version and
every array extent against the file sizes, and any torn or corrupt
entry is evicted and regenerated rather than served short.  Loading an
entry touches its directory mtime, so the entry cap evicts in true
least-recently-*used* order, not publish order.

Format 3 entries are the *compressed columnar* variant: each field
file holds a sequence of independently-decompressible blocks (a fixed
reference count per block), with the per-field block index carried in
``header.json``.  The near-monotone ``<i8`` address columns are
delta-encoded per block before stdlib ``zlib``/``lzma`` compression,
which is what makes synthetic address streams compress far below the
0.6x ratio the benchmarks gate on.  Decoding is bit-identical to
format 2; commit semantics (header written last) and crash safety are
unchanged.  Readers hold a small decompressed-block LRU so windowed
and chunked reads stay O(chunk) RSS.  :func:`compact` recompresses
LRU-cold entries in place, safely against concurrent readers: the new
entry is built in a temp directory and swapped in by rename, so an
open ``np.memmap``/file handle keeps the old inode and a reader that
hits the brief swap window sees a plain miss and regenerates.

Knobs:

* ``REPRO_TRACE_CACHE`` — cache directory (default
  ``.repro-trace-cache``); ``off``/``0``/``none``/``false`` disables
  the plane entirely (every call regenerates in-process).
* ``REPRO_TRACE_CACHE_MAX`` — entry cap (default 64); publishing
  beyond it prunes the least-recently-used entries.
* ``REPRO_STREAM_CHUNK`` — references per streamed chunk (default
  1048576, must be a positive multiple of 64).  Generation and
  simulation of traces longer than one chunk hold at most ~one chunk
  per field in memory at a time.
* ``REPRO_TRACE_COMPRESS`` — ``zlib`` or ``lzma`` writes new entries
  in format 3; off (the default) writes raw format 2, which keeps
  whole-trace loads zero-copy memmaps.
* ``REPRO_TRACE_COMPRESS_LEVEL`` — codec level (default 1: delta
  encoding does the heavy lifting, so low levels already compress far
  below the gate at several times the speed of high ones).
* ``REPRO_TRACE_COMPRESS_BLOCK`` — references per compressed block
  (default 262144); the unit of independent decompression, and
  therefore the granularity (and RSS cost) of windowed reads.
"""

from __future__ import annotations

import hashlib
import json
import lzma
import os
import shutil
import tempfile
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import ConfigError, TraceError
from repro.memsim.types import AccessKind
from repro.obs import MetricsRegistry
from repro.trace import generator as _generator
from repro.trace.events import PageFrameTable, ReferenceTrace

MAGIC = "repro-tracestore"
STORE_FORMAT = 2
"""On-disk layout version of raw (uncompressed) directory entries."""

STORE_FORMAT_COMPRESSED = 3
"""On-disk layout version of compressed columnar entries."""

DEFAULT_CACHE_DIR = ".repro-trace-cache"
DEFAULT_MAX_ENTRIES = 64
DEFAULT_STREAM_CHUNK = 1_048_576
DEFAULT_COMPRESS_LEVEL = 1
DEFAULT_COMPRESS_BLOCK = 262_144
DEFAULT_COMPACT_HOT = 4
SUFFIX = ".trace"
HEADER_NAME = "header.json"

CODECS = ("zlib", "lzma")

_DISABLED_VALUES = frozenset({"off", "0", "none", "false", "disabled"})

# A 1B-reference entry indexes ~4k blocks per field across 8 fields;
# the block index dominates header size, so the bound is generous.
_MAX_HEADER_BYTES = 8 << 20

_BLOCK_CACHE_BLOCKS = 16
"""Decompressed blocks a TraceStream keeps hot (per-field-agnostic
LRU).  Bounds reader RSS at cache_blocks * block_references * 8 bytes
while letting repeated small windows (the sampling path) skip
re-decompression."""

#: Counters for the plane's cold/warm behaviour, exported through the
#: service's ``/v1/metrics`` (per-process; the pre-fork merge sums
#: worker snapshots).  ``trace_plane_generations`` staying flat across
#: a serving window is the "no trace-generation misses" signal the
#: fleet warm-up exists to guarantee.
METRICS = MetricsRegistry()

# (name, little-endian dtype) of every serialized array.  The first six
# are the ReferenceTrace fields; the last two are the derived physical
# streams the I-/D-cache measurement units consume.
_FIELDS: tuple[tuple[str, str], ...] = (
    ("addresses", "<i8"),
    ("physical", "<i8"),
    ("kinds", "|u1"),
    ("asids", "|u1"),
    ("mapped", "|b1"),
    ("kernel", "|b1"),
    ("ifetch_physical", "<i8"),
    ("load_physical", "<i8"),
)
_DTYPES: dict[str, str] = dict(_FIELDS)

#: Fields with one element per reference (the ReferenceTrace arrays).
REFERENCE_FIELDS = ("addresses", "physical", "kinds", "asids", "mapped", "kernel")
#: Fields the generator can emit before physical frames are known.
VIRTUAL_FIELDS = ("addresses", "kinds", "asids", "mapped", "kernel")


def trace_cache_dir() -> Path | None:
    """The trace-cache directory, or None when the plane is disabled."""
    raw = os.environ.get("REPRO_TRACE_CACHE")
    if raw is None or raw == "":
        return Path(DEFAULT_CACHE_DIR)
    if raw.strip().lower() in _DISABLED_VALUES:
        return None
    return Path(raw)


def enabled() -> bool:
    """True when traces are cached on disk (REPRO_TRACE_CACHE not off)."""
    return trace_cache_dir() is not None


def max_entries() -> int:
    """Entry cap before pruning: ``REPRO_TRACE_CACHE_MAX`` or 64."""
    raw = os.environ.get("REPRO_TRACE_CACHE_MAX", "")
    if not raw:
        return DEFAULT_MAX_ENTRIES
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"REPRO_TRACE_CACHE_MAX must be an integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ConfigError(f"REPRO_TRACE_CACHE_MAX must be >= 1, got {value}")
    return value


def stream_chunk_references() -> int:
    """References per streamed chunk: ``REPRO_STREAM_CHUNK`` or 1048576.

    Must be a positive multiple of 64 so that every chunk boundary is a
    64-byte-aligned offset in every field file (the widest field is 8
    bytes per reference).
    """
    raw = os.environ.get("REPRO_STREAM_CHUNK", "")
    if not raw:
        return DEFAULT_STREAM_CHUNK
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"REPRO_STREAM_CHUNK must be an integer, got {raw!r}"
        ) from None
    if value < 64 or value % 64:
        raise ConfigError(
            f"REPRO_STREAM_CHUNK must be a positive multiple of 64, got {value}"
        )
    return value


def compress_codec() -> str | None:
    """The configured entry codec, or None for raw format-2 entries.

    ``REPRO_TRACE_COMPRESS`` names a stdlib codec (``zlib`` or
    ``lzma``); empty or an off-value means uncompressed.  Reading is
    format-driven — this knob only selects what new entries are
    written as, so mixed caches are fine.
    """
    raw = os.environ.get("REPRO_TRACE_COMPRESS", "")
    value = raw.strip().lower()
    if not value or value in _DISABLED_VALUES:
        return None
    if value not in CODECS:
        raise ConfigError(
            f"REPRO_TRACE_COMPRESS must be one of {list(CODECS)} or off, "
            f"got {raw!r}"
        )
    return value


def compress_level() -> int:
    """Codec level for new entries: ``REPRO_TRACE_COMPRESS_LEVEL`` or 1."""
    raw = os.environ.get("REPRO_TRACE_COMPRESS_LEVEL", "")
    if not raw:
        return DEFAULT_COMPRESS_LEVEL
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"REPRO_TRACE_COMPRESS_LEVEL must be an integer, got {raw!r}"
        ) from None
    if not 0 <= value <= 9:
        raise ConfigError(
            f"REPRO_TRACE_COMPRESS_LEVEL must be in 0..9, got {value}"
        )
    return value


def compress_block_references() -> int:
    """References per compressed block: ``REPRO_TRACE_COMPRESS_BLOCK``."""
    raw = os.environ.get("REPRO_TRACE_COMPRESS_BLOCK", "")
    if not raw:
        return DEFAULT_COMPRESS_BLOCK
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"REPRO_TRACE_COMPRESS_BLOCK must be an integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ConfigError(
            f"REPRO_TRACE_COMPRESS_BLOCK must be >= 1, got {value}"
        )
    return value


#: int64 columns that are near-monotone (addresses walk regions
#: sequentially; frame assignment is first-touch ordered), so per-block
#: delta encoding turns them into tiny-magnitude streams the byte-level
#: codecs collapse.  Deltas wrap mod 2**64 and decode via cumsum, so
#: the round trip is exact for any values.
_DELTA_FIELDS = frozenset(
    ("addresses", "physical", "ifetch_physical", "load_physical")
)


def _encode_block(array: np.ndarray, delta: bool, codec: str, level: int) -> bytes:
    """One block's compressed payload (delta first for address columns)."""
    if delta and len(array):
        encoded = np.empty_like(array)
        encoded[0] = array[0]
        np.subtract(array[1:], array[:-1], out=encoded[1:])
        raw = encoded.tobytes()
    else:
        raw = array.tobytes()
    if codec == "zlib":
        return zlib.compress(raw, level)
    return lzma.compress(raw, preset=level)


def _decode_block(
    payload: bytes, codec: str, dtype: np.dtype, count: int, delta: bool
) -> np.ndarray:
    """Inverse of :func:`_encode_block`; validates the element count."""
    try:
        raw = zlib.decompress(payload) if codec == "zlib" else lzma.decompress(payload)
    except (zlib.error, lzma.LZMAError) as exc:
        raise TraceError(f"corrupt compressed block: {exc}") from None
    if len(raw) != count * dtype.itemsize:
        raise TraceError(
            f"compressed block decoded to {len(raw)} bytes, "
            f"expected {count * dtype.itemsize}"
        )
    array = np.frombuffer(raw, dtype=dtype)
    if delta:
        array = np.cumsum(array, dtype=np.int64)
    return array


class _BlockIndex:
    """Element and byte offsets of one field's compressed blocks."""

    __slots__ = ("ends", "starts", "byte_ends", "byte_starts")

    def __init__(self, blocks: list):
        counts = np.asarray([b[0] for b in blocks], dtype=np.int64)
        nbytes = np.asarray([b[1] for b in blocks], dtype=np.int64)
        self.ends = np.cumsum(counts)
        self.starts = self.ends - counts
        self.byte_ends = np.cumsum(nbytes)
        self.byte_starts = self.byte_ends - nbytes

    def __len__(self) -> int:
        return len(self.ends)

    def covering(self, start: int, stop: int) -> range:
        """Indices of the blocks overlapping elements [start, stop)."""
        if stop <= start:
            return range(0)
        first = int(np.searchsorted(self.ends, start, side="right"))
        last = int(np.searchsorted(self.starts, stop, side="left"))
        return range(first, last)


@dataclass(frozen=True)
class TraceKey:
    """Everything that determines a generated trace's bytes."""

    workload: str
    os_name: str
    references: int
    seed: int
    generator_version: int
    scale: float

    def canonical(self) -> dict:
        """JSON-stable form used for hashing and the entry header."""
        return {
            "workload": self.workload,
            "os_name": self.os_name,
            "references": self.references,
            "seed": self.seed,
            "generator_version": self.generator_version,
            "scale": self.scale,
        }

    def hash(self) -> str:
        text = json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode()).hexdigest()[:24]


def key_for(
    workload: str, os_name: str, references: int, seed: int = 1
) -> TraceKey:
    """The key the running process would generate under right now.

    ``generator_version`` is read from the generator module at call
    time (not import time) so a bumped ``TRACE_FORMAT_VERSION``
    invalidates keys immediately.
    """
    from repro.core.measure import scale

    return TraceKey(
        workload=str(workload),
        os_name=str(os_name),
        references=int(references),
        seed=int(seed),
        generator_version=int(_generator.TRACE_FORMAT_VERSION),
        scale=float(scale()),
    )


def entry_path(key: TraceKey) -> Path | None:
    """Where this key's entry lives, or None when the plane is off."""
    root = trace_cache_dir()
    if root is None:
        return None
    return root / f"{key.hash()}{SUFFIX}"


def _evict(path: Path) -> None:
    if path.name.endswith(SUFFIX) and path.exists():
        METRICS.counter("trace_plane_evictions").inc()
    try:
        if path.is_dir() and not path.is_symlink():
            shutil.rmtree(path, ignore_errors=True)
        else:
            path.unlink()
    except OSError:
        pass


def _touch(path: Path) -> None:
    """Best-effort last-use stamp so pruning is LRU, not publish order."""
    try:
        os.utime(path)
    except OSError:
        pass


# ---------------------------------------------------------------------------
# Streaming writer


class StreamingTraceWriter:
    """Builds one entry directory by appending fixed-size chunks.

    The writer owns the eight field files of an entry; chunks are
    appended in program order with :meth:`append_virtual` (the five
    generation-time fields) and :meth:`append_physical` (the
    physical address stream plus the two derived streams), and
    :meth:`finalize` commits the entry by writing ``header.json`` last.
    Until finalize succeeds the directory has no header and every
    reader treats it as an incomplete entry to evict — that is what
    makes a writer killed mid-append crash-safe.

    The writer itself accepts any positive chunk size (tests stream odd
    shapes); the module-level generation path always uses
    :func:`stream_chunk_references`, keeping chunk boundaries
    64-byte-aligned in every field file.

    With a ``codec`` (explicit, or defaulted from
    ``REPRO_TRACE_COMPRESS``) the entry is written in format 3:
    appended data is buffered per field until a full
    ``block_references``-sized block accumulates, which is
    delta-encoded (address columns), compressed, and appended to the
    field file; the per-block ``(raw_count, compressed_bytes)`` index
    goes into the header at finalize.  Crash semantics are identical
    to raw entries — no header, no entry.
    """

    def __init__(
        self,
        path: Path,
        key: TraceKey,
        chunk_references: int,
        codec: str | None = None,
        level: int | None = None,
        block_references: int | None = None,
    ):
        if chunk_references < 1:
            raise TraceError("chunk_references must be positive")
        self.path = Path(path)
        self.key = key
        self.chunk_references = int(chunk_references)
        self.codec = codec if codec is not None else compress_codec()
        if self.codec is not None and self.codec not in CODECS:
            raise TraceError(f"unknown trace codec {self.codec!r}")
        self.level = level if level is not None else compress_level()
        self.block_references = int(
            block_references
            if block_references is not None
            else compress_block_references()
        )
        if self.block_references < 1:
            raise TraceError("block_references must be positive")
        self.path.mkdir(parents=True, exist_ok=True)
        self._counts: dict[str, int] = {name: 0 for name, _ in _FIELDS}
        self._handles = {
            name: open(self.path / f"{name}.bin", "wb") for name, _ in _FIELDS
        }
        self._pending: dict[str, list[np.ndarray]] = {
            name: [] for name, _ in _FIELDS
        }
        self._pending_counts: dict[str, int] = {name: 0 for name, _ in _FIELDS}
        self._blocks: dict[str, list[list[int]]] = {
            name: [] for name, _ in _FIELDS
        }
        self._closed = False

    def _emit_block(self, name: str, block: np.ndarray) -> None:
        payload = _encode_block(
            block, name in _DELTA_FIELDS, self.codec, self.level
        )
        self._handles[name].write(payload)
        self._blocks[name].append([len(block), len(payload)])

    def _write(self, name: str, array: np.ndarray) -> None:
        array = np.ascontiguousarray(array, dtype=_DTYPES[name])
        self._counts[name] += len(array)
        if self.codec is None:
            self._handles[name].write(array.tobytes())
            return
        pending = self._pending[name]
        pending.append(array)
        self._pending_counts[name] += len(array)
        size = self.block_references
        if self._pending_counts[name] < size:
            return
        whole = pending[0] if len(pending) == 1 else np.concatenate(pending)
        full = len(whole) // size
        for i in range(full):
            self._emit_block(name, whole[i * size : (i + 1) * size])
        tail = whole[full * size :]
        # Copy the tail so the concatenated buffer can be collected.
        self._pending[name] = [tail.copy()] if len(tail) else []
        self._pending_counts[name] = len(tail)

    def _flush_pending(self, name: str) -> None:
        pending = self._pending[name]
        if not pending:
            return
        whole = pending[0] if len(pending) == 1 else np.concatenate(pending)
        self._emit_block(name, whole)
        self._pending[name] = []
        self._pending_counts[name] = 0

    def append_field(self, name: str, array: np.ndarray) -> None:
        """Append one chunk of one named field.

        Used by cross-format copies (:func:`compact`), which stream
        field by field rather than in the generator's
        virtual-then-physical order.
        """
        if name not in _DTYPES:
            raise TraceError(f"unknown trace field {name!r}")
        self._write(name, array)

    def append_virtual(self, addresses, kinds, asids, mapped, kernel) -> None:
        """Append one chunk of generation-time (pre-physical) fields."""
        for name, array in zip(
            VIRTUAL_FIELDS, (addresses, kinds, asids, mapped, kernel)
        ):
            self._write(name, array)

    def append_physical(self, physical, ifetch_physical, load_physical) -> None:
        """Append one chunk of the physical and derived streams."""
        self._write("physical", physical)
        self._write("ifetch_physical", ifetch_physical)
        self._write("load_physical", load_physical)

    def flush(self) -> None:
        """Flush appended data so the bytes are readable from the files.

        Compressed writers emit their pending partial block per field
        first (block sizes are free-form in the index), so a flushed
        field is fully decodable from disk — :func:`generate_stream`
        relies on this between its virtual and physical passes.
        """
        if self.codec is not None:
            for name, _ in _FIELDS:
                self._flush_pending(name)
        for handle in self._handles.values():
            handle.flush()

    def read_back(self, name: str, start: int, stop: int) -> np.ndarray:
        """One window of an already-appended (and flushed) field.

        The streaming generator's second pass re-reads the stored
        virtual chunks through this, which hides the raw-vs-compressed
        layout from the generation code.
        """
        dtype = np.dtype(_DTYPES[name])
        if self.codec is None:
            return np.fromfile(
                self.path / f"{name}.bin",
                dtype=dtype,
                count=stop - start,
                offset=start * dtype.itemsize,
            )
        index = _BlockIndex(self._blocks[name])
        delta = name in _DELTA_FIELDS
        parts = []
        with open(self.path / f"{name}.bin", "rb") as handle:
            for b in index.covering(start, stop):
                handle.seek(int(index.byte_starts[b]))
                payload = handle.read(
                    int(index.byte_ends[b] - index.byte_starts[b])
                )
                block = _decode_block(
                    payload,
                    self.codec,
                    dtype,
                    int(index.ends[b] - index.starts[b]),
                    delta,
                )
                lo = max(start - int(index.starts[b]), 0)
                hi = min(stop, int(index.ends[b])) - int(index.starts[b])
                parts.append(block[lo:hi])
        if not parts:
            return np.empty(0, dtype=dtype)
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    def finalize(
        self,
        page_faults: int = 0,
        other_cpi: float = 0.0,
        workload: str = "",
        os_name: str = "",
    ) -> None:
        """Commit the entry: close field files, then publish the header."""
        counts = {name: self._counts[name] for name in REFERENCE_FIELDS}
        if len(set(counts.values())) != 1:
            raise TraceError(f"unbalanced field counts at finalize: {counts}")
        if self.codec is not None:
            for name, _ in _FIELDS:
                self._flush_pending(name)
        self.close()
        header = {
            "magic": MAGIC,
            "format": STORE_FORMAT if self.codec is None else STORE_FORMAT_COMPRESSED,
            "key": self.key.canonical(),
            "meta": {
                "page_faults": int(page_faults),
                "other_cpi": float(other_cpi),
                "workload": str(workload),
                "os_name": str(os_name),
            },
            "chunk_references": self.chunk_references,
            "arrays": [
                {"name": name, "dtype": dtype, "count": self._counts[name]}
                for name, dtype in _FIELDS
            ],
        }
        if self.codec is not None:
            header["codec"] = self.codec
            header["level"] = self.level
            header["block_references"] = self.block_references
            for spec in header["arrays"]:
                spec["delta"] = spec["name"] in _DELTA_FIELDS
                spec["blocks"] = self._blocks[spec["name"]]
        blob = json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
        fd, tmp_name = tempfile.mkstemp(
            prefix=".header-", suffix=".tmp", dir=self.path
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_name, self.path / HEADER_NAME)
        except BaseException:
            _evict(Path(tmp_name))
            raise

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for handle in self._handles.values():
            try:
                handle.close()
            except OSError:
                pass


# ---------------------------------------------------------------------------
# Header validation + streaming reader


def _read_header(path: Path) -> dict | None:
    """The header dict of a structurally valid entry, else None.

    Validates the commit record and every field file's extent, so a
    header-bearing entry is guaranteed to serve full-length arrays.
    """
    if not path.is_dir():
        return None
    try:
        blob = (path / HEADER_NAME).read_bytes()
    except OSError:
        return None
    if not blob or len(blob) > _MAX_HEADER_BYTES:
        return None
    try:
        header = json.loads(blob)
    except ValueError:
        return None
    if not isinstance(header, dict) or header.get("magic") != MAGIC:
        return None
    compressed = header.get("format") == STORE_FORMAT_COMPRESSED
    if header.get("format") not in (STORE_FORMAT, STORE_FORMAT_COMPRESSED):
        return None
    try:
        specs = header["arrays"]
        if [s["name"] for s in specs] != [name for name, _ in _FIELDS] or any(
            s["dtype"] != dtype for s, (_, dtype) in zip(specs, _FIELDS)
        ):
            return None
        counts = {s["name"]: int(s["count"]) for s in specs}
        if any(c < 0 for c in counts.values()):
            return None
        if len({counts[name] for name in REFERENCE_FIELDS}) != 1:
            return None
        references = counts["addresses"]
        if counts["ifetch_physical"] + counts["load_physical"] > references:
            return None
        if int(header["chunk_references"]) < 1:
            return None
        if compressed:
            if header["codec"] not in CODECS:
                return None
            int(header["level"])
            if int(header["block_references"]) < 1:
                return None
        for spec in specs:
            if compressed:
                # Block index must tile the array exactly and account
                # for every byte of the field file; a short file (torn
                # writer) or a fabricated index fails here.
                blocks = spec["blocks"]
                if bool(spec["delta"]) and spec["dtype"] != "<i8":
                    return None
                if any(
                    len(b) != 2 or int(b[0]) < 1 or int(b[1]) < 1
                    for b in blocks
                ):
                    return None
                if sum(int(b[0]) for b in blocks) != counts[spec["name"]]:
                    return None
                nbytes = sum(int(b[1]) for b in blocks)
            else:
                nbytes = counts[spec["name"]] * np.dtype(spec["dtype"]).itemsize
            if (path / f"{spec['name']}.bin").stat().st_size != nbytes:
                return None
        meta = header["meta"]
        int(meta["page_faults"]), float(meta["other_cpi"])
        str(meta["workload"]), str(meta["os_name"])
    except (KeyError, TypeError, ValueError, OSError):
        return None
    return header


class TraceStream:
    """Windowed reader over one published entry.

    Reads are plain ``np.fromfile`` windows (not whole-file memmaps),
    so a full pass over a multi-hundred-million-reference entry keeps
    RSS bounded by one chunk per field instead of faulting the whole
    file resident.

    Compressed (format-3) entries decode through a small LRU of
    decompressed blocks (:data:`_BLOCK_CACHE_BLOCKS`), so chunked
    passes still hold O(chunk) bytes and repeated small windows — the
    sampling path — skip re-inflating the block they keep landing in.
    Decoded windows are bit-identical to the raw layout's.
    """

    def __init__(self, path: Path, header: dict):
        self.path = Path(path)
        self.format: int = int(header["format"])
        self._counts = {s["name"]: int(s["count"]) for s in header["arrays"]}
        self._dtypes = {
            s["name"]: np.dtype(s["dtype"]) for s in header["arrays"]
        }
        self.codec: str | None = None
        if self.format == STORE_FORMAT_COMPRESSED:
            self.codec = str(header["codec"])
            self._delta = {s["name"]: bool(s["delta"]) for s in header["arrays"]}
            self._indices = {
                s["name"]: _BlockIndex(s["blocks"]) for s in header["arrays"]
            }
            self._block_cache: dict[tuple[str, int], np.ndarray] = {}
        # Field files are opened once and held: a compaction swap
        # renames a replacement entry over this path, and the held
        # handles keep the original inodes so an in-flight reader never
        # sees the other layout's bytes through its own header.
        self._handles: dict = {}
        self.references: int = self._counts["addresses"]
        self.chunk_references: int = int(header["chunk_references"])
        meta = header["meta"]
        self.page_faults: int = int(meta["page_faults"])
        self.other_cpi: float = float(meta["other_cpi"])
        self.workload: str = str(meta["workload"])
        self.os_name: str = str(meta["os_name"])

    def __len__(self) -> int:
        return self.references

    def count(self, field: str) -> int:
        """Element count of one field (derived streams are shorter)."""
        return self._counts[field]

    def _handle(self, field: str):
        handle = self._handles.get(field)
        if handle is None:
            handle = open(self.path / f"{field}.bin", "rb")
            self._handles[field] = handle
        return handle

    def close(self) -> None:
        """Release held field-file handles (also runs on GC)."""
        while self._handles:
            self._handles.popitem()[1].close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def _block(self, field: str, b: int) -> np.ndarray:
        """One decoded block, through the LRU (dict preserves order)."""
        cache = self._block_cache
        cached = cache.get((field, b))
        if cached is not None:
            cache[(field, b)] = cache.pop((field, b))
            return cached
        index = self._indices[field]
        handle = self._handle(field)
        handle.seek(int(index.byte_starts[b]))
        payload = handle.read(int(index.byte_ends[b] - index.byte_starts[b]))
        block = _decode_block(
            payload,
            self.codec,
            self._dtypes[field],
            int(index.ends[b] - index.starts[b]),
            self._delta[field],
        )
        while len(cache) >= _BLOCK_CACHE_BLOCKS:
            cache.pop(next(iter(cache)))
        cache[(field, b)] = block
        return block

    def _read_compressed(self, field: str, start: int, stop: int) -> np.ndarray:
        index = self._indices[field]
        parts = []
        for b in index.covering(start, stop):
            block = self._block(field, b)
            lo = max(start - int(index.starts[b]), 0)
            hi = min(stop, int(index.ends[b])) - int(index.starts[b])
            parts.append(block[lo:hi])
        if not parts:
            return np.empty(0, dtype=self._dtypes[field])
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    def read(self, field: str, start: int = 0, stop: int | None = None) -> np.ndarray:
        """One window of one field as an in-memory array."""
        total = self._counts[field]
        if stop is None:
            stop = total
        start = max(0, min(int(start), total))
        stop = max(start, min(int(stop), total))
        dtype = self._dtypes[field]
        if self.codec is not None:
            array = self._read_compressed(field, start, stop)
        else:
            handle = self._handle(field)
            handle.seek(start * dtype.itemsize)
            array = np.fromfile(handle, dtype=dtype, count=stop - start)
        if len(array) != stop - start:
            raise TraceError(
                f"short read of {field} [{start}:{stop}) in {self.path}"
            )
        return array

    def chunks(self, fields, chunk_references: int | None = None):
        """Iterate reference-aligned windows of the given fields.

        Yields ``(start, stop, {field: array})`` in order; the chunk
        size defaults to the writer's but any positive value works —
        windows are plain file offsets.
        """
        step = chunk_references or self.chunk_references
        if step < 1:
            raise TraceError("chunk_references must be positive")
        for start in range(0, self.references, step):
            stop = min(start + step, self.references)
            yield start, stop, {f: self.read(f, start, stop) for f in fields}

    def window_trace(self, start: int, stop: int) -> ReferenceTrace:
        """Materialize one reference window as a ReferenceTrace.

        Used by the sampling machinery: only the window's bytes are
        read.  Derived streams are recomputed from the window (matching
        ``ReferenceTrace.slice`` semantics).
        """
        return ReferenceTrace(
            addresses=self.read("addresses", start, stop),
            physical=self.read("physical", start, stop),
            kinds=self.read("kinds", start, stop),
            asids=self.read("asids", start, stop),
            mapped=self.read("mapped", start, stop),
            kernel=self.read("kernel", start, stop),
            page_faults=self.page_faults,
            other_cpi=self.other_cpi,
            workload=self.workload,
            os_name=self.os_name,
        )


def open_stream(key: TraceKey) -> TraceStream | None:
    """Open a windowed reader; None on miss or corrupt entry.

    Structural corruption (missing/garbage header, short field file —
    e.g. a streaming writer killed mid-append) evicts the entry so the
    caller regenerates.  Success touches the entry for LRU pruning.
    """
    path = entry_path(key)
    if path is None or not path.exists():
        return None
    header = _read_header(path)
    if header is None or header["key"] != key.canonical():
        _evict(path)
        return None
    _touch(path)
    METRICS.counter("trace_plane_hits").inc()
    return TraceStream(path, header)


def has(key: TraceKey) -> bool:
    """True when a structurally valid entry exists for this key.

    Header-only validation (no data reads): cheap enough for a
    per-call check before deciding whether a warm-up fan-out is needed.
    A torn entry reports False and is handled by :func:`load`.
    """
    path = entry_path(key)
    if path is None or not path.exists():
        return False
    header = _read_header(path)
    return header is not None and header["key"] == key.canonical()


def load(key: TraceKey) -> ReferenceTrace | None:
    """Memory-map one cached trace; None on miss or corrupt entry.

    Anything structurally wrong — torn header, short field file, stale
    format, key mismatch — evicts the entry and reports a miss, so the
    caller regenerates and re-publishes instead of crashing or working
    on a short trace.  Loading touches the entry, keeping the prune
    order LRU.
    """
    path = entry_path(key)
    if path is None or not path.exists():
        return None
    header = _read_header(path)
    if header is None or header["key"] != key.canonical():
        _evict(path)
        return None
    arrays: dict[str, np.ndarray] = {}
    try:
        if header["format"] == STORE_FORMAT_COMPRESSED:
            # Compressed entries materialize in memory: decoding is a
            # copy anyway, so there is no inode to share.  Whole-trace
            # loads of big compressed entries cost their decoded size —
            # the streaming path (open_stream) is the bounded-RSS one.
            reader = TraceStream(path, header)
            for spec in header["arrays"]:
                name = spec["name"]
                arrays[name] = reader.read(name, 0, int(spec["count"]))
        else:
            for spec in header["arrays"]:
                arrays[spec["name"]] = np.memmap(
                    path / f"{spec['name']}.bin",
                    mode="r",
                    dtype=np.dtype(spec["dtype"]),
                    shape=(int(spec["count"]),),
                )
        meta = header["meta"]
        trace = ReferenceTrace(
            addresses=arrays["addresses"],
            physical=arrays["physical"],
            kinds=arrays["kinds"],
            asids=arrays["asids"],
            mapped=arrays["mapped"],
            kernel=arrays["kernel"],
            page_faults=int(meta["page_faults"]),
            other_cpi=float(meta["other_cpi"]),
            workload=str(meta["workload"]),
            os_name=str(meta["os_name"]),
        )
    except (OSError, ValueError, TraceError):
        _evict(path)
        return None
    # Seed the derived-stream cache with the materialized streams so
    # grid units never recompute the kind masks per unit.
    trace._derived["ifetch_physical"] = arrays["ifetch_physical"]
    trace._derived["load_physical"] = arrays["load_physical"]
    _touch(path)
    METRICS.counter("trace_plane_hits").inc()
    return trace


# ---------------------------------------------------------------------------
# Publishing


def _publish_dir(tmp: Path, path: Path) -> bool:
    """Atomically move a finished temp entry into place.

    Concurrent publishers of the same key are idempotent: if another
    writer already installed a valid entry, ours is discarded.  An
    invalid (incomplete/corrupt) existing entry is evicted first.
    """
    for _ in range(2):
        try:
            os.replace(tmp, path)
            return True
        except OSError:
            if _read_header(path) is not None:
                break  # a concurrent publisher won with a valid entry
            _evict(path)
    shutil.rmtree(tmp, ignore_errors=True)
    return path.exists()


def publish(trace: ReferenceTrace, key: TraceKey) -> Path | None:
    """Write one entry crash-safely; returns its path (None if disabled).

    A unique temp directory in the cache root is renamed into place, so
    concurrent publishers of the same key are idempotent and readers
    never observe a torn entry under ``os.replace`` semantics.
    """
    path = entry_path(key)
    if path is None:
        return None
    root = path.parent
    root.mkdir(parents=True, exist_ok=True)
    tmp = Path(tempfile.mkdtemp(prefix=f".{path.stem}-", dir=root))
    try:
        writer = StreamingTraceWriter(tmp, key, stream_chunk_references())
        writer.append_virtual(
            trace.addresses, trace.kinds, trace.asids, trace.mapped, trace.kernel
        )
        writer.append_physical(
            trace.physical, trace.ifetch_physical(), trace.load_physical()
        )
        writer.finalize(
            page_faults=trace.page_faults,
            other_cpi=trace.other_cpi,
            workload=trace.workload,
            os_name=trace.os_name,
        )
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    _publish_dir(tmp, path)
    _prune(root, keep=path.name)
    return path


def generate_stream(
    workload: str, os_name: str, references: int, seed: int = 1
) -> Path | None:
    """Generate and publish one entry with bounded RSS; its path or None.

    Two passes, both chunked: the generator streams virtual-field
    chunks to a temp entry while the touched page set is collected
    incrementally; then physical frames are assigned (bit-identical to
    the batch mapper — see :class:`~repro.trace.events.PageFrameTable`)
    and the physical + derived streams are appended by re-reading the
    stored virtual chunks.  Peak memory is ~one chunk per field plus
    the page table, regardless of trace length.
    """
    path = entry_path(key := key_for(workload, os_name, references, seed))
    if path is None:
        return None
    root = path.parent
    root.mkdir(parents=True, exist_ok=True)
    chunk = stream_chunk_references()
    tmp = Path(tempfile.mkdtemp(prefix=f".{path.stem}-", dir=root))
    try:
        writer = StreamingTraceWriter(tmp, key, chunk)
        table = PageFrameTable()

        def sink(addresses, kinds, asids, mapped, kernel):
            table.observe(addresses, mapped)
            writer.append_virtual(addresses, kinds, asids, mapped, kernel)

        gen = _generator.TraceGenerator(workload, os_name, seed=seed)
        meta = gen.generate_stream(references, sink, chunk)
        writer.flush()
        table.finalize(meta["physical_seed"])

        total = meta["references"]
        for start in range(0, total, chunk):
            stop = min(start + chunk, total)
            addresses = writer.read_back("addresses", start, stop)
            kinds = writer.read_back("kinds", start, stop)
            physical = table.physical_for(addresses)
            writer.append_physical(
                physical,
                physical[kinds == AccessKind.IFETCH],
                physical[kinds == AccessKind.LOAD],
            )
        writer.finalize(
            page_faults=meta["page_faults"],
            other_cpi=meta["other_cpi"],
            workload=meta["workload"],
            os_name=meta["os_name"],
        )
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    METRICS.counter("trace_plane_generations").inc(
        label=f"{workload}/{os_name}"
    )
    _publish_dir(tmp, path)
    _prune(root, keep=path.name)
    return path


def _prune(root: Path, keep: str) -> None:
    """Drop the least-recently-used entries beyond the configured cap.

    Entry mtimes are refreshed on every successful load/open (see
    :func:`_touch`), so sorting by mtime evicts cold entries first —
    publish order only breaks ties.
    """
    cap = max_entries()
    try:
        entries = [
            (p.stat().st_mtime_ns, p.name, p) for p in root.glob(f"*{SUFFIX}")
        ]
    except OSError:
        return
    if len(entries) <= cap:
        return
    entries.sort()
    for _, name, path in entries[: len(entries) - cap]:
        if name != keep:
            _evict(path)


# ---------------------------------------------------------------------------
# High-level access


def ensure(
    workload: str, os_name: str, references: int, seed: int = 1
) -> bool:
    """Make sure a key is published; True if this call generated it.

    A no-op (False) when the plane is disabled or the entry already
    loads cleanly.  Traces longer than one stream chunk are generated
    chunk-streaming (bounded RSS); shorter ones in one batch.
    """
    if not enabled():
        return False
    key = key_for(workload, os_name, references, seed)
    if has(key):
        return False
    if references > stream_chunk_references():
        generate_stream(workload, os_name, references, seed=seed)
    else:
        trace = _generator.generate_trace(workload, os_name, references, seed=seed)
        METRICS.counter("trace_plane_generations").inc(
            label=f"{workload}/{os_name}"
        )
        publish(trace, key)
    return True


def stream(
    workload: str, os_name: str, references: int, seed: int = 1
) -> TraceStream:
    """Open a windowed reader, generating and publishing on miss.

    Streaming needs the on-disk plane: with ``REPRO_TRACE_CACHE`` off
    there is nowhere to stage chunks, so this raises ``TraceError`` —
    callers fall back to the materialized path (:func:`get_trace`).
    """
    if not enabled():
        raise TraceError(
            "chunk streaming requires the trace plane; REPRO_TRACE_CACHE is off"
        )
    key = key_for(workload, os_name, references, seed)
    opened = open_stream(key)
    if opened is not None:
        return opened
    generate_stream(workload, os_name, references, seed=seed)
    opened = open_stream(key)
    if opened is None:
        raise TraceError(f"failed to publish streaming entry for {key}")
    return opened


def get_trace(
    workload: str, os_name: str, references: int, seed: int = 1
) -> ReferenceTrace:
    """Load a trace through the plane, generating and publishing on miss.

    Cache hits return memmap-backed traces (zero-copy across
    processes); misses return the freshly generated trace —
    bit-identical either way — after best-effort publishing it for the
    next reader.  Misses longer than one stream chunk are generated
    chunk-streaming (bounded RSS) and served as memmaps of the new
    entry.  With the plane disabled this is plain generation.
    """
    if not enabled():
        return _generator.generate_trace(workload, os_name, references, seed=seed)
    key = key_for(workload, os_name, references, seed)
    trace = load(key)
    if trace is not None:
        return trace
    if references > stream_chunk_references():
        try:
            generate_stream(workload, os_name, references, seed=seed)
            trace = load(key)
            if trace is not None:
                return trace
        except OSError:
            pass  # read-only or full filesystem: fall back to in-memory
    trace = _generator.generate_trace(workload, os_name, references, seed=seed)
    METRICS.counter("trace_plane_generations").inc(
        label=f"{workload}/{os_name}"
    )
    try:
        publish(trace, key)
    except OSError:
        pass  # read-only or full filesystem: serve the in-memory trace
    return trace


# ---------------------------------------------------------------------------
# Compaction: recompress LRU-cold entries in place


def entry_nbytes(path: Path) -> int:
    """Total on-disk bytes of one entry's field files (header excluded)."""
    total = 0
    for name, _ in _FIELDS:
        try:
            total += (path / f"{name}.bin").stat().st_size
        except OSError:
            pass
    return total


def _recompress(
    path: Path,
    header: dict,
    codec: str,
    level: int,
    block_references: int | None,
) -> None:
    """Rewrite one entry under a codec and swap it in under readers.

    The replacement is built complete (header and all) in a temp
    directory, stamped with the original's mtime so compaction does not
    disturb LRU order, then swapped in by two renames.  A reader with
    the old files open keeps the old inodes; a reader that looks up
    the path inside the brief rename window sees a miss and
    regenerates — never short or mixed data.  A crash at any point
    leaves either the old entry, or no entry plus a headerless (dotted,
    prune-invisible) temp directory.
    """
    root = path.parent
    key = TraceKey(**header["key"])
    reader = TraceStream(path, header)
    tmp = Path(tempfile.mkdtemp(prefix=f".{path.stem}-compact-", dir=root))
    try:
        writer = StreamingTraceWriter(
            tmp,
            key,
            reader.chunk_references,
            codec=codec,
            level=level,
            block_references=block_references,
        )
        step = reader.chunk_references
        for name, _ in _FIELDS:
            total = reader.count(name)
            for start in range(0, total, step):
                writer.append_field(
                    name, reader.read(name, start, min(start + step, total))
                )
        writer.finalize(
            page_faults=reader.page_faults,
            other_cpi=reader.other_cpi,
            workload=reader.workload,
            os_name=reader.os_name,
        )
        stat = path.stat()
        os.utime(tmp, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        trash = root / f".{path.stem}-old-{os.getpid()}"
        shutil.rmtree(trash, ignore_errors=True)
        os.rename(path, trash)
        os.rename(tmp, path)
        shutil.rmtree(trash, ignore_errors=True)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise


def compact(
    hot: int | None = None,
    codec: str | None = None,
    level: int | None = None,
    block_references: int | None = None,
) -> dict:
    """Recompress every LRU-cold entry; returns a summary dict.

    The ``hot`` most-recently-used entries are left alone (they are
    the ones workers are actively memmapping or streaming; raw layout
    is their fastest), everything colder is rewritten under ``codec``
    at ``level`` — defaults: ``REPRO_TRACE_COMPRESS`` (or zlib when
    the knob is off) at ``REPRO_TRACE_COMPRESS_LEVEL``.  Entries
    already in the target shape are skipped; headerless leftovers from
    killed writers are evicted.  Safe to run while readers are active
    (see :func:`_recompress`) — this is the background maintenance
    pass behind ``python -m repro.trace.tracestore compact``.
    """
    root = trace_cache_dir()
    if root is None:
        raise ConfigError(
            "cannot compact: the trace cache is disabled "
            "(REPRO_TRACE_CACHE=off)"
        )
    codec = codec if codec is not None else (compress_codec() or "zlib")
    if codec not in CODECS:
        raise ConfigError(f"codec must be one of {list(CODECS)}, got {codec!r}")
    level = compress_level() if level is None else int(level)
    hot = DEFAULT_COMPACT_HOT if hot is None else max(0, int(hot))
    try:
        entries = sorted(
            ((p.stat().st_mtime_ns, p.name, p) for p in root.glob(f"*{SUFFIX}")),
            reverse=True,
        )
    except OSError:
        entries = []
    summary = {
        "entries": len(entries),
        "hot": min(hot, len(entries)),
        "compacted": 0,
        "skipped": 0,
        "evicted": 0,
        "bytes_before": 0,
        "bytes_after": 0,
    }
    for _, _, path in entries[hot:]:
        header = _read_header(path)
        if header is None:
            _evict(path)
            summary["evicted"] += 1
            continue
        if (
            header["format"] == STORE_FORMAT_COMPRESSED
            and header["codec"] == codec
            and int(header["level"]) == level
        ):
            summary["skipped"] += 1
            continue
        before = entry_nbytes(path)
        _recompress(path, header, codec, level, block_references)
        summary["bytes_before"] += before
        summary["bytes_after"] += entry_nbytes(path)
        summary["compacted"] += 1
        METRICS.counter("trace_plane_compactions").inc()
    return summary


def _main(argv=None) -> int:
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.trace.tracestore",
        description="maintain the on-disk trace cache",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    cmd = sub.add_parser(
        "compact",
        help="recompress LRU-cold entries in place (safe under readers)",
    )
    cmd.add_argument(
        "--hot", type=int, default=None,
        help=f"most-recently-used entries to leave raw (default "
             f"{DEFAULT_COMPACT_HOT})",
    )
    cmd.add_argument(
        "--codec", choices=CODECS, default=None,
        help="target codec (default: REPRO_TRACE_COMPRESS, else zlib)",
    )
    cmd.add_argument(
        "--level", type=int, default=None,
        help="codec level (default: REPRO_TRACE_COMPRESS_LEVEL, else 1)",
    )
    args = parser.parse_args(argv)
    try:
        summary = compact(hot=args.hot, codec=args.codec, level=args.level)
    except ConfigError as exc:
        print(json.dumps({"ok": False, "error": str(exc)}), file=sys.stderr)
        return 2
    print(json.dumps({"ok": True, **summary}, sort_keys=True))
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(_main())
