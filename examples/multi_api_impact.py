"""Quantify how a multiple-API OS changes on-chip memory demands.

Reproduces the Section 4 story for every benchmark: run the same
workload model under the single-API (Ultrix) and multiple-API (Mach)
structures and compare where the stall cycles go, then show how the
TLB service-time curve (Figure 7) collapses with TLB size under Mach.

Run:  python examples/multi_api_impact.py
"""

from repro.core.configs import TlbConfig
from repro.monitor.monster import Monster
from repro.monitor.tapeworm import Tapeworm
from repro.trace.generator import generate_trace
from repro.workloads.registry import workload_names


def main() -> None:
    monster = Monster()
    print(f"{'workload':<12}{'os':<8}{'CPI':>6}{'TLB+I$ share':>14}{'D$ share':>10}")
    for workload in workload_names():
        for os_name in ("ultrix", "mach"):
            trace = generate_trace(workload, os_name, 300_000, seed=1)
            report = monster.measure(trace)
            shifted = report.fractions["tlb"] + report.fractions["icache"]
            print(
                f"{workload:<12}{os_name:<8}{report.cpi:>6.2f}"
                f"{shifted:>13.0%}{report.fractions['dcache']:>10.0%}"
            )

    print("\nTLB service time vs size (video_play under Mach, Tapeworm):")
    trace = generate_trace("video_play", "mach", 300_000, seed=1)
    configs = [TlbConfig(n, "full") for n in (32, 64, 128, 256)]
    configs += [TlbConfig(512, 8)]
    for report in Tapeworm(configs).run(trace):
        cycles = report.service_cycles()
        print(
            f"  {report.config.label():<10} {cycles:>10,} cycles "
            f"({report.user_misses} user + {report.kernel_misses} kernel misses)"
        )


if __name__ == "__main__":
    main()
