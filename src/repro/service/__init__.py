"""Allocation query service: budget/Pareto queries over stored curves."""

from repro.service.engine import QueryEngine, maybe_engine, pareto_frontier
from repro.service.requests import validate_request

__all__ = [
    "QueryEngine",
    "maybe_engine",
    "pareto_frontier",
    "validate_request",
]
