"""Catalog of OS services used by the workload models.

Service *bodies* (the code that actually performs the work) are shared
between the two OS models — the paper notes that Ultrix and Mach derive
their service code from the same 4.2/4.3 BSD base, so the differences
lie almost entirely in the invocation path, which each OS model adds
around these bodies.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ServiceSpec:
    """Static description of one OS service body.

    Attributes:
        name: service identifier used in workload service mixes.
        body_instructions: instructions executed by the service routine.
        body_offset: byte offset of the routine within the OS text
            segment (distinct offsets keep distinct services in
            distinct cache lines, as in a real kernel).
        metadata_refs: extra load references to OS metadata structures
            (inode/proc/socket tables) per invocation.
        copies_payload: whether the service moves a caller-supplied
            payload (read/write/send) with a copy loop.
    """

    name: str
    body_instructions: int
    body_offset: int
    metadata_refs: int
    copies_payload: bool


SERVICE_CATALOG: dict[str, ServiceSpec] = {
    spec.name: spec
    for spec in (
        ServiceSpec("read", 2600, 0x00000, 60, True),
        ServiceSpec("write", 2800, 0x04000, 60, True),
        ServiceSpec("open", 2200, 0x08000, 90, False),
        ServiceSpec("close", 900, 0x0B000, 30, False),
        ServiceSpec("stat", 1500, 0x0D000, 70, False),
        ServiceSpec("ioctl", 900, 0x10000, 40, False),
        ServiceSpec("select", 700, 0x12000, 50, False),
        ServiceSpec("socket_send", 2400, 0x14000, 70, True),
        ServiceSpec("socket_recv", 2300, 0x18000, 70, True),
        ServiceSpec("brk", 1100, 0x1C000, 40, False),
        ServiceSpec("fork_exec", 8000, 0x1E000, 250, False),
        ServiceSpec("gettimeofday", 220, 0x26000, 8, False),
    )
}


def lookup_service(name: str) -> ServiceSpec:
    """Fetch a service by name with a helpful error."""
    try:
        return SERVICE_CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown service {name!r}; available: {sorted(SERVICE_CATALOG)}"
        ) from None
