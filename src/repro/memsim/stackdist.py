"""Single-pass stack-distance simulation (Mattson et al., Cheetah-style).

For LRU replacement, caches obey the inclusion property: a reference
that hits in a k-way set of an S-set cache also hits in any (k+n)-way
set of the same S sets.  One pass that tracks, per set, the LRU stack
position of each reference therefore yields hit counts for *every*
associativity at once.  The paper's configuration grid (Table 5) is a
few dozen such passes instead of hundreds of individual simulations;
the test suite cross-checks this engine against the reference
simulator in :mod:`repro.memsim.cache`.

The same idea with a single global stack gives the full miss-ratio
curve of a fully-associative structure (used for the TLB study of
Figure 7: one pass yields misses for every TLB size).

The per-reference depths come from :mod:`repro.memsim.engine` (native
C kernel or vectorized NumPy, selectable via ``REPRO_ENGINE``); each
public function keeps its original interpreted loop as a
``*_reference`` twin, which the differential tests hold bit-identical
to the fast paths.
"""

from __future__ import annotations

import numpy as np

from repro.memsim.engine import lru_depths


def _depth_histogram(depths: np.ndarray, cap: int, count_from: int) -> np.ndarray:
    """histogram[d] = counted references with stack distance exactly d < cap."""
    return np.bincount(depths[count_from:], minlength=cap + 1)[:cap]


def set_associative_hit_counts(
    line_ids: np.ndarray,
    n_sets: int,
    max_assoc: int,
    count_from: int = 0,
    engine: str | None = None,
) -> np.ndarray:
    """Count LRU hits for every associativity 1..max_assoc in one pass.

    Args:
        line_ids: global line identifiers (byte address >> line offset
            bits), any integer dtype.
        n_sets: number of sets (power of two).
        max_assoc: deepest associativity of interest.
        count_from: references before this index warm the stacks but
            are not counted.
        engine: optional engine override (see ``REPRO_ENGINE``).

    Returns:
        Array ``hits`` of length ``max_assoc`` where ``hits[k-1]`` is
        the number of references that hit in a k-way, ``n_sets``-set
        LRU cache (capacity = n_sets * k lines).
    """
    line_ids = np.asarray(line_ids, dtype=np.int64)
    depths = lru_depths(line_ids, n_sets, max_assoc, engine=engine)
    # hits[k-1] = refs with stack distance < k.
    return np.cumsum(_depth_histogram(depths, max_assoc, count_from))


def set_associative_hit_counts_reference(
    line_ids: np.ndarray, n_sets: int, max_assoc: int, count_from: int = 0
) -> np.ndarray:
    """Interpreted twin of :func:`set_associative_hit_counts`."""
    if n_sets < 1 or n_sets & (n_sets - 1):
        raise ValueError("n_sets must be a positive power of two")
    if max_assoc < 1:
        raise ValueError("max_assoc must be >= 1")
    hits = np.zeros(max_assoc, dtype=np.int64)
    mask = n_sets - 1
    stacks: list[list[int]] = [[] for _ in range(n_sets)]
    counts = [0] * max_assoc
    for i, line in enumerate(line_ids.tolist()):
        stack = stacks[line & mask]
        try:
            depth = stack.index(line)
        except ValueError:
            stack.insert(0, line)
            if len(stack) > max_assoc:
                stack.pop()
            continue
        if depth:
            del stack[depth]
            stack.insert(0, line)
        if i >= count_from:
            counts[depth] += 1
    # counts[d] = refs with stack distance exactly d; hit in k-way iff d < k.
    hits[:] = np.cumsum(counts)
    return hits


def fully_associative_miss_curve(
    ids: np.ndarray,
    sizes: list[int] | np.ndarray,
    count_from: int = 0,
    engine: str | None = None,
) -> np.ndarray:
    """Miss counts of fully-associative LRU structures of several sizes.

    One global LRU stack pass yields the stack-distance histogram; the
    miss count for capacity c is the number of references with distance
    >= c, plus compulsory misses.

    Args:
        ids: the reference stream (e.g. virtual page numbers, already
            combined with ASIDs if translations are per-address-space).
        sizes: capacities of interest, in entries.

    Returns:
        Array of miss counts aligned with ``sizes``.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    max_size = int(sizes.max())
    ids = np.asarray(ids, dtype=np.int64)
    depths = lru_depths(ids, 1, max_size, engine=engine)
    counted = max(len(ids) - count_from, 0)
    cumulative_hits = np.cumsum(_depth_histogram(depths, max_size, count_from))
    return counted - cumulative_hits[sizes - 1]


def fully_associative_miss_curve_reference(
    ids: np.ndarray, sizes: list[int] | np.ndarray, count_from: int = 0
) -> np.ndarray:
    """Interpreted twin of :func:`fully_associative_miss_curve`."""
    sizes = np.asarray(sizes, dtype=np.int64)
    max_size = int(sizes.max())
    # histogram[d] = counted refs with stack distance exactly d
    # (d < max_size); deeper distances and compulsory misses miss in
    # every size of interest.
    histogram = [0] * max_size
    stack: list[int] = []
    seen: set[int] = set()
    counted = 0
    for i, ref in enumerate(ids.tolist()):
        in_window = i >= count_from
        if in_window:
            counted += 1
        if ref not in seen:
            seen.add(ref)
            stack.insert(0, ref)
            continue
        depth = stack.index(ref)
        if depth:
            del stack[depth]
            stack.insert(0, ref)
        if in_window and depth < max_size:
            histogram[depth] += 1
    cumulative_hits = np.cumsum(histogram)
    return counted - cumulative_hits[sizes - 1]


def compulsory_miss_count(ids: np.ndarray) -> int:
    """Number of distinct identifiers (first-touch / cold misses)."""
    return int(np.unique(np.asarray(ids)).size)


class StreamingStackDistance:
    """Chunk-streaming LRU stack-distance pass with carried state.

    Feeding a reference stream chunk by chunk produces depth statistics
    *bit-identical* to one :func:`lru_depths` pass over the whole
    stream, while holding only one chunk (plus the stack state) in
    memory.  The trick is that an LRU stack under
    insert-at-top / move-to-front / pop-beyond-``max_assoc`` semantics
    is exactly the set's ``max_assoc`` most recently touched distinct
    ids ordered by last touch — so the state after a chunk can be
    reconstructed *inside the unmodified engines* by replaying each
    set's stack LRU-first as a synthetic priming prefix before the next
    chunk, then discarding the prefix's depths.  The fast native and
    vectorized kernels need no carried-state API at all.

    ``n_sets == 1`` gives the fully-associative single-stack pass used
    by the TLB study.  With ``track_flags=True`` a per-reference class
    flag is accumulated alongside (the kernel/user miss split).
    """

    def __init__(
        self,
        n_sets: int,
        max_assoc: int,
        engine: str | None = None,
        track_flags: bool = False,
    ):
        if n_sets < 1 or n_sets & (n_sets - 1):
            raise ValueError("n_sets must be a positive power of two")
        if max_assoc < 1:
            raise ValueError("max_assoc must be >= 1")
        self.n_sets = n_sets
        self.max_assoc = max_assoc
        self.engine = engine
        self._mask = n_sets - 1
        self._track_flags = track_flags
        # Stack state, grouped by set in rank (MRU-first) order.
        self._stack_ids = np.empty(0, dtype=np.int64)
        self._stack_sets = np.empty(0, dtype=np.int64)
        self._hist = np.zeros(max_assoc, dtype=np.int64)
        self._flag_hist = np.zeros(max_assoc, dtype=np.int64)
        self._counted = 0
        self._flagged_counted = 0

    @staticmethod
    def _ranks(sets: np.ndarray) -> np.ndarray:
        """Position of each element within its (contiguous) set group."""
        fresh = np.empty(len(sets), dtype=bool)
        fresh[0] = True
        np.not_equal(sets[1:], sets[:-1], out=fresh[1:])
        starts = np.flatnonzero(fresh)
        group = np.cumsum(fresh) - 1
        return np.arange(len(sets), dtype=np.int64) - starts[group]

    def _prefix(self) -> np.ndarray:
        """The priming prefix: every set's stack replayed LRU-first."""
        if not len(self._stack_ids):
            return np.empty(0, dtype=np.int64)
        rank = self._ranks(self._stack_sets)
        order = np.lexsort((-rank, self._stack_sets))
        return self._stack_ids[order]

    def _update_stacks(self, ids: np.ndarray) -> None:
        # Distinct chunk ids, most recently touched first.
        rev = ids[::-1]
        uniq, rev_idx = np.unique(rev, return_index=True)
        last_pos = len(ids) - 1 - rev_idx
        new_sets = uniq & self._mask
        if len(self._stack_ids):
            survive = np.isin(self._stack_ids, uniq, invert=True)
            old_ids = self._stack_ids[survive]
            old_sets = self._stack_sets[survive]
        else:
            old_ids = old_sets = np.empty(0, dtype=np.int64)
        merged_sets = np.concatenate([new_sets, old_sets])
        merged_ids = np.concatenate([uniq, old_ids])
        # Chunk-touched ids outrank survivors; within each class the
        # order is by recency (new) / preserved rank (old).
        priority = np.concatenate(
            [np.zeros(len(uniq), dtype=np.int8), np.ones(len(old_ids), dtype=np.int8)]
        )
        sequence = np.concatenate(
            [-last_pos, np.arange(len(old_ids), dtype=np.int64)]
        )
        order = np.lexsort((sequence, priority, merged_sets))
        sorted_sets = merged_sets[order]
        sorted_ids = merged_ids[order]
        keep = self._ranks(sorted_sets) < self.max_assoc
        self._stack_sets = sorted_sets[keep]
        self._stack_ids = sorted_ids[keep]

    def feed(
        self,
        ids: np.ndarray,
        flags: np.ndarray | None = None,
        count_from: int = 0,
    ) -> np.ndarray:
        """Consume one chunk; returns the chunk's per-reference depths.

        ``count_from`` is chunk-relative: references before it warm the
        stacks without being counted in the accumulated histograms.
        The returned depths cover the whole chunk (a depth equal to
        ``max_assoc`` is a miss at every tracked associativity), so
        callers that need per-reference miss flags — the timing unit —
        can derive them without a second pass.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if len(ids) == 0:
            return np.empty(0, dtype=np.int16)
        prefix = self._prefix()
        full = np.concatenate([prefix, ids]) if len(prefix) else ids
        depths = lru_depths(full, self.n_sets, self.max_assoc, engine=self.engine)
        chunk_depths = depths[len(prefix):]
        window = chunk_depths[count_from:]
        self._hist += np.bincount(window, minlength=self.max_assoc + 1)[
            : self.max_assoc
        ]
        self._counted += len(window)
        if self._track_flags:
            if flags is None:
                raise ValueError("flags required when track_flags=True")
            flag_window = np.asarray(flags, dtype=bool)[count_from:]
            self._flag_hist += np.bincount(
                window[flag_window], minlength=self.max_assoc + 1
            )[: self.max_assoc]
            self._flagged_counted += int(flag_window.sum())
        self._update_stacks(ids)
        return chunk_depths

    def export_stacks(self) -> dict[int, list[int]]:
        """Carried per-set LRU stacks, MRU-first (stateful sets only).

        Together with :meth:`import_stacks` this lets a caller that
        owns equivalent per-set state in another representation — the
        reference :class:`~repro.memsim.tlb.Tlb`'s move-to-front lists
        — round-trip it through the vectorized engine and back, so
        interleaving scalar and batched accesses stays bit-identical.
        """
        stacks: dict[int, list[int]] = {}
        for set_index, ident in zip(
            self._stack_sets.tolist(), self._stack_ids.tolist()
        ):
            stacks.setdefault(set_index, []).append(ident)
        return stacks

    def import_stacks(self, stacks: dict[int, list[int]]) -> None:
        """Replace the carried state with per-set MRU-first stacks.

        Each id must map to its claimed set (``id & (n_sets - 1)``);
        stacks deeper than ``max_assoc`` are truncated to the tracked
        depth, exactly as feeding would have capped them.
        """
        sets: list[int] = []
        ids: list[int] = []
        for set_index in sorted(stacks):
            stack = stacks[set_index][: self.max_assoc]
            for ident in stack:
                if ident & self._mask != set_index:
                    raise ValueError(
                        f"id {ident} does not belong to set {set_index}"
                    )
            sets.extend([set_index] * len(stack))
            ids.extend(stack)
        self._stack_sets = np.asarray(sets, dtype=np.int64)
        self._stack_ids = np.asarray(ids, dtype=np.int64)

    @property
    def counted(self) -> int:
        """Counted (post-warmup) references fed so far."""
        return self._counted

    @property
    def flagged_counted(self) -> int:
        """Counted references with the class flag set."""
        return self._flagged_counted

    def hit_counts(self) -> np.ndarray:
        """``hits[k-1]`` = counted references hitting k-way (≙ batch)."""
        return np.cumsum(self._hist)

    def miss_counts(self) -> np.ndarray:
        """Counted misses per associativity 1..max_assoc."""
        return self._counted - self.hit_counts()

    def flagged_miss_counts(self) -> np.ndarray:
        """Counted flagged-class misses per associativity."""
        return self._flagged_counted - np.cumsum(self._flag_hist)


def set_associative_miss_split(
    ids: np.ndarray,
    n_sets: int,
    max_assoc: int,
    class_flags: np.ndarray,
    count_from: int = 0,
    engine: str | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Misses per associativity, split by a per-reference class flag.

    Used by the TLB study, where misses on mapped *kernel* pages cost an
    order of magnitude more than user-page misses: one pass yields
    (total misses, flagged-class misses) for every associativity.

    Args:
        ids: reference identifiers (low bits = set index).
        n_sets: number of sets.
        max_assoc: deepest associativity of interest.
        class_flags: boolean array; flagged references contribute to the
            second returned array.

    Returns:
        ``(misses, flagged_misses)`` — arrays of length ``max_assoc``
        where index k-1 corresponds to a k-way structure.
    """
    ids = np.asarray(ids, dtype=np.int64)
    depths = lru_depths(ids, n_sets, max_assoc, engine=engine)
    window = depths[count_from:]
    flags = np.asarray(class_flags, dtype=bool)[count_from:]
    total = len(window)
    flagged_total = int(flags.sum())
    hits = np.cumsum(np.bincount(window, minlength=max_assoc + 1)[:max_assoc])
    flagged_hits = np.cumsum(
        np.bincount(window[flags], minlength=max_assoc + 1)[:max_assoc]
    )
    return total - hits, flagged_total - flagged_hits


def set_associative_miss_split_reference(
    ids: np.ndarray,
    n_sets: int,
    max_assoc: int,
    class_flags: np.ndarray,
    count_from: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Interpreted twin of :func:`set_associative_miss_split`."""
    if n_sets < 1 or n_sets & (n_sets - 1):
        raise ValueError("n_sets must be a positive power of two")
    hits_by_depth = [0] * max_assoc
    flagged_hits_by_depth = [0] * max_assoc
    total = 0
    flagged_total = 0
    mask = n_sets - 1
    stacks: dict[int, list[int]] = {}
    flags_list = np.asarray(class_flags, dtype=bool).tolist()
    for i, (ref, flagged) in enumerate(zip(np.asarray(ids).tolist(), flags_list)):
        in_window = i >= count_from
        if in_window:
            total += 1
            if flagged:
                flagged_total += 1
        stack = stacks.setdefault(ref & mask, [])
        try:
            depth = stack.index(ref)
        except ValueError:
            stack.insert(0, ref)
            if len(stack) > max_assoc:
                stack.pop()
            continue
        if depth:
            del stack[depth]
            stack.insert(0, ref)
        if in_window:
            hits_by_depth[depth] += 1
            if flagged:
                flagged_hits_by_depth[depth] += 1
    misses = total - np.cumsum(hits_by_depth)
    flagged_misses = flagged_total - np.cumsum(flagged_hits_by_depth)
    return misses, flagged_misses


def fully_associative_miss_split(
    ids: np.ndarray,
    sizes: list[int] | np.ndarray,
    class_flags: np.ndarray,
    count_from: int = 0,
    engine: str | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Fully-associative miss curve split by a per-reference class flag.

    Single-stack analogue of :func:`set_associative_miss_split`; returns
    ``(misses, flagged_misses)`` aligned with ``sizes``.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    max_size = int(sizes.max())
    ids = np.asarray(ids, dtype=np.int64)
    depths = lru_depths(ids, 1, max_size, engine=engine)
    window = depths[count_from:]
    flags = np.asarray(class_flags, dtype=bool)[count_from:]
    total = len(window)
    flagged_total = int(flags.sum())
    cumulative = np.cumsum(np.bincount(window, minlength=max_size + 1)[:max_size])
    flagged_cumulative = np.cumsum(
        np.bincount(window[flags], minlength=max_size + 1)[:max_size]
    )
    return (
        total - cumulative[sizes - 1],
        flagged_total - flagged_cumulative[sizes - 1],
    )


def fully_associative_miss_split_reference(
    ids: np.ndarray,
    sizes: list[int] | np.ndarray,
    class_flags: np.ndarray,
    count_from: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Interpreted twin of :func:`fully_associative_miss_split`."""
    sizes = np.asarray(sizes, dtype=np.int64)
    max_size = int(sizes.max())
    histogram = [0] * max_size
    flagged_histogram = [0] * max_size
    stack: list[int] = []
    seen: set[int] = set()
    total = 0
    flagged_total = 0
    flags_list = np.asarray(class_flags, dtype=bool).tolist()
    for i, (ref, flagged) in enumerate(zip(np.asarray(ids).tolist(), flags_list)):
        in_window = i >= count_from
        if in_window:
            total += 1
            if flagged:
                flagged_total += 1
        if ref not in seen:
            seen.add(ref)
            stack.insert(0, ref)
            continue
        depth = stack.index(ref)
        if depth:
            del stack[depth]
            stack.insert(0, ref)
        if in_window and depth < max_size:
            histogram[depth] += 1
            if flagged:
                flagged_histogram[depth] += 1
    cumulative = np.cumsum(histogram)
    flagged_cumulative = np.cumsum(flagged_histogram)
    return (
        total - cumulative[sizes - 1],
        flagged_total - flagged_cumulative[sizes - 1],
    )
