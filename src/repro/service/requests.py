"""Request validation and normalization for the allocation service.

Both front ends (the CLI and the HTTP endpoint) accept the same JSON
request objects and push them through :func:`validate_request`, which
either raises :class:`~repro.errors.RequestError` naming the offending
field or returns a *normalized* request: every optional field present
(``None`` where unset), lists coerced, defaults applied.  Normalized
requests are canonical, so they double as LRU cache keys — two
spellings of the same query hit the same cache line.
"""

from __future__ import annotations

from repro.errors import RequestError

REQUEST_TYPES = ("point", "batch", "pareto")

SPACES = ("single", "two_level")

_FIELDS = {
    "point": {"type", "os", "budget", "limit", "max_cache_assoc",
              "max_access_time_ns", "space", "power_budget", "request_id"},
    "batch": {"type", "os", "os_names", "budgets", "limit",
              "max_cache_assoc", "max_access_time_ns", "space",
              "power_budget", "request_id"},
    "pareto": {"type", "os", "max_budget", "max_cache_assoc",
               "max_access_time_ns", "space", "budgets", "power_budgets",
               "request_id"},
}

MAX_REQUEST_ID_CHARS = 128

MAX_BATCH_POINTS = 10_000
"""Upper bound on |os_names| x |budgets| for one batch request."""

MAX_SURFACE_CELLS = 2_048
"""Upper bound on |budgets| x |power_budgets| for one surface request."""


def _require_str(request: dict, field: str) -> str:
    value = request.get(field)
    if not isinstance(value, str) or not value:
        raise RequestError(f"field {field!r} must be a non-empty string")
    return value


def _positive_number(value, field: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise RequestError(f"field {field!r} must be a number, got {value!r}")
    if value <= 0:
        raise RequestError(f"field {field!r} must be > 0, got {value!r}")
    return float(value)


def _optional_positive_int(request: dict, field: str) -> int | None:
    value = request.get(field)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestError(f"field {field!r} must be an integer, got {value!r}")
    if value < 1:
        raise RequestError(f"field {field!r} must be >= 1, got {value!r}")
    return value


def _optional_positive_number(request: dict, field: str) -> float | None:
    value = request.get(field)
    if value is None:
        return None
    return _positive_number(value, field)


def validate_request(request) -> dict:
    """Validate a raw request object into its normalized form.

    Raises:
        RequestError: on any shape, type, or range violation; the
            message names the field.
    """
    if not isinstance(request, dict):
        raise RequestError(
            f"request must be a JSON object, got {type(request).__name__}"
        )
    req_type = request.get("type", "point")
    if req_type not in REQUEST_TYPES:
        raise RequestError(
            f"field 'type' must be one of {', '.join(REQUEST_TYPES)}; "
            f"got {req_type!r}"
        )
    unknown = set(request) - _FIELDS[req_type]
    if unknown:
        raise RequestError(
            f"unknown field(s) for a {req_type!r} request: "
            f"{', '.join(sorted(map(str, unknown)))}"
        )

    # A client correlation tag: validated, logged by the HTTP layer,
    # but *excluded* from the normalized form so two clients asking the
    # same question with different tags share one cache line.
    request_id = request.get("request_id")
    if request_id is not None:
        if not isinstance(request_id, str) or not request_id:
            raise RequestError("field 'request_id' must be a non-empty string")
        if len(request_id) > MAX_REQUEST_ID_CHARS:
            raise RequestError(
                f"field 'request_id' exceeds {MAX_REQUEST_ID_CHARS} characters"
            )

    space = request.get("space", "single")
    if space not in SPACES:
        raise RequestError(
            f"field 'space' must be one of {', '.join(SPACES)}; got {space!r}"
        )

    common = {
        "max_cache_assoc": _optional_positive_int(request, "max_cache_assoc"),
        "max_access_time_ns": _optional_positive_number(
            request, "max_access_time_ns"
        ),
        "space": space,
    }
    if space == "two_level" and (
        common["max_cache_assoc"] is not None
        or common["max_access_time_ns"] is not None
    ):
        # The assoc/access-time restrictions parameterize the
        # single-level pricing; the two-level space has its own
        # capacity-split knobs and takes the measured grid whole.
        raise RequestError(
            "fields 'max_cache_assoc'/'max_access_time_ns' do not apply "
            "to the two_level space"
        )

    if req_type == "point":
        limit = _optional_positive_int(request, "limit")
        if space == "two_level" and limit not in (None, 1):
            raise RequestError(
                "two_level queries answer the single best allocation; "
                "field 'limit' must be 1 or omitted"
            )
        return {
            "type": "point",
            "os": _require_str(request, "os"),
            "budget": _positive_number(request.get("budget"), "budget"),
            "limit": limit,
            "power_budget": _optional_positive_number(
                request, "power_budget"
            ),
            **common,
        }

    if req_type == "batch":
        if "os_names" in request:
            os_names = request["os_names"]
            if not isinstance(os_names, list) or not os_names:
                raise RequestError("field 'os_names' must be a non-empty list")
            for value in os_names:
                if not isinstance(value, str) or not value:
                    raise RequestError(
                        "field 'os_names' entries must be non-empty strings, "
                        f"got {value!r}"
                    )
        else:
            os_names = [_require_str(request, "os")]
        budgets = request.get("budgets")
        if not isinstance(budgets, list) or not budgets:
            raise RequestError("field 'budgets' must be a non-empty list")
        budgets = [_positive_number(b, "budgets") for b in budgets]
        if len(os_names) * len(budgets) > MAX_BATCH_POINTS:
            raise RequestError(
                f"batch too large: {len(os_names)} x {len(budgets)} points "
                f"exceeds the {MAX_BATCH_POINTS}-point limit"
            )
        limit = _optional_positive_int(request, "limit")
        if space == "two_level" and limit not in (None, 1):
            raise RequestError(
                "two_level queries answer the single best allocation; "
                "field 'limit' must be 1 or omitted"
            )
        return {
            "type": "batch",
            "os_names": os_names,
            "budgets": budgets,
            "limit": limit if limit is not None else 1,
            "power_budget": _optional_positive_number(
                request, "power_budget"
            ),
            **common,
        }

    # pareto: the single-level frontier, or — on the two_level space —
    # an (area budget x power budget) Pareto *surface*.
    if space == "two_level":
        if "max_budget" in request:
            raise RequestError(
                "field 'max_budget' does not apply to a two_level "
                "surface; pass 'budgets' and 'power_budgets' grids"
            )
        budgets = request.get("budgets")
        power_budgets = request.get("power_budgets")
        for name, values in (("budgets", budgets),
                             ("power_budgets", power_budgets)):
            if not isinstance(values, list) or not values:
                raise RequestError(
                    f"a two_level pareto request needs field {name!r} "
                    "as a non-empty list"
                )
        budgets = [_positive_number(b, "budgets") for b in budgets]
        power_budgets = [
            _positive_number(p, "power_budgets") for p in power_budgets
        ]
        if len(budgets) * len(power_budgets) > MAX_SURFACE_CELLS:
            raise RequestError(
                f"surface too large: {len(budgets)} x {len(power_budgets)} "
                f"cells exceeds the {MAX_SURFACE_CELLS}-cell limit"
            )
        return {
            "type": "pareto",
            "os": _require_str(request, "os"),
            "budgets": budgets,
            "power_budgets": power_budgets,
            **common,
        }
    if "budgets" in request or "power_budgets" in request:
        raise RequestError(
            "fields 'budgets'/'power_budgets' require space='two_level'"
        )
    return {
        "type": "pareto",
        "os": _require_str(request, "os"),
        "max_budget": _optional_positive_number(request, "max_budget"),
        **common,
    }
