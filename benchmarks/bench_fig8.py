"""Benchmark: regenerate Figure 8 (SA TLB performance vs 256-entry FA)."""

from repro.experiments import fig8
from repro.experiments.common import format_table


def test_fig8(benchmark, show):
    rows = benchmark(fig8.run)
    show("Figure 8: SA TLB performance relative to 256-FA (video_play)",
         format_table(rows))
    by_entries = {r["entries"]: r for r in rows}
    assert by_entries[512]["8-way"] > by_entries[64]["8-way"]
