"""Figure 6: area cost for caches of different capacity and line size."""

from __future__ import annotations

from repro.areamodel.cache_area import cache_area_rbe
from repro.experiments.common import format_table
from repro.units import KB

CAPACITIES = tuple(k * KB for k in (1, 2, 4, 8, 16, 32, 64))
LINES = (1, 2, 4, 8)


def run(assoc: int = 1) -> list[dict]:
    """Return the cache area grid (direct-mapped, as in the figure)."""
    rows = []
    for capacity in CAPACITIES:
        row = {"capacity_kb": capacity // KB}
        for line_words in LINES:
            row[f"{line_words}-word"] = round(
                cache_area_rbe(capacity, line_words, assoc)
            )
        rows.append(row)
    return rows


def main() -> None:
    """Print the Figure 6 series."""
    print("Figure 6: cache area (rbe) vs capacity and line size (direct-mapped)")
    rows = run()
    print(format_table(rows))
    small = rows[3]  # 8 KB
    reduction = 1 - small["8-word"] / small["1-word"]
    print(f"\n1-word -> 8-word line area reduction at 8 KB: {100 * reduction:.1f}%"
          " (paper: up to 37%)")


if __name__ == "__main__":
    main()
