"""Differential tests: fast engine vs the per-access reference simulators.

The fast paths (native C kernel, vectorized NumPy, batched grid) must
be *bit-identical* to the readable per-access simulators in
:mod:`repro.memsim.cache` and :mod:`repro.memsim.tlb` and to the
interpreted ``*_reference`` twins they replaced.  These tests sweep
randomized traces through both and compare exact miss counts — no
tolerances anywhere.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.memsim import engine as engine_mod
from repro.memsim.cache import Cache
from repro.memsim.engine import lru_depths, multi_group_depths, native_available
from repro.memsim.multiconfig import (
    cache_miss_ratio_grid,
    cache_miss_ratio_grid_reference,
    miss_flags_lru,
    miss_flags_lru_reference,
)
from repro.memsim.stackdist import (
    fully_associative_miss_curve,
    fully_associative_miss_curve_reference,
    fully_associative_miss_split,
    fully_associative_miss_split_reference,
    set_associative_hit_counts,
    set_associative_hit_counts_reference,
    set_associative_miss_split,
    set_associative_miss_split_reference,
)
from repro.memsim.tlb import Tlb
from repro.units import VPN_BITS, WORD_BYTES

ENGINES = ["auto", "vector", "python"] + (
    ["native"] if native_available() else []
)

# 24 cache geometries spanning the interesting shapes: direct-mapped to
# 8-way, 1- to 16-word lines, tiny caches (heavy conflict) to ones
# larger than the footprint (compulsory-only).
CACHE_CONFIGS = [
    (capacity, line_words, assoc)
    for capacity in (256, 1024, 4096, 16384)
    for line_words, assoc in (
        (1, 1), (1, 4), (4, 1), (4, 2), (4, 8), (16, 2),
    )
]


def synthetic_addresses(rng: np.random.Generator, n: int = 5000) -> np.ndarray:
    """A word-aligned mix of sequential runs, loops and random jumps."""
    chunks = []
    pos = int(rng.integers(0, 1 << 20))
    while sum(len(c) for c in chunks) < n:
        mode = rng.integers(0, 3)
        length = int(rng.integers(4, 120))
        if mode == 0:  # sequential run
            chunks.append(np.arange(pos, pos + length))
            pos += length
        elif mode == 1:  # loop over a small working set
            base = int(rng.integers(0, 1 << 16))
            span = int(rng.integers(2, 64))
            chunks.append(base + (np.arange(length) % span))
        else:  # random jumps
            chunks.append(rng.integers(0, 1 << 18, size=length))
            pos = int(chunks[-1][-1])
    words = np.concatenate(chunks)[:n]
    return words.astype(np.int64) * WORD_BYTES


@pytest.fixture(scope="module")
def trace_addresses():
    return synthetic_addresses(np.random.default_rng(42))


class TestGridVsCacheSimulator:
    @pytest.mark.slow
    @pytest.mark.parametrize("capacity,line_words,assoc", CACHE_CONFIGS)
    def test_miss_counts_match_cache(
        self, trace_addresses, capacity, line_words, assoc
    ):
        """Grid miss ratios equal the per-access Cache simulator's."""
        sim = Cache(capacity, line_words, assoc)
        sim.simulate(trace_addresses)
        grid = cache_miss_ratio_grid(
            trace_addresses, [capacity], [line_words], [assoc]
        )
        got = grid[(capacity, line_words, assoc)] * len(trace_addresses)
        assert round(got) == sim.result.misses

    @pytest.mark.parametrize("engine", ENGINES)
    def test_grid_engines_match_reference_grid(self, trace_addresses, engine):
        """All engine modes reproduce the interpreted grid bit-for-bit."""
        capacities = [512, 2048, 8192]
        lines = [4, 8]
        assocs = [1, 2, 4]
        ref = cache_miss_ratio_grid_reference(
            trace_addresses, capacities, lines, assocs, warmup_fraction=0.3
        )
        fast = cache_miss_ratio_grid(
            trace_addresses,
            capacities,
            lines,
            assocs,
            warmup_fraction=0.3,
            engine=engine,
        )
        assert fast == ref

    def test_miss_flags_match_cache_flags(self, trace_addresses):
        """Per-reference miss flags agree with the simulator's flags."""
        sim = Cache(2048, 4, 2)
        result = sim.simulate(trace_addresses, record_flags=True)
        line_ids = trace_addresses >> 4  # 4 words = 16 bytes
        flags = miss_flags_lru(line_ids, sim.sets, 2)
        np.testing.assert_array_equal(flags, result.miss_flags)
        np.testing.assert_array_equal(
            miss_flags_lru_reference(line_ids, sim.sets, 2), result.miss_flags
        )


class TestEngineModesAgree:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("n_sets,max_assoc", [(1, 8), (16, 4), (256, 8), (1024, 1), (64, 2)])
    def test_depths_match_python(self, rng, engine, n_sets, max_assoc):
        ids = rng.integers(0, 4096, size=6000).astype(np.int64)
        expected = lru_depths(ids, n_sets, max_assoc, engine="python")
        got = lru_depths(ids, n_sets, max_assoc, engine=engine)
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_multi_group_consistency(self, rng, engine):
        """Batched passes equal one-at-a-time passes for every group."""
        streams = [
            rng.integers(0, 2000, size=4000).astype(np.int64),
            rng.integers(0, 500, size=3000).astype(np.int64),
        ]
        groups = [(streams[0], [4, 64]), (streams[1], [1, 256])]
        batched = multi_group_depths(groups, 8, engine=engine)
        for (ids, set_counts), result in zip(groups, batched):
            assert sorted(result) == sorted(set_counts)
            for n_sets in set_counts:
                np.testing.assert_array_equal(
                    result[n_sets], lru_depths(ids, n_sets, 8, engine="python")
                )

    def test_vector_engine_exercised_below_threshold(self, rng):
        """engine='vector' must run the vectorized path even on small
        inputs (where 'auto' would pick the interpreted loop)."""
        ids = rng.integers(0, 64, size=200).astype(np.int64)
        assert len(ids) < engine_mod._VECTOR_MIN_UNITS
        np.testing.assert_array_equal(
            lru_depths(ids, 4, 4, engine="vector"),
            lru_depths(ids, 4, 4, engine="python"),
        )

    def test_stackdist_reference_twins(self, rng):
        ids = rng.integers(0, 300, size=4000).astype(np.int64)
        for engine in ENGINES:
            np.testing.assert_array_equal(
                set_associative_hit_counts(ids, 16, 8, count_from=100, engine=engine),
                set_associative_hit_counts_reference(ids, 16, 8, count_from=100),
            )
            np.testing.assert_array_equal(
                fully_associative_miss_curve(ids, [4, 16, 64], count_from=100, engine=engine),
                fully_associative_miss_curve_reference(ids, [4, 16, 64], count_from=100),
            )


class TestTlbDifferential:
    TLB_CONFIGS = [(16, 1), (16, 4), (64, 2), (64, 8), (128, 4)]

    @pytest.fixture(scope="class")
    def tlb_stream(self):
        rng = np.random.default_rng(7)
        n = 4000
        vpns = rng.integers(0, 200, size=n).astype(np.int64)
        asids = rng.integers(0, 4, size=n).astype(np.int64)
        kernel = rng.random(n) < 0.2
        return vpns, asids, kernel

    @pytest.mark.parametrize("entries,assoc", TLB_CONFIGS)
    def test_user_kernel_split_matches_tlb(self, tlb_stream, entries, assoc):
        """The one-pass split equals the per-access Tlb simulator,
        including the user/kernel miss classification."""
        vpns, asids, kernel = tlb_stream
        sim = Tlb(entries, assoc)
        result = sim.simulate(vpns, asids, kernel)
        ids = (asids << VPN_BITS) | vpns
        misses, kernel_misses = set_associative_miss_split(
            ids, entries // assoc, assoc, kernel
        )
        assert int(misses[assoc - 1]) == result.misses
        assert int(kernel_misses[assoc - 1]) == result.kernel_misses
        assert int(misses[assoc - 1] - kernel_misses[assoc - 1]) == result.user_misses

    def test_fully_associative_split_matches_tlb(self, tlb_stream):
        vpns, asids, kernel = tlb_stream
        ids = (asids << VPN_BITS) | vpns
        sizes = [16, 64, 128]
        misses, kernel_misses = fully_associative_miss_split(ids, sizes, kernel)
        for size, total, k in zip(sizes, misses, kernel_misses):
            sim = Tlb(size, "full")
            result = sim.simulate(vpns, asids, kernel)
            assert int(total) == result.misses
            assert int(k) == result.kernel_misses

    def test_split_reference_twins(self, tlb_stream):
        vpns, asids, kernel = tlb_stream
        ids = (asids << VPN_BITS) | vpns
        for engine in ENGINES:
            fast = set_associative_miss_split(
                ids, 16, 4, kernel, count_from=500, engine=engine
            )
            ref = set_associative_miss_split_reference(
                ids, 16, 4, kernel, count_from=500
            )
            np.testing.assert_array_equal(fast[0], ref[0])
            np.testing.assert_array_equal(fast[1], ref[1])
            fast_fa = fully_associative_miss_split(
                ids, [8, 32], kernel, count_from=500, engine=engine
            )
            ref_fa = fully_associative_miss_split_reference(
                ids, [8, 32], kernel, count_from=500
            )
            np.testing.assert_array_equal(fast_fa[0], ref_fa[0])
            np.testing.assert_array_equal(fast_fa[1], ref_fa[1])


class TestRandomizedSweep:
    @pytest.mark.slow
    @pytest.mark.parametrize("seed", range(6))
    def test_random_traces_all_engines(self, seed):
        """Randomized end-to-end sweep: every engine, every geometry
        class (closed-form caps 1 and 2 included), exact equality."""
        rng = np.random.default_rng(seed)
        addresses = synthetic_addresses(rng, n=3000)
        capacities = [256, 1024, 4096]
        lines = [1, 4]
        assocs = [1, 2, 8]
        ref = cache_miss_ratio_grid_reference(
            addresses, capacities, lines, assocs, warmup_fraction=0.25
        )
        for engine in ENGINES:
            fast = cache_miss_ratio_grid(
                addresses, capacities, lines, assocs,
                warmup_fraction=0.25, engine=engine,
            )
            assert fast == ref, f"engine={engine} diverged"
