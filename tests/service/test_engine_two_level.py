"""Service tests for the two-level space and power-budget queries.

The engine prices the full Table 5 enumeration, so the fixtures
measure the default grid on a short trace (as tests/service/
test_engine.py does) and the two-level space is built from the same
stored curves clients query.
"""

import numpy as np
import pytest

from repro.core.allocator import rank_priced_power
from repro.core.measure import BenefitCurves, measure_workload
from repro.errors import BudgetError, RequestError
from repro.service.engine import QueryEngine
from repro.service.requests import validate_request

TEST_REFERENCES = 60_000

AREA_BUDGET = 250_000.0
POWER_BUDGET = 40.0


@pytest.fixture(scope="module")
def curves():
    single = measure_workload("ousterhout", "mach", references=TEST_REFERENCES)
    return BenefitCurves(os_name="mach", per_workload=[single])


@pytest.fixture(scope="module")
def engine(curves):
    return QueryEngine.from_curves(curves)


class TestSingleLevelPower:
    def test_point_power_matches_rank_priced_power(self, engine):
        priced = engine.priced_space("mach")
        expect = rank_priced_power(priced, AREA_BUDGET, POWER_BUDGET, limit=5)
        served = engine.point(
            "mach", AREA_BUDGET, limit=5, power_budget=POWER_BUDGET
        )
        assert served == expect

    def test_power_ceiling_binds(self, engine):
        """A tight enough ceiling changes (or empties) the answer."""
        free = engine.point("mach", AREA_BUDGET, limit=1)[0]
        priced = engine.priced_space("mach")
        powers = np.asarray(priced.power_grid)
        tight = float(np.min(powers)) * 0.5
        with pytest.raises(BudgetError):
            engine.point("mach", AREA_BUDGET, limit=1, power_budget=tight)
        same = engine.point(
            "mach", AREA_BUDGET, limit=1, power_budget=float(np.max(powers))
        )[0]
        assert same == free

    def test_batch_power_matches_point(self, engine):
        budgets = [150_000.0, AREA_BUDGET]
        rows = engine.batch(
            ["mach"], budgets, limit=2, power_budget=POWER_BUDGET
        )
        assert [b for _, b, _ in rows] == budgets
        for _, budget, ranked in rows:
            expect = engine.point(
                "mach", budget, limit=2, power_budget=POWER_BUDGET
            )
            assert ranked == expect

    def test_batch_power_infeasible_is_empty_row(self, engine):
        rows = engine.batch(["mach"], [AREA_BUDGET], power_budget=1e-9)
        assert rows == [("mach", AREA_BUDGET, [])]


class TestTwoLevelQueries:
    def test_point_matches_space_best(self, engine):
        space = engine.two_level_space("mach")
        direct = space.best(AREA_BUDGET)
        served = engine.point_two_level("mach", AREA_BUDGET)
        assert served == direct

    def test_point_infeasible_raises(self, engine):
        with pytest.raises(BudgetError):
            engine.point_two_level("mach", 1.0)

    def test_point_with_power_budget(self, engine):
        space = engine.two_level_space("mach")
        direct = space.best(AREA_BUDGET, power_budget_mw=POWER_BUDGET)
        served = engine.point_two_level(
            "mach", AREA_BUDGET, power_budget=POWER_BUDGET
        )
        assert served == direct
        assert served.power <= POWER_BUDGET

    def test_batch_rows_match_point(self, engine):
        budgets = [1.0, 150_000.0, AREA_BUDGET]
        rows = engine.batch_two_level(["mach"], budgets)
        assert [(os, b) for os, b, _ in rows] == [
            ("mach", b) for b in budgets
        ]
        assert rows[0][2] is None
        for _, budget, result in rows[1:]:
            assert result == engine.point_two_level("mach", budget)

    def test_two_level_space_is_cached(self, engine):
        assert engine.two_level_space("mach") is engine.two_level_space(
            "mach"
        )

    def test_surface_cells_feasible_and_nondominated(self, engine):
        budgets = [100_000.0, AREA_BUDGET, 400_000.0]
        power_budgets = [25.0, POWER_BUDGET, 80.0]
        cells = engine.surface("mach", budgets, power_budgets)
        assert cells
        achieved = []
        for cell in cells:
            assert cell.result.area <= cell.area_budget
            assert cell.result.power <= cell.power_budget
            achieved.append(
                (cell.result.area, cell.result.power, cell.result.cpi)
            )
        for i, a in enumerate(achieved):
            for j, b in enumerate(achieved):
                if i == j:
                    continue
                dominates = all(x <= y for x, y in zip(b, a)) and any(
                    x < y for x, y in zip(b, a)
                )
                assert not dominates


class TestQueryApi:
    def test_two_level_point_response_shape(self, engine):
        out = engine.query(
            {"type": "point", "os": "mach", "budget": AREA_BUDGET,
             "space": "two_level"}
        )
        assert out["space"] == "two_level"
        assert out["count"] == 1
        (row,) = out["allocations"]
        assert set(row) >= {"rank", "tlb", "l1i", "l1d", "l2",
                            "area_rbe", "cpi", "power_mw"}
        direct = engine.point_two_level("mach", AREA_BUDGET)
        assert row["cpi"] == direct.cpi
        assert row["area_rbe"] == direct.area

    def test_two_level_batch_response_shape(self, engine):
        out = engine.query(
            {"type": "batch", "os": "mach", "budgets": [1.0, AREA_BUDGET],
             "space": "two_level", "power_budget": POWER_BUDGET}
        )
        assert out["space"] == "two_level"
        assert out["count"] == 2
        infeasible, feasible = out["results"]
        assert infeasible["feasible"] is False
        assert infeasible["allocations"] == []
        assert feasible["feasible"] is True
        assert feasible["allocations"][0]["power_mw"] <= POWER_BUDGET

    def test_two_level_pareto_response_shape(self, engine):
        budgets = [100_000.0, AREA_BUDGET]
        power_budgets = [25.0, 80.0]
        out = engine.query(
            {"type": "pareto", "os": "mach", "space": "two_level",
             "budgets": budgets, "power_budgets": power_budgets}
        )
        assert out["space"] == "two_level"
        assert out["count"] == len(out["surface"])
        for cell in out["surface"]:
            assert cell["area_budget"] in budgets
            assert cell["power_budget"] in power_budgets
            assert cell["area_rbe"] <= cell["area_budget"]

    def test_single_level_power_response(self, engine):
        out = engine.query(
            {"type": "point", "os": "mach", "budget": AREA_BUDGET,
             "limit": 1, "power_budget": POWER_BUDGET}
        )
        assert out["count"] == 1
        priced = engine.priced_space("mach")
        expect = rank_priced_power(
            priced, AREA_BUDGET, POWER_BUDGET, limit=1
        )[0]
        assert out["allocations"][0]["cpi"] == expect.cpi

    def test_result_cache_hits_on_respelled_two_level(self, engine):
        req = {"type": "point", "os": "mach", "budget": 222_000,
               "space": "two_level"}
        first = engine.query(req)
        hits_before = engine.stats["hits"]
        again = engine.query(
            {"space": "two_level", "budget": 222_000.0, "os": "mach",
             "type": "point"}
        )
        assert again == first
        assert engine.stats["hits"] == hits_before + 1


class TestValidation:
    def test_rejects_unknown_space(self):
        with pytest.raises(RequestError, match="space"):
            validate_request({"os": "mach", "budget": 1.0, "space": "l3"})

    def test_two_level_rejects_single_level_knobs(self):
        with pytest.raises(RequestError, match="max_cache_assoc"):
            validate_request(
                {"os": "mach", "budget": 1.0, "space": "two_level",
                 "max_cache_assoc": 2}
            )

    def test_two_level_point_limit_must_be_one(self):
        with pytest.raises(RequestError, match="limit"):
            validate_request(
                {"os": "mach", "budget": 1.0, "space": "two_level",
                 "limit": 3}
            )

    def test_two_level_pareto_needs_grids(self):
        with pytest.raises(RequestError, match="power_budgets"):
            validate_request(
                {"type": "pareto", "os": "mach", "space": "two_level",
                 "budgets": [1.0]}
            )
        with pytest.raises(RequestError, match="max_budget"):
            validate_request(
                {"type": "pareto", "os": "mach", "space": "two_level",
                 "max_budget": 5.0, "budgets": [1.0],
                 "power_budgets": [1.0]}
            )

    def test_single_pareto_rejects_grids(self):
        with pytest.raises(RequestError, match="two_level"):
            validate_request(
                {"type": "pareto", "os": "mach", "budgets": [1.0],
                 "power_budgets": [1.0]}
            )

    def test_surface_cell_limit(self):
        with pytest.raises(RequestError, match="cells"):
            validate_request(
                {"type": "pareto", "os": "mach", "space": "two_level",
                 "budgets": [float(b) for b in range(1, 65)],
                 "power_budgets": [float(p) for p in range(1, 34)]}
            )

    def test_power_budget_must_be_positive(self):
        with pytest.raises(RequestError, match="power_budget"):
            validate_request(
                {"os": "mach", "budget": 1.0, "power_budget": 0}
            )
