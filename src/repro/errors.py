"""Exception types shared across the package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """An invalid hardware configuration was requested (e.g. a cache whose
    line size exceeds its capacity, or a non-power-of-two geometry)."""


class TraceError(ReproError):
    """A malformed reference trace was supplied to a simulator."""


class BudgetError(ReproError):
    """An allocation request cannot be satisfied within the area budget."""


class ConfigError(ReproError):
    """An environment/configuration variable has an invalid value
    (e.g. a non-integer ``REPRO_JOBS``); the message names the
    variable and the offending value."""


class StoreError(ReproError):
    """A curve-store artifact is missing, corrupt, or fails its
    integrity check."""


class StaleStoreError(StoreError):
    """A curve-store artifact was written with an incompatible schema
    version; the message says how to rebuild it."""


class StoreIntegrityError(StoreError):
    """A curve-store object failed its SHA-256 integrity check or was
    read truncated/empty — possibly a transient torn read racing a
    publish, so loads retry these before giving up."""


class RequestError(ReproError):
    """A malformed query was submitted to the allocation service; the
    message names the offending field."""
