"""Fault injection for the query service — chaos you can schedule.

The service's degradation paths (integrity-check 503s, store-load
retries, the client's retry-on-503 loop, connection-drop recovery)
only stay honest if they can be exercised on demand.  This module
injects three fault classes at well-defined seams:

* ``corrupt_store`` — flip a byte of the object payload on a store
  read, so the SHA-256 check fails exactly as it would for real
  on-disk corruption (:meth:`CurveStore.load` retries, then surfaces
  :class:`~repro.errors.StoreIntegrityError` → HTTP 503);
* ``latency`` — sleep ``latency_ms`` before handling a request, to
  make timeout and overload behavior observable;
* ``drop_conn`` — close the client socket before writing a response,
  exercising client-side retry.

Faults are configured with a compact spec, via the ``REPRO_FAULTS``
environment variable or ``--faults`` on the CLI::

    REPRO_FAULTS="corrupt_store=0.3,latency_ms=20,latency_prob=0.5,drop_conn=0.1,seed=7"

Each fault takes a probability in [0, 1] and an optional trip budget
(``corrupt_store_limit=2`` trips at most twice, then disarms) so tests
can script "fail once, then recover".  Draws come from one seeded
``random.Random`` under a lock: a given spec misbehaves the same way
every run.  With no spec, every check is a single attribute test —
the production path pays nothing.
"""

from __future__ import annotations

import os
import threading

from repro.errors import ConfigError

ENV_VAR = "REPRO_FAULTS"
FAULT_NAMES = ("corrupt_store", "latency", "drop_conn")


class FaultRule:
    """One fault's arming state: probability plus optional trip budget."""

    def __init__(self, probability: float, limit: int | None = None):
        if not 0.0 <= probability <= 1.0:
            raise ConfigError(
                f"fault probability must be in [0, 1], got {probability!r}"
            )
        self.probability = probability
        self.limit = limit
        self.trips = 0

    def draw(self, rng) -> bool:
        if self.probability <= 0.0:
            return False
        if self.limit is not None and self.trips >= self.limit:
            return False
        if rng.random() < self.probability:
            self.trips += 1
            return True
        return False


class FaultInjector:
    """Deterministic, thread-safe fault source for the service seams."""

    def __init__(
        self,
        corrupt_store: float = 0.0,
        corrupt_store_limit: int | None = None,
        latency_ms: float = 0.0,
        latency_prob: float | None = None,
        drop_conn: float = 0.0,
        drop_conn_limit: int | None = None,
        seed: int = 1,
    ):
        import random

        if latency_ms < 0:
            raise ConfigError(f"latency_ms must be >= 0, got {latency_ms!r}")
        if latency_prob is None:
            latency_prob = 1.0 if latency_ms > 0 else 0.0
        self.latency_ms = latency_ms
        self._rules = {
            "corrupt_store": FaultRule(corrupt_store, corrupt_store_limit),
            "latency": FaultRule(latency_prob if latency_ms > 0 else 0.0),
            "drop_conn": FaultRule(drop_conn, drop_conn_limit),
        }
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    @property
    def active(self) -> bool:
        """True if any fault can still trip (the fast disarmed check)."""
        return any(
            rule.probability > 0.0
            and (rule.limit is None or rule.trips < rule.limit)
            for rule in self._rules.values()
        )

    def trip(self, name: str) -> bool:
        """Draw the named fault; True means the caller should misbehave."""
        rule = self._rules[name]
        if rule.probability <= 0.0:
            return False
        with self._lock:
            return rule.draw(self._rng)

    def trip_counts(self) -> dict[str, int]:
        with self._lock:
            return {name: rule.trips for name, rule in self._rules.items()}

    # -- seam helpers --------------------------------------------------

    def corrupt_read(self, data: bytes) -> bytes:
        """Flip one byte of ``data`` if ``corrupt_store`` trips."""
        if not self.trip("corrupt_store") or not data:
            return data
        corrupted = bytearray(data)
        with self._lock:
            index = self._rng.randrange(len(corrupted))
        corrupted[index] ^= 0xFF
        return bytes(corrupted)

    def maybe_latency(self) -> float:
        """Sleep the configured latency if ``latency`` trips; returns
        the injected delay in ms (0.0 when nothing tripped)."""
        import time

        if self.latency_ms > 0 and self.trip("latency"):
            time.sleep(self.latency_ms / 1e3)
            return self.latency_ms
        return 0.0

    def draw_latency(self) -> float:
        """Draw the latency fault *without sleeping*; returns the delay
        in ms (0.0 when nothing tripped).

        The non-blocking event loop cannot sleep on-loop, so it draws
        here and parks the request on a timer for the returned delay —
        same draws, same trip counts as :meth:`maybe_latency`.
        """
        if self.latency_ms > 0 and self.trip("latency"):
            return self.latency_ms
        return 0.0


DISABLED = FaultInjector()
"""The always-off injector; ``get_injector`` returns it by default."""

_FLOAT_KEYS = ("corrupt_store", "latency_ms", "latency_prob", "drop_conn")
_INT_KEYS = ("corrupt_store_limit", "drop_conn_limit", "seed")


def parse_faults(spec: str) -> FaultInjector:
    """Build an injector from a ``k=v,k=v`` spec string.

    Raises:
        ConfigError: unknown key, malformed number, or out-of-range
            probability — the message names the offender.
    """
    kwargs: dict = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        key = key.strip()
        if not sep:
            raise ConfigError(
                f"fault spec entry {part!r} is not of the form key=value"
            )
        try:
            if key in _FLOAT_KEYS:
                kwargs[key] = float(value)
            elif key in _INT_KEYS:
                kwargs[key] = int(value)
            else:
                raise ConfigError(
                    f"unknown fault spec key {key!r}; known keys: "
                    f"{', '.join(_FLOAT_KEYS + _INT_KEYS)}"
                )
        except ValueError as exc:
            raise ConfigError(
                f"fault spec {key}={value!r} is not a valid number"
            ) from exc
    return FaultInjector(**kwargs)


_injector: FaultInjector | None = None
_injector_lock = threading.Lock()


def get_injector() -> FaultInjector:
    """The process-wide injector.

    First access reads ``REPRO_FAULTS`` (empty/missing → disabled);
    later env changes are ignored — use :func:`set_injector` (tests,
    the ``--faults`` CLI flag) to swap at runtime.
    """
    global _injector
    if _injector is None:
        with _injector_lock:
            if _injector is None:
                spec = os.environ.get(ENV_VAR, "")
                _injector = parse_faults(spec) if spec else DISABLED
    return _injector


def set_injector(injector: FaultInjector | None) -> FaultInjector | None:
    """Install an injector (None → re-read env on next access);
    returns the previous one so tests can restore it."""
    global _injector
    with _injector_lock:
        previous, _injector = _injector, injector
    return previous
