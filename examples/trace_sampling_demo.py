"""Trace sampling a la Laha et al. (Section 3 of the paper).

The paper's trace-driven results come from 50 random hardware-trace
samples per workload; this demo runs the same estimator over a
synthetic trace and compares it with full-trace simulation, showing
how the estimate tightens with more samples — and why low-miss-ratio
configurations need more of them (Martonosi's caveat).

Run:  python examples/trace_sampling_demo.py
"""

from repro.memsim.cache import Cache
from repro.trace.generator import generate_trace
from repro.trace.sampling import sampled_miss_ratio


def cache_sample_simulator(capacity: int, line_words: int):
    """Build the per-sample miss counter the estimator needs."""

    def simulate(sub_trace, warmup):
        cache = Cache(capacity, line_words, 1)
        flags = cache.simulate(
            sub_trace.ifetch_physical(), record_flags=True
        ).miss_flags
        counted = flags[warmup:]
        return int(counted.sum()), len(counted)

    return simulate


def main() -> None:
    trace = generate_trace("mab", "mach", 600_000, seed=2)
    for capacity in (4 * 1024, 32 * 1024):
        cache = Cache(capacity, 4, 1)
        flags = cache.simulate(trace.ifetch_physical(), record_flags=True).miss_flags
        half = len(flags) // 2
        full = flags[half:].mean()
        print(f"\nI-cache {capacity // 1024}-KB DM, 4-word lines "
              f"(full-trace miss ratio {full:.4f}):")
        for samples in (5, 15, 35):
            estimate = sampled_miss_ratio(
                trace,
                cache_sample_simulator(capacity, 4),
                samples=samples,
                sample_length=12_000,
                seed=4,
            )
            print(
                f"  {samples:>3} samples: {estimate.mean:.4f} "
                f"+/- {estimate.std_error:.4f} "
                f"(relative error {estimate.relative_error:5.1%})"
            )


if __name__ == "__main__":
    main()
