"""Benchmark: regenerate Table 3 (OS effect on stall behaviour)."""

from repro.experiments import table3
from repro.experiments.common import format_table


def test_table3(benchmark, show):
    rows = benchmark(table3.run)
    show("Table 3: CPI breakdown, mpeg_play (None/Ultrix/Mach)", format_table(rows))
    assert [r["os"] for r in rows] == ["None (user-only)", "Ultrix", "Mach"]
