"""Tests for address spaces and segment layout."""

import pytest

from repro.errors import ConfigurationError
from repro.osmodel.addrspace import AddressSpace, SegmentAllocator
from repro.units import PAGE_BYTES


class TestSegmentAllocator:
    def test_allocations_do_not_overlap(self):
        allocator = SegmentAllocator(seed=0)
        ranges = []
        for size in (4096, 65536, 200_000, 8192):
            base = allocator.allocate(size)
            ranges.append((base, base + size))
        ranges.sort()
        for (a0, a1), (b0, __) in zip(ranges, ranges[1:]):
            assert a1 <= b0

    def test_granule_alignment(self):
        allocator = SegmentAllocator(seed=1)
        base = allocator.allocate(100)
        assert base % SegmentAllocator.GRANULE == 0

    def test_deterministic_for_seed(self):
        a = SegmentAllocator(seed=7)
        b = SegmentAllocator(seed=7)
        assert [a.allocate(4096) for _ in range(5)] == [
            b.allocate(4096) for _ in range(5)
        ]

    def test_multi_granule_contiguous(self):
        allocator = SegmentAllocator(seed=2)
        base = allocator.allocate(5 * SegmentAllocator.GRANULE)
        assert base >= 0
        # A following allocation must not land inside the block.
        other = allocator.allocate(4096)
        block = range(base, base + 5 * SegmentAllocator.GRANULE)
        assert other not in block


class TestAddressSpace:
    def test_add_and_lookup_segment(self):
        allocator = SegmentAllocator(seed=0)
        space = AddressSpace(name="task", asid=1)
        segment = space.add_segment(allocator, "text", 64 * 1024)
        assert space.segment("text") is segment
        assert segment.pages == 16

    def test_duplicate_segment_rejected(self):
        allocator = SegmentAllocator(seed=0)
        space = AddressSpace(name="task", asid=1)
        space.add_segment(allocator, "text", 4096)
        with pytest.raises(ConfigurationError):
            space.add_segment(allocator, "text", 4096)

    def test_missing_segment_rejected(self):
        space = AddressSpace(name="task", asid=1)
        with pytest.raises(ConfigurationError):
            space.segment("nope")

    def test_mapped_pages_excludes_unmapped(self):
        allocator = SegmentAllocator(seed=0)
        space = AddressSpace(name="kernel", asid=0)
        space.add_segment(allocator, "text", 8 * PAGE_BYTES, mapped=False)
        space.add_segment(allocator, "data", 4 * PAGE_BYTES, mapped=True)
        assert space.mapped_pages == 4

    def test_page_base_bounds(self):
        allocator = SegmentAllocator(seed=0)
        space = AddressSpace(name="task", asid=1)
        segment = space.add_segment(allocator, "heap", 2 * PAGE_BYTES)
        assert segment.page_base(1) == segment.base + PAGE_BYTES
        with pytest.raises(ConfigurationError):
            segment.page_base(2)
