"""The service front ends: HTTP endpoint and the JSON CLI."""

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.allocator import DEFAULT_BUDGET_RBES, Allocator
from repro.core.measure import BenefitCurves, measure_workload
from repro.service.__main__ import main as cli_main
from repro.service.engine import QueryEngine
from repro.service.http import MAX_BODY_BYTES, make_server, shutdown_gracefully
from repro.store import CurveStore, StoreKey

TEST_REFERENCES = 60_000


@pytest.fixture(scope="module")
def curves():
    single = measure_workload("ousterhout", "mach", references=TEST_REFERENCES)
    return BenefitCurves(os_name="mach", per_workload=[single])


@pytest.fixture(scope="module")
def store(tmp_path_factory, curves):
    store = CurveStore(tmp_path_factory.mktemp("svc-store") / "store")
    store.build(curves, StoreKey.current("mach", suite=("ousterhout",)))
    return store


@pytest.fixture(scope="module")
def server(store):
    server = make_server(QueryEngine(store), port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()


def _post(server, path, payload, raw: bytes | None = None):
    host, port = server.server_address[:2]
    body = raw if raw is not None else json.dumps(payload).encode()
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _get(server, path):
    host, port = server.server_address[:2]
    try:
        with urllib.request.urlopen(
            f"http://{host}:{port}{path}", timeout=10
        ) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestHttp:
    def test_health(self, server):
        status, payload = _get(server, "/v1/health")
        assert status == 200
        assert payload["ok"] is True
        assert payload["result"]["status"] == "serving"
        assert payload["result"]["entries"] == 1

    def test_point_round_trip_matches_allocator(self, server, curves):
        status, payload = _post(
            server,
            "/v1/query",
            {"type": "point", "os": "mach", "budget": DEFAULT_BUDGET_RBES,
             "limit": 5},
        )
        assert status == 200 and payload["ok"] is True
        direct = Allocator(curves, budget_rbes=DEFAULT_BUDGET_RBES).rank(limit=5)
        served = payload["result"]["allocations"]
        assert [(a["area_rbe"], a["cpi"]) for a in served] == [
            (a.area_rbe, a.cpi) for a in direct
        ]
        assert served[0]["tlb"] == direct[0].config.tlb.label()

    def test_pareto_round_trip(self, server):
        status, payload = _post(
            server,
            "/v1/query",
            {"type": "pareto", "os": "mach", "max_budget": DEFAULT_BUDGET_RBES},
        )
        assert status == 200
        frontier = payload["result"]["frontier"]
        assert frontier
        cpis = [p["cpi"] for p in frontier]
        assert cpis == sorted(cpis)

    def test_invalid_json_is_400(self, server):
        status, payload = _post(server, "/v1/query", None, raw=b"{nope")
        assert status == 400
        assert payload["error"]["code"] == "invalid_json"

    def test_invalid_request_is_400(self, server):
        status, payload = _post(server, "/v1/query", {"type": "point"})
        assert status == 400
        assert payload["error"]["code"] == "invalid_request"
        assert "os" in payload["error"]["message"]

    def test_unsatisfiable_budget_is_422(self, server):
        status, payload = _post(
            server, "/v1/query", {"type": "point", "os": "mach", "budget": 1}
        )
        assert status == 422
        assert payload["error"]["code"] == "budget_unsatisfiable"

    def test_unserved_os_is_503(self, server):
        status, payload = _post(
            server, "/v1/query",
            {"type": "point", "os": "ultrix", "budget": 250_000},
        )
        assert status == 503
        assert payload["error"]["code"] == "store_unavailable"

    def test_unknown_path_is_404(self, server):
        status, payload = _get(server, "/v2/everything")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_empty_body_is_400(self, server):
        host, port = server.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}/v1/query", data=b"", method="POST"
        )
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                status = response.status
        except urllib.error.HTTPError as exc:
            status = exc.code
        assert status == 400

    def test_success_carries_request_id_header(self, server):
        host, port = server.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}/v1/query",
            data=json.dumps(
                {"type": "point", "os": "mach", "budget": DEFAULT_BUDGET_RBES,
                 "limit": 1, "request_id": "corr-7"}
            ).encode(),
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.headers["X-Request-Id"]
            assert json.loads(response.read())["ok"] is True

    def test_health_inflight_gauge_present(self, server):
        status, payload = _get(server, "/v1/health")
        assert status == 200
        assert payload["result"]["inflight"]["current"] == 0


def _raw_request(server, head: str, body: bytes = b"") -> tuple[int, bool]:
    """Send a hand-rolled request; returns (status, conn_closed_after).

    Reads the full response (headers + declared body), then probes
    whether the server closed the connection — the keep-alive question
    the chunked/413 paths must answer correctly.
    """
    host, port = server.server_address[:2]
    with socket.create_connection((host, port), timeout=10) as conn:
        conn.sendall(head.encode() + body)
        conn_file = conn.makefile("rb")
        status_line = conn_file.readline().decode()
        status = int(status_line.split()[1])
        length = 0
        while True:
            line = conn_file.readline().decode().strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.lower() == "content-length":
                length = int(value)
        conn_file.read(length)
        conn.settimeout(2.0)
        try:
            closed = conn.recv(1) == b""
        except TimeoutError:
            closed = False
    return status, closed


class TestProtocolEdges:
    def test_chunked_body_rejected_411_and_closed(self, server):
        head = (
            "POST /v1/query HTTP/1.1\r\n"
            "Host: test\r\n"
            "Transfer-Encoding: chunked\r\n"
            "\r\n"
        )
        status, closed = _raw_request(server, head)
        assert status == 411
        assert closed, "connection must close after refusing a chunked body"

    def test_oversized_body_413_closes_connection(self, server):
        head = (
            "POST /v1/query HTTP/1.1\r\n"
            "Host: test\r\n"
            f"Content-Length: {MAX_BODY_BYTES + 1}\r\n"
            "\r\n"
        )
        status, closed = _raw_request(server, head)
        assert status == 413
        assert closed, "connection must close instead of draining 4 MiB"

    def test_within_limit_body_keeps_connection_alive(self, server):
        body = json.dumps(
            {"type": "point", "os": "mach", "budget": DEFAULT_BUDGET_RBES,
             "limit": 1}
        ).encode()
        head = (
            "POST /v1/query HTTP/1.1\r\n"
            "Host: test\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n"
        )
        status, closed = _raw_request(server, head, body)
        assert status == 200
        assert not closed, "HTTP/1.1 keep-alive must survive a good request"

    def test_truncated_body_is_400(self, server):
        """A client that half-closes mid-body gets a structured 400."""
        body = b'{"type": "point"'
        head = (
            "POST /v1/query HTTP/1.1\r\n"
            "Host: test\r\n"
            f"Content-Length: {len(body) + 40}\r\n"
            "\r\n"
        )
        host, port = server.server_address[:2]
        with socket.create_connection((host, port), timeout=10) as conn:
            conn.sendall(head.encode() + body)
            conn.shutdown(socket.SHUT_WR)  # EOF: the rest never comes
            response = b""
            while chunk := conn.recv(4096):
                response += chunk
        assert response.split(b" ", 2)[1] == b"400"
        assert b'"invalid_request"' in response


class TestOverloadAndDrain:
    @pytest.fixture
    def slow_server(self, store):
        """max_inflight=1 over an engine that answers slowly."""
        engine = QueryEngine(store)
        real_query = engine.query

        def slow_query(request):
            time.sleep(0.4)
            return real_query(request)

        engine.query = slow_query
        server = make_server(engine, port=0, max_inflight=1)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        # The drain test has already shut the server down; both calls
        # are no-ops / idempotent then.
        server.shutdown()
        try:
            server.server_close()
        except OSError:
            pass

    def test_excess_load_sheds_429_with_retry_after(self, slow_server):
        first_status = {}

        def occupy():
            status, payload = _post(
                slow_server, "/v1/query",
                {"type": "point", "os": "mach", "budget": DEFAULT_BUDGET_RBES},
            )
            first_status["status"] = status

        occupier = threading.Thread(target=occupy)
        occupier.start()
        time.sleep(0.1)  # let the slow query take the only slot
        host, port = slow_server.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}/v1/query",
            data=json.dumps(
                {"type": "point", "os": "mach", "budget": DEFAULT_BUDGET_RBES}
            ).encode(),
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        occupier.join()
        assert excinfo.value.code == 429
        assert excinfo.value.headers["Retry-After"] == "1"
        payload = json.loads(excinfo.value.read())
        assert payload["error"]["code"] == "overloaded"
        assert first_status["status"] == 200
        rejections = slow_server.metrics.counter(
            "http_overload_rejections"
        ).total
        assert rejections == 1

    def test_graceful_shutdown_waits_for_inflight(self, slow_server):
        result = {}

        def issue():
            result["status"], result["payload"] = _post(
                slow_server, "/v1/query",
                {"type": "point", "os": "mach", "budget": DEFAULT_BUDGET_RBES,
                 "limit": 1},
            )

        requester = threading.Thread(target=issue)
        requester.start()
        time.sleep(0.1)  # the request is now mid-flight
        drained = shutdown_gracefully(slow_server, deadline_s=5.0)
        requester.join()
        assert drained is True
        assert result["status"] == 200
        assert result["payload"]["ok"] is True


class TestCli:
    def test_query_request_flag(self, store, curves, capsys):
        request = json.dumps(
            {"type": "point", "os": "mach", "budget": DEFAULT_BUDGET_RBES,
             "limit": 3}
        )
        code = cli_main(
            ["query", "--store", str(store.root), "--request", request]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        direct = Allocator(curves, budget_rbes=DEFAULT_BUDGET_RBES).rank(limit=3)
        assert [a["cpi"] for a in payload["result"]["allocations"]] == [
            a.cpi for a in direct
        ]

    def test_query_stdin(self, store, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO('{"type": "point", "os": "mach", "budget": 250000, '
                        '"limit": 1}'),
        )
        assert cli_main(["query", "--store", str(store.root)]) == 0
        assert json.loads(capsys.readouterr().out)["ok"] is True

    def test_bad_json_exits_2(self, store, capsys):
        code = cli_main(
            ["query", "--store", str(store.root), "--request", "{nope"]
        )
        assert code == 2
        err = json.loads(capsys.readouterr().err)
        assert err["error"]["code"] == "invalid_json"

    def test_bad_request_exits_2(self, store, capsys):
        code = cli_main(
            ["query", "--store", str(store.root), "--request",
             '{"type": "point", "os": "mach"}']
        )
        assert code == 2
        assert json.loads(capsys.readouterr().err)["error"]["code"] == (
            "invalid_request"
        )

    def test_missing_store_exits_3(self, tmp_path, capsys):
        code = cli_main(
            ["query", "--store", str(tmp_path / "void"), "--request",
             '{"type": "point", "os": "mach", "budget": 250000}']
        )
        assert code == 3
        assert json.loads(capsys.readouterr().err)["error"]["code"] == (
            "store_unavailable"
        )

    def test_impossible_budget_exits_4(self, store, capsys):
        code = cli_main(
            ["query", "--store", str(store.root), "--request",
             '{"type": "point", "os": "mach", "budget": 2}']
        )
        assert code == 4
        assert json.loads(capsys.readouterr().err)["error"]["code"] == (
            "budget_unsatisfiable"
        )

    def test_info(self, store, capsys):
        assert cli_main(["info", "--store", str(store.root)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["exists"] is True
        assert len(payload["entries"]) == 1
