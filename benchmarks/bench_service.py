"""Benchmark: query-service latency over a built curve store.

Separating characterization from queries only pays off if queries are
actually interactive.  This bench builds a reduced-scale store once
(the expensive step every query then skips), and times:

* **cold** — open the store, load + integrity-check the curves, price
  the space, answer one point query: the first-request cost of a
  fresh process.  Held under 100 ms at reduced scale.
* **warm point** — random-budget point queries against a warm engine
  (priced space reused, LRU missed on purpose).
* **cached** — the same query repeated (LRU hit).
* **threaded** — the same warm mix fired from 8 threads at once
  against one shared engine, the shape the HTTP server produces; the
  locked cache must not lose throughput or answers under contention.

p50/p95 latencies land in ``BENCH_service.json`` at the repo root.
Runs as pytest (``pytest benchmarks/bench_service.py -q -s``) or
standalone (``PYTHONPATH=src python benchmarks/bench_service.py``).
"""

from __future__ import annotations

import json
import platform
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.allocator import DEFAULT_BUDGET_RBES, Allocator
from repro.service.engine import QueryEngine
from repro.store import CurveStore

OS_NAME = "mach"
COLD_BUDGET_MS = 100.0
WARM_QUERIES = 200
BENCH_THREADS = 8
QUERIES_PER_THREAD = 50
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def _quantiles_ms(samples: list[float]) -> dict:
    arr = np.asarray(samples) * 1e3
    return {
        "p50_ms": round(float(np.percentile(arr, 50)), 3),
        "p95_ms": round(float(np.percentile(arr, 95)), 3),
        "max_ms": round(float(arr.max()), 3),
        "samples": len(samples),
    }


def build_store(root: Path) -> CurveStore:
    """Characterize the suite once (measurement-cache assisted)."""
    store = CurveStore(root)
    if store.find_current(OS_NAME) is None:
        store.build_for_os(OS_NAME)
    return store


def bench_cold(root: Path, reps: int = 3) -> tuple[dict, list]:
    """Fresh store handle + engine per rep: load, price, one query."""
    best = float("inf")
    top = None
    for _ in range(reps):
        t0 = time.perf_counter()
        engine = QueryEngine(CurveStore(root))
        top = engine.point(OS_NAME, DEFAULT_BUDGET_RBES, limit=10)
        best = min(best, time.perf_counter() - t0)
    return {"best_ms": round(best * 1e3, 3), "reps": reps}, top


def bench_warm(root: Path) -> tuple[dict, dict]:
    engine = QueryEngine(CurveStore(root))
    priced = engine.priced_space(OS_NAME)
    rng = np.random.default_rng(7)
    budgets = rng.uniform(
        priced.min_area() * 1.05, float(priced.area_grid.max()), WARM_QUERIES
    )
    warm = []
    for budget in budgets:
        t0 = time.perf_counter()
        engine.query(
            {"type": "point", "os": OS_NAME, "budget": float(budget),
             "limit": 10}
        )
        warm.append(time.perf_counter() - t0)
    cached = []
    request = {"type": "point", "os": OS_NAME,
               "budget": float(DEFAULT_BUDGET_RBES), "limit": 10}
    engine.query(request)
    for _ in range(WARM_QUERIES):
        t0 = time.perf_counter()
        engine.query(request)
        cached.append(time.perf_counter() - t0)
    return _quantiles_ms(warm), _quantiles_ms(cached)


def bench_threaded(root: Path) -> dict:
    """One shared warm engine, hammered from BENCH_THREADS threads.

    Reports aggregate throughput plus per-query latency quantiles; the
    stats invariant (hits + misses == queries issued) doubles as a
    correctness probe on the locked counters.
    """
    engine = QueryEngine(CurveStore(root), result_cache_size=32)
    priced = engine.priced_space(OS_NAME)  # pay pricing up front
    low, high = priced.min_area() * 1.05, float(priced.area_grid.max())
    barrier = threading.Barrier(BENCH_THREADS)
    samples: list[list[float]] = [[] for _ in range(BENCH_THREADS)]

    def worker(tid: int) -> None:
        rng = np.random.default_rng(100 + tid)
        # A small shared budget pool so threads collide on cache keys.
        budgets = rng.choice(
            np.linspace(low, high, 16), size=QUERIES_PER_THREAD
        )
        barrier.wait()
        for budget in budgets:
            t0 = time.perf_counter()
            engine.query(
                {"type": "point", "os": OS_NAME, "budget": float(budget),
                 "limit": 10}
            )
            samples[tid].append(time.perf_counter() - t0)

    pool = [
        threading.Thread(target=worker, args=(tid,))
        for tid in range(BENCH_THREADS)
    ]
    t0 = time.perf_counter()
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    wall_s = time.perf_counter() - t0

    total = BENCH_THREADS * QUERIES_PER_THREAD
    stats = engine.stats
    merged = [s for per_thread in samples for s in per_thread]
    result = _quantiles_ms(merged)
    result.update(
        threads=BENCH_THREADS,
        queries=total,
        wall_s=round(wall_s, 4),
        queries_per_s=round(total / wall_s, 1),
        cache_hits=stats["hits"],
        cache_misses=stats["misses"],
        stats_consistent=(stats["hits"] + stats["misses"] == total),
    )
    return result


def run_bench(root: Path | None = None) -> dict:
    if root is None:
        root = Path(tempfile.mkdtemp(prefix="repro-store-bench-")) / "store"
    store = build_store(root)
    cold, served_top = bench_cold(root)
    warm, cached = bench_warm(root)
    threaded = bench_threaded(root)

    # The service must agree with the brute-force path bit-for-bit.
    curves = store.load(store.find_current(OS_NAME))
    direct = Allocator(curves, budget_rbes=DEFAULT_BUDGET_RBES).rank(limit=10)
    identical = served_top == direct

    payload = {
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "os_name": OS_NAME,
        "store_root": str(root),
        "cold_load_plus_point_query": cold,
        "warm_point_query": warm,
        "cached_point_query": cached,
        "threaded_point_query": threaded,
        "identical_to_bruteforce": identical,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_service_latency(show):
    payload = run_bench()
    show(
        "Service query latency",
        json.dumps(
            {k: payload[k] for k in (
                "cold_load_plus_point_query",
                "warm_point_query",
                "cached_point_query",
                "threaded_point_query",
            )},
            indent=2,
        ),
    )
    assert payload["identical_to_bruteforce"]
    assert payload["cold_load_plus_point_query"]["best_ms"] < COLD_BUDGET_MS
    assert payload["warm_point_query"]["p95_ms"] < COLD_BUDGET_MS
    assert payload["threaded_point_query"]["stats_consistent"]


if __name__ == "__main__":
    result = run_bench()
    print(json.dumps(result, indent=2))
    print(f"wrote {OUTPUT}")
