"""Table 1 of the paper: on-chip memory in current-generation (1992-94)
microprocessors, plus helpers that apply the area model to each design.

Line sizes are in 4-byte words, as in the paper.  ``None`` marks values
the paper leaves blank; a unified cache is recorded on the I-cache side
with ``unified=True``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.areamodel.cache_area import cache_area_rbe
from repro.areamodel.tlb_area import FULLY_ASSOCIATIVE, tlb_area_rbe
from repro.units import KB


@dataclass(frozen=True)
class ProcessorSurveyEntry:
    """One row of the paper's Table 1.

    TLB sizing follows the paper's notation: ``tlb_entries`` with a
    ``tlb_split`` flag — e.g. the Pentium's "32-I 64-D" becomes two
    entries in ``tlb_parts``.
    """

    name: str
    die_mm2: float | None
    icache_bytes: int | None
    icache_assoc: int | None
    icache_line_words: int | None
    dcache_bytes: int | None
    dcache_assoc: int | None
    dcache_line_words: int | None
    unified_cache: bool
    tlb_parts: tuple[tuple[int, int | str], ...]
    """Tuple of (entries, associativity) — one element for unified TLBs,
    two (instruction, data) for split TLBs."""

    def total_memory_rbe(self) -> float | None:
        """MQF-predicted area of this design's on-chip memory, in rbe.

        Returns None when the survey row lacks the data to price it.
        Non-power-of-two survey geometries (e.g. the SuperSPARC's 20-KB
        5-way I-cache or the R4000's 96-entry TLB) are priced by linear
        interpolation between the nearest powers of two.
        """
        total = 0.0
        if self.icache_bytes is None:
            return None
        total += _cache_area_interp(
            self.icache_bytes, self.icache_line_words or 4, self.icache_assoc or 1
        )
        if not self.unified_cache:
            if self.dcache_bytes is None:
                return None
            total += _cache_area_interp(
                self.dcache_bytes, self.dcache_line_words or 4, self.dcache_assoc or 1
            )
        if not self.tlb_parts:
            return None
        for entries, assoc in self.tlb_parts:
            total += _tlb_area_interp(entries, assoc)
        return total


def _interp_pow2(value: int, fn) -> float:
    """Evaluate fn at `value`, interpolating between powers of two."""
    if value & (value - 1) == 0:
        return fn(value)
    low = 1 << (value.bit_length() - 1)
    high = low * 2
    frac = (value - low) / (high - low)
    return (1 - frac) * fn(low) + frac * fn(high)


def _cache_area_interp(capacity: int, line_words: int, assoc: int) -> float:
    def at_capacity(cap: int) -> float:
        def at_assoc(ways: int) -> float:
            return cache_area_rbe(cap, line_words, ways)

        return _interp_pow2(assoc, at_assoc)

    return _interp_pow2(capacity, at_capacity)


def _tlb_area_interp(entries: int, assoc: int | str) -> float:
    if assoc == FULLY_ASSOCIATIVE:
        return _interp_pow2(entries, lambda n: tlb_area_rbe(n, FULLY_ASSOCIATIVE))
    return _interp_pow2(entries, lambda n: tlb_area_rbe(n, min(assoc, n)))


FULL = FULLY_ASSOCIATIVE

PROCESSOR_SURVEY: tuple[ProcessorSurveyEntry, ...] = (
    ProcessorSurveyEntry("Intel i486DX", 81, 8 * KB, 4, None, None, None, None, True, ((32, 4),)),
    ProcessorSurveyEntry("Cyrix 486DX", 148, 8 * KB, 4, 4, None, None, None, True, ((32, 4),)),
    ProcessorSurveyEntry(
        "Intel Pentium", 296, 8 * KB, 2, 8, 8 * KB, 2, 8, False, ((32, 4), (64, 4))
    ),
    ProcessorSurveyEntry(
        "DEC 21064 (Alpha)", 234, 8 * KB, 1, 8, 8 * KB, 1, 8, False,
        ((32, FULL), (12, FULL)),
    ),
    ProcessorSurveyEntry(
        "Hitachi HARP-1 (PA-RISC)", 264, 8 * KB, 1, 8, 16 * KB, 1, 8, False,
        ((128, 1), (128, 1)),
    ),
    ProcessorSurveyEntry("PowerPC 601", 121, 32 * KB, 8, 16, None, None, None, True, ((256, 2),)),
    ProcessorSurveyEntry(
        "MIPS R4000", 184, 8 * KB, 1, 8, 8 * KB, 1, 8, False, ((96, FULL),)
    ),
    ProcessorSurveyEntry(
        "MIPS R4200", 81, 16 * KB, 1, 8, 8 * KB, 1, 4, False, ((64, FULL),)
    ),
    ProcessorSurveyEntry(
        "MIPS R4400", 184, 16 * KB, 1, 8, 16 * KB, 1, 8, False, ((96, FULL),)
    ),
    ProcessorSurveyEntry(
        "MIPS TFP", 298, 16 * KB, 1, 8, 16 * KB, 1, 8, False, ((384, 4),)
    ),
    ProcessorSurveyEntry(
        "SuperSPARC (Viking)", None, 20 * KB, 5, 16, 16 * KB, 4, 8, False, ((64, FULL),)
    ),
    ProcessorSurveyEntry(
        "MicroSPARC", 225, 4 * KB, 1, 8, 2 * KB, 1, 4, False, ((32, FULL),)
    ),
    ProcessorSurveyEntry(
        "TeraSPARC", None, 4 * KB, 1, 8, 4 * KB, 1, 8, False, ()
    ),
)


def survey_table(include_area: bool = True) -> list[dict]:
    """Render Table 1 as a list of row dictionaries.

    When *include_area* is set, a ``predicted_rbe`` column (our addition)
    prices each design's on-chip memory with the calibrated MQF model.
    """
    rows = []
    for entry in PROCESSOR_SURVEY:
        row = {
            "processor": entry.name,
            "die_mm2": entry.die_mm2,
            "icache": _fmt_cache(
                entry.icache_bytes, entry.icache_assoc, entry.icache_line_words
            ),
            "dcache": "(unified)"
            if entry.unified_cache
            else _fmt_cache(entry.dcache_bytes, entry.dcache_assoc, entry.dcache_line_words),
            "tlb": _fmt_tlb(entry.tlb_parts),
        }
        if include_area:
            area = entry.total_memory_rbe()
            row["predicted_rbe"] = None if area is None else round(area)
        rows.append(row)
    return rows


def _fmt_cache(size: int | None, assoc: int | None, line: int | None) -> str:
    if size is None:
        return "-"
    parts = [f"{size // KB}-KB"]
    if assoc is not None:
        parts.append("direct" if assoc == 1 else f"{assoc}-way")
    if line is not None:
        parts.append(f"{line}-word")
    return " ".join(parts)


def _fmt_tlb(parts: tuple[tuple[int, int | str], ...]) -> str:
    if not parts:
        return "-"
    rendered = []
    for entries, assoc in parts:
        assoc_label = "full" if assoc == FULLY_ASSOCIATIVE else f"{assoc}-way"
        rendered.append(f"{entries} {assoc_label}")
    return ", ".join(rendered)
