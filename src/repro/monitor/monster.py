"""Monster: the hardware-monitor substitute.

The original Monster is a DAS 9200 logic analyzer watching the CPU
pins of a DECstation 3100 and counting the causes of every stall
cycle non-invasively [Nagle92].  This substitute plays that role over
synthetic traces: it runs the full-system timing simulation and
reports the same breakdown the paper prints — total CPI and each
component's contribution above the base CPI of 1.0, with relative
percentages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memsim.timing import (
    DECSTATION_3100,
    SystemConfig,
    SystemTimingResult,
    simulate_system,
)
from repro.trace.events import ReferenceTrace

COMPONENT_ORDER = ("tlb", "icache", "dcache", "write_buffer", "other")

COMPONENT_LABELS = {
    "tlb": "TLB",
    "icache": "I-cache",
    "dcache": "D-cache",
    "write_buffer": "Write Buffer",
    "other": "Other",
}


@dataclass(frozen=True)
class StallReport:
    """One row of Table 3/4: CPI and its stall components."""

    workload: str
    os_name: str
    cpi: float
    components: dict[str, float]
    fractions: dict[str, float]

    def formatted_row(self) -> str:
        """Render in the paper's `0.15 (14%)` style."""
        cells = [f"{self.workload:<12}", f"{self.os_name:<8}", f"{self.cpi:5.2f}"]
        for key in COMPONENT_ORDER:
            cells.append(
                f"{self.components[key]:5.2f} ({round(100 * self.fractions[key]):>3d}%)"
            )
        return "  ".join(cells)


class Monster:
    """Stall-cycle attribution over reference traces.

    Args:
        config: the measured machine (DECstation 3100 by default, as
            in the paper's Tables 3/4).
        warmup_fraction: leading trace fraction used only for priming.
    """

    def __init__(
        self,
        config: SystemConfig = DECSTATION_3100,
        warmup_fraction: float = 0.4,
    ):
        self.config = config
        self.warmup_fraction = warmup_fraction

    def measure(self, trace: ReferenceTrace) -> StallReport:
        """Monitor one run and attribute its stalls."""
        result = self.simulate(trace)
        return StallReport(
            workload=trace.workload,
            os_name=trace.os_name,
            cpi=result.cpi,
            components=dict(result.cpi_components),
            fractions=result.component_fractions(),
        )

    def simulate(self, trace: ReferenceTrace) -> SystemTimingResult:
        """Raw timing result (counts as well as CPI components)."""
        return simulate_system(trace, self.config, self.warmup_fraction)

    @staticmethod
    def header() -> str:
        """Column header matching :meth:`StallReport.formatted_row`."""
        cells = [f"{'workload':<12}", f"{'os':<8}", f"{'CPI':>5}"]
        cells.extend(f"{COMPONENT_LABELS[k]:>12}" for k in COMPONENT_ORDER)
        return "  ".join(cells)
