"""Budget/Pareto query engine over a loaded curve store.

Separates the paper's expensive characterization (measuring curves)
from its cheap decision procedure (ranking under a budget).  The
engine loads :class:`~repro.core.measure.BenefitCurves` from a
:class:`~repro.store.CurveStore` once per OS, prices the configuration
space once per (OS, restriction) via :meth:`Allocator.price`, and then
answers arbitrary budget queries with :func:`rank_priced` — the same
vectorized kernel :meth:`Allocator.rank` uses, so every answer is
bit-identical to the brute-force path (the differential tests sweep
random budgets to hold this).

Three query shapes:

* **point** — the ranked allocations under one budget;
* **batch** — a sweep over budgets x OS mixes against warm priced
  spaces (no re-pricing, no re-simulation);
* **pareto** — the (area, CPI) frontier: allocations no other feasible
  point beats on both axes, with ties resolved exactly as the
  brute-force ranking resolves them.

Responses to the dict-level :meth:`QueryEngine.query` API are memoized
in an LRU keyed on the *normalized* request, so repeated or
re-spelled queries cost a dictionary hit.

The engine is shared by every ``ThreadingHTTPServer`` handler thread,
so all of its caches are concurrency-safe: one lock guards the LRU
``OrderedDict``, the curve/priced-space dicts, and the stats counters,
and every cache fills through a *single-flight* get-or-compute — when
32 threads miss on the same key at once, exactly one computes (counted
as the miss) while the rest block on an event and reuse its result
(counted as hits, and separately as ``coalesced``).  ``stats`` is a
property returning a snapshot taken under the lock, so readers never
see hits and misses torn against each other.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict

from repro.core.allocator import (
    DEFAULT_BUDGET_RBES,
    Allocation,
    Allocator,
    PricedSpace,
    batch_best_indexed,
    pareto_indexed,
    rank_indexed,
    rank_priced_power,
)
from repro.core.configs import CacheConfig, TlbConfig
from repro.core.cpi import CpiModel
from repro.core.hierarchy import TwoLevelSpace, build_two_level_space
from repro.core.measure import BenefitCurves
from repro.core.multiopt import GreedyResult, SurfacePoint, pareto_surface
from repro.errors import BudgetError, StoreError
from repro.obs.tracing import trace_span
from repro.service.requests import validate_request
from repro.store import CurveStore

DEFAULT_RESULT_CACHE = 128


def allocation_entry(rank: int, allocation: Allocation) -> dict:
    """One JSON-ready result row: the paper's table columns plus the
    exact (unrounded) area/CPI so clients can verify bit-identity."""
    return {
        "rank": rank,
        **allocation.row(),
        "area_rbe": allocation.area_rbe,
        "cpi": allocation.cpi,
    }


def two_level_entry(result: GreedyResult) -> dict:
    """One JSON-ready row for a two-level (TLB, L1I, L1D, L2) answer."""
    tlb_key, l1i_key, l1d_key, l2_key = result.keys
    return {
        "tlb": TlbConfig(*tlb_key).label(),
        "l1i": CacheConfig(*l1i_key).label(),
        "l1d": CacheConfig(*l1d_key).label(),
        "l2": CacheConfig(*l2_key).label(),
        "area_rbe": result.area,
        "cpi": result.cpi,
        "power_mw": result.power,
    }


def surface_entry(cell: SurfacePoint) -> dict:
    """One JSON-ready cell of an (area x power) Pareto surface."""
    return {
        "area_budget": cell.area_budget,
        "power_budget": cell.power_budget,
        **two_level_entry(cell.result),
    }


def pareto_frontier(ranked: list[Allocation]) -> list[Allocation]:
    """The non-dominated (area, CPI) subset of a CPI-ranked list.

    ``ranked`` must be sorted the way :func:`rank_priced` sorts —
    ascending (cpi, area) with ties in enumeration order.  Scanning in
    that order, a point joins the frontier iff its area is strictly
    below every earlier (better-or-equal CPI) point's area; among
    exact (cpi, area) ties the brute-force rank's first occurrence is
    the one kept.
    """
    frontier: list[Allocation] = []
    best_area = float("inf")
    for allocation in ranked:
        if allocation.area_rbe < best_area:
            frontier.append(allocation)
            best_area = allocation.area_rbe
    return frontier


class _InFlight:
    """One in-progress computation other threads can wait on."""

    __slots__ = ("event", "result", "error")

    def __init__(self):
        self.event = threading.Event()
        self.result = None
        self.error: BaseException | None = None


class QueryEngine:
    """Answers allocation queries from a store, without re-simulation.

    Args:
        store: the curve store to load from (default store if None).
        cpi_model: penalty model (paper defaults).
        result_cache_size: LRU capacity for normalized-request results.
    """

    def __init__(
        self,
        store: CurveStore | None = None,
        cpi_model: CpiModel | None = None,
        result_cache_size: int = DEFAULT_RESULT_CACHE,
    ):
        self.store = store if store is not None else CurveStore.open()
        self.cpi_model = cpi_model if cpi_model is not None else CpiModel()
        self._init_runtime_state(result_cache_size)

    def _init_runtime_state(self, result_cache_size: int) -> None:
        self._curves: dict[str, BenefitCurves] = {}
        self._priced: dict[tuple, PricedSpace] = {}
        self._two_level: dict[str, TwoLevelSpace] = {}
        self._results: OrderedDict[str, dict] = OrderedDict()
        self._result_bytes: OrderedDict[str, tuple[bytes, str]] = OrderedDict()
        self._binary_bytes: OrderedDict[bytes, tuple[bytes, str]] = (
            OrderedDict()
        )
        self._result_cache_size = result_cache_size
        self._stats = {
            "hits": 0, "misses": 0, "coalesced": 0,
            "byte_hits": 0, "byte_misses": 0,
            "binary_hits": 0, "binary_misses": 0,
        }
        self._lock = threading.Lock()
        self._inflight: dict[tuple, _InFlight] = {}

    @classmethod
    def from_curves(
        cls, curves: BenefitCurves, cpi_model: CpiModel | None = None
    ) -> "QueryEngine":
        """An engine over in-memory curves (no store on disk) — used by
        tests and by experiments falling back to direct measurement."""
        engine = cls.__new__(cls)
        engine.store = None
        engine.cpi_model = cpi_model if cpi_model is not None else CpiModel()
        engine._init_runtime_state(DEFAULT_RESULT_CACHE)
        engine._curves = {curves.os_name: curves}
        return engine

    @property
    def stats(self) -> dict:
        """A consistent snapshot of the cache counters.

        ``hits + misses`` equals the number of ``query()`` calls that
        reached a decision; ``coalesced`` (a subset of ``hits``) counts
        threads that piggybacked on another thread's in-flight compute.
        """
        with self._lock:
            return dict(self._stats)

    # -- single-flight get-or-compute ---------------------------------

    def _single_flight(self, kind: str, key, compute):
        """Get-or-compute ``(kind, key)`` with duplicate suppression.

        The first thread to miss computes outside the lock; concurrent
        callers of the same key wait on its event and share the result
        (or its exception).  Failed computations are never cached, so
        a transient store error does not poison the cache.
        """
        flight_key = (kind, key)
        with self._lock:
            cache = {
                "curves": self._curves,
                "priced": self._priced,
                "two_level": self._two_level,
            }[kind]
            value = cache.get(key)
            if value is not None:
                return value
            flight = self._inflight.get(flight_key)
            owner = flight is None
            if owner:
                flight = self._inflight[flight_key] = _InFlight()
        if not owner:
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            return flight.result
        try:
            value = compute()
            with self._lock:
                cache[key] = value
            flight.result = value
            return value
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._lock:
                self._inflight.pop(flight_key, None)
            flight.event.set()

    # -- curve / pricing caches ---------------------------------------

    def curves_for(self, os_name: str) -> BenefitCurves:
        """Curves for one OS, loaded from the store at most once."""

        def _load() -> BenefitCurves:
            if self.store is None:
                raise StoreError(f"no curves loaded for OS {os_name!r}")
            key = self.store.find_current(os_name)
            if key is None:
                raise StoreError(
                    f"store {self.store.root} has no entry for OS "
                    f"{os_name!r} at the current scale/engine; build one "
                    f"with `python -m repro.service build --os {os_name}`"
                )
            return self.store.load(key)

        return self._single_flight("curves", os_name, _load)

    def priced_space(
        self,
        os_name: str,
        max_cache_assoc: int | None = None,
        max_access_time_ns: float | None = None,
    ) -> PricedSpace:
        """The priced configuration space for one (OS, restriction)."""
        key = (os_name, max_cache_assoc, max_access_time_ns)

        def _price() -> PricedSpace:
            allocator = Allocator(self.curves_for(os_name), self.cpi_model)
            with trace_span("engine.price", os=os_name):
                return allocator.price(
                    max_cache_assoc=max_cache_assoc,
                    max_access_time_ns=max_access_time_ns,
                )

        return self._single_flight("priced", key, _price)

    def two_level_space(self, os_name: str) -> TwoLevelSpace:
        """The two-level (TLB, L1I, L1D, L2) space for one OS.

        Built once per OS from the same measured curves the
        single-level pricing uses (see :mod:`repro.core.hierarchy` for
        the separability model) and answered by the greedy
        marginal-utility optimizer — the space's cross product is far
        past what exhaustive ranking could precompute.
        """

        def _build() -> TwoLevelSpace:
            curves = self.curves_for(os_name)
            with trace_span("engine.two_level", os=os_name):
                return build_two_level_space(curves, self.cpi_model)

        return self._single_flight("two_level", os_name, _build)

    # -- python-level query API ---------------------------------------

    def point(
        self,
        os_name: str,
        budget: float = DEFAULT_BUDGET_RBES,
        limit: int | None = None,
        max_cache_assoc: int | None = None,
        max_access_time_ns: float | None = None,
        power_budget: float | None = None,
    ) -> list[Allocation]:
        """Ranked allocations under one budget (best first).

        Without a power budget, answered off the priced space's
        :class:`~repro.core.allocator.BudgetIndex`: a ``limit=1`` query
        is a binary search plus one lookup, and every answer is
        bit-identical to :meth:`Allocator.rank` (the differential
        tests hold this).  With ``power_budget`` set the exact joint
        area x power ranking answers (:func:`rank_priced_power`).
        """
        priced = self.priced_space(os_name, max_cache_assoc, max_access_time_ns)
        if power_budget is not None:
            with trace_span("engine.rank_power", os=os_name, budget=budget):
                return rank_priced_power(
                    priced, budget, power_budget, limit=limit
                )
        with trace_span("engine.rank_indexed", os=os_name, budget=budget):
            return rank_indexed(priced, budget, limit=limit)

    def point_two_level(
        self,
        os_name: str,
        budget: float,
        power_budget: float | None = None,
    ) -> GreedyResult:
        """Greedy best two-level allocation under the budget(s).

        Raises:
            BudgetError: nothing fits.
        """
        space = self.two_level_space(os_name)
        with trace_span("engine.two_level_best", os=os_name, budget=budget):
            return space.best(budget, power_budget_mw=power_budget)

    def batch(
        self,
        os_names: list[str],
        budgets: list[float],
        limit: int | None = 1,
        max_cache_assoc: int | None = None,
        max_access_time_ns: float | None = None,
        power_budget: float | None = None,
    ) -> list[tuple[str, float, list[Allocation]]]:
        """A budget x OS sweep against warm priced spaces.

        The default ``limit=1`` sweep is answered in one vectorized
        pass per OS (``searchsorted`` over all budgets at once) instead
        of one ranking per point; deeper limits — and any sweep with a
        ``power_budget``, whose feasibility masking the budget index
        does not precompute — fall back to per-budget rankings.
        Infeasible (os, budget) points yield an empty allocation list
        rather than failing the whole sweep.
        """
        out = []
        for os_name in os_names:
            priced = self.priced_space(
                os_name, max_cache_assoc, max_access_time_ns
            )
            with trace_span(
                "engine.batch_indexed", os=os_name, budgets=len(budgets)
            ):
                if power_budget is not None:
                    per_budget = []
                    for budget in budgets:
                        try:
                            per_budget.append(
                                rank_priced_power(
                                    priced, budget, power_budget, limit=limit
                                )
                            )
                        except BudgetError:
                            per_budget.append([])
                elif limit == 1:
                    per_budget = batch_best_indexed(priced, budgets)
                else:
                    per_budget = []
                    for budget in budgets:
                        try:
                            per_budget.append(
                                rank_indexed(priced, budget, limit=limit)
                            )
                        except BudgetError:
                            per_budget.append([])
            out.extend(
                (os_name, budget, ranked)
                for budget, ranked in zip(budgets, per_budget)
            )
        return out

    def batch_two_level(
        self,
        os_names: list[str],
        budgets: list[float],
        power_budget: float | None = None,
    ) -> list[tuple[str, float, GreedyResult | None]]:
        """A budget x OS sweep over warm two-level spaces (greedy).

        Each point is one greedy query; infeasible points yield None
        instead of failing the sweep.
        """
        out = []
        for os_name in os_names:
            space = self.two_level_space(os_name)
            with trace_span(
                "engine.batch_two_level", os=os_name, budgets=len(budgets)
            ):
                for budget in budgets:
                    try:
                        result = space.best(
                            budget, power_budget_mw=power_budget
                        )
                    except BudgetError:
                        result = None
                    out.append((os_name, budget, result))
        return out

    def surface(
        self,
        os_name: str,
        budgets: list[float],
        power_budgets: list[float],
    ) -> list[SurfacePoint]:
        """The (area budget x power budget) Pareto surface, greedy per
        cell, dominated and infeasible cells dropped."""
        space = self.two_level_space(os_name)
        with trace_span(
            "engine.surface",
            os=os_name,
            cells=len(budgets) * len(power_budgets),
        ):
            return pareto_surface(
                list(space.structures),
                budgets,
                power_budgets,
                fixed_cpi=space.fixed_cpi,
            )

    def pareto(
        self,
        os_name: str,
        max_budget: float | None = None,
        max_cache_assoc: int | None = None,
        max_access_time_ns: float | None = None,
    ) -> list[Allocation]:
        """The area-vs-CPI Pareto frontier of the (budget-capped) space.

        Unconstrained queries return the frontier precomputed on the
        budget index; budget-capped ones run one vectorized scan over
        the feasible prefix — no per-query full ranking either way.
        """
        priced = self.priced_space(os_name, max_cache_assoc, max_access_time_ns)
        with trace_span("engine.pareto_indexed", os=os_name, pareto=True):
            return pareto_indexed(priced, max_budget)

    def entry_count(self) -> int:
        """Published store entries (cached; see CurveStore.entry_count)."""
        return self.store.entry_count() if self.store is not None else 0

    # -- dict-level API (CLI / HTTP) ----------------------------------

    def query(self, request) -> dict:
        """Validate, answer, and memoize one JSON-shaped request.

        Thread-safe and single-flight: concurrent identical requests
        compute once and share the response object.

        Raises:
            RequestError: malformed request.
            StoreError: the store lacks curves for the requested OS.
            BudgetError: a point query's budget fits nothing.
        """
        normalized = validate_request(request)
        cache_key = json.dumps(normalized, sort_keys=True)
        flight_key = ("result", cache_key)
        with self._lock:
            cached = self._results.get(cache_key)
            if cached is not None:
                self._results.move_to_end(cache_key)
                self._stats["hits"] += 1
                return cached
            flight = self._inflight.get(flight_key)
            owner = flight is None
            if owner:
                flight = self._inflight[flight_key] = _InFlight()
                self._stats["misses"] += 1
        if not owner:
            flight.event.wait()
            with self._lock:
                self._stats["hits"] += 1
                self._stats["coalesced"] += 1
            if flight.error is not None:
                raise flight.error
            return flight.result
        try:
            with trace_span("engine.query", type=normalized["type"]):
                response = self._answer(normalized)
            with self._lock:
                self._results[cache_key] = response
                while len(self._results) > self._result_cache_size:
                    self._results.popitem(last=False)
            flight.result = response
            return response
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._lock:
                self._inflight.pop(flight_key, None)
            flight.event.set()

    def query_bytes(self, request) -> tuple[bytes, str]:
        """Answer one request as serialized response bytes plus an ETag.

        The hot path of the HTTP server: the full ``{"ok": true,
        "result": ...}`` envelope is encoded once per distinct
        normalized request and cached as bytes, so repeated queries
        skip both the ranking *and* the JSON re-encoding.  The ETag is
        a strong validator over the exact body bytes — a client
        replaying it via ``If-None-Match`` gets a body-less 304.

        Raises:
            Whatever :meth:`query` raises for the request.
        """
        normalized = validate_request(request)
        cache_key = json.dumps(normalized, sort_keys=True)
        with self._lock:
            entry = self._result_bytes.get(cache_key)
            if entry is not None:
                self._result_bytes.move_to_end(cache_key)
                self._stats["byte_hits"] += 1
                return entry
        result = self.query(normalized)
        body = json.dumps({"ok": True, "result": result}).encode()
        etag = '"' + hashlib.sha256(body).hexdigest()[:20] + '"'
        with self._lock:
            if cache_key not in self._result_bytes:
                self._stats["byte_misses"] += 1
                self._result_bytes[cache_key] = (body, etag)
                while len(self._result_bytes) > self._result_cache_size:
                    self._result_bytes.popitem(last=False)
            else:
                # Another thread published the same bytes first; serve
                # ours (identical content, deterministic encoder).
                self._stats["byte_hits"] += 1
        return body, etag

    def count_byte_hit(self) -> None:
        """Tally one byte-cache hit served from an outer raw-body memo.

        The event-loop server keeps a small memo keyed on *exact raw
        request bytes* in front of :meth:`try_cached_bytes`; a memo hit
        serves the same cached bytes this cache holds but skips the
        parse/validate/normalize work.  Counting it here keeps the
        accounting contract — every query POST is exactly one counted
        byte-cache lookup — independent of which layer answered.
        """
        with self._lock:
            self._stats["byte_hits"] += 1

    def try_cached_bytes(self, request) -> tuple[bytes, str] | None:
        """Non-blocking byte-cache probe for the event loop's hot path.

        Returns the cached ``(body, etag)`` and counts a byte hit, or
        None without touching any counter — the loop then hands the
        request to its off-loop executor, whose :meth:`query_bytes`
        call tallies the miss.  Net effect: every request is exactly
        one byte-cache lookup, same as the blocking path.

        Raises:
            RequestError: malformed request (surfaced on-loop as 400).
        """
        normalized = validate_request(request)
        cache_key = json.dumps(normalized, sort_keys=True)
        with self._lock:
            entry = self._result_bytes.get(cache_key)
            if entry is not None:
                self._result_bytes.move_to_end(cache_key)
                self._stats["byte_hits"] += 1
                return entry
        return None

    # -- binary batch protocol ----------------------------------------

    def try_cached_binary(self, payload: bytes) -> tuple[bytes, str] | None:
        """Byte-cache probe for a binary batch frame payload.

        Keyed on the *raw frame payload bytes* — a hit costs one dict
        lookup with zero JSON or struct work, which is the whole point
        of the binary path.  Deterministic client encoders mean equal
        questions produce equal frames (and therefore shared entries).
        """
        with self._lock:
            entry = self._binary_bytes.get(payload)
            if entry is not None:
                self._binary_bytes.move_to_end(payload)
                self._stats["binary_hits"] += 1
                return entry
        return None

    def query_binary(self, payload: bytes) -> tuple[bytes, str]:
        """Answer one binary batch frame payload as response bytes.

        Decodes the frame, answers through the same :meth:`query` path
        as JSON (one shared result LRU, so the two protocols can never
        drift), encodes the framed binary response once, and caches it
        against the request payload bytes.

        Raises:
            RequestError: malformed frame or invalid decoded request.
            Whatever :meth:`query` raises for the request.
        """
        from repro.service import binproto

        with self._lock:
            entry = self._binary_bytes.get(payload)
            if entry is not None:
                self._binary_bytes.move_to_end(payload)
                self._stats["binary_hits"] += 1
                return entry
        request = binproto.decode_batch_request(payload)
        result = self.query(request)
        body = binproto.encode_batch_response(result)
        etag = '"' + hashlib.sha256(body).hexdigest()[:20] + '"'
        with self._lock:
            if payload not in self._binary_bytes:
                self._stats["binary_misses"] += 1
                self._binary_bytes[payload] = (body, etag)
                while len(self._binary_bytes) > self._result_cache_size:
                    self._binary_bytes.popitem(last=False)
            else:
                self._stats["binary_hits"] += 1
        return body, etag

    def _answer(self, req: dict) -> dict:
        if req["space"] == "two_level":
            return self._answer_two_level(req)
        kwargs = dict(
            max_cache_assoc=req["max_cache_assoc"],
            max_access_time_ns=req["max_access_time_ns"],
        )
        if req["type"] == "point":
            ranked = self.point(
                req["os"],
                req["budget"],
                limit=req["limit"],
                power_budget=req["power_budget"],
                **kwargs,
            )
            return {
                "type": "point",
                "os": req["os"],
                "budget": req["budget"],
                "count": len(ranked),
                "allocations": [
                    allocation_entry(i, a) for i, a in enumerate(ranked, 1)
                ],
            }
        if req["type"] == "batch":
            results = self.batch(
                req["os_names"],
                req["budgets"],
                limit=req["limit"],
                power_budget=req["power_budget"],
                **kwargs,
            )
            return {
                "type": "batch",
                "count": len(results),
                "results": [
                    {
                        "os": os_name,
                        "budget": budget,
                        "feasible": bool(ranked),
                        "allocations": [
                            allocation_entry(i, a)
                            for i, a in enumerate(ranked, 1)
                        ],
                    }
                    for os_name, budget, ranked in results
                ],
            }
        frontier = self.pareto(req["os"], req["max_budget"], **kwargs)
        return {
            "type": "pareto",
            "os": req["os"],
            "max_budget": req["max_budget"],
            "count": len(frontier),
            "frontier": [
                allocation_entry(i, a) for i, a in enumerate(frontier, 1)
            ],
        }

    def _answer_two_level(self, req: dict) -> dict:
        """Two-level responses: greedy point/batch, or a Pareto surface.

        Response rows carry the four structure labels plus exact area,
        CPI and power; a ``point`` query that fits nothing raises
        :class:`BudgetError` just like the single-level path, while
        batch points degrade to ``feasible: false`` rows.
        """
        if req["type"] == "point":
            result = self.point_two_level(
                req["os"], req["budget"], power_budget=req["power_budget"]
            )
            return {
                "type": "point",
                "space": "two_level",
                "os": req["os"],
                "budget": req["budget"],
                "power_budget": req["power_budget"],
                "count": 1,
                "allocations": [{"rank": 1, **two_level_entry(result)}],
            }
        if req["type"] == "batch":
            results = self.batch_two_level(
                req["os_names"],
                req["budgets"],
                power_budget=req["power_budget"],
            )
            return {
                "type": "batch",
                "space": "two_level",
                "count": len(results),
                "power_budget": req["power_budget"],
                "results": [
                    {
                        "os": os_name,
                        "budget": budget,
                        "feasible": result is not None,
                        "allocations": (
                            [{"rank": 1, **two_level_entry(result)}]
                            if result is not None
                            else []
                        ),
                    }
                    for os_name, budget, result in results
                ],
            }
        cells = self.surface(req["os"], req["budgets"], req["power_budgets"])
        return {
            "type": "pareto",
            "space": "two_level",
            "os": req["os"],
            "budgets": req["budgets"],
            "power_budgets": req["power_budgets"],
            "count": len(cells),
            "surface": [surface_entry(c) for c in cells],
        }


def maybe_engine(
    os_name: str, store: CurveStore | None = None
) -> QueryEngine | None:
    """An engine backed by the (default) store, if it can serve this OS.

    Experiments call this to prefer the service path: when the store
    has a curve set matching the current scale/engine the returned
    engine answers without re-simulation; otherwise None sends the
    caller down the direct measurement path.
    """
    store = store if store is not None else CurveStore.open()
    if store.exists() and store.find_current(os_name) is not None:
        return QueryEngine(store)
    return None
