"""Export experiment results as CSV files.

Every experiment's ``run()`` returns rows; this module writes them
under a target directory so external plotting tools can regenerate
the paper's figures.  Used by ``python -m repro.experiments.export``.
"""

from __future__ import annotations

import csv
import importlib
from pathlib import Path

from repro.experiments import EXPERIMENT_NAMES


def rows_for(name: str) -> dict[str, list[dict]]:
    """Collect one experiment's row sets, keyed by artifact name.

    Multi-panel experiments (fig9/fig10) export one CSV per panel;
    table5 exports its summary as a single-row table.
    """
    module = importlib.import_module(f"repro.experiments.{name}")
    if name in ("fig9", "fig10"):
        out = {}
        for os_name in ("ultrix", "mach"):
            panels = module.run(os_name)
            for panel, rows in panels.items():
                out[f"{name}_{os_name}_{panel}"] = rows
        return out
    result = module.run()
    if isinstance(result, dict):
        return {name: [result]}
    return {name: result}


def write_csv(rows: list[dict], path: Path) -> None:
    """Write one row set to a CSV file."""
    if not rows:
        return
    fieldnames = list(rows[0].keys())
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)


def export_all(directory: str | Path, names: tuple[str, ...] = EXPERIMENT_NAMES) -> list[Path]:
    """Export every experiment's rows; returns the written paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name in names:
        for artifact, rows in rows_for(name).items():
            path = directory / f"{artifact}.csv"
            write_csv(rows, path)
            written.append(path)
    return written


def main() -> None:
    """CLI: ``python -m repro.experiments.export [directory]``."""
    import sys

    target = sys.argv[1] if len(sys.argv) > 1 else "results"
    for path in export_all(target):
        print(path)


if __name__ == "__main__":
    main()
