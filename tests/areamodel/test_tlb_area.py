"""Unit tests for the TLB area model."""

import pytest

from repro.areamodel.tlb_area import FULLY_ASSOCIATIVE, TlbGeometry, tlb_area_rbe
from repro.errors import ConfigurationError

SIZES = [16, 32, 64, 128, 256, 512]


class TestTlbGeometry:
    def test_set_associative(self):
        geom = TlbGeometry.from_config(64, 4)
        assert geom.sets == 16
        assert not geom.fully_associative
        assert geom.storage_bits == 64 * geom.bits_per_entry

    def test_fully_associative(self):
        geom = TlbGeometry.from_config(64, FULLY_ASSOCIATIVE)
        assert geom.fully_associative
        assert geom.sets == 1
        assert geom.assoc == 64

    def test_fa_tag_is_full_vpn_plus_asid(self):
        geom = TlbGeometry.from_config(64, FULLY_ASSOCIATIVE)
        assert geom.tag_bits == 20 + 6

    def test_sa_tag_shrinks_with_sets(self):
        small = TlbGeometry.from_config(64, 1)   # 64 sets -> 6 index bits
        large = TlbGeometry.from_config(512, 1)  # 512 sets -> 9 index bits
        assert large.tag_bits == small.tag_bits - 3

    def test_rejects_bad_configs(self):
        with pytest.raises(ConfigurationError):
            TlbGeometry.from_config(63, 1)
        with pytest.raises(ConfigurationError):
            TlbGeometry.from_config(64, 3)
        with pytest.raises(ConfigurationError):
            TlbGeometry.from_config(8, 16)
        with pytest.raises(ConfigurationError):
            TlbGeometry.from_config(64, "half")


class TestTlbArea:
    @pytest.mark.parametrize("assoc", [1, 2, 4, 8, FULLY_ASSOCIATIVE])
    def test_monotone_in_entries(self, assoc):
        sizes = [n for n in SIZES if assoc == FULLY_ASSOCIATIVE or assoc <= n]
        areas = [tlb_area_rbe(n, assoc) for n in sizes]
        assert areas == sorted(areas)

    def test_direct_mapped_always_cheapest(self):
        # Section 5.1: direct-mapped TLBs are always smaller than FA.
        for entries in SIZES:
            assert tlb_area_rbe(entries, 1) < tlb_area_rbe(entries, FULLY_ASSOCIATIVE)

    def test_small_tlb_fa_cheaper_than_8way(self):
        # Figure 5: below 64 entries, full associativity costs less
        # than 8-way set associativity.
        for entries in (16, 32):
            assert tlb_area_rbe(entries, FULLY_ASSOCIATIVE) < tlb_area_rbe(entries, 8)

    def test_large_tlb_fa_about_twice_setassoc(self):
        # Figure 5: for large TLBs full associativity costs ~2x 8-way.
        ratio = tlb_area_rbe(512, FULLY_ASSOCIATIVE) / tlb_area_rbe(512, 8)
        assert 1.7 < ratio < 2.3

    def test_small_tlb_8way_about_3x_direct(self):
        # Figure 4: a 16-entry 8-way TLB needs ~3x the area of a
        # 16-entry direct-mapped TLB.
        ratio = tlb_area_rbe(16, 8) / tlb_area_rbe(16, 1)
        assert 2.3 < ratio < 3.7

    def test_large_tlb_assoc_small_impact(self):
        # Figure 4: for large TLBs associativity barely matters.
        spread = tlb_area_rbe(512, 8) / tlb_area_rbe(512, 1)
        assert spread < 1.3

    def test_512_8way_cheap_vs_8kb_cache(self):
        # Section 5.4: a 512-entry 8-way TLB costs far less than an
        # 8-KB direct-mapped 4-word-line cache.
        from repro.areamodel.cache_area import cache_area_rbe

        assert tlb_area_rbe(512, 8) < 0.5 * cache_area_rbe(8192, 4, 1)
