"""Unit tests for the write-buffer timing model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.memsim.write_buffer import WriteBuffer, simulate_write_buffer


class TestWriteBuffer:
    def test_sparse_stores_never_stall(self):
        wb = WriteBuffer(depth=4, retire_cycles=4)
        stalls = [wb.store(t) for t in range(0, 200, 10)]
        assert all(s == 0 for s in stalls)

    def test_burst_fills_and_stalls(self):
        wb = WriteBuffer(depth=2, retire_cycles=10)
        assert wb.store(0) == 0
        assert wb.store(1) == 0
        assert wb.store(2) > 0      # buffer full, wait for a retire

    def test_stall_equals_wait_for_oldest(self):
        wb = WriteBuffer(depth=1, retire_cycles=10)
        wb.store(0)                 # completes at 10
        stall = wb.store(2)
        assert stall == 8

    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            WriteBuffer(depth=0)


class TestSimulateWriteBuffer:
    def test_empty_stream(self):
        result = simulate_write_buffer(np.array([], dtype=np.int64))
        assert result.stall_cycles == 0

    def test_back_to_back_burst_cost(self):
        # 10 stores in consecutive cycles with retire 5 and depth 4:
        # the buffer absorbs 4, then stores wait ~4 cycles each.
        times = np.arange(10, dtype=np.int64)
        result = simulate_write_buffer(times, depth=4, retire_cycles=5)
        assert result.stall_cycles > 0

    def test_count_from_excludes_warmup_stalls(self):
        times = np.arange(10, dtype=np.int64)
        full = simulate_write_buffer(times, depth=2, retire_cycles=5)
        tail = simulate_write_buffer(times, depth=2, retire_cycles=5, count_from=5)
        assert tail.stall_cycles < full.stall_cycles
        assert tail.stores == 5

    @settings(max_examples=30, deadline=None)
    @given(
        gaps=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=80),
        retire=st.integers(min_value=1, max_value=12),
    )
    def test_deeper_buffer_never_stalls_more(self, gaps, retire):
        times = np.cumsum(np.array(gaps, dtype=np.int64))
        shallow = simulate_write_buffer(times, depth=2, retire_cycles=retire)
        deep = simulate_write_buffer(times, depth=8, retire_cycles=retire)
        assert deep.stall_cycles <= shallow.stall_cycles

    @settings(max_examples=30, deadline=None)
    @given(
        gaps=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=80),
    )
    def test_faster_memory_never_stalls_more(self, gaps):
        times = np.cumsum(np.array(gaps, dtype=np.int64))
        slow = simulate_write_buffer(times, depth=4, retire_cycles=10)
        fast = simulate_write_buffer(times, depth=4, retire_cycles=2)
        assert fast.stall_cycles <= slow.stall_cycles
