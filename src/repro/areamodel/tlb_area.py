"""MQF-style area model for translation lookaside buffers.

Set-associative TLBs are modelled like small caches whose "line" is one
page-table entry.  Fully-associative TLBs store their tags in CAM cells
(larger than SRAM cells, because each embeds a comparator) and need no
separate comparator bank; this reproduces the cost crossover of
Figure 5 of the paper, where full associativity is *cheaper* than 4-/8-way
set associativity for small TLBs but roughly twice as expensive for
large ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.areamodel.constants import CALIBRATED_CONSTANTS, AreaConstants
from repro.errors import ConfigurationError
from repro.units import ASID_BITS, PFN_BITS, VPN_BITS, is_pow2, log2i

FULLY_ASSOCIATIVE = "full"
"""Sentinel associativity value selecting a fully-associative (CAM) TLB."""

FLAG_BITS = 6
"""PTE flag bits per entry (valid, dirty, global, non-cacheable, ...)."""

STATUS_BITS_PER_ENTRY = 2
"""Replacement/bookkeeping bits per entry."""

DATA_BITS = PFN_BITS + FLAG_BITS
"""Payload bits per entry (physical frame number + flags)."""


@dataclass(frozen=True)
class TlbGeometry:
    """Derived geometry of a TLB configuration.

    Attributes:
        entries: total number of entries.
        assoc: ways, or ``entries`` itself for a fully-associative TLB.
        fully_associative: True for a CAM-organised TLB.
        sets: number of sets (1 when fully associative).
        tag_bits: tag width per entry (VPN remainder + ASID).
        bits_per_entry: tag + data + status bits per entry.
        storage_bits: total bits stored.
    """

    entries: int
    assoc: int
    fully_associative: bool
    sets: int
    tag_bits: int
    bits_per_entry: int
    storage_bits: int

    @classmethod
    def from_config(cls, entries: int, assoc: int | str) -> "TlbGeometry":
        """Derive geometry for an (entries, associativity) pair.

        Args:
            entries: total TLB entries (power of two).
            assoc: way count, or :data:`FULLY_ASSOCIATIVE`.

        Raises:
            ConfigurationError: on inconsistent or non-power-of-two sizes.
        """
        if not is_pow2(entries):
            raise ConfigurationError(f"entries={entries} must be a power of two")
        if assoc == FULLY_ASSOCIATIVE:
            tag_bits = VPN_BITS + ASID_BITS
            bits_per_entry = tag_bits + DATA_BITS + STATUS_BITS_PER_ENTRY
            return cls(
                entries=entries,
                assoc=entries,
                fully_associative=True,
                sets=1,
                tag_bits=tag_bits,
                bits_per_entry=bits_per_entry,
                storage_bits=entries * bits_per_entry,
            )
        if not isinstance(assoc, int) or not is_pow2(assoc):
            raise ConfigurationError(f"assoc={assoc!r} must be a power of two or 'full'")
        if assoc > entries:
            raise ConfigurationError(f"associativity {assoc} exceeds entries {entries}")
        sets = entries // assoc
        tag_bits = (VPN_BITS - log2i(sets)) + ASID_BITS
        bits_per_entry = tag_bits + DATA_BITS + STATUS_BITS_PER_ENTRY
        return cls(
            entries=entries,
            assoc=assoc,
            fully_associative=False,
            sets=sets,
            tag_bits=tag_bits,
            bits_per_entry=bits_per_entry,
            storage_bits=entries * bits_per_entry,
        )


def tlb_area_rbe(
    entries: int,
    assoc: int | str,
    constants: AreaConstants = CALIBRATED_CONSTANTS,
) -> float:
    """Estimate the die area of a TLB in register-bit equivalents.

    Args:
        entries: total TLB entries.
        assoc: way count (power of two) or :data:`FULLY_ASSOCIATIVE`.
        constants: technology constants.

    Returns:
        Estimated area in rbe.
    """
    geom = TlbGeometry.from_config(entries, assoc)
    if geom.fully_associative:
        storage = geom.entries * (
            geom.tag_bits * constants.cam_cell
            + (DATA_BITS + STATUS_BITS_PER_ENTRY) * constants.sram_cell
        )
        sense = geom.bits_per_entry * constants.sense
        drive = geom.entries * constants.drive
        return storage + sense + drive + constants.control
    storage = geom.storage_bits * constants.sram_cell
    sense = geom.assoc * geom.bits_per_entry * constants.sense
    drive = geom.entries * constants.drive
    comparators = geom.assoc * geom.tag_bits * constants.comparator
    return storage + sense + drive + comparators + constants.control
