"""CLI runner for the reproduction experiments.

Usage::

    python -m repro.experiments.runner --list
    python -m repro.experiments.runner table6 fig9
    python -m repro.experiments.runner --all --jobs 4

Set ``REPRO_SCALE`` to trade accuracy for runtime (e.g. 0.3 for a
quick pass, 3.0 for a long, tighter run).  ``--jobs N`` fans the
measurement units out over N worker processes; it takes precedence
over the ``REPRO_JOBS`` environment variable (default 1, serial).

Allocation experiments (table6/table7) answer from the curve store
when one exists — build it once with ``python -m repro.service build``
— and fall back to direct measurement otherwise.  ``--store DIR``
points them at a non-default store directory.
"""

from __future__ import annotations

import argparse
import importlib
import os
import sys
import time

from repro.experiments import EXPERIMENT_NAMES


def run_experiment(name: str) -> None:
    """Import and execute one experiment's main()."""
    module = importlib.import_module(f"repro.experiments.{name}")
    started = time.time()
    module.main()
    print(f"[{name} finished in {time.time() - started:.1f}s]\n")


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-experiments``."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help=f"experiment names (choose from: {', '.join(EXPERIMENT_NAMES)})",
    )
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--list", action="store_true", help="list experiment names")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for curve measurement "
        "(overrides REPRO_JOBS; default 1)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="curve-store directory for the service path "
        "(overrides REPRO_STORE_DIR; default .repro-store)",
    )
    args = parser.parse_args(argv)

    if args.store is not None:
        # Experiments reach the store through CurveStore.open(), which
        # reads the env var; the flag takes its place for this process.
        os.environ["REPRO_STORE_DIR"] = args.store

    if args.jobs is not None:
        if args.jobs < 1:
            parser.error("--jobs must be >= 1")
        # Experiments read the worker count through resolve_jobs(), so
        # the flag simply takes the env var's place for this process.
        os.environ["REPRO_JOBS"] = str(args.jobs)

    if args.list:
        for name in EXPERIMENT_NAMES:
            print(name)
        return 0
    names = list(EXPERIMENT_NAMES) if args.all else args.experiments
    if not names:
        parser.print_help()
        return 1
    unknown = [n for n in names if n not in EXPERIMENT_NAMES]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2
    for name in names:
        run_experiment(name)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
