"""Define your own workload and size its TLB.

The six paper benchmarks are just parameter sets; this example models
a transaction-processing workload (small random reads over a large
working set, frequent small writes, no display traffic) and asks how
much TLB it needs under each OS structure — the paper's methodology
applied to a new workload.

Run:  python examples/custom_workload.py
"""

from repro.core.configs import TlbConfig
from repro.monitor.tapeworm import Tapeworm
from repro.trace.generator import TraceGenerator
from repro.workloads.base import WorkloadSpec

OLTP = WorkloadSpec(
    name="oltp",
    description="transaction processing: random record lookups + logging",
    load_frac=0.24,
    store_frac=0.12,
    other_cpi=0.05,
    compute_instructions=6_000,
    hot_loop_bodies=(200, 350),
    hot_loop_fraction=0.45,
    loop_iterations=12,
    code_footprint_bytes=48 * 1024,
    text_bytes=512 * 1024,
    heap_pages=96,                 # big random working set
    heap_record_words=8,
    stream_bytes=512 * 1024,       # log stream
    stream_run_words=16,
    stream_frac=0.10,
    service_mix={"read": 0.45, "write": 0.35, "stat": 0.10, "select": 0.10},
    payload_bytes=2 * 1024,
    services_per_cycle=2,
    x_interaction_rate=0.0,
    page_fault_rate=0.04,
)


def main() -> None:
    configs = [TlbConfig(n, "full") for n in (32, 64)]
    configs += [TlbConfig(n, 4) for n in (128, 256, 512)]

    for os_name in ("ultrix", "mach"):
        trace = TraceGenerator(OLTP, os_name, seed=3).generate(300_000)
        print(f"\n{OLTP.name} under {os_name} "
              f"({trace.instructions:,} instructions):")
        reports = Tapeworm(configs).run(trace)
        base = None
        for report in reports:
            cycles = report.service_cycles()
            base = base if base is not None else max(cycles, 1)
            print(
                f"  TLB {report.config.label():<10} service "
                f"{cycles:>9,} cycles  ({cycles / base:5.1%} of 32-entry FA)"
            )


if __name__ == "__main__":
    main()
