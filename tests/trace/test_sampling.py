"""Tests for the Laha-style trace-sampling estimator."""

import numpy as np
import pytest

from repro.memsim.cache import Cache
from repro.trace.sampling import sample_intervals, sampled_miss_ratio


class TestSampleIntervals:
    def test_non_overlapping(self, rng):
        intervals = sample_intervals(100_000, samples=20, sample_length=2_000, rng=rng)
        for (a0, a1), (b0, __) in zip(intervals, intervals[1:]):
            assert a1 <= b0

    def test_rejects_oversampling(self, rng):
        with pytest.raises(ValueError):
            sample_intervals(10_000, samples=10, sample_length=2_000, rng=rng)

    def test_lengths_exact(self, rng):
        intervals = sample_intervals(50_000, samples=5, sample_length=1_000, rng=rng)
        assert all(stop - start == 1_000 for start, stop in intervals)


class TestSampledMissRatio:
    def _cache_simulator(self, capacity=8192, line_words=4):
        def simulate(sub_trace, warmup):
            cache = Cache(capacity, line_words, 1)
            result = cache.simulate(sub_trace.ifetch_physical())
            # Count misses only after the warmup prefix: re-run with
            # flags for exactness.
            cache2 = Cache(capacity, line_words, 1)
            flags = cache2.simulate(
                sub_trace.ifetch_physical(), record_flags=True
            ).miss_flags
            counted = flags[warmup:]
            return int(counted.sum()), len(counted)

        return simulate

    def test_estimate_close_to_full_simulation(self, ultrix_trace):
        estimate = sampled_miss_ratio(
            ultrix_trace,
            self._cache_simulator(),
            samples=12,
            sample_length=6_000,
            seed=3,
        )
        cache = Cache(8192, 4, 1)
        flags = cache.simulate(
            ultrix_trace.ifetch_physical(), record_flags=True
        ).miss_flags
        half = len(flags) // 2
        full_ratio = flags[half:].mean()
        # Section 3: sampling should land within tens of percent
        # relative error of the full simulation.
        assert estimate.mean == pytest.approx(full_ratio, rel=0.5)

    def test_more_samples_reduce_relative_error(self, ultrix_trace):
        # Use a small cache so every sample sees a healthy miss ratio
        # (low-miss configurations need many samples — Martonosi's
        # caveat, quoted in Section 3 of the paper).
        few = sampled_miss_ratio(
            ultrix_trace, self._cache_simulator(capacity=2048), samples=4,
            sample_length=4_000, seed=3,
        )
        many = sampled_miss_ratio(
            ultrix_trace, self._cache_simulator(capacity=2048), samples=16,
            sample_length=4_000, seed=3,
        )
        assert many.samples > few.samples
        assert many.std_error <= few.std_error * 1.5

    def test_relative_error_property(self, ultrix_trace):
        estimate = sampled_miss_ratio(
            ultrix_trace, self._cache_simulator(), samples=6,
            sample_length=4_000, seed=3,
        )
        if estimate.mean:
            assert estimate.relative_error == pytest.approx(
                estimate.std_error / estimate.mean
            )
