"""A local fleet supervisor: router + N pre-fork shards in one tree.

:class:`FleetSupervisor` is the process layout behind
``python -m repro.fleet``, the CI smoke phase, and the chaos tests:

* each shard is a :class:`~repro.service.workers.PreforkServer` whose
  master runs in its **own forked process and its own process group**
  (``setsid``), so a shard dies as one unit — ``kill_shard`` SIGKILLs
  the group and every worker goes with the master, exactly the failure
  the router must absorb;
* the shard's listening port is resolved in the supervisor *before*
  the master forks (``port=0`` binds ephemeral in ``PreforkServer``'s
  constructor), so the router's topology is known up front and a
  restarted shard comes back on the same address;
* the router runs in the supervisor process on a daemon thread,
  alongside a started :class:`~repro.fleet.health.HealthChecker`.

One subtlety is load-bearing on Linux: ``PreforkServer`` binds an
``SO_REUSEPORT`` probe socket at construction, and after the shard
master forks, the supervisor still holds a copy.  The kernel balances
connections across *all* sockets bound to the address, so the
supervisor must close its copy or a share of upstream connections
would land on a listener nobody accepts on.

Every shard opens the same immutable store, so membership changes and
kills never change answers — only which node serves them.
"""

from __future__ import annotations

import errno
import http.client
import json
import os
import shutil
import signal
import sys
import tempfile
import threading
import time

from repro.fleet.health import (
    DEFAULT_FAIL_THRESHOLD,
    DEFAULT_PROBE_INTERVAL_S,
    HealthChecker,
)
from repro.fleet.ring import Ring, shard_key
from repro.fleet.router import (
    DEFAULT_REPLICAS,
    RouterHTTPServer,
    make_router,
)
from repro.service.engine import QueryEngine
from repro.service.faults import parse_faults, set_injector
from repro.service.http import shutdown_gracefully
from repro.service.workers import PreforkServer
from repro.store import CurveStore

DEFAULT_NODES = 3


def _resolve_env_int(cli_value, env_name: str, default: int) -> int:
    if cli_value is not None:
        return max(1, int(cli_value))
    env = os.environ.get(env_name, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError as exc:
            raise ValueError(
                f"{env_name} must be an integer, got {env!r}"
            ) from exc
    return default


def resolve_nodes(cli_value: int | None) -> int:
    """Shard count: ``--nodes`` beats ``REPRO_FLEET_NODES`` beats 3."""
    return _resolve_env_int(cli_value, "REPRO_FLEET_NODES", DEFAULT_NODES)


def resolve_replicas(cli_value: int | None) -> int:
    """Replication factor: ``--replicas`` beats ``REPRO_FLEET_REPLICAS``
    beats 2 (clamped to the node count by the router)."""
    return _resolve_env_int(
        cli_value, "REPRO_FLEET_REPLICAS", DEFAULT_REPLICAS
    )


class _Shard:
    """Supervisor-side record of one shard master."""

    __slots__ = ("label", "port", "pid", "metrics_dir")

    def __init__(self, label: str, port: int, pid: int, metrics_dir: str):
        self.label = label
        self.port = port
        self.pid = pid
        self.metrics_dir = metrics_dir


class FleetSupervisor:
    """Router + N local shards, each an isolated pre-fork pool.

    Args:
        store_path: the content-addressed store every shard opens.
        nodes: shard count (labels ``n0`` .. ``n{N-1}``).
        replicas: R-way replication factor for the router.
        router_port: router listen port (0 = ephemeral).
        workers_per_shard: pre-fork workers inside each shard.
        faults: fault-injection spec string applied *inside shard
            workers* (the router itself stays fault-free — it is the
            layer under test when shards misbehave).
        probe_interval_s / fail_threshold: health-checker knobs.
    """

    def __init__(
        self,
        store_path,
        nodes: int = DEFAULT_NODES,
        replicas: int = DEFAULT_REPLICAS,
        host: str = "127.0.0.1",
        router_port: int = 0,
        workers_per_shard: int = 1,
        faults: str | None = None,
        verbose: bool = False,
        probe_interval_s: float = DEFAULT_PROBE_INTERVAL_S,
        fail_threshold: int = DEFAULT_FAIL_THRESHOLD,
    ):
        if nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {nodes}")
        self.store_path = os.fspath(store_path)
        self.nodes = nodes
        self.replicas = replicas
        self.host = host
        self.router_port = router_port
        self.workers_per_shard = max(1, workers_per_shard)
        self.faults = faults
        self.verbose = verbose
        self.probe_interval_s = probe_interval_s
        self.fail_threshold = fail_threshold
        self._shards: dict[str, _Shard] = {}
        self.router: RouterHTTPServer | None = None
        self.health: HealthChecker | None = None
        self.ring: Ring | None = None
        self._router_thread: threading.Thread | None = None

    # -- shard lifecycle ----------------------------------------------

    def _spawn_shard(self, label: str, port: int = 0) -> _Shard:
        """Fork one shard master (own session/process group).

        The :class:`PreforkServer` is constructed *here*, in the
        supervisor, so ``port=0`` resolves to a concrete address the
        router can be told about; the child then starts the pool it
        inherited.  ``setsid`` puts master + workers in one killable
        group, and the supervisor closes its copy of the probe
        listener (see module docstring).
        """
        metrics_dir = tempfile.mkdtemp(prefix=f"repro-fleet-{label}-")
        store_path = self.store_path
        fault_spec = self.faults

        def engine_factory() -> QueryEngine:
            # Runs inside each forked worker of this shard.
            if fault_spec:
                set_injector(parse_faults(fault_spec))
            return QueryEngine(CurveStore.open(store_path))

        pool = PreforkServer(
            engine_factory,
            host=self.host,
            port=port,
            workers=self.workers_per_shard,
            verbose=self.verbose,
            metrics_dir=metrics_dir,
        )
        pid = os.fork()
        if pid == 0:  # shard master
            try:
                os.setsid()
                signal.signal(signal.SIGINT, signal.SIG_IGN)

                def _terminate(signum, frame):
                    pool.stop()
                    os._exit(0)

                signal.signal(signal.SIGTERM, _terminate)
                pool.start()
                pool.wait()
            except BaseException:
                os._exit(1)
            finally:
                os._exit(0)
        # Supervisor side: drop the inherited probe listener so the
        # kernel never routes an upstream connection into this process.
        pool._listener.close()
        shard = _Shard(label, pool.port, pid, metrics_dir)
        self._shards[label] = shard
        return shard

    def kill_shard(self, label: str) -> None:
        """SIGKILL a shard's whole process group — the chaos primitive.

        Master and workers die together and un-gracefully: in-flight
        queries are torn mid-connection, which is exactly the failure
        the router's failover must absorb.
        """
        shard = self._shards[label]
        try:
            os.killpg(shard.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        try:
            os.waitpid(shard.pid, 0)
        except ChildProcessError:
            pass

    def restart_shard(self, label: str) -> None:
        """Bring a killed shard back on its original port."""
        shard = self._shards[label]
        shutil.rmtree(shard.metrics_dir, ignore_errors=True)
        self._spawn_shard(label, port=shard.port)

    # -- fleet lifecycle ----------------------------------------------

    @property
    def topology(self) -> dict[str, tuple[str, int]]:
        return {
            label: (self.host, shard.port)
            for label, shard in sorted(self._shards.items())
        }

    @property
    def base_url(self) -> str:
        if self.router is None:
            raise RuntimeError("fleet is not started")
        host, port = self.router.server_address[:2]
        return f"http://{host}:{port}"

    def start(self, wait_serving_s: float = 30.0) -> None:
        """Spawn shards, start health + router, wait until serving."""
        for index in range(self.nodes):
            self._spawn_shard(f"n{index}")
        topology = self.topology
        self.ring = Ring(topology)
        self.health = HealthChecker(
            topology,
            interval_s=self.probe_interval_s,
            fail_threshold=self.fail_threshold,
        )
        self.router = make_router(
            topology,
            replicas=self.replicas,
            host=self.host,
            port=self.router_port,
            ring=self.ring,
            health=self.health,
            verbose=self.verbose,
        )
        self.health.start()
        self._router_thread = threading.Thread(
            target=self.router.serve_forever,
            name="repro-fleet-router",
            daemon=True,
        )
        self._router_thread.start()
        deadline = time.monotonic() + wait_serving_s
        checker = HealthChecker(
            {
                **topology,
                "router": self.router.server_address[:2],
            },
            timeout_s=2.0,
        )
        while time.monotonic() < deadline:
            checker.probe_all()
            if len(checker.alive()) == len(topology) + 1:
                # One real probe round, not the optimistic initial view.
                states = checker.snapshot()
                if all(
                    s["consecutive_failures"] == 0 and s["alive"]
                    for s in states.values()
                ):
                    return
            time.sleep(0.05)
        self.stop()
        raise TimeoutError("fleet never started serving")

    def stop(self, deadline_s: float = 10.0) -> None:
        """Stop router, health, and every shard group (TERM → KILL)."""
        if self.health is not None:
            self.health.stop()
        if self.router is not None:
            try:
                shutdown_gracefully(self.router, deadline_s=2.0)
            except OSError:
                pass
            if self._router_thread is not None:
                self._router_thread.join(timeout=5.0)
        for shard in self._shards.values():
            try:
                os.killpg(shard.pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        deadline = time.monotonic() + deadline_s
        remaining = dict(self._shards)
        while remaining and time.monotonic() < deadline:
            for label, shard in list(remaining.items()):
                try:
                    pid, _ = os.waitpid(shard.pid, os.WNOHANG)
                except ChildProcessError:
                    pid = shard.pid
                except OSError as exc:
                    if exc.errno != errno.ECHILD:
                        raise
                    pid = shard.pid
                if pid:
                    remaining.pop(label)
            if remaining:
                time.sleep(0.02)
        for label, shard in remaining.items():  # past deadline
            try:
                os.killpg(shard.pid, signal.SIGKILL)
                os.waitpid(shard.pid, 0)
            except (ProcessLookupError, ChildProcessError):
                pass
        for shard in self._shards.values():
            shutil.rmtree(shard.metrics_dir, ignore_errors=True)
        self._shards.clear()

    # -- trace warm-up -------------------------------------------------

    def warm_traces(
        self,
        references: int | None = None,
        seed: int = 1,
        workloads: tuple[str, ...] | None = None,
        os_names: tuple[str, ...] | None = None,
        jobs: int | None = None,
        timeout_s: float = 600.0,
    ) -> dict:
        """Pre-populate each shard's trace plane with *its* entries.

        Every OS model's traces live on the replica set that serves its
        queries (the ring's preference list for the OS's shard key —
        budgets and associativity caps share that node, see
        :func:`~repro.fleet.ring.shard_key`), so each shard is asked to
        warm exactly the OS names consistent hashing will route to it.
        Warming every replica, not just the owner, means failover hits
        a warm plane too.  The per-shard ``POST /v1/warm_traces``
        requests run in parallel — shards generate independently.

        Returns a report: per-shard assignments and outcomes plus
        fleet-wide entry/published totals.  Shards that fail to answer
        carry an ``"error"`` entry instead of a result.
        """
        if self.ring is None:
            raise RuntimeError("fleet is not started")
        if os_names is None:
            from repro.trace.generator import OS_MODELS

            os_names = tuple(sorted(OS_MODELS))
        topology = self.topology
        assignments: dict[str, list[str]] = {label: [] for label in topology}
        for os_name in os_names:
            key = shard_key(
                {
                    "os": os_name,
                    "max_cache_assoc": None,
                    "max_access_time_ns": None,
                }
            )
            for label in self.ring.preference(key, self.replicas):
                assignments[label].append(os_name)
        body_base = {"seed": seed}
        if references is not None:
            body_base["references"] = references
        if workloads is not None:
            body_base["workloads"] = list(workloads)
        if jobs is not None:
            body_base["jobs"] = jobs
        results: dict[str, dict] = {}

        def _warm_one(label: str) -> None:
            host, port = topology[label]
            payload = json.dumps(
                {**body_base, "os_names": assignments[label]}
            ).encode()
            conn = http.client.HTTPConnection(host, port, timeout=timeout_s)
            try:
                conn.request(
                    "POST", "/v1/warm_traces", body=payload,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                answer = json.loads(response.read())
                if response.status == 200 and answer.get("ok"):
                    results[label] = answer["result"]
                else:
                    results[label] = {
                        "error": answer.get("error")
                        or {"code": "bad_status", "status": response.status}
                    }
            except (OSError, ValueError) as exc:
                results[label] = {
                    "error": {"code": "unreachable", "message": str(exc)}
                }
            finally:
                conn.close()

        threads = [
            threading.Thread(
                target=_warm_one, args=(label,), daemon=True,
                name=f"repro-warm-{label}",
            )
            for label, assigned in assignments.items()
            if assigned
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=timeout_s)
        return {
            "os_names": list(os_names),
            "assignments": {
                label: assigned
                for label, assigned in sorted(assignments.items())
                if assigned
            },
            "shards": dict(sorted(results.items())),
            "entries": sum(
                r.get("entries", 0) for r in results.values()
            ),
            "published": sum(
                r.get("published", 0) for r in results.values()
            ),
            "errors": sorted(
                label for label, r in results.items() if "error" in r
            ),
        }

    def serve_until_interrupted(self) -> None:
        """The CLI loop: start, report, park until Ctrl-C, stop."""
        self.start()
        host, port = self.router.server_address[:2]
        shard_list = ", ".join(
            f"{label}:{shard.port}"
            for label, shard in sorted(self._shards.items())
        )
        print(
            f"repro.fleet router on http://{host}:{port}/v1/query — "
            f"{self.nodes} shard(s) [{shard_list}], R={self.replicas}, "
            f"{self.workers_per_shard} worker(s)/shard",
            file=sys.stderr if self.verbose else sys.stdout,
        )
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()
