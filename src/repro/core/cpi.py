"""CPI composition from per-structure benefit curves.

Mirrors Section 5.4 of the paper: total CPI for a candidate on-chip
memory system is the base CPI of 1.0 (single-issue machine) plus
independent contributions —

* I-cache: miss ratio x (6 + line_words - 1) cycles per instruction;
* D-cache: load miss ratio x the same penalty, times loads/instruction
  (stores are write-through and charged to the write buffer);
* TLB: user misses x ~20 cycles + kernel misses x ~400 cycles
  (software-managed R2000 refill);
* write buffer and "other" interlocks, which do not vary across the
  allocation space and enter as measured constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.configs import CacheConfig, MemSystemConfig, TlbConfig
from repro.core.measure import BenefitCurves, StructureCurves

DEFAULT_MISS_FIRST = 6
DEFAULT_MISS_PER_WORD = 1
DEFAULT_TLB_USER_PENALTY = 20
DEFAULT_TLB_KERNEL_PENALTY = 400


@dataclass(frozen=True)
class CpiModel:
    """Penalty model used to turn miss curves into CPI contributions.

    The defaults are the paper's: cache misses cost 6 cycles for the
    first word and 1 for each additional word; TLB misses cost ~20
    (user) / ~400 (kernel) cycles.  "Different miss penalties will lead
    to different optimal configurations" — so they are parameters here
    and an ablation bench sweeps them.
    """

    miss_first: int = DEFAULT_MISS_FIRST
    miss_per_word: int = DEFAULT_MISS_PER_WORD
    tlb_user_penalty: int = DEFAULT_TLB_USER_PENALTY
    tlb_kernel_penalty: int = DEFAULT_TLB_KERNEL_PENALTY

    def cache_penalty(self, line_words: int) -> float:
        """Cycles to fill one line."""
        return self.miss_first + self.miss_per_word * (line_words - 1)

    def icache_cpi(
        self, curves: BenefitCurves | StructureCurves, config: CacheConfig
    ) -> float:
        """I-cache CPI contribution of a design point."""
        return curves.icache_miss_ratio(config) * self.cache_penalty(
            config.line_words
        )

    def dcache_cpi(
        self, curves: BenefitCurves | StructureCurves, config: CacheConfig
    ) -> float:
        """D-cache CPI contribution of a design point."""
        return (
            curves.dcache_miss_ratio(config)
            * self.cache_penalty(config.line_words)
            * curves.loads_per_instr
        )

    def tlb_cpi(
        self, curves: BenefitCurves | StructureCurves, config: TlbConfig
    ) -> float:
        """TLB CPI contribution of a design point."""
        user, kernel = curves.tlb_misses_per_instr(config)
        return user * self.tlb_user_penalty + kernel * self.tlb_kernel_penalty

    def total_cpi(
        self,
        curves: BenefitCurves | StructureCurves,
        config: MemSystemConfig,
        include_fixed: bool = True,
    ) -> float:
        """Total CPI of a candidate allocation.

        Args:
            curves: measured benefit curves (suite or single workload).
            config: the candidate TLB + I-cache + D-cache.
            include_fixed: add the base cycle and the allocation-
                invariant write-buffer/other components.
        """
        cpi = (
            self.icache_cpi(curves, config.icache)
            + self.dcache_cpi(curves, config.dcache)
            + self.tlb_cpi(curves, config.tlb)
        )
        if include_fixed:
            cpi += 1.0 + curves.other_cpi + curves.wb_stall_per_instr
        return cpi
