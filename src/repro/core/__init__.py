"""The paper's primary contribution: budgeted on-chip memory allocation.

Given an rbe area budget, enumerate TLB + I-cache + D-cache
configurations (Table 5 of the paper), price each with the MQF area
model, score each with CPI composed from independently measured
per-structure benefit curves, and rank the feasible allocations
(Tables 6 and 7).
"""

from repro.core.configs import CacheConfig, MemSystemConfig, TlbConfig
from repro.core.space import (
    TABLE5_CACHE_ASSOCS,
    TABLE5_CACHE_CAPACITIES,
    TABLE5_CACHE_LINES,
    TABLE5_TLB_CONFIGS,
    enumerate_cache_configs,
    enumerate_memory_systems,
    enumerate_tlb_configs,
)
from repro.core.measure import BenefitCurves, measure_suite
from repro.core.cpi import CpiModel
from repro.core.allocator import Allocation, Allocator

__all__ = [
    "CacheConfig",
    "MemSystemConfig",
    "TlbConfig",
    "TABLE5_CACHE_ASSOCS",
    "TABLE5_CACHE_CAPACITIES",
    "TABLE5_CACHE_LINES",
    "TABLE5_TLB_CONFIGS",
    "enumerate_cache_configs",
    "enumerate_memory_systems",
    "enumerate_tlb_configs",
    "BenefitCurves",
    "measure_suite",
    "CpiModel",
    "Allocation",
    "Allocator",
]
