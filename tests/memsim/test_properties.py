"""Cross-component property tests (hypothesis).

These pin down the structural invariants the experiments rely on:
LRU inclusion across both engines, TLB/stack-engine agreement, and
the physical-frame mapper's bijection property.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.memsim.multiconfig import dedupe_consecutive, miss_flags_lru
from repro.memsim.stackdist import (
    fully_associative_miss_curve,
    set_associative_hit_counts,
)
from repro.memsim.tlb import Tlb
from repro.trace.events import assign_physical_frames
from repro.units import PAGE_BYTES, VPN_BITS

page_streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),   # vpn
        st.integers(min_value=0, max_value=3),    # asid
        st.booleans(),                            # kernel
    ),
    min_size=1,
    max_size=200,
)


class TestTlbAgainstStackEngine:
    @settings(max_examples=30, deadline=None)
    @given(stream=page_streams, entries_log=st.integers(min_value=2, max_value=6))
    def test_fa_tlb_matches_fa_stack_curve(self, stream, entries_log):
        entries = 1 << entries_log
        vpns = np.array([s[0] for s in stream])
        asids = np.array([s[1] for s in stream])
        tlb = Tlb(entries, "full")
        tlb.simulate(vpns, asids.astype(np.uint8))
        ids = (asids.astype(np.int64) << VPN_BITS) | vpns
        misses = fully_associative_miss_curve(ids, [entries])
        assert tlb.result.misses == int(misses[0])

    @settings(max_examples=30, deadline=None)
    @given(stream=page_streams, assoc_log=st.integers(min_value=0, max_value=3))
    def test_sa_tlb_matches_miss_flags(self, stream, assoc_log):
        assoc = 1 << assoc_log
        entries = 16 * assoc
        vpns = np.array([s[0] for s in stream])
        asids = np.array([s[1] for s in stream])
        tlb = Tlb(entries, assoc)
        tlb.simulate(vpns, asids.astype(np.uint8))
        ids = (asids.astype(np.int64) << VPN_BITS) | vpns
        flags = miss_flags_lru(ids, 16, assoc)
        assert tlb.result.misses == int(flags.sum())


class TestInclusionProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        ids=st.lists(
            st.integers(min_value=0, max_value=100), min_size=1, max_size=300
        ).map(lambda xs: np.array(xs, dtype=np.int64))
    )
    def test_fa_curve_monotone_in_size(self, ids):
        sizes = [1, 2, 4, 8, 16, 32]
        misses = fully_associative_miss_curve(ids, sizes)
        assert all(misses[i] >= misses[i + 1] for i in range(len(sizes) - 1))

    @settings(max_examples=30, deadline=None)
    @given(
        ids=st.lists(
            st.integers(min_value=0, max_value=100), min_size=1, max_size=300
        ).map(lambda xs: np.array(xs, dtype=np.int64)),
        sets_log=st.integers(min_value=0, max_value=3),
    )
    def test_dedupe_never_changes_stack_hits(self, ids, sets_log):
        n_sets = 1 << sets_log
        (deduped,) = dedupe_consecutive(ids)
        full = set_associative_hit_counts(ids, n_sets, 4)
        dd = set_associative_hit_counts(deduped, n_sets, 4)
        dropped = len(ids) - len(deduped)
        # Dropped refs are all guaranteed hits at every associativity.
        assert (full == dd + dropped).all()


class TestPhysicalFrames:
    @settings(max_examples=25, deadline=None)
    @given(
        pages=st.lists(
            st.integers(min_value=0, max_value=5000), min_size=1, max_size=200
        ),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_mapping_is_a_bijection_on_pages(self, pages, seed):
        addrs = np.array(pages, dtype=np.int64) * PAGE_BYTES
        phys = assign_physical_frames(addrs, seed=seed)
        virt_pages = np.unique(addrs >> 12)
        phys_pages = np.unique(phys >> 12)
        assert len(virt_pages) == len(phys_pages)

    @settings(max_examples=25, deadline=None)
    @given(
        offsets=st.lists(
            st.integers(min_value=0, max_value=PAGE_BYTES - 4), min_size=1, max_size=50
        ),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_offsets_survive_translation(self, offsets, seed):
        addrs = np.array(offsets, dtype=np.int64) + 7 * PAGE_BYTES
        phys = assign_physical_frames(addrs, seed=seed)
        assert ((phys & (PAGE_BYTES - 1)) == (addrs & (PAGE_BYTES - 1))).all()
