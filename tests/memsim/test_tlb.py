"""Unit tests for the TLB simulator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.memsim.tlb import FULLY_ASSOCIATIVE, Tlb


class TestGeometry:
    def test_fully_associative_one_set(self):
        tlb = Tlb(64, FULLY_ASSOCIATIVE)
        assert tlb.sets == 1

    def test_set_associative_geometry(self):
        tlb = Tlb(64, 4)
        assert tlb.sets == 16

    def test_rejects_bad_configs(self):
        with pytest.raises(ConfigurationError):
            Tlb(63, 1)
        with pytest.raises(ConfigurationError):
            Tlb(64, 3)
        with pytest.raises(ConfigurationError):
            Tlb(4, 8)


class TestTranslation:
    def test_miss_then_hit(self):
        tlb = Tlb(16, FULLY_ASSOCIATIVE)
        assert tlb.access(100) is False
        assert tlb.access(100) is True

    def test_asid_distinguishes_translations(self):
        """The same VPN in two address spaces needs two entries — the
        R2000's PID-tagged TLB semantics."""
        tlb = Tlb(16, FULLY_ASSOCIATIVE)
        tlb.access(5, asid=1)
        assert tlb.access(5, asid=2) is False
        assert tlb.access(5, asid=1) is True
        assert tlb.access(5, asid=2) is True

    def test_asid_preserved_in_set_associative_tags(self):
        """Regression: the tag must keep all ASID bits even when index
        bits are stripped from the VPN."""
        tlb = Tlb(64, 2)  # 32 sets -> 5 index bits
        tlb.access(32, asid=1)
        assert tlb.access(32, asid=2) is False

    def test_capacity_eviction(self):
        tlb = Tlb(4, FULLY_ASSOCIATIVE)
        for vpn in range(5):
            tlb.access(vpn)
        assert tlb.access(0) is False   # evicted (LRU)
        assert tlb.access(4) is True

    def test_kernel_misses_classified(self):
        tlb = Tlb(16, FULLY_ASSOCIATIVE)
        tlb.access(1, kernel=False)
        tlb.access(2, kernel=True)
        assert tlb.result.user_misses == 1
        assert tlb.result.kernel_misses == 1

    def test_service_cycles(self):
        tlb = Tlb(16, FULLY_ASSOCIATIVE)
        tlb.access(1, kernel=False)
        tlb.access(2, kernel=True)
        assert tlb.result.service_cycles(20, 400) == 420


class TestBulkSimulate:
    def test_simulate_matches_scalar(self):
        rng = np.random.default_rng(0)
        vpns = rng.integers(0, 40, size=500)
        asids = rng.integers(0, 3, size=500).astype(np.uint8)
        kernels = rng.random(500) < 0.2
        bulk = Tlb(16, 4)
        bulk.simulate(vpns, asids, kernels)
        scalar = Tlb(16, 4)
        for v, a, k in zip(vpns, asids, kernels):
            scalar.access(int(v), int(a), bool(k))
        assert bulk.result.misses == scalar.result.misses
        assert bulk.result.kernel_misses == scalar.result.kernel_misses

    def test_record_flags(self):
        tlb = Tlb(16, FULLY_ASSOCIATIVE)
        result = tlb.simulate(np.array([1, 1, 2]), record_flags=True)
        assert result.miss_flags.tolist() == [True, False, True]

    def test_miss_ratio(self):
        tlb = Tlb(16, FULLY_ASSOCIATIVE)
        tlb.simulate(np.array([1, 1, 1, 2]))
        assert tlb.result.miss_ratio == pytest.approx(0.5)


def _reference_stream(n, seed, vpn_span=4_000, n_asids=6):
    """A reuse-heavy synthetic stream: hot pages plus a cold scan."""
    rng = np.random.default_rng(seed)
    hot = rng.integers(0, vpn_span // 20, size=n)
    cold = rng.integers(0, vpn_span, size=n)
    take_hot = rng.random(n) < 0.7
    vpns = np.where(take_hot, hot, cold).astype(np.int64)
    asids = rng.integers(0, n_asids, size=n).astype(np.uint8)
    kernels = rng.random(n) < 0.25
    return vpns, asids, kernels


class TestVectorizedDifferential:
    """The vectorized LRU path is held bit-identical to the scalar
    :meth:`Tlb.simulate_scalar` oracle."""

    CONFIGS = [
        (16, FULLY_ASSOCIATIVE),
        (64, FULLY_ASSOCIATIVE),
        (64, 1),
        (64, 4),
        (256, 8),
    ]

    def _assert_identical(self, a, b):
        assert a.result.accesses == b.result.accesses
        assert a.result.misses == b.result.misses
        assert a.result.kernel_misses == b.result.kernel_misses
        assert a.result.user_misses == b.result.user_misses

    @pytest.mark.parametrize("entries,ways", CONFIGS)
    def test_matches_scalar_oracle(self, entries, ways):
        seed = entries + (ways if isinstance(ways, int) else 0)
        vpns, asids, kernels = _reference_stream(6_000, seed=seed)
        fast = Tlb(entries, ways)
        fast.simulate(vpns, asids, kernels, record_flags=True)
        slow = Tlb(entries, ways)
        slow.simulate_scalar(vpns, asids, kernels, record_flags=True)
        self._assert_identical(fast, slow)
        assert np.array_equal(fast.result.miss_flags, slow.result.miss_flags)

    def test_chunked_batches_interleaved_with_scalar(self):
        """State round-trips exactly: vectorized batches, scalar singles,
        and more vectorized batches agree with an all-scalar run."""
        vpns, asids, kernels = _reference_stream(5_000, seed=9)
        fast = Tlb(64, 4)
        slow = Tlb(64, 4)
        cursor = 0
        for step, scalar_next in ((777, True), (1, False), (1234, True),
                                  (3, False), (5_000, True)):
            stop = min(cursor + step, len(vpns))
            if cursor >= stop:
                continue
            window = slice(cursor, stop)
            if scalar_next:
                fast.simulate(vpns[window], asids[window], kernels[window])
            else:
                for i in range(cursor, stop):
                    fast.access(int(vpns[i]), int(asids[i]), bool(kernels[i]))
            slow.simulate_scalar(vpns[window], asids[window], kernels[window])
            cursor = stop
        self._assert_identical(fast, slow)

    def test_fifo_and_random_use_scalar_path(self):
        vpns, asids, kernels = _reference_stream(2_000, seed=5)
        for policy in ("fifo", "random"):
            batch = Tlb(64, 4, policy=policy)
            batch.simulate(vpns, asids, kernels)
            scalar = Tlb(64, 4, policy=policy)
            scalar.simulate_scalar(vpns, asids, kernels)
            self._assert_identical(batch, scalar)

    def test_out_of_range_inputs_fall_back_to_scalar(self):
        # asid 300 exceeds the 8-bit packed-id budget: simulate must
        # still agree with the oracle by taking the scalar path.
        vpns = np.array([1, 2, 1, 2, 1], dtype=np.int64)
        asids = np.array([300, 300, 300, 1, 1], dtype=np.int64)
        kernels = np.zeros(5, dtype=bool)
        fast = Tlb(16, 4)
        fast.simulate(vpns, asids, kernels)
        slow = Tlb(16, 4)
        slow.simulate_scalar(vpns, asids, kernels)
        self._assert_identical(fast, slow)

    def test_empty_batch(self):
        tlb = Tlb(16, 4)
        result = tlb.simulate(np.empty(0, dtype=np.int64))
        assert result.accesses == 0 and result.misses == 0
