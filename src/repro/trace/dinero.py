"""Dinero-format trace interchange.

The paper's trace-driven tools live in the dineroIII ecosystem
(`cache2000` consumes the same address streams).  This module reads
and writes the classic "din" format — one reference per line::

    <label> <hex address>

with labels 0 = read, 1 = write, 2 = instruction fetch — so synthetic
traces can feed external simulators and external din traces can drive
this package's simulators.

Din traces carry no translation metadata, so imported references are
marked mapped/user with a single ASID; that is exactly the information
loss of user-level tracing the paper's Table 3 quantifies.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, TextIO

import numpy as np

from repro.errors import TraceError
from repro.memsim.types import AccessKind
from repro.trace.events import ReferenceTrace, assign_physical_frames

DIN_READ = 0
DIN_WRITE = 1
DIN_IFETCH = 2

_TO_DIN = {
    AccessKind.LOAD: DIN_READ,
    AccessKind.STORE: DIN_WRITE,
    AccessKind.IFETCH: DIN_IFETCH,
}
_FROM_DIN = {
    DIN_READ: AccessKind.LOAD,
    DIN_WRITE: AccessKind.STORE,
    DIN_IFETCH: AccessKind.IFETCH,
}


def write_din(trace: ReferenceTrace, destination: str | Path | TextIO) -> int:
    """Write a trace in din format; returns the reference count.

    Virtual addresses are written (what a tracer on the modelled
    machine would capture).
    """
    own = isinstance(destination, (str, Path))
    handle = open(destination, "w") if own else destination
    try:
        kinds = trace.kinds
        addresses = trace.addresses
        labels = np.empty(len(trace), dtype=np.int64)
        labels[kinds == AccessKind.LOAD] = DIN_READ
        labels[kinds == AccessKind.STORE] = DIN_WRITE
        labels[kinds == AccessKind.IFETCH] = DIN_IFETCH
        for label, address in zip(labels.tolist(), addresses.tolist()):
            handle.write(f"{label} {address:x}\n")
        return len(trace)
    finally:
        if own:
            handle.close()


def _parse_lines(lines: Iterable[str]) -> tuple[list[int], list[int]]:
    labels: list[int] = []
    addresses: list[int] = []
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split()
        if len(parts) < 2:
            raise TraceError(f"malformed din line {lineno}: {line!r}")
        try:
            label = int(parts[0])
            address = int(parts[1], 16)
        except ValueError as exc:
            raise TraceError(f"malformed din line {lineno}: {line!r}") from exc
        if label not in _FROM_DIN:
            raise TraceError(f"unknown din label {label} on line {lineno}")
        labels.append(label)
        addresses.append(address)
    return labels, addresses


def read_din(
    source: str | Path | TextIO,
    workload: str = "din",
    physical_seed: int = 0,
) -> ReferenceTrace:
    """Read a din-format trace into a :class:`ReferenceTrace`.

    All references are marked mapped, user-space, ASID 1 (din traces
    carry no translation metadata); physical frames are assigned with
    the usual seeded allocator model so the cache simulators behave
    consistently.
    """
    own = isinstance(source, (str, Path))
    handle = open(source) if own else source
    try:
        labels, addresses = _parse_lines(handle)
    finally:
        if own:
            handle.close()
    n = len(addresses)
    address_array = np.array(addresses, dtype=np.int64)
    kind_array = np.array(
        [int(_FROM_DIN[label]) for label in labels], dtype=np.uint8
    )
    return ReferenceTrace(
        addresses=address_array,
        physical=assign_physical_frames(address_array, seed=physical_seed),
        kinds=kind_array,
        asids=np.ones(n, dtype=np.uint8),
        mapped=np.ones(n, dtype=bool),
        kernel=np.zeros(n, dtype=bool),
        workload=workload,
        os_name="none",
    )
