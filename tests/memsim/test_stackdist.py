"""Stack-distance engine tests, including hypothesis cross-checks
against the reference simulator (the paper's trace-driven simulators
were validated against hardware the same way)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.memsim.cache import Cache
from repro.memsim.multiconfig import miss_flags_lru
from repro.memsim.stackdist import (
    compulsory_miss_count,
    fully_associative_miss_curve,
    fully_associative_miss_split,
    set_associative_hit_counts,
    set_associative_miss_split,
)

line_id_streams = st.lists(
    st.integers(min_value=0, max_value=63), min_size=1, max_size=300
).map(lambda xs: np.array(xs, dtype=np.int64))


class TestSetAssociativeHitCounts:
    def test_simple_stream(self):
        ids = np.array([0, 1, 0, 2, 0, 1])
        hits = set_associative_hit_counts(ids, 1, 3)
        # distances: 0:- 1:- 0:d1 2:- 0:d1 1:d2
        assert hits.tolist() == [0, 2, 3]

    def test_inclusion_property(self):
        rng = np.random.default_rng(3)
        ids = rng.integers(0, 100, size=2000)
        hits = set_associative_hit_counts(ids, 4, 8)
        assert all(hits[i] <= hits[i + 1] for i in range(7))

    def test_rejects_bad_sets(self):
        with pytest.raises(ValueError):
            set_associative_hit_counts(np.array([1]), 3, 2)
        with pytest.raises(ValueError):
            set_associative_hit_counts(np.array([1]), 4, 0)

    @settings(max_examples=40, deadline=None)
    @given(
        ids=line_id_streams,
        sets_log=st.integers(min_value=0, max_value=3),
        assoc_log=st.integers(min_value=0, max_value=3),
    )
    def test_matches_reference_cache(self, ids, sets_log, assoc_log):
        """One stack pass must agree with the per-config reference
        simulator at every associativity."""
        n_sets = 1 << sets_log
        assoc = 1 << assoc_log
        hits = set_associative_hit_counts(ids, n_sets, 8)
        line_bytes = 16
        cache = Cache(n_sets * assoc * line_bytes, 4, assoc)
        for line in ids:
            cache.access(int(line) * line_bytes)
        reference_hits = cache.result.accesses - cache.result.misses
        assert int(hits[assoc - 1]) == reference_hits

    @settings(max_examples=25, deadline=None)
    @given(ids=line_id_streams, warm=st.integers(min_value=0, max_value=50))
    def test_count_from_splits_cleanly(self, ids, warm):
        """Warm-window hits plus counted hits equal full-trace hits."""
        warm = min(warm, len(ids))
        full = set_associative_hit_counts(ids, 2, 4)
        counted = set_associative_hit_counts(ids, 2, 4, count_from=warm)
        # Hits in [0, warm) of the same run:
        head = set_associative_hit_counts(ids[:warm], 2, 4) if warm else np.zeros(4)
        assert (counted + head == full).all()


class TestMissFlags:
    @settings(max_examples=40, deadline=None)
    @given(
        ids=line_id_streams,
        sets_log=st.integers(min_value=0, max_value=3),
        assoc=st.sampled_from([1, 2, 4]),
    )
    def test_flags_sum_matches_stack_engine(self, ids, sets_log, assoc):
        n_sets = 1 << sets_log
        flags = miss_flags_lru(ids, n_sets, assoc)
        hits = set_associative_hit_counts(ids, n_sets, assoc)
        assert int(flags.sum()) == len(ids) - int(hits[assoc - 1])


class TestFullyAssociativeCurve:
    def test_monotone_in_size(self):
        rng = np.random.default_rng(5)
        ids = rng.integers(0, 200, size=3000)
        sizes = [8, 16, 32, 64, 128]
        misses = fully_associative_miss_curve(ids, sizes)
        assert all(misses[i] >= misses[i + 1] for i in range(len(sizes) - 1))

    def test_huge_structure_only_compulsory_misses(self):
        ids = np.array([1, 2, 3, 1, 2, 3, 4])
        misses = fully_associative_miss_curve(ids, [512])
        assert misses[0] == compulsory_miss_count(ids) == 4

    @settings(max_examples=30, deadline=None)
    @given(ids=line_id_streams, size_log=st.integers(min_value=0, max_value=6))
    def test_matches_reference_fa_cache(self, ids, size_log):
        """The FA stack curve must match a 1-set LRU reference."""
        size = 1 << size_log
        misses = fully_associative_miss_curve(ids, [size])
        flags = miss_flags_lru(ids, 1, size)
        assert int(misses[0]) == int(flags.sum())


class TestClassSplits:
    def test_split_totals_match_unsplit(self):
        rng = np.random.default_rng(6)
        ids = rng.integers(0, 64, size=1500)
        flags = rng.random(1500) < 0.3
        misses, flagged = set_associative_miss_split(ids, 4, 8, flags)
        plain_hits = set_associative_hit_counts(ids, 4, 8)
        assert (misses == len(ids) - plain_hits).all()
        assert (flagged <= misses).all()

    def test_fa_split_totals_match_curve(self):
        rng = np.random.default_rng(7)
        ids = rng.integers(0, 64, size=1500)
        flags = rng.random(1500) < 0.5
        sizes = [4, 16, 64]
        misses, flagged = fully_associative_miss_split(ids, sizes, flags)
        curve = fully_associative_miss_curve(ids, sizes)
        assert (misses == curve).all()
        assert (flagged <= misses).all()

    def test_all_flagged_equals_total(self):
        ids = np.array([0, 1, 2, 0, 1, 2, 3])
        flags = np.ones(len(ids), dtype=bool)
        misses, flagged = set_associative_miss_split(ids, 1, 2, flags)
        assert (misses == flagged).all()
