"""Figure 7: total TLB service time vs fully-associative TLB size.

Runs the whole benchmark suite under Mach through Tapeworm-style TLB
simulation and reports total service time (user + kernel + other),
projected to nominal full-length benchmark runs.  The paper's shape:
service time collapses between 64 and 256 entries and flattens after,
leaving only page-fault/compulsory ("Other") time.
"""

from __future__ import annotations

from repro.core.configs import TlbConfig
from repro.core.measure import measure_workload
from repro.experiments.common import (
    format_table,
    projection_factor,
    suite,
    R2000_CLOCK_HZ,
)
from repro.monitor.tapeworm import PAGE_FAULT_SERVICE_CYCLES

SIZES = (32, 64, 128, 256, 512)
USER_PENALTY = 20
KERNEL_PENALTY = 400


def run(os_name: str = "mach") -> list[dict]:
    """Return one row per FA TLB size with service-time components."""
    curves = [
        measure_workload(
            workload,
            os_name,
            tlb_entries=SIZES,
            tlb_full_max=max(SIZES),
        )
        for workload in suite()
    ]
    rows = []
    for size in SIZES:
        user_s = kernel_s = other_s = 0.0
        config = TlbConfig(size, "full")
        for c in curves:
            factor = projection_factor(c.instructions)
            user, kernel = c.tlb[(size, "full")]
            user_s += user * USER_PENALTY * factor / R2000_CLOCK_HZ
            kernel_s += kernel * KERNEL_PENALTY * factor / R2000_CLOCK_HZ
            other_s += (
                c.page_fault_per_instr
                * c.instructions
                * PAGE_FAULT_SERVICE_CYCLES
                * factor
                / R2000_CLOCK_HZ
            )
        rows.append(
            {
                "tlb": config.label(),
                "user_s": round(user_s, 1),
                "kernel_s": round(kernel_s, 1),
                "other_s": round(other_s, 1),
                "total_s": round(user_s + kernel_s + other_s, 1),
            }
        )
    return rows


def main() -> None:
    """Print the Figure 7 series."""
    print("Figure 7: total TLB service time vs fully-associative TLB size "
          "(suite under Mach, projected to nominal full runs)")
    print(format_table(run()))


if __name__ == "__main__":
    main()
