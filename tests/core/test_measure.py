"""Tests for benefit-curve measurement (with a reduced grid so the
suite stays fast)."""

import pytest

from repro.core.configs import CacheConfig, TlbConfig
from repro.core.measure import BenefitCurves, measure_workload

SMALL_GRID = dict(
    capacities=(4096, 8192),
    lines=(4, 8),
    assocs=(1, 2),
    tlb_entries=(64, 128),
    tlb_assocs=(2, 4),
    tlb_full_max=64,
    references=70_000,
)


@pytest.fixture(scope="module")
def curves():
    return measure_workload("IOzone", "mach", **SMALL_GRID)


class TestMeasureWorkload:
    def test_grid_coverage(self, curves):
        assert set(curves.icache) == {
            (c, l, a) for c in (4096, 8192) for l in (4, 8) for a in (1, 2)
        }
        assert (64, "full") in curves.tlb
        assert (128, 2) in curves.tlb

    def test_rates_sane(self, curves):
        assert 0.1 < curves.loads_per_instr < 0.5
        assert 0.02 < curves.stores_per_instr < 0.4
        assert 0 < curves.mapped_per_instr < 2.0
        assert curves.wb_stall_per_instr >= 0

    def test_accessors(self, curves):
        ratio = curves.icache_miss_ratio(CacheConfig(8192, 4, 1))
        assert 0 <= ratio < 1
        user, kernel = curves.tlb_misses_per_instr(TlbConfig(64, 2))
        assert user >= 0 and kernel >= 0

    def test_miss_ratio_monotone_in_capacity(self, curves):
        small = curves.icache_miss_ratio(CacheConfig(4096, 4, 2))
        big = curves.icache_miss_ratio(CacheConfig(8192, 4, 2))
        assert big <= small

    def test_disk_cache_round_trip(self, curves):
        again = measure_workload("IOzone", "mach", **SMALL_GRID)
        assert again.icache == curves.icache
        assert again.tlb == curves.tlb

    def test_cache_key_distinguishes_parameters(self):
        other = measure_workload(
            "IOzone", "mach", **{**SMALL_GRID, "references": 60_000}
        )
        assert other.instructions > 0


class TestBenefitCurves:
    def test_suite_average_between_extremes(self):
        per = [
            measure_workload(w, "mach", **SMALL_GRID)
            for w in ("IOzone", "jpeg_play")
        ]
        suite = BenefitCurves(os_name="mach", per_workload=per)
        config = CacheConfig(8192, 4, 1)
        ratios = [c.icache_miss_ratio(config) for c in per]
        assert min(ratios) <= suite.icache_miss_ratio(config) <= max(ratios)


class TestWorkerTraceMemo:
    def test_eviction_is_true_lru(self, monkeypatch):
        """Regression, twice over: hitting the memo cap used to clear
        the whole memo, and after that was fixed, eviction still went
        by insertion order — a hit never refreshed recency, so the cap
        could drop the hottest trace under interleaved units.  Eviction
        must be true LRU: hits count."""
        from repro.core import measure

        calls = []
        monkeypatch.setattr(
            measure.tracestore, "get_trace",
            lambda workload, os_name, references, seed: (
                calls.append(workload) or object()
            ),
        )
        monkeypatch.setattr(measure, "_worker_traces", {})

        a1 = measure._trace_for("a", "mach", 1000, 1)
        b1 = measure._trace_for("b", "mach", 1000, 1)
        assert calls == ["a", "b"]

        # Inserting a third evicts only "a" (least recent); "b" survives.
        measure._trace_for("c", "mach", 1000, 1)
        assert measure._trace_for("b", "mach", 1000, 1) is b1
        assert calls == ["a", "b", "c"]

        # "a" regenerates; the hit above made "b" most-recent, so the
        # evictee is now "c" — insertion order would wrongly drop "b".
        a2 = measure._trace_for("a", "mach", 1000, 1)
        assert a2 is not a1
        assert calls == ["a", "b", "c", "a"]
        assert set(k[0] for k in measure._worker_traces) == {"b", "a"}
        assert measure._trace_for("b", "mach", 1000, 1) is b1
        assert calls == ["a", "b", "c", "a"]
