"""Tests for the zero-copy trace plane (repro.trace.tracestore)."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.trace import generator, tracestore
from repro.trace.generator import generate_trace

REFERENCES = 40_000

TRACE_FIELDS = ("addresses", "physical", "kinds", "asids", "mapped", "kernel")


@pytest.fixture
def plane(tmp_path, monkeypatch):
    """An empty, isolated trace cache for one test."""
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    return tmp_path / "traces"


def _publish(workload: str, os_name: str, seed: int = 3):
    trace = generate_trace(workload, os_name, REFERENCES, seed=seed)
    key = tracestore.key_for(workload, os_name, REFERENCES, seed)
    path = tracestore.publish(trace, key)
    return trace, key, path


class TestRoundtrip:
    @pytest.mark.parametrize(
        "workload,os_name",
        [
            ("mpeg_play", "ultrix"),
            ("mpeg_play", "mach"),
            ("IOzone", "ultrix"),
            ("IOzone", "mach"),
        ],
    )
    def test_every_field_bit_identical(self, plane, workload, os_name):
        trace, key, _ = _publish(workload, os_name)
        loaded = tracestore.load(key)
        assert loaded is not None
        for name in TRACE_FIELDS:
            original = getattr(trace, name)
            restored = getattr(loaded, name)
            assert restored.dtype == original.dtype, name
            assert np.array_equal(restored, original), name
        assert loaded.page_faults == trace.page_faults
        assert loaded.other_cpi == trace.other_cpi
        assert loaded.workload == trace.workload
        assert loaded.os_name == trace.os_name
        # Derived streams come back bit-identical too, pre-seeded so
        # they are never recomputed per measurement unit.
        assert np.array_equal(loaded.ifetch_physical(), trace.ifetch_physical())
        assert np.array_equal(loaded.load_physical(), trace.load_physical())
        assert loaded.ifetch_physical() is loaded._derived["ifetch_physical"]

    def test_loaded_arrays_are_memmaps(self, plane):
        _, key, _ = _publish("jpeg_play", "mach")
        loaded = tracestore.load(key)
        for name in TRACE_FIELDS:
            assert isinstance(getattr(loaded, name), np.memmap), name
        assert isinstance(loaded.ifetch_physical(), np.memmap)

    def test_missing_key_is_a_miss(self, plane):
        key = tracestore.key_for("mab", "ultrix", REFERENCES, seed=99)
        assert tracestore.load(key) is None


class TestDerivedStreamCache:
    def test_streams_materialize_once_per_trace(self):
        trace = generate_trace("mab", "mach", 10_000, seed=2)
        first = trace.ifetch_physical()
        assert trace.ifetch_physical() is first
        assert trace.load_physical() is trace.load_physical()

    def test_slice_does_not_share_the_cache(self):
        trace = generate_trace("mab", "mach", 10_000, seed=2)
        trace.ifetch_physical()
        sliced = trace.slice(0, 100)
        assert "ifetch_physical" not in sliced._derived


class TestCorruptionFallback:
    """Torn or corrupt entries must fall back to regeneration."""

    @pytest.mark.parametrize("keep_fraction", [0.0, 0.3, 0.9])
    def test_truncated_entry_is_evicted(self, plane, keep_fraction):
        trace, key, path = _publish("mpeg_play", "mach")
        blob = path.read_bytes()
        path.write_bytes(blob[: int(len(blob) * keep_fraction)])
        assert tracestore.load(key) is None
        assert not path.exists()

    def test_truncated_entry_regenerates_and_republishes(self, plane):
        trace, key, path = _publish("mpeg_play", "mach")
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        recovered = tracestore.get_trace("mpeg_play", "mach", REFERENCES, seed=3)
        assert np.array_equal(recovered.addresses, trace.addresses)
        # The entry was re-published and now loads cleanly again.
        assert path.exists()
        assert tracestore.load(key) is not None

    def test_garbage_header_is_evicted(self, plane):
        _, key, path = _publish("IOzone", "ultrix")
        path.write_bytes(b"\x40\x00\x00\x00\x00\x00\x00\x00" + b"not json" * 8)
        assert tracestore.load(key) is None
        assert not path.exists()

    def test_foreign_magic_is_evicted(self, plane):
        _, key, path = _publish("IOzone", "ultrix")
        blob = path.read_bytes()
        path.write_bytes(blob.replace(b"repro-tracestore", b"other-tracestore"))
        assert tracestore.load(key) is None
        assert not path.exists()

    def test_short_array_extent_never_served(self, plane):
        # Chop off exactly the last array's bytes: the header still
        # parses, but the data block is short — must be a miss, never
        # a short trace.
        trace, key, path = _publish("mpeg_play", "ultrix")
        blob = path.read_bytes()
        path.write_bytes(blob[: -trace.load_physical().nbytes])
        assert tracestore.load(key) is None

    def test_publish_leaves_no_temp_files(self, plane):
        _, _, path = _publish("mab", "mach")
        leftovers = [p for p in path.parent.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []


class TestKeying:
    def test_generator_version_invalidates_cache(self, plane, monkeypatch):
        _, key, _ = _publish("mpeg_play", "mach")
        assert tracestore.load(key) is not None
        monkeypatch.setattr(
            generator,
            "TRACE_FORMAT_VERSION",
            generator.TRACE_FORMAT_VERSION + 1,
        )
        bumped = tracestore.key_for("mpeg_play", "mach", REFERENCES, seed=3)
        assert bumped != key
        assert tracestore.load(bumped) is None

    def test_scale_is_part_of_the_key(self, plane, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "1.0")
        base = tracestore.key_for("mpeg_play", "mach", REFERENCES, seed=3)
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert tracestore.key_for("mpeg_play", "mach", REFERENCES, seed=3) != base

    def test_key_mismatch_under_hash_collision_is_a_miss(self, plane):
        # Rename an entry onto another key's path: the embedded key no
        # longer matches, so the load must refuse to serve it.
        _, key_a, path_a = _publish("mpeg_play", "mach", seed=3)
        key_b = tracestore.key_for("IOzone", "ultrix", REFERENCES, seed=4)
        target = tracestore.entry_path(key_b)
        os.replace(path_a, target)
        assert tracestore.load(key_b) is None


class TestConfig:
    def test_disabled_plane_generates_without_writing(self, plane, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        assert not tracestore.enabled()
        trace = tracestore.get_trace("mab", "ultrix", 10_000, seed=5)
        assert len(trace) >= 10_000
        assert not plane.exists()

    def test_default_directory(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
        assert tracestore.trace_cache_dir() is not None
        assert tracestore.trace_cache_dir().name == ".repro-trace-cache"

    def test_bad_max_entries_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE_MAX", "many")
        with pytest.raises(ConfigError, match="REPRO_TRACE_CACHE_MAX"):
            tracestore.max_entries()
        monkeypatch.setenv("REPRO_TRACE_CACHE_MAX", "0")
        with pytest.raises(ConfigError, match="REPRO_TRACE_CACHE_MAX"):
            tracestore.max_entries()

    def test_prune_drops_oldest_beyond_cap(self, plane, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE_MAX", "2")
        _, key_old, path_old = _publish("mpeg_play", "mach", seed=1)
        os.utime(path_old, ns=(1, 1))  # unambiguously the oldest
        _, key_mid, path_mid = _publish("mpeg_play", "mach", seed=2)
        os.utime(path_mid, ns=(2, 2))
        _, key_new, path_new = _publish("mpeg_play", "mach", seed=3)
        assert not path_old.exists()
        assert path_mid.exists() and path_new.exists()
        assert tracestore.load(key_old) is None
        assert tracestore.load(key_new) is not None
