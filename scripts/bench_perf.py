"""Performance benchmark harness: writes BENCH_perf.json.

Times the two layers the fast simulation engine accelerates:

1. The Table 5 cache-miss-ratio grid on a 700k-reference instruction
   stream — interpreted baseline vs the engine (and each forced engine
   mode), with a bit-identity check.
2. A full StructureCurves measurement (all units for one
   (workload, OS) pair), serial and with ``--jobs 4``.

Usage::

    PYTHONPATH=src python scripts/bench_perf.py [--output BENCH_perf.json]

``REPRO_SCALE`` is ignored: the numbers are defined at full trace
length so they are comparable across runs and machines.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time

import numpy as np

from repro.core.measure import measure_workload
from repro.core.space import (
    TABLE5_CACHE_ASSOCS,
    TABLE5_CACHE_CAPACITIES,
    TABLE5_CACHE_LINES,
)
from repro.memsim.engine import engine_mode, native_available
from repro.memsim.multiconfig import (
    cache_miss_ratio_grid,
    cache_miss_ratio_grid_reference,
)
from repro.trace.generator import generate_trace

BENCH_REFERENCES = 700_000
WORKLOAD = "mpeg_play"
OS_NAME = "mach"


def best_of(fn, reps: int = 3) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench_grid(trace) -> dict:
    stream = np.asarray(trace.ifetch_physical(), dtype=np.int64)
    args = (
        stream,
        list(TABLE5_CACHE_CAPACITIES),
        list(TABLE5_CACHE_LINES),
        list(TABLE5_CACHE_ASSOCS),
    )
    t0 = time.perf_counter()
    reference = cache_miss_ratio_grid_reference(*args)
    reference_s = time.perf_counter() - t0

    modes = ["auto", "vector", "python"] + (
        ["native"] if native_available() else []
    )
    results: dict = {
        "stream": "ifetch",
        "references": int(len(stream)),
        "reference_seconds": round(reference_s, 3),
        "engines": {},
    }
    for mode in modes:
        seconds, grid = best_of(
            lambda: cache_miss_ratio_grid(*args, engine=mode)
        )
        results["engines"][mode] = {
            "seconds": round(seconds, 4),
            "speedup": round(reference_s / seconds, 1),
            "bit_identical": grid == reference,
        }
    return results


def bench_curves() -> dict:
    def run(jobs):
        return measure_workload(
            WORKLOAD,
            OS_NAME,
            references=BENCH_REFERENCES,
            use_cache=False,
            jobs=jobs,
        )

    t0 = time.perf_counter()
    serial = run(1)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run(4)
    parallel_s = time.perf_counter() - t0
    return {
        "workload": WORKLOAD,
        "os": OS_NAME,
        "references": BENCH_REFERENCES,
        "serial_seconds": round(serial_s, 2),
        "jobs4_seconds": round(parallel_s, 2),
        "identical": serial == parallel,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default="BENCH_perf.json", help="output JSON path"
    )
    args = parser.parse_args(argv)
    out_dir = os.path.dirname(os.path.abspath(args.output))
    if not os.path.isdir(out_dir):
        parser.error(f"output directory does not exist: {out_dir}")

    print(f"generating {BENCH_REFERENCES:,}-reference {WORKLOAD}/{OS_NAME} trace ...")
    trace = generate_trace(WORKLOAD, OS_NAME, BENCH_REFERENCES, seed=1)

    print("benchmarking Table 5 grid sweep ...")
    grid = bench_grid(trace)
    for mode, row in grid["engines"].items():
        print(
            f"  {mode:>7}: {row['seconds']:.3f}s "
            f"({row['speedup']}x, identical={row['bit_identical']})"
        )

    print("benchmarking full StructureCurves measurement ...")
    curves = bench_curves()
    print(
        f"  serial: {curves['serial_seconds']}s   "
        f"jobs=4: {curves['jobs4_seconds']}s   "
        f"identical={curves['identical']}"
    )

    payload = {
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "default_engine": engine_mode(),
            "native_kernel": native_available(),
        },
        "grid_sweep": grid,
        "structure_curves": curves,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
