"""The observability layer: metrics, tracing, structured logs.

Unit tests for the instruments plus end-to-end checks that the HTTP
layer actually emits them: one JSON log line per request carrying the
request ID the response header echoes, spans nesting http.request →
engine.query → store.load, and a /v1/metrics payload whose counters
agree with the traffic sent.
"""

import io
import json
import threading
import urllib.request

import pytest

from repro.core.measure import BenefitCurves, measure_workload
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    JsonLogger,
    MetricsRegistry,
    NullLogger,
    Tracer,
    merge_registry_snapshots,
    set_tracer,
)
from repro.service.client import ServiceClient
from repro.service.engine import QueryEngine
from repro.service.http import make_server
from repro.store import CurveStore, StoreKey

TEST_REFERENCES = 60_000


@pytest.fixture(scope="module")
def curves():
    single = measure_workload("ousterhout", "mach", references=TEST_REFERENCES)
    return BenefitCurves(os_name="mach", per_workload=[single])


@pytest.fixture(scope="module")
def store(tmp_path_factory, curves):
    store = CurveStore(tmp_path_factory.mktemp("obs-store") / "store")
    store.build(curves, StoreKey.current("mach", suite=("ousterhout",)))
    return store


class TestCounterGauge:
    def test_counter_totals_and_labels(self):
        counter = Counter()
        counter.inc()
        counter.inc(2, label="200")
        counter.inc(label="503")
        assert counter.total == 4
        snapshot = counter.snapshot()
        assert snapshot["total"] == 4
        assert snapshot["by_label"] == {"200": 2, "503": 1}

    def test_counter_threaded_increments_all_land(self):
        counter = Counter()
        threads = [
            threading.Thread(
                target=lambda: [counter.inc() for _ in range(1000)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.total == 8000

    def test_gauge_high_water(self):
        gauge = Gauge()
        gauge.add(3)
        gauge.sub(1)
        gauge.add(1)
        snapshot = gauge.snapshot()
        assert snapshot["current"] == 3
        assert snapshot["high_water"] == 3


class TestHistogram:
    def test_quantiles_read_off_buckets(self):
        histogram = Histogram(bounds_ms=(1.0, 10.0, 100.0))
        for _ in range(90):
            histogram.observe(0.5)
        for _ in range(10):
            histogram.observe(50.0)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 100
        assert snapshot["p50_ms"] == 1.0  # upper bound of the 0.5 bucket
        assert snapshot["p95_ms"] == 100.0
        assert snapshot["min_ms"] == 0.5
        assert snapshot["max_ms"] == 50.0
        assert snapshot["buckets"] == {
            "le_1": 90, "le_10": 0, "le_100": 10, "le_inf": 0,
        }

    def test_overflow_lands_in_inf_bucket(self):
        histogram = Histogram(bounds_ms=(1.0,))
        histogram.observe(99.0)
        snapshot = histogram.snapshot()
        assert snapshot["buckets"]["le_inf"] == 1
        assert snapshot["p50_ms"] == 99.0  # capped at the observed max

    def test_empty_snapshot(self):
        snapshot = Histogram().snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p50_ms"] is None
        assert snapshot["min_ms"] is None

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(bounds_ms=(10.0, 1.0))


class TestRegistry:
    def test_instruments_are_memoized(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.gauge("g") is registry.gauge("g")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("reqs").inc(label="200")
        registry.histogram("lat").observe(2.0)
        registry.gauge("inflight").add(1)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["reqs"]["total"] == 1
        assert snapshot["histograms"]["lat"]["count"] == 1
        assert snapshot["gauges"]["inflight"]["current"] == 1


class TestMergeSnapshots:
    def _registry(self, latencies, statuses, inflight):
        registry = MetricsRegistry()
        for status in statuses:
            registry.counter("http_responses").inc(label=status)
        for value in latencies:
            registry.histogram("http_latency_ms").observe(value)
        registry.gauge("http_inflight").add(inflight)
        return registry

    def test_counters_and_buckets_sum_exactly(self):
        a = self._registry([0.2, 3.0], ["200", "200"], 1)
        b = self._registry([0.3, 40.0, 9000.0], ["200", "429", "200"], 2)
        merged = merge_registry_snapshots([a.snapshot(), b.snapshot()])

        responses = merged["counters"]["http_responses"]
        assert responses["total"] == 5
        assert responses["by_label"] == {"200": 4, "429": 1}

        latency = merged["histograms"]["http_latency_ms"]
        assert latency["count"] == 5
        assert latency["min_ms"] == 0.2
        assert latency["max_ms"] == 9000.0
        assert latency["buckets"]["le_inf"] == 1  # the 9 s outlier
        # Percentiles re-read off the merged buckets match a single
        # registry fed the union of samples.
        union = self._registry(
            [0.2, 3.0, 0.3, 40.0, 9000.0], [], 0
        ).snapshot()["histograms"]["http_latency_ms"]
        for q in ("p50_ms", "p95_ms", "p99_ms"):
            assert latency[q] == union[q]

        assert merged["gauges"]["http_inflight"]["current"] == 3

    def test_instrument_missing_from_one_worker(self):
        a = MetricsRegistry()
        a.counter("only_in_a").inc(5)
        b = MetricsRegistry()
        b.histogram("only_in_b").observe(1.0)
        merged = merge_registry_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["only_in_a"]["total"] == 5
        assert merged["histograms"]["only_in_b"]["count"] == 1

    def test_empty_input(self):
        merged = merge_registry_snapshots([])
        assert merged == {"counters": {}, "histograms": {}, "gauges": {}}


class TestTracer:
    def test_nesting_links_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        finished = tracer.finished()
        assert [s["name"] for s in finished] == ["inner", "outer"]
        assert finished[1]["dur_ms"] >= finished[0]["dur_ms"]

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (record,) = tracer.finished()
        assert record["error"] == "ValueError: nope"

    def test_threads_do_not_share_parents(self):
        tracer = Tracer()
        seen = {}

        def worker(name):
            with tracer.span(name) as span:
                seen[name] = span.parent_id

        with tracer.span("main"):
            thread = threading.Thread(target=worker, args=("side",))
            thread.start()
            thread.join()
        assert seen["side"] is None  # not parented under "main"

    def test_ring_buffer_bounded(self):
        tracer = Tracer(buffer_size=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        names = [s["name"] for s in tracer.finished()]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_attrs_and_set(self):
        tracer = Tracer()
        with tracer.span("q", os="mach") as span:
            span.set(count=3)
        (record,) = tracer.finished()
        assert record["attrs"] == {"os": "mach", "count": 3}


class TestJsonLogger:
    def test_one_json_object_per_line(self):
        stream = io.StringIO()
        logger = JsonLogger(stream)
        logger.log("request", request_id="abc", status=200, skipped=None)
        logger.log("request", request_id="def", status=404)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "request"
        assert first["request_id"] == "abc"
        assert "skipped" not in first  # None fields are elided
        assert first["ts"] > 0

    def test_null_logger_emits_nothing(self):
        assert NullLogger().log("request", status=200) == {}

    def test_closed_stream_never_raises(self):
        stream = io.StringIO()
        stream.close()
        JsonLogger(stream).log("request", status=200)


class TestServedObservability:
    @pytest.fixture
    def served(self, store):
        log_stream = io.StringIO()
        server = make_server(
            QueryEngine(store), port=0, log_stream=log_stream
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield server, f"http://{host}:{port}", log_stream
        server.shutdown()
        server.server_close()

    def test_request_log_line_and_header_id_agree(self, served):
        _, base, log_stream = served
        request = urllib.request.Request(
            f"{base}/v1/query",
            data=json.dumps(
                {"type": "point", "os": "mach", "budget": 250_000,
                 "limit": 1}
            ).encode(),
            headers={"X-Request-Id": "req-test-42"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.headers["X-Request-Id"] == "req-test-42"
            assert json.loads(response.read())["ok"] is True
        lines = [
            json.loads(line)
            for line in log_stream.getvalue().splitlines()
        ]
        (entry,) = [
            line for line in lines
            if line["event"] == "request" and line["method"] == "POST"
        ]
        assert entry["request_id"] == "req-test-42"
        assert entry["status"] == 200
        assert entry["path"] == "/v1/query"
        assert entry["dur_ms"] > 0

    def test_generated_request_id_on_errors(self, served):
        import urllib.error

        _, base, _ = served
        request = urllib.request.Request(
            f"{base}/v1/query", data=b"{nope", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        generated = excinfo.value.headers["X-Request-Id"]
        assert generated and generated != "-"
        payload = json.loads(excinfo.value.read())
        assert payload["request_id"] == generated

    def test_metrics_endpoint_counts_traffic(self, served):
        _, base, _ = served
        client = ServiceClient(base, retries=0)
        for budget in (150_000, 150_000, 250_000):
            client.query({"type": "point", "os": "mach", "budget": budget})
        metrics = client.metrics()
        assert metrics["counters"]["http_requests"]["by_label"][
            "POST query"
        ] == 3
        # The client revalidates the repeated budget with If-None-Match
        # and the server's byte cache answers it with a body-less 304.
        responses = metrics["counters"]["http_responses"]["by_label"]
        assert responses["200"] >= 2
        assert responses["304"] == 1
        assert metrics["counters"]["http_not_modified"]["total"] == 1
        cache = metrics["engine_cache"]
        assert cache["byte_hits"] == 1 and cache["byte_misses"] == 2
        assert cache["hits"] == 0 and cache["misses"] == 2
        assert cache["hit_rate"] == 0.0
        assert metrics["uptime_s"] >= 0
        assert metrics["faults"] == {
            "corrupt_store": 0, "latency": 0, "drop_conn": 0,
        }
        assert metrics["histograms"]["http_latency_ms"]["count"] >= 3

    def test_spans_nest_through_the_stack(self, store):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            engine = QueryEngine(store)
            engine.query(
                {"type": "point", "os": "mach", "budget": 250_000,
                 "limit": 1}
            )
        finally:
            set_tracer(previous)
        spans = tracer.finished()
        by_name = {s["name"]: s for s in spans}
        assert {"store.load", "engine.price", "engine.rank_indexed",
                "engine.query"} <= set(by_name)
        query = by_name["engine.query"]
        assert by_name["engine.rank_indexed"]["trace"] == query["trace"]
        assert by_name["store.load"]["trace"] == query["trace"]
