"""jpeg_play: xloadimage displaying four JPEG images.

The least OS-intensive benchmark of the suite (Table 4 shows the
lowest CPI and the smallest OS stall components): long decode bursts
in compact loops, a modest stream of image data, and only occasional
file and display activity.
"""

from repro.workloads.base import WorkloadSpec

JPEG_PLAY = WorkloadSpec(
    name="jpeg_play",
    description="xloadimage displaying four JPEG images",
    load_frac=0.20,
    store_frac=0.09,
    other_cpi=0.10,
    compute_instructions=60_000,
    hot_loop_bodies=(200, 500),
    hot_loop_fraction=0.80,
    loop_iterations=60,
    code_footprint_bytes=16 * 1024,
    text_bytes=256 * 1024,
    heap_pages=8,
    heap_record_words=4,
    stream_bytes=1024 * 1024,
    stream_run_words=8,
    stream_frac=0.10,
    service_mix={"read": 0.6, "gettimeofday": 0.2, "ioctl": 0.2},
    payload_bytes=2 * 1024,
    services_per_cycle=1,
    x_interaction_rate=0.15,
    page_fault_rate=0.02,
)
