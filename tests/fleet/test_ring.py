"""Property tests for the consistent-hash ring.

The two properties that make the ring fit for shard placement are
pinned here exactly as the fleet relies on them: **balance** (at 128
vnodes the per-node share of a large key population stays near 1/N)
and **minimal remap** (a membership change moves only the departed or
arrived node's share of keys — everyone else keeps their owner, so a
join/leave invalidates ~1/N of warm caches, never all of them).
"""

import pytest

from repro.fleet.ring import DEFAULT_VNODES, Ring, hash_key, shard_key

KEYS = [f"key-{i}" for i in range(10_000)]


def _owners(ring):
    return {key: ring.owner(key) for key in KEYS}


class TestBalance:
    def test_load_concentrates_near_uniform(self):
        # The bound is loose relative to measured skew (~1.17 max/mean
        # at 5 nodes) but tight enough to catch a broken point
        # distribution, which lands some node at several times 1/N.
        for n in (3, 5, 8):
            ring = Ring([f"node-{i}" for i in range(n)])
            counts = {}
            for key in KEYS:
                owner = ring.owner(key)
                counts[owner] = counts.get(owner, 0) + 1
            assert set(counts) == set(ring.nodes)
            mean = len(KEYS) / n
            assert max(counts.values()) / mean < 1.35
            assert min(counts.values()) / mean > 0.65

    def test_fewer_vnodes_balance_worse(self):
        # Sanity check on *why* 128: a 1-vnode ring shows real skew.
        coarse = Ring([f"node-{i}" for i in range(5)], vnodes=1)
        counts = {}
        for key in KEYS:
            owner = coarse.owner(key)
            counts[owner] = counts.get(owner, 0) + 1
        mean = len(KEYS) / 5
        assert max(counts.values()) / mean > 1.35


class TestMinimalRemap:
    def test_remove_moves_only_the_victims_keys(self):
        ring = Ring([f"node-{i}" for i in range(5)])
        before = _owners(ring)
        shrunk = ring.remove_node("node-2")
        after = {key: shrunk.owner(key) for key in KEYS}
        for key in KEYS:
            if before[key] == "node-2":
                assert after[key] != "node-2"
            else:
                # Every key the victim did not own keeps its owner:
                # zero collateral remap, exactly.
                assert after[key] == before[key]

    def test_join_moves_at_most_its_share_and_only_to_itself(self):
        ring = Ring([f"node-{i}" for i in range(5)])
        before = _owners(ring)
        grown = ring.add_node("node-5")
        moved = 0
        for key in KEYS:
            owner = grown.owner(key)
            if owner != before[key]:
                moved += 1
                assert owner == "node-5"  # moves only onto the joiner
        # Ideal share is 1/6 ≈ 0.167; allow vnode-placement slack.
        assert moved / len(KEYS) < 2 / 6

    def test_add_then_remove_round_trips(self):
        ring = Ring(["a", "b", "c"])
        again = ring.add_node("d").remove_node("d")
        assert {key: again.owner(key) for key in KEYS} == _owners(ring)

    def test_rings_are_immutable(self):
        ring = Ring(["a", "b"])
        ring.add_node("c")
        ring.remove_node("b")
        assert ring.nodes == ("a", "b")
        with pytest.raises(ValueError):
            ring.remove_node("zz")


class TestPreference:
    def test_owner_first_distinct_and_capped(self):
        ring = Ring([f"node-{i}" for i in range(5)])
        for key in KEYS[:500]:
            pref = ring.preference(key, 3)
            assert pref[0] == ring.owner(key)
            assert len(pref) == len(set(pref)) == 3
        assert len(ring.preference("k", 99)) == 5  # capped at node count

    def test_preference_survives_unrelated_membership_change(self):
        # Replica sets only change where the departed node appeared:
        # a key whose preference list never named the victim keeps its
        # exact replica set — the replica analogue of minimal remap.
        ring = Ring([f"node-{i}" for i in range(5)])
        shrunk = ring.remove_node("node-4")
        untouched = 0
        for key in KEYS[:2000]:
            pref = ring.preference(key, 2)
            if "node-4" not in pref:
                assert shrunk.preference(key, 2) == pref
                untouched += 1
        assert untouched > 0  # the assertion above actually ran


class TestShardKey:
    def test_budget_is_excluded(self):
        # Every budget against one priced space must land on the same
        # replica set — the budget never reaches the ring key.
        low = {"type": "point", "os": "mach", "budget": 1.0,
               "max_cache_assoc": 4, "max_access_time_ns": None}
        high = dict(low, budget=9e9)
        assert shard_key(low) == shard_key(high)

    def test_restriction_is_included(self):
        base = {"type": "point", "os": "mach", "budget": 1.0,
                "max_cache_assoc": 4, "max_access_time_ns": None}
        other = dict(base, max_cache_assoc=2)
        assert shard_key(base) != shard_key(other)

    def test_batch_keys_on_full_os_list(self):
        batch = {"type": "batch", "os_names": ["mach", "ultrix"],
                 "budgets": [1.0], "max_cache_assoc": None,
                 "max_access_time_ns": None}
        assert "mach,ultrix" in shard_key(batch)


class TestConstruction:
    def test_rejects_empty_and_bad_vnodes(self):
        with pytest.raises(ValueError):
            Ring([])
        with pytest.raises(ValueError):
            Ring(["a"], vnodes=0)

    def test_duplicates_collapse(self):
        assert Ring(["a", "a", "b"]).nodes == ("a", "b")

    def test_hash_key_is_stable_64_bit(self):
        value = hash_key("mach|assoc=None|t=None")
        assert 0 <= value < 2**64
        assert value == hash_key("mach|assoc=None|t=None")


def test_owner_always_a_member_property():
    hypothesis = pytest.importorskip("hypothesis")
    from hypothesis import given, settings, strategies as st

    labels = st.lists(
        st.text(alphabet="abcdef0123456789", min_size=1, max_size=8),
        min_size=1, max_size=8, unique=True,
    )

    @settings(max_examples=50, deadline=None)
    @given(nodes=labels, key=st.text(min_size=0, max_size=32))
    def check(nodes, key):
        ring = Ring(nodes, vnodes=16)
        assert ring.owner(key) in ring.nodes
        pref = ring.preference(key, 3)
        assert pref[0] == ring.owner(key)
        assert len(pref) == min(3, len(ring.nodes))
        assert len(set(pref)) == len(pref)

    check()
