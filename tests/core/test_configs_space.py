"""Tests for configuration records and the Table 5 space."""

import pytest

from repro.core.configs import CacheConfig, MemSystemConfig, TlbConfig
from repro.core.space import (
    TABLE5_TLB_CONFIGS,
    enumerate_cache_configs,
    enumerate_memory_systems,
    enumerate_tlb_configs,
)
from repro.units import KB


class TestConfigs:
    def test_labels(self):
        assert TlbConfig(512, 8).label() == "512 8-way"
        assert TlbConfig(64, "full").label() == "64 full"
        assert CacheConfig(16 * KB, 8, 2).label() == "16-KB 8-word 2-way"

    def test_areas_positive(self):
        system = MemSystemConfig(
            TlbConfig(512, 8), CacheConfig(16 * KB, 8, 8), CacheConfig(8 * KB, 8, 8)
        )
        assert system.area_rbe() == pytest.approx(
            system.tlb.area_rbe()
            + system.icache.area_rbe()
            + system.dcache.area_rbe()
        )

    def test_table6_top_row_cost_matches_paper(self):
        # The paper's Table 6 best configuration costs 163,438 rbes.
        system = MemSystemConfig(
            TlbConfig(512, 8), CacheConfig(16 * KB, 8, 8), CacheConfig(8 * KB, 8, 8)
        )
        assert system.area_rbe() == pytest.approx(163_438, rel=0.02)

    def test_table7_top_row_cost_matches_paper(self):
        system = MemSystemConfig(
            TlbConfig(512, 8), CacheConfig(32 * KB, 8, 2), CacheConfig(8 * KB, 4, 2)
        )
        assert system.area_rbe() == pytest.approx(239_259, rel=0.02)


class TestSpace:
    def test_cache_point_count(self):
        # 5 capacities x 6 lines x 4 assocs = 120, all feasible at
        # these sizes.
        assert len(enumerate_cache_configs()) == 120

    def test_tlb_point_count(self):
        # 4 sizes x 4 assocs + fully-associative up to 64 entries.
        assert len(enumerate_tlb_configs()) == 17
        assert len(TABLE5_TLB_CONFIGS) == 17

    def test_infeasible_geometries_skipped(self):
        configs = enumerate_cache_configs(capacities=(256,), lines=(32,), assocs=(8,))
        assert configs == []

    def test_memory_system_enumeration_size(self):
        systems = list(
            enumerate_memory_systems(
                tlbs=enumerate_tlb_configs(entries=(64,), assocs=(1,)),
                icaches=enumerate_cache_configs(capacities=(8 * KB,), lines=(4,)),
                dcaches=enumerate_cache_configs(capacities=(8 * KB,), lines=(4,)),
            )
        )
        assert len(systems) == 2 * 4 * 4

    def test_max_cache_assoc_filter(self):
        systems = list(
            enumerate_memory_systems(
                tlbs=[TlbConfig(64, 1)],
                max_cache_assoc=2,
            )
        )
        assert all(
            s.icache.assoc <= 2 and s.dcache.assoc <= 2 for s in systems
        )
