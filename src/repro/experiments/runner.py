"""CLI runner for the reproduction experiments.

Usage::

    python -m repro.experiments.runner --list
    python -m repro.experiments.runner table6 fig9
    python -m repro.experiments.runner --warm-traces --jobs 4
    python -m repro.experiments.runner --all --jobs 4

Set ``REPRO_SCALE`` to trade accuracy for runtime (e.g. 0.3 for a
quick pass, 3.0 for a long, tighter run).  ``--jobs N`` fans the
measurement units out over N worker processes; it takes precedence
over the ``REPRO_JOBS`` environment variable (default 1, serial).
When more than one experiment is requested, ``--jobs N`` also runs up
to N whole experiments concurrently (each serial inside, so the
process count stays bounded by N); output is captured per experiment
and printed in request order, byte-identical to a serial run.

Allocation experiments (table6/table7) answer from the curve store
when one exists — build it once with ``python -m repro.service build``
— and fall back to direct measurement otherwise.  ``--store DIR``
points them at a non-default store directory.
"""

from __future__ import annotations

import argparse
import contextlib
import importlib
import io
import os
import sys
import time

from repro.experiments import EXPERIMENT_NAMES


def run_experiment(name: str) -> None:
    """Import and execute one experiment's main()."""
    module = importlib.import_module(f"repro.experiments.{name}")
    started = time.time()
    module.main()
    print(f"[{name} finished in {time.time() - started:.1f}s]\n")


def _run_captured(name: str) -> str:
    """Run one experiment with its stdout captured (pool worker body).

    Module-level so it pickles for ``ProcessPoolExecutor``; the worker
    inherits ``REPRO_JOBS=1`` from the parent's env so experiment-level
    parallelism never nests a measurement pool inside a pool worker.
    """
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        run_experiment(name)
    return buffer.getvalue()


def run_experiments(names: list[str], jobs: int) -> None:
    """Run experiments, up to ``jobs`` concurrently, output in order.

    Experiments are independent (separate modules, separate result
    files), so they parallelize as whole processes; each worker runs
    its experiment serially (``REPRO_JOBS=1``) so total process count
    stays at ``jobs``.  Stdout is captured per experiment and replayed
    in request order, so interleaving never scrambles the tables.
    """
    if jobs <= 1 or len(names) <= 1:
        for name in names:
            run_experiment(name)
        return
    from concurrent.futures import ProcessPoolExecutor

    inner = os.environ.get("REPRO_JOBS")
    os.environ["REPRO_JOBS"] = "1"  # workers inherit: no nested pools
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(names))) as pool:
            for output in pool.map(_run_captured, names):
                sys.stdout.write(output)
                sys.stdout.flush()
    finally:
        if inner is None:
            os.environ.pop("REPRO_JOBS", None)
        else:
            os.environ["REPRO_JOBS"] = inner


def warm_traces_command() -> int:
    """Publish every (workload, OS) trace to the trace plane and exit.

    A warm trace cache is what makes ``--jobs`` pay off: workers
    memory-map the published traces instead of regenerating them, so
    run this once (or after bumping REPRO_SCALE) before large parallel
    sweeps or ``python -m repro.service build``.
    """
    from repro.core.measure import warm_traces
    from repro.errors import ConfigError
    from repro.trace import tracestore

    try:
        started = time.time()
        results = warm_traces()
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    published = sum(1 for *_pair, fresh in results if fresh)
    for workload, os_name, fresh in results:
        print(f"  {workload}/{os_name}: {'published' if fresh else 'cached'}")
    print(
        f"warmed {len(results)} traces ({published} generated, "
        f"{len(results) - published} already cached) "
        f"in {time.time() - started:.1f}s -> {tracestore.trace_cache_dir()}"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-experiments``."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help=f"experiment names (choose from: {', '.join(EXPERIMENT_NAMES)})",
    )
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--list", action="store_true", help="list experiment names")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for curve measurement "
        "(overrides REPRO_JOBS; default 1)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="curve-store directory for the service path "
        "(overrides REPRO_STORE_DIR; default .repro-store)",
    )
    parser.add_argument(
        "--warm-traces",
        action="store_true",
        help="pre-generate and publish every (workload, OS) trace to "
        "the trace cache (REPRO_TRACE_CACHE), then exit; honours "
        "--jobs and REPRO_SCALE",
    )
    args = parser.parse_args(argv)

    if args.store is not None:
        # Experiments reach the store through CurveStore.open(), which
        # reads the env var; the flag takes its place for this process.
        os.environ["REPRO_STORE_DIR"] = args.store

    if args.jobs is not None:
        if args.jobs < 1:
            parser.error("--jobs must be >= 1")
        # Experiments read the worker count through resolve_jobs(), so
        # the flag simply takes the env var's place for this process.
        os.environ["REPRO_JOBS"] = str(args.jobs)

    if args.warm_traces:
        return warm_traces_command()

    if args.list:
        for name in EXPERIMENT_NAMES:
            print(name)
        return 0
    names = list(EXPERIMENT_NAMES) if args.all else args.experiments
    if not names:
        parser.print_help()
        return 1
    unknown = [n for n in names if n not in EXPERIMENT_NAMES]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2
    run_experiments(names, args.jobs if args.jobs is not None else 1)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
