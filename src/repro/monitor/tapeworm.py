"""Tapeworm: the kernel-based TLB simulator substitute.

The original Tapeworm [Uhlig93] compiles a TLB simulator into the OS
kernel: every miss of the *host* TLB traps to software anyway (MIPS
TLBs are software-managed), and the handler forwards the miss event to
simulators of alternative TLB configurations.  The crucial property is
that simulated TLBs must be no larger/more associative than what the
host events can reconstruct — Tapeworm arranges the host TLB to be the
least capable configuration so every simulated TLB's misses are a
subset of host events.

This substitute keeps that architecture: it consumes the mapped
references of a trace, reconstructs miss events against a host
configuration, and maintains many simulated TLBs at once, producing
per-configuration service-time totals (Figures 7 and 8).  It is
cross-checked against the single-pass stack engine in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.configs import TlbConfig
from repro.memsim.tlb import Tlb
from repro.trace.events import ReferenceTrace
from repro.units import PAGE_SHIFT

DEFAULT_USER_PENALTY = 20
DEFAULT_KERNEL_PENALTY = 400
PAGE_FAULT_SERVICE_CYCLES = 500
"""Cycles the TLB-miss handler spends before discovering that a miss
is really a page fault or protection violation (the "Other" component
of Figure 7)."""


@dataclass(frozen=True)
class TlbServiceReport:
    """Service-time accounting for one simulated TLB configuration."""

    config: TlbConfig
    accesses: int
    user_misses: int
    kernel_misses: int
    other_events: int

    def service_cycles(
        self,
        user_penalty: int = DEFAULT_USER_PENALTY,
        kernel_penalty: int = DEFAULT_KERNEL_PENALTY,
        other_cycles: int = PAGE_FAULT_SERVICE_CYCLES,
    ) -> float:
        """Total TLB service cycles, including the fixed "other" part."""
        return (
            self.user_misses * user_penalty
            + self.kernel_misses * kernel_penalty
            + self.other_events * other_cycles
        )

    def service_seconds(
        self,
        clock_hz: float = 16.67e6,
        scale: float = 1.0,
        **penalties,
    ) -> float:
        """Service time in seconds on a DECstation-class clock.

        Args:
            clock_hz: CPU clock (16.67 MHz R2000).
            scale: multiplier projecting the measured window to a full
                benchmark run (the paper's totals cover complete runs).
            **penalties: forwarded to :meth:`service_cycles`.
        """
        return self.service_cycles(**penalties) * scale / clock_hz


class Tapeworm:
    """Miss-event-driven simulation of many TLB configurations at once.

    Args:
        configs: TLB configurations to simulate.
        warmup_fraction: leading fraction of each trace used to prime
            all simulated TLBs without counting misses.
        policy: replacement policy for the simulated TLBs.
    """

    def __init__(
        self,
        configs: list[TlbConfig],
        warmup_fraction: float = 0.4,
        policy: str = "lru",
    ):
        self.configs = list(configs)
        self.warmup_fraction = warmup_fraction
        self.policy = policy

    def run(self, trace: ReferenceTrace) -> list[TlbServiceReport]:
        """Feed one trace's mapped references to every simulated TLB.

        Host-TLB filtering: consecutive references to the same page
        cannot miss in any simulated configuration (the host TLB holds
        at least the current translation), so only page-transition
        events are forwarded — this is the efficiency trick that makes
        the real Tapeworm fast, reproduced exactly.
        """
        mapped_idx = np.flatnonzero(trace.mapped)
        vpns = (trace.addresses[mapped_idx] >> PAGE_SHIFT).astype(np.int64)
        asids = trace.asids[mapped_idx].astype(np.int64)
        kernel = trace.kernel[mapped_idx]
        keys = (asids << 20) | vpns
        accesses = len(keys)

        # Forward only page-transition events.
        if accesses:
            keep = np.empty(accesses, dtype=bool)
            keep[0] = True
            np.not_equal(keys[1:], keys[:-1], out=keep[1:])
            events_vpn = vpns[keep]
            events_asid = asids[keep]
            events_kernel = kernel[keep]
            warm_events = int(keep[: int(accesses * self.warmup_fraction)].sum())
        else:
            events_vpn = vpns
            events_asid = asids
            events_kernel = kernel
            warm_events = 0

        reports = []
        for config in self.configs:
            tlb = Tlb(config.entries, config.assoc, policy=self.policy)
            user = kernel_misses = 0
            vpn_list = events_vpn.tolist()
            asid_list = events_asid.tolist()
            kernel_list = events_kernel.tolist()
            for i in range(len(vpn_list)):
                hit = tlb.access(vpn_list[i], asid_list[i], kernel_list[i])
                if not hit and i >= warm_events:
                    if kernel_list[i]:
                        kernel_misses += 1
                    else:
                        user += 1
            reports.append(
                TlbServiceReport(
                    config=config,
                    accesses=accesses,
                    user_misses=user,
                    kernel_misses=kernel_misses,
                    other_events=trace.page_faults,
                )
            )
        return reports
