"""Benchmark: query-service latency over a built curve store.

Separating characterization from queries only pays off if queries are
actually interactive.  This bench builds a reduced-scale store once
(the expensive step every query then skips), and times:

* **cold** — open the store, load + integrity-check the curves, price
  the space, answer one point query: the first-request cost of a
  fresh process.  Held under 100 ms at reduced scale.
* **warm point** — random-budget point queries against a warm engine
  (priced space reused, LRU missed on purpose).
* **cached** — the same query repeated (LRU hit).
* **threaded** — the same warm mix fired from 8 threads at once
  against one shared engine, the shape the HTTP server produces; the
  locked cache must not lose throughput or answers under contention.
* **batch vs point** — a 256-budget sweep answered by the vectorized
  budget index in one pass, against the same sweep as 256 separate
  ``rank_priced`` rankings (the pre-index engine's per-point path);
  the answers are required to match exactly.
* **HTTP workers** — sustained keep-alive POST throughput over
  loopback against pre-fork fleets.  Worker counts are capped at the
  host's CPU count: benchmarking 4 workers on 1 core measures fork
  overhead plus scheduler churn, not scaling, and earlier runs
  recorded exactly that misleading "slowdown" (``speedup_4v1: 0.53``
  with ``cpu_count: 1``).  Oversubscribed shapes are now flagged and
  skipped instead of reported as regressions.
* **event loop** — closed-loop (depth-1) and pipelined saturation
  capacity of one event-loop worker measured with the open-loop
  generator (``benchmarks/loadgen.py``), and the ratio against the
  PR-5 threaded-server baseline.
* **latency vs offered load** — the open-loop sweep: fixed offered
  rates at 0.25x / 0.5x / 1x / 2x of measured saturation, recording
  tail latency *from scheduled fire time* and the 429 shed rate.
  Closed-loop clients cannot see queueing collapse (they slow their
  own offered rate to match the server); the open-loop curve makes
  the saturation knee and graceful-shedding behavior visible.
* **overload shedding** — a cache-busting miss mix offered at 2x its
  capacity against a small in-flight budget: every answer must be a
  200 or a structured 429 (with ``Retry-After``), never a hang or a
  malformed response.
* **fleet** — the routing-tier tax and payoff: closed-loop p50/p99 and
  saturation q/s for one direct event-loop worker vs the
  consistent-hash router fronting 1-node and 3-node shard fleets
  (R=2, ``repro.fleet``).  Topologies wider than the host are flagged
  ``oversubscribed`` and recorded without assertions, mirroring the
  HTTP-workers policy.

p50/p95 latencies land in ``BENCH_service.json`` at the repo root.
Runs as pytest (``pytest benchmarks/bench_service.py -q -s``) or
standalone (``PYTHONPATH=src python benchmarks/bench_service.py``).
"""

from __future__ import annotations

import http.client
import json
import os
import platform
import socket
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

try:
    import loadgen
except ImportError:  # standalone invocation from another cwd
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    import loadgen

from repro.core.allocator import (
    DEFAULT_BUDGET_RBES,
    Allocator,
    batch_best_indexed,
    rank_priced,
)
from repro.errors import BudgetError
from repro.fleet.local import FleetSupervisor
from repro.service.engine import QueryEngine
from repro.service.http import make_server, shutdown_gracefully
from repro.service.workers import PreforkServer
from repro.store import CurveStore

OS_NAME = "mach"
COLD_BUDGET_MS = 100.0
WARM_QUERIES = 200
BENCH_THREADS = 8
QUERIES_PER_THREAD = 50
BATCH_BUDGETS = 256
BATCH_SPEEDUP_FLOOR = 10.0
HTTP_CLIENT_THREADS = 8
HTTP_QUERIES_PER_THREAD = 120
WORKER_SPEEDUP_FLOOR = 3.0
WORKER_SPEEDUP_MIN_CORES = 4
WORKER_TARGET = 4

# PR 5's threaded single-worker throughput on this benchmark's own
# `_http_hammer` (BENCH_service.json @ commit 4f1fbec, cpu_count: 1).
# The event-loop acceptance target is >= 5x this number.
PR5_WORKERS_1_QPS = 2858.7
EVENT_LOOP_SPEEDUP_FLOOR = 5.0

SWEEP_FRACTIONS = (0.25, 0.5, 1.0, 2.0)
SWEEP_DURATION_S = 1.5
SATURATION_PROBE_RATE = 80_000.0
OVERLOAD_MAX_INFLIGHT = 16
# Pipelined requests on one connection are answered in order, so each
# connection holds at most ONE in-flight engine miss; the overload
# phase needs more connections than the in-flight budget or the 429
# path can never trigger.
OVERLOAD_CONNECTIONS = 64

FLEET_TOPOLOGIES = (1, 3)
FLEET_REPLICAS = 2
FLEET_CLOSED_TOTAL = 3000
# Router + 3 shards + the load generator each want a core; below this
# the 3-node numbers measure scheduler churn, not fleet scaling.
FLEET_MIN_CORES = 4

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def _quantiles_ms(samples: list[float]) -> dict:
    arr = np.asarray(samples) * 1e3
    return {
        "p50_ms": round(float(np.percentile(arr, 50)), 3),
        "p95_ms": round(float(np.percentile(arr, 95)), 3),
        "max_ms": round(float(arr.max()), 3),
        "samples": len(samples),
    }


def build_store(root: Path) -> CurveStore:
    """Characterize the suite once (measurement-cache assisted)."""
    store = CurveStore(root)
    if store.find_current(OS_NAME) is None:
        store.build_for_os(OS_NAME)
    return store


def bench_cold(root: Path, reps: int = 3) -> tuple[dict, list]:
    """Fresh store handle + engine per rep: load, price, one query."""
    best = float("inf")
    top = None
    for _ in range(reps):
        t0 = time.perf_counter()
        engine = QueryEngine(CurveStore(root))
        top = engine.point(OS_NAME, DEFAULT_BUDGET_RBES, limit=10)
        best = min(best, time.perf_counter() - t0)
    return {"best_ms": round(best * 1e3, 3), "reps": reps}, top


def bench_warm(root: Path) -> tuple[dict, dict]:
    engine = QueryEngine(CurveStore(root))
    priced = engine.priced_space(OS_NAME)
    rng = np.random.default_rng(7)
    budgets = rng.uniform(
        priced.min_area() * 1.05, float(priced.area_grid.max()), WARM_QUERIES
    )
    warm = []
    for budget in budgets:
        t0 = time.perf_counter()
        engine.query(
            {"type": "point", "os": OS_NAME, "budget": float(budget),
             "limit": 10}
        )
        warm.append(time.perf_counter() - t0)
    cached = []
    request = {"type": "point", "os": OS_NAME,
               "budget": float(DEFAULT_BUDGET_RBES), "limit": 10}
    engine.query(request)
    for _ in range(WARM_QUERIES):
        t0 = time.perf_counter()
        engine.query(request)
        cached.append(time.perf_counter() - t0)
    return _quantiles_ms(warm), _quantiles_ms(cached)


def bench_threaded(root: Path) -> dict:
    """One shared warm engine, hammered from BENCH_THREADS threads.

    Reports aggregate throughput plus per-query latency quantiles; the
    stats invariant (hits + misses == queries issued) doubles as a
    correctness probe on the locked counters.
    """
    engine = QueryEngine(CurveStore(root), result_cache_size=32)
    priced = engine.priced_space(OS_NAME)  # pay pricing up front
    low, high = priced.min_area() * 1.05, float(priced.area_grid.max())
    barrier = threading.Barrier(BENCH_THREADS)
    samples: list[list[float]] = [[] for _ in range(BENCH_THREADS)]

    def worker(tid: int) -> None:
        rng = np.random.default_rng(100 + tid)
        # A small shared budget pool so threads collide on cache keys.
        budgets = rng.choice(
            np.linspace(low, high, 16), size=QUERIES_PER_THREAD
        )
        barrier.wait()
        for budget in budgets:
            t0 = time.perf_counter()
            engine.query(
                {"type": "point", "os": OS_NAME, "budget": float(budget),
                 "limit": 10}
            )
            samples[tid].append(time.perf_counter() - t0)

    pool = [
        threading.Thread(target=worker, args=(tid,))
        for tid in range(BENCH_THREADS)
    ]
    t0 = time.perf_counter()
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    wall_s = time.perf_counter() - t0

    total = BENCH_THREADS * QUERIES_PER_THREAD
    stats = engine.stats
    merged = [s for per_thread in samples for s in per_thread]
    result = _quantiles_ms(merged)
    result.update(
        threads=BENCH_THREADS,
        queries=total,
        wall_s=round(wall_s, 4),
        queries_per_s=round(total / wall_s, 1),
        cache_hits=stats["hits"],
        cache_misses=stats["misses"],
        stats_consistent=(stats["hits"] + stats["misses"] == total),
    )
    return result


def bench_batch_vs_point(root: Path) -> dict:
    """One vectorized 256-budget batch vs 256 per-point rankings.

    The per-point baseline is :func:`rank_priced` — the kernel the
    engine used for every point before the budget index — so the ratio
    is the real algorithmic win, and the two answer sets must match
    exactly (infeasible budgets map to empty lists both ways).
    """
    engine = QueryEngine(CurveStore(root))
    priced = engine.priced_space(OS_NAME)
    rng = np.random.default_rng(17)
    budgets = rng.uniform(
        priced.min_area() * 0.9, float(priced.area_grid.max()) * 1.1,
        BATCH_BUDGETS,
    ).tolist()

    # The index is built once per priced space and amortized over every
    # query the server ever answers; time it separately, not inside the
    # per-batch window.
    t0 = time.perf_counter()
    priced.budget_index
    index_build_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = batch_best_indexed(priced, budgets)
    batch_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    per_point = []
    for budget in budgets:
        try:
            per_point.append(rank_priced(priced, budget, limit=1))
        except BudgetError:
            per_point.append([])
    loop_s = time.perf_counter() - t0

    identical = all(
        [(a.config, a.area_rbe, a.cpi) for a in got]
        == [(a.config, a.area_rbe, a.cpi) for a in want]
        for got, want in zip(batched, per_point)
    )
    return {
        "budgets": BATCH_BUDGETS,
        "index_build_ms": round(index_build_s * 1e3, 3),
        "batch_ms": round(batch_s * 1e3, 3),
        "per_point_loop_ms": round(loop_s * 1e3, 3),
        "batch_us_per_budget": round(batch_s / BATCH_BUDGETS * 1e6, 2),
        "loop_us_per_budget": round(loop_s / BATCH_BUDGETS * 1e6, 2),
        "speedup": round(loop_s / batch_s, 1),
        "identical_answers": identical,
    }


def _http_hammer(host: str, port: int, budgets: list[float]) -> dict:
    """Sustained keep-alive POST load from HTTP_CLIENT_THREADS threads."""
    barrier = threading.Barrier(HTTP_CLIENT_THREADS)
    latencies: list[list[float]] = [[] for _ in range(HTTP_CLIENT_THREADS)]
    failures = [0] * HTTP_CLIENT_THREADS

    def _connect() -> http.client.HTTPConnection:
        conn = http.client.HTTPConnection(host, port, timeout=30)
        conn.connect()
        # Header and body go out as separate writes; without NODELAY
        # the body segment waits ~40 ms on the server's delayed ACK.
        conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return conn

    def worker(tid: int) -> None:
        rng = np.random.default_rng(900 + tid)
        conn = _connect()
        picks = rng.choice(len(budgets), size=HTTP_QUERIES_PER_THREAD)
        barrier.wait()
        for pick in picks:
            body = json.dumps(
                {"type": "point", "os": OS_NAME,
                 "budget": budgets[int(pick)], "limit": 5}
            )
            t0 = time.perf_counter()
            try:
                conn.request(
                    "POST", "/v1/query", body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                response.read()
                if response.status != 200:
                    failures[tid] += 1
            except (OSError, http.client.HTTPException):
                failures[tid] += 1
                conn.close()
                conn = _connect()
            latencies[tid].append(time.perf_counter() - t0)
        conn.close()

    pool = [
        threading.Thread(target=worker, args=(tid,))
        for tid in range(HTTP_CLIENT_THREADS)
    ]
    t0 = time.perf_counter()
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    wall_s = time.perf_counter() - t0

    total = HTTP_CLIENT_THREADS * HTTP_QUERIES_PER_THREAD
    result = _quantiles_ms([s for per in latencies for s in per])
    result.update(
        client_threads=HTTP_CLIENT_THREADS,
        queries=total,
        failures=sum(failures),
        wall_s=round(wall_s, 4),
        queries_per_s=round(total / wall_s, 1),
    )
    return result


def bench_http_workers(root: Path) -> dict:
    """Keep-alive POST throughput against pre-fork fleets.

    Worker counts are capped at ``os.cpu_count()``: a 4-worker fleet on
    a 1-core host is pure oversubscription — the hammer then measures
    context-switch churn and reports a "slowdown" that says nothing
    about the server.  The requested shape is still recorded (with
    ``oversubscribed: true``) so the JSON explains itself, but the
    oversubscribed run is skipped and never asserted against.
    """
    engine_factory = lambda: QueryEngine(CurveStore(root))  # noqa: E731
    priced = QueryEngine(CurveStore(root)).priced_space(OS_NAME)
    rng = np.random.default_rng(23)
    budgets = rng.uniform(
        priced.min_area() * 1.05, float(priced.area_grid.max()), 64
    ).tolist()

    cpu_count = os.cpu_count() or 1
    benched = max(1, min(WORKER_TARGET, cpu_count))
    out: dict = {
        "cpu_count": cpu_count,
        "workers_requested": WORKER_TARGET,
        "workers_benched": benched,
        "oversubscribed": benched < WORKER_TARGET,
    }
    for workers in sorted({1, benched}):
        pool = PreforkServer(engine_factory, workers=workers, verbose=False)
        pool.start()
        try:
            _wait_serving(pool.host, pool.port)
            # One warmup pass primes every worker's priced space so the
            # measured window times serving, not first-touch pricing.
            _http_hammer(pool.host, pool.port, budgets[:8])
            out[f"workers_{workers}"] = _http_hammer(
                pool.host, pool.port, budgets
            )
        finally:
            pool.stop()
    if benched > 1:
        out[f"speedup_{benched}v1"] = round(
            out[f"workers_{benched}"]["queries_per_s"]
            / out["workers_1"]["queries_per_s"],
            2,
        )
    else:
        out["multi_worker_note"] = (
            f"host has {cpu_count} CPU(s); a {WORKER_TARGET}-worker fleet "
            "would oversubscribe the core and report scheduler churn as a "
            "slowdown, so only workers_1 is measured"
        )
    return out


def _wait_serving(host: str, port: int, deadline_s: float = 30.0) -> None:
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        try:
            conn = http.client.HTTPConnection(host, port, timeout=2)
            conn.request("GET", "/v1/health")
            conn.getresponse().read()
            conn.close()
            return
        except OSError:
            time.sleep(0.05)
    raise TimeoutError("pre-fork fleet never started serving")


def _start_loop_server(engine: QueryEngine, **kwargs):
    """One in-process event-loop worker on an ephemeral port."""
    server = make_server(engine, port=0, verbose=False, **kwargs)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    _wait_serving(host, port)
    return server, thread, f"http://{host}:{port}"


def _stop_loop_server(server, thread) -> None:
    shutdown_gracefully(server, deadline_s=5.0)
    thread.join(timeout=10.0)


def _point_payloads(priced, count: int, seed: int) -> list[bytes]:
    rng = np.random.default_rng(seed)
    budgets = rng.uniform(
        priced.min_area() * 1.05, float(priced.area_grid.max()), count
    )
    return [
        json.dumps(
            {"type": "point", "os": OS_NAME, "budget": float(b), "limit": 5}
        ).encode()
        for b in budgets
    ]


def _sweep_point(result: loadgen.OpenLoopResult, fraction: float) -> dict:
    return {
        "fraction_of_saturation": fraction,
        "offered_qps": result["offered_rate_qps"],
        "achieved_qps": result["achieved_qps"],
        "completed": result["completed"],
        "statuses": result["statuses"],
        "shed_rate": result["shed_rate"],
        "dropped_conns": result["dropped_conns"],
        "latency_ms": result["latency_ms"],
        "ok_latency_ms": result["ok_latency_ms"],
    }


def bench_event_loop(root: Path) -> dict:
    """Single event-loop worker: capacity plus the open-loop sweep.

    Saturation is anchored by a deliberately unreachable offered rate
    (the generator pipelines, the server caps out — the achieved q/s
    *is* the capacity); the sweep then revisits fixed fractions of that
    anchor so the tail-vs-load curve has an interpretable x-axis.  The
    traffic is a 16-budget hot mix, the shape the byte cache serves.
    """
    engine = QueryEngine(CurveStore(root))
    priced = engine.priced_space(OS_NAME)
    payloads = _point_payloads(priced, 16, seed=31)

    server, thread, base = _start_loop_server(engine)
    try:
        # Warm every payload through the full stack first.
        loadgen.run_load(base, payloads, rate=None, total=len(payloads) * 2,
                         connections=2)
        closed = loadgen.run_load(base, payloads, rate=None, total=6000)
        probe = loadgen.run_load(
            base, payloads, rate=SATURATION_PROBE_RATE, duration_s=1.0
        )
        saturation = probe["achieved_qps"]

        sweep = []
        for fraction in SWEEP_FRACTIONS:
            rate = max(100.0, saturation * fraction)
            result = loadgen.run_load(
                base, payloads, rate=rate, duration_s=SWEEP_DURATION_S
            )
            sweep.append(_sweep_point(result, fraction))
    finally:
        _stop_loop_server(server, thread)

    return {
        "baseline_pr5_workers_1_qps": PR5_WORKERS_1_QPS,
        "closed_loop_depth1_qps": closed["achieved_qps"],
        "closed_loop_latency_ms": closed["latency_ms"],
        "saturation_qps": saturation,
        "speedup_vs_pr5_workers_1": round(saturation / PR5_WORKERS_1_QPS, 2),
        "closed_loop_speedup_vs_pr5": round(
            closed["achieved_qps"] / PR5_WORKERS_1_QPS, 2
        ),
        "latency_vs_offered_load": sweep,
    }


def bench_overload_shedding(root: Path) -> dict:
    """Graceful degradation: a miss mix offered at 2x its capacity.

    Unique budgets against a tiny result cache keep every request off
    the fast path and inside the bounded executor, and a small
    ``max_inflight`` forces the loop to choose: queue or shed.  The
    contract under that pressure is *no third outcome* — every answer
    is a 200 or a structured 429 carrying ``Retry-After``, and no
    connection is torn down mid-response.
    """
    engine = QueryEngine(CurveStore(root), result_cache_size=8)
    priced = engine.priced_space(OS_NAME)
    payloads = _point_payloads(priced, 6000, seed=47)

    server, thread, base = _start_loop_server(
        engine, max_inflight=OVERLOAD_MAX_INFLIGHT
    )
    try:
        capacity = loadgen.run_load(
            base, payloads[:2000], rate=None, total=2000
        )["achieved_qps"]
        overload = loadgen.run_load(
            base, payloads[2000:], rate=max(200.0, capacity * 2.0),
            duration_s=SWEEP_DURATION_S,
            connections=OVERLOAD_CONNECTIONS, pipeline_depth=8,
        )
    finally:
        _stop_loop_server(server, thread)

    statuses = {int(k) for k in overload["statuses"]}
    return {
        "max_inflight": OVERLOAD_MAX_INFLIGHT,
        "miss_capacity_qps": capacity,
        "offered_qps": overload["offered_rate_qps"],
        "achieved_qps": overload["achieved_qps"],
        "completed": overload["completed"],
        "statuses": overload["statuses"],
        "shed_rate": overload["shed_rate"],
        "retry_after_seen": overload["retry_after_seen"],
        "dropped_conns": overload["dropped_conns"],
        "ok_latency_ms": overload["ok_latency_ms"],
        "only_200_or_429": statuses <= {200, 429},
        "shed_engaged": overload["shed_429"] > 0,
        "all_429_carry_retry_after": (
            overload["retry_after_seen"] == overload["shed_429"]
        ),
    }


def _fleet_load_point(base: str, payloads: list[bytes]) -> dict:
    """Warm, closed-loop measure, then probe saturation on one target."""
    loadgen.run_load(base, payloads, rate=None, total=len(payloads) * 2,
                     connections=2)
    closed = loadgen.run_load(
        base, payloads, rate=None, total=FLEET_CLOSED_TOTAL
    )
    probe = loadgen.run_load(
        base, payloads, rate=SATURATION_PROBE_RATE, duration_s=1.0
    )
    ok = probe["statuses"].get("200", 0) + probe["statuses"].get("304", 0)
    return {
        "closed_loop_qps": closed["achieved_qps"],
        "closed_loop_latency_ms": closed["latency_ms"],
        "saturation_qps": probe["achieved_qps"],
        "saturation_ok_qps": round(
            probe["achieved_qps"] * ok / max(probe["completed"], 1), 1
        ),
        "statuses": probe["statuses"],
        "dropped_conns": closed["dropped_conns"] + probe["dropped_conns"],
    }


def bench_fleet(root: Path) -> dict:
    """Router overhead vs direct engine calls, 1-node vs 3-node.

    ``direct`` is one event-loop worker answering for itself — the
    PR-6 serving shape.  ``fleet_N`` puts the consistent-hash router
    in front of N forked pre-fork shards (R=2) and drives the *router*
    with the identical hot mix, so the deltas are pure routing-tier
    cost: one extra loopback hop plus proxy bookkeeping per miss.
    Like the worker bench, topologies wider than the host are recorded
    but flagged ``oversubscribed`` and never asserted against.
    """
    engine = QueryEngine(CurveStore(root))
    priced = engine.priced_space(OS_NAME)
    payloads = _point_payloads(priced, 16, seed=53)

    cpu_count = os.cpu_count() or 1
    out: dict = {
        "cpu_count": cpu_count,
        "replicas": FLEET_REPLICAS,
        "topologies": list(FLEET_TOPOLOGIES),
        "oversubscribed": cpu_count < FLEET_MIN_CORES,
    }

    server, thread, base = _start_loop_server(engine)
    try:
        out["direct"] = _fleet_load_point(base, payloads)
    finally:
        _stop_loop_server(server, thread)

    for nodes in FLEET_TOPOLOGIES:
        fleet = FleetSupervisor(root, nodes=nodes, replicas=FLEET_REPLICAS)
        fleet.start()
        try:
            out[f"fleet_{nodes}"] = _fleet_load_point(
                fleet.base_url, payloads
            )
        finally:
            fleet.stop()

    direct_lat = out["direct"]["closed_loop_latency_ms"]
    router_lat = out["fleet_1"]["closed_loop_latency_ms"]
    out["router_overhead_p50_ms"] = round(
        router_lat["p50"] - direct_lat["p50"], 3
    )
    out["router_overhead_p99_ms"] = round(
        router_lat["p99"] - direct_lat["p99"], 3
    )
    out["scaling_3v1"] = round(
        out["fleet_3"]["saturation_ok_qps"]
        / max(out["fleet_1"]["saturation_ok_qps"], 1.0),
        2,
    )
    if out["oversubscribed"]:
        out["note"] = (
            f"host has {cpu_count} CPU(s); router, shards and the load "
            "generator time-share cores, so latency deltas and the 3v1 "
            "scaling ratio measure scheduler churn and are not asserted"
        )
    return out


def run_bench(root: Path | None = None) -> dict:
    if root is None:
        root = Path(tempfile.mkdtemp(prefix="repro-store-bench-")) / "store"
    store = build_store(root)
    cold, served_top = bench_cold(root)
    warm, cached = bench_warm(root)
    threaded = bench_threaded(root)
    batch = bench_batch_vs_point(root)
    http_workers = bench_http_workers(root)
    event_loop = bench_event_loop(root)
    overload = bench_overload_shedding(root)
    fleet = bench_fleet(root)

    # The service must agree with the brute-force path bit-for-bit.
    curves = store.load(store.find_current(OS_NAME))
    direct = Allocator(curves, budget_rbes=DEFAULT_BUDGET_RBES).rank(limit=10)
    identical = served_top == direct

    payload = {
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "os_name": OS_NAME,
        "store_root": str(root),
        "cold_load_plus_point_query": cold,
        "warm_point_query": warm,
        "cached_point_query": cached,
        "threaded_point_query": threaded,
        "batch_vs_point": batch,
        "http_workers": http_workers,
        "event_loop": event_loop,
        "latency_vs_offered_load": event_loop["latency_vs_offered_load"],
        "overload_shedding": overload,
        "fleet": fleet,
        "identical_to_bruteforce": identical,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_service_latency(show):
    payload = run_bench()
    show(
        "Service query latency",
        json.dumps(
            {k: payload[k] for k in (
                "cold_load_plus_point_query",
                "warm_point_query",
                "cached_point_query",
                "threaded_point_query",
                "batch_vs_point",
                "http_workers",
                "event_loop",
                "overload_shedding",
                "fleet",
            )},
            indent=2,
        ),
    )
    assert payload["identical_to_bruteforce"]
    assert payload["cold_load_plus_point_query"]["best_ms"] < COLD_BUDGET_MS
    assert payload["warm_point_query"]["p95_ms"] < COLD_BUDGET_MS
    assert payload["threaded_point_query"]["stats_consistent"]

    batch = payload["batch_vs_point"]
    assert batch["identical_answers"]
    assert batch["speedup"] >= BATCH_SPEEDUP_FLOOR

    workers = payload["http_workers"]
    benched = workers["workers_benched"]
    assert workers["workers_1"]["failures"] == 0
    assert workers[f"workers_{benched}"]["failures"] == 0
    if benched >= WORKER_SPEEDUP_MIN_CORES:
        # Worker scaling is a hardware claim; on fewer cores the fleet
        # can't beat one process, so only record the numbers there.
        assert workers[f"speedup_{benched}v1"] >= WORKER_SPEEDUP_FLOOR

    loop = payload["event_loop"]
    # The PR's headline number: one event-loop worker must beat PR 5's
    # threaded single worker by >= 5x at saturation.
    assert loop["speedup_vs_pr5_workers_1"] >= EVENT_LOOP_SPEEDUP_FLOOR
    # At half of saturation the tail must stay near the median: p95
    # within 10x of p50 (with a small absolute floor so microsecond
    # medians don't turn scheduler jitter into a failure).
    half = next(
        point for point in loop["latency_vs_offered_load"]
        if point["fraction_of_saturation"] == 0.5
    )
    assert half["latency_ms"]["p95"] <= max(
        10.0 * half["latency_ms"]["p50"], 5.0
    )
    for point in loop["latency_vs_offered_load"]:
        assert point["dropped_conns"] == 0

    shed = payload["overload_shedding"]
    assert shed["only_200_or_429"]
    assert shed["shed_engaged"]
    assert shed["all_429_carry_retry_after"]
    assert shed["dropped_conns"] == 0

    fleet = payload["fleet"]
    for key in ("direct", "fleet_1", "fleet_3"):
        assert fleet[key]["dropped_conns"] == 0
        assert {int(s) for s in fleet[key]["statuses"]} <= {200, 304, 429}
    if not fleet["oversubscribed"]:
        # Scaling and overhead are hardware claims — only asserted when
        # router, shards and the generator get their own cores.
        assert fleet["scaling_3v1"] >= 1.0
        assert fleet["router_overhead_p50_ms"] < 50.0


if __name__ == "__main__":
    result = run_bench()
    print(json.dumps(result, indent=2))
    print(f"wrote {OUTPUT}")
