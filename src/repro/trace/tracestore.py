"""Zero-copy trace plane: an mmap-backed on-disk cache of traces.

Trace *generation* — not simulation — dominates the cold path since the
simulation kernels went native: every measurement worker used to
re-synthesize the same multi-hundred-thousand-reference trace from
scratch.  This module generates each (workload, OS, length, seed) trace
once, serializes it as raw little-endian numpy arrays behind a JSON
header, and loads it back with ``np.memmap`` so any number of
measurement workers share one physical copy of the bytes through the
OS page cache — no regeneration, no pickling, no per-process copies.

Entries are content-addressed by a :class:`TraceKey` covering
everything that determines the bytes: workload, OS model, reference
count, seed, the generator's ``TRACE_FORMAT_VERSION`` (so cache keys
invalidate automatically when generation semantics change) and
``REPRO_SCALE``.  Alongside the six reference arrays the entry stores
the two derived streams the cache-grid units consume (physical ifetch
and load addresses), materialized once per trace instead of once per
measurement unit.

Publishes are crash-safe (unique temp file + atomic ``os.replace``,
the same protocol as ``repro.store``); loads validate the header,
format version and every array extent against the file size, and any
torn or corrupt entry is evicted and regenerated rather than served
short.  Knobs:

* ``REPRO_TRACE_CACHE`` — cache directory (default
  ``.repro-trace-cache``); ``off``/``0``/``none``/``false`` disables
  the plane entirely (every call regenerates in-process).
* ``REPRO_TRACE_CACHE_MAX`` — entry cap (default 64); publishing
  beyond it prunes the oldest entries by mtime.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import ConfigError, TraceError
from repro.trace import generator as _generator
from repro.trace.events import ReferenceTrace

MAGIC = "repro-tracestore"
STORE_FORMAT = 1
"""On-disk layout version of this module (header/array framing)."""

DEFAULT_CACHE_DIR = ".repro-trace-cache"
DEFAULT_MAX_ENTRIES = 64
SUFFIX = ".trace"

_DISABLED_VALUES = frozenset({"off", "0", "none", "false", "disabled"})

_HEADER_PREFIX = struct.Struct("<Q")  # header-JSON byte length
_ALIGN = 64  # arrays start on cache-line boundaries
_MAX_HEADER_BYTES = 1 << 20  # sanity bound when reading foreign files

# (name, little-endian dtype) of every serialized array.  The first six
# are the ReferenceTrace fields; the last two are the derived physical
# streams the I-/D-cache measurement units consume.
_FIELDS: tuple[tuple[str, str], ...] = (
    ("addresses", "<i8"),
    ("physical", "<i8"),
    ("kinds", "|u1"),
    ("asids", "|u1"),
    ("mapped", "|b1"),
    ("kernel", "|b1"),
    ("ifetch_physical", "<i8"),
    ("load_physical", "<i8"),
)


def trace_cache_dir() -> Path | None:
    """The trace-cache directory, or None when the plane is disabled."""
    raw = os.environ.get("REPRO_TRACE_CACHE")
    if raw is None or raw == "":
        return Path(DEFAULT_CACHE_DIR)
    if raw.strip().lower() in _DISABLED_VALUES:
        return None
    return Path(raw)


def enabled() -> bool:
    """True when traces are cached on disk (REPRO_TRACE_CACHE not off)."""
    return trace_cache_dir() is not None


def max_entries() -> int:
    """Entry cap before pruning: ``REPRO_TRACE_CACHE_MAX`` or 64."""
    raw = os.environ.get("REPRO_TRACE_CACHE_MAX", "")
    if not raw:
        return DEFAULT_MAX_ENTRIES
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"REPRO_TRACE_CACHE_MAX must be an integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ConfigError(f"REPRO_TRACE_CACHE_MAX must be >= 1, got {value}")
    return value


@dataclass(frozen=True)
class TraceKey:
    """Everything that determines a generated trace's bytes."""

    workload: str
    os_name: str
    references: int
    seed: int
    generator_version: int
    scale: float

    def canonical(self) -> dict:
        """JSON-stable form used for hashing and the entry header."""
        return {
            "workload": self.workload,
            "os_name": self.os_name,
            "references": self.references,
            "seed": self.seed,
            "generator_version": self.generator_version,
            "scale": self.scale,
        }

    def hash(self) -> str:
        text = json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode()).hexdigest()[:24]


def key_for(
    workload: str, os_name: str, references: int, seed: int = 1
) -> TraceKey:
    """The key the running process would generate under right now.

    ``generator_version`` is read from the generator module at call
    time (not import time) so a bumped ``TRACE_FORMAT_VERSION``
    invalidates keys immediately.
    """
    from repro.core.measure import scale

    return TraceKey(
        workload=str(workload),
        os_name=str(os_name),
        references=int(references),
        seed=int(seed),
        generator_version=int(_generator.TRACE_FORMAT_VERSION),
        scale=float(scale()),
    )


def entry_path(key: TraceKey) -> Path | None:
    """Where this key's entry lives, or None when the plane is off."""
    root = trace_cache_dir()
    if root is None:
        return None
    return root / f"{key.hash()}{SUFFIX}"


def _evict(path: Path) -> None:
    try:
        path.unlink()
    except OSError:
        pass


def _serialize(trace: ReferenceTrace, key: TraceKey) -> bytes:
    """Frame a trace as length-prefixed JSON header + aligned raw arrays."""
    arrays = {
        "addresses": np.ascontiguousarray(trace.addresses, dtype="<i8"),
        "physical": np.ascontiguousarray(trace.physical, dtype="<i8"),
        "kinds": np.ascontiguousarray(trace.kinds, dtype="|u1"),
        "asids": np.ascontiguousarray(trace.asids, dtype="|u1"),
        "mapped": np.ascontiguousarray(trace.mapped, dtype="|b1"),
        "kernel": np.ascontiguousarray(trace.kernel, dtype="|b1"),
        "ifetch_physical": np.ascontiguousarray(
            trace.ifetch_physical(), dtype="<i8"
        ),
        "load_physical": np.ascontiguousarray(
            trace.load_physical(), dtype="<i8"
        ),
    }
    # Array offsets are relative to the aligned start of the data
    # block, so the header can describe them before its own length is
    # known.
    specs = []
    cursor = 0
    for name, dtype in _FIELDS:
        arr = arrays[name]
        cursor = -(-cursor // _ALIGN) * _ALIGN
        specs.append(
            {
                "name": name,
                "dtype": dtype,
                "count": int(arr.shape[0]),
                "offset": cursor,
            }
        )
        cursor += arr.nbytes
    data_bytes = cursor
    header = {
        "magic": MAGIC,
        "format": STORE_FORMAT,
        "key": key.canonical(),
        "meta": {
            "page_faults": int(trace.page_faults),
            "other_cpi": float(trace.other_cpi),
            "workload": trace.workload,
            "os_name": trace.os_name,
        },
        "arrays": specs,
        "data_bytes": data_bytes,
    }
    header_blob = json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
    data_start = -(-(_HEADER_PREFIX.size + len(header_blob)) // _ALIGN) * _ALIGN
    out = bytearray(data_start + data_bytes)
    out[: _HEADER_PREFIX.size] = _HEADER_PREFIX.pack(len(header_blob))
    out[_HEADER_PREFIX.size : _HEADER_PREFIX.size + len(header_blob)] = header_blob
    for spec, (name, _) in zip(specs, _FIELDS):
        start = data_start + spec["offset"]
        out[start : start + arrays[name].nbytes] = arrays[name].tobytes()
    return bytes(out)


def publish(trace: ReferenceTrace, key: TraceKey) -> Path | None:
    """Write one entry crash-safely; returns its path (None if disabled).

    A unique temp file in the cache directory is renamed into place,
    so concurrent publishers of the same key are idempotent and readers
    never observe a torn entry under ``os.replace`` semantics.
    """
    path = entry_path(key)
    if path is None:
        return None
    path.parent.mkdir(parents=True, exist_ok=True)
    blob = _serialize(trace, key)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.stem}-", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
        os.replace(tmp_name, path)
    except BaseException:
        _evict(Path(tmp_name))
        raise
    _prune(path.parent, keep=path.name)
    return path


def _prune(root: Path, keep: str) -> None:
    """Drop the oldest entries (by mtime) beyond the configured cap."""
    cap = max_entries()
    try:
        entries = [
            (p.stat().st_mtime_ns, p.name, p) for p in root.glob(f"*{SUFFIX}")
        ]
    except OSError:
        return
    if len(entries) <= cap:
        return
    entries.sort()
    for _, name, path in entries[: len(entries) - cap]:
        if name != keep:
            _evict(path)


def _read_header(path: Path) -> tuple[dict, int] | None:
    """(header, data_start) for a structurally valid entry, else None."""
    try:
        size = path.stat().st_size
        with open(path, "rb") as handle:
            prefix = handle.read(_HEADER_PREFIX.size)
            if len(prefix) != _HEADER_PREFIX.size:
                return None
            (header_len,) = _HEADER_PREFIX.unpack(prefix)
            if header_len == 0 or header_len > min(_MAX_HEADER_BYTES, size):
                return None
            header_blob = handle.read(header_len)
    except OSError:
        return None
    if len(header_blob) != header_len:
        return None
    try:
        header = json.loads(header_blob)
    except ValueError:
        return None
    if not isinstance(header, dict) or header.get("magic") != MAGIC:
        return None
    if header.get("format") != STORE_FORMAT:
        return None
    data_start = -(-(_HEADER_PREFIX.size + header_len) // _ALIGN) * _ALIGN
    try:
        if size != data_start + int(header["data_bytes"]):
            return None  # truncated (or over-long) data block
        specs = header["arrays"]
        if [s["name"] for s in specs] != [name for name, _ in _FIELDS] or any(
            s["dtype"] != dtype for s, (_, dtype) in zip(specs, _FIELDS)
        ):
            return None
        for spec in specs:
            count, offset = int(spec["count"]), int(spec["offset"])
            nbytes = count * np.dtype(spec["dtype"]).itemsize
            if count < 0 or offset < 0 or offset + nbytes > header["data_bytes"]:
                return None
        meta = header["meta"]
        int(meta["page_faults"]), float(meta["other_cpi"])
        str(meta["workload"]), str(meta["os_name"])
    except (KeyError, TypeError, ValueError):
        return None
    return header, data_start


def has(key: TraceKey) -> bool:
    """True when a structurally valid entry exists for this key.

    Header-only validation (no memmaps built): cheap enough for a
    per-call check before deciding whether a warm-up fan-out is needed.
    A torn entry reports False and is handled by :func:`load`.
    """
    path = entry_path(key)
    if path is None or not path.exists():
        return False
    parsed = _read_header(path)
    return parsed is not None and parsed[0]["key"] == key.canonical()


def load(key: TraceKey) -> ReferenceTrace | None:
    """Memory-map one cached trace; None on miss or corrupt entry.

    Anything structurally wrong — torn header, short array file, stale
    format, key mismatch — evicts the entry and reports a miss, so the
    caller regenerates and re-publishes instead of crashing or working
    on a short trace.
    """
    path = entry_path(key)
    if path is None or not path.exists():
        return None
    parsed = _read_header(path)
    if parsed is None or parsed[0]["key"] != key.canonical():
        _evict(path)
        return None
    header, data_start = parsed
    arrays: dict[str, np.ndarray] = {}
    try:
        for spec in header["arrays"]:
            arrays[spec["name"]] = np.memmap(
                path,
                mode="r",
                dtype=np.dtype(spec["dtype"]),
                offset=data_start + spec["offset"],
                shape=(spec["count"],),
            )
        meta = header["meta"]
        trace = ReferenceTrace(
            addresses=arrays["addresses"],
            physical=arrays["physical"],
            kinds=arrays["kinds"],
            asids=arrays["asids"],
            mapped=arrays["mapped"],
            kernel=arrays["kernel"],
            page_faults=int(meta["page_faults"]),
            other_cpi=float(meta["other_cpi"]),
            workload=str(meta["workload"]),
            os_name=str(meta["os_name"]),
        )
    except (OSError, ValueError, TraceError):
        _evict(path)
        return None
    # Seed the derived-stream cache with the materialized streams so
    # grid units never recompute the kind masks per unit.
    trace._derived["ifetch_physical"] = arrays["ifetch_physical"]
    trace._derived["load_physical"] = arrays["load_physical"]
    return trace


def ensure(
    workload: str, os_name: str, references: int, seed: int = 1
) -> bool:
    """Make sure a key is published; True if this call generated it.

    A no-op (False) when the plane is disabled or the entry already
    loads cleanly.
    """
    if not enabled():
        return False
    key = key_for(workload, os_name, references, seed)
    if load(key) is not None:
        return False
    trace = _generator.generate_trace(workload, os_name, references, seed=seed)
    publish(trace, key)
    return True


def get_trace(
    workload: str, os_name: str, references: int, seed: int = 1
) -> ReferenceTrace:
    """Load a trace through the plane, generating and publishing on miss.

    Cache hits return memmap-backed traces (zero-copy across
    processes); misses return the freshly generated in-memory trace —
    bit-identical either way — after best-effort publishing it for the
    next reader.  With the plane disabled this is plain generation.
    """
    if not enabled():
        return _generator.generate_trace(workload, os_name, references, seed=seed)
    key = key_for(workload, os_name, references, seed)
    trace = load(key)
    if trace is not None:
        return trace
    trace = _generator.generate_trace(workload, os_name, references, seed=seed)
    try:
        publish(trace, key)
    except OSError:
        pass  # read-only or full filesystem: serve the in-memory trace
    return trace
