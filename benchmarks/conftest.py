"""Benchmark-session configuration.

Benchmarks regenerate the paper's tables and figures and print the
rows (the artifact), then time the regeneration.  Trace-backed
experiments share the on-disk measurement cache, so the first
invocation of a (workload, OS) measurement is the expensive one and
later benches reuse it — exactly how the experiments CLI behaves.

``REPRO_SCALE`` defaults to 0.5 here for tractable bench times; set it
to 1.0+ for paper-fidelity runs.
"""

import os

import pytest


def pytest_configure(config):
    os.environ.setdefault("REPRO_SCALE", "0.5")
    os.environ.setdefault("REPRO_CACHE_DIR", ".repro-cache-bench")


@pytest.fixture(scope="session")
def show():
    """Print a generated table once per benchmark session."""
    shown = set()

    def _show(title, text):
        if title not in shown:
            shown.add(title)
            print(f"\n=== {title} ===")
            print(text)

    return _show
