"""Figure 5: set-associative TLB area relative to fully-associative.

Values below 1.0 mean the set-associative organisation is cheaper than
a fully-associative TLB of the same capacity.  The paper's crossover:
for small TLBs full associativity is cheaper than 4-/8-way; for large
TLBs it costs about twice as much.
"""

from __future__ import annotations

from repro.areamodel.tlb_area import FULLY_ASSOCIATIVE, tlb_area_rbe
from repro.experiments.common import format_table

SIZES = (8, 16, 32, 64, 128, 256, 512)
ASSOCS = (1, 4, 8)


def run() -> list[dict]:
    """Return the SA/FA area-ratio grid."""
    rows = []
    for entries in SIZES:
        full_area = tlb_area_rbe(entries, FULLY_ASSOCIATIVE)
        row = {"entries": entries}
        for assoc in ASSOCS:
            if assoc > entries:
                row[f"{assoc}-way / full"] = None
            else:
                row[f"{assoc}-way / full"] = round(
                    tlb_area_rbe(entries, assoc) / full_area, 3
                )
        rows.append(row)
    return rows


def main() -> None:
    """Print the Figure 5 series."""
    print("Figure 5: set-associative TLB area relative to fully-associative")
    print(format_table(run()))


if __name__ == "__main__":
    main()
