"""Tests for the chunk-streaming trace plane (repro.trace.tracestore)."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.errors import ConfigError, TraceError
from repro.trace import generator, tracestore
from repro.trace.generator import generate_trace

REFERENCES = 40_000

TRACE_FIELDS = ("addresses", "physical", "kinds", "asids", "mapped", "kernel")


@pytest.fixture
def plane(tmp_path, monkeypatch):
    """An empty, isolated trace cache for one test."""
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    return tmp_path / "traces"


def _publish(workload: str, os_name: str, seed: int = 3):
    trace = generate_trace(workload, os_name, REFERENCES, seed=seed)
    key = tracestore.key_for(workload, os_name, REFERENCES, seed)
    path = tracestore.publish(trace, key)
    return trace, key, path


class TestRoundtrip:
    @pytest.mark.parametrize(
        "workload,os_name",
        [
            ("mpeg_play", "ultrix"),
            ("mpeg_play", "mach"),
            ("IOzone", "ultrix"),
            ("IOzone", "mach"),
        ],
    )
    def test_every_field_bit_identical(self, plane, workload, os_name):
        trace, key, _ = _publish(workload, os_name)
        loaded = tracestore.load(key)
        assert loaded is not None
        for name in TRACE_FIELDS:
            original = getattr(trace, name)
            restored = getattr(loaded, name)
            assert restored.dtype == original.dtype, name
            assert np.array_equal(restored, original), name
        assert loaded.page_faults == trace.page_faults
        assert loaded.other_cpi == trace.other_cpi
        assert loaded.workload == trace.workload
        assert loaded.os_name == trace.os_name
        # Derived streams come back bit-identical too, pre-seeded so
        # they are never recomputed per measurement unit.
        assert np.array_equal(loaded.ifetch_physical(), trace.ifetch_physical())
        assert np.array_equal(loaded.load_physical(), trace.load_physical())
        assert loaded.ifetch_physical() is loaded._derived["ifetch_physical"]

    def test_loaded_arrays_are_memmaps(self, plane):
        _, key, _ = _publish("jpeg_play", "mach")
        loaded = tracestore.load(key)
        for name in TRACE_FIELDS:
            assert isinstance(getattr(loaded, name), np.memmap), name
        assert isinstance(loaded.ifetch_physical(), np.memmap)

    def test_missing_key_is_a_miss(self, plane):
        key = tracestore.key_for("mab", "ultrix", REFERENCES, seed=99)
        assert tracestore.load(key) is None


class TestDerivedStreamCache:
    def test_streams_materialize_once_per_trace(self):
        trace = generate_trace("mab", "mach", 10_000, seed=2)
        first = trace.ifetch_physical()
        assert trace.ifetch_physical() is first
        assert trace.load_physical() is trace.load_physical()

    def test_slice_does_not_share_the_cache(self):
        trace = generate_trace("mab", "mach", 10_000, seed=2)
        trace.ifetch_physical()
        sliced = trace.slice(0, 100)
        assert "ifetch_physical" not in sliced._derived


class TestCorruptionFallback:
    """Torn or corrupt entries must fall back to regeneration."""

    @pytest.mark.parametrize("keep_fraction", [0.0, 0.3, 0.9])
    def test_truncated_field_file_is_evicted(self, plane, keep_fraction):
        _, key, path = _publish("mpeg_play", "mach")
        blob = (path / "addresses.bin").read_bytes()
        (path / "addresses.bin").write_bytes(
            blob[: int(len(blob) * keep_fraction)]
        )
        assert tracestore.load(key) is None
        assert not path.exists()

    def test_truncated_entry_regenerates_and_republishes(self, plane):
        trace, key, path = _publish("mpeg_play", "mach")
        blob = (path / "physical.bin").read_bytes()
        (path / "physical.bin").write_bytes(blob[: len(blob) // 2])
        recovered = tracestore.get_trace("mpeg_play", "mach", REFERENCES, seed=3)
        assert np.array_equal(recovered.addresses, trace.addresses)
        # The entry was re-published and now loads cleanly again.
        assert path.exists()
        assert tracestore.load(key) is not None

    def test_missing_header_is_an_incomplete_entry(self, plane):
        _, key, path = _publish("IOzone", "ultrix")
        (path / tracestore.HEADER_NAME).unlink()
        assert tracestore.load(key) is None
        assert not path.exists()

    def test_garbage_header_is_evicted(self, plane):
        _, key, path = _publish("IOzone", "ultrix")
        (path / tracestore.HEADER_NAME).write_bytes(b"not json" * 8)
        assert tracestore.load(key) is None
        assert not path.exists()

    def test_foreign_magic_is_evicted(self, plane):
        _, key, path = _publish("IOzone", "ultrix")
        header = path / tracestore.HEADER_NAME
        header.write_text(
            header.read_text().replace("repro-tracestore", "other-tracestore")
        )
        assert tracestore.load(key) is None
        assert not path.exists()

    def test_stale_format_is_evicted(self, plane):
        _, key, path = _publish("IOzone", "mach")
        header = path / tracestore.HEADER_NAME
        blob = json.loads(header.read_text())
        blob["format"] = tracestore.STORE_FORMAT + 1
        header.write_text(json.dumps(blob))
        assert tracestore.load(key) is None
        assert not path.exists()

    def test_short_array_extent_never_served(self, plane):
        # Chop off exactly the last chunk of the derived stream: the
        # header still parses, but the data file is short — must be a
        # miss, never a short trace.
        trace, key, path = _publish("mpeg_play", "ultrix")
        blob = (path / "load_physical.bin").read_bytes()
        (path / "load_physical.bin").write_bytes(blob[:-8])
        assert tracestore.load(key) is None

    def test_publish_leaves_no_temp_entries(self, plane):
        _, _, path = _publish("mab", "mach")
        leftovers = [
            p for p in path.parent.iterdir() if p.name.startswith(".")
        ]
        assert leftovers == []


class TestCrashSafety:
    """A writer killed mid-append must never publish a readable entry."""

    def _kill_writer_mid_append(self, plane, key) -> None:
        # The child builds the entry *at its final path* (no temp-dir
        # rename to save it) and SIGKILLs itself between appends, i.e.
        # before the header.json commit record exists.
        script = textwrap.dedent(
            f"""
            import os, signal, sys
            import numpy as np
            sys.path.insert(0, {repr(os.path.join(os.getcwd(), "src"))})
            from repro.trace import tracestore

            key = tracestore.key_for(
                {key.workload!r}, {key.os_name!r}, {key.references}, {key.seed}
            )
            writer = tracestore.StreamingTraceWriter(
                tracestore.entry_path(key), key, 64
            )
            chunk = 64
            for _ in range(3):
                writer.append_virtual(
                    np.zeros(chunk, dtype=np.int64),
                    np.zeros(chunk, dtype=np.uint8),
                    np.zeros(chunk, dtype=np.uint8),
                    np.zeros(chunk, dtype=bool),
                    np.zeros(chunk, dtype=bool),
                )
            writer.flush()
            os.kill(os.getpid(), signal.SIGKILL)
            """
        )
        env = dict(os.environ)
        result = subprocess.run(
            [sys.executable, "-c", script], env=env, cwd="/root/repo"
        )
        assert result.returncode == -signal.SIGKILL

    def test_incomplete_entry_detected_and_regenerated(self, plane):
        key = tracestore.key_for("mpeg_play", "mach", REFERENCES, seed=3)
        self._kill_writer_mid_append(plane, key)
        path = tracestore.entry_path(key)
        # The torn directory exists but has no commit record...
        assert path.is_dir()
        assert not (path / tracestore.HEADER_NAME).exists()
        # ...so every reader treats it as a miss and evicts it.
        assert not tracestore.has(key)
        assert tracestore.open_stream(key) is None
        assert not path.exists()

        # The high-level path regenerates and republishes cleanly.
        self._kill_writer_mid_append(plane, key)
        recovered = tracestore.get_trace("mpeg_play", "mach", REFERENCES, seed=3)
        expected = generate_trace("mpeg_play", "mach", REFERENCES, seed=3)
        assert np.array_equal(recovered.addresses, expected.addresses)
        assert tracestore.load(key) is not None


class TestStreaming:
    def test_generate_stream_matches_batch_generation(self, plane, monkeypatch):
        monkeypatch.setenv("REPRO_STREAM_CHUNK", "4096")
        key = tracestore.key_for("mpeg_play", "mach", REFERENCES, seed=3)
        assert tracestore.generate_stream(
            "mpeg_play", "mach", REFERENCES, seed=3
        ) == tracestore.entry_path(key)
        loaded = tracestore.load(key)
        expected = generate_trace("mpeg_play", "mach", REFERENCES, seed=3)
        for name in TRACE_FIELDS:
            assert np.array_equal(getattr(loaded, name), getattr(expected, name)), name
        assert np.array_equal(loaded.ifetch_physical(), expected.ifetch_physical())
        assert np.array_equal(loaded.load_physical(), expected.load_physical())
        assert loaded.page_faults == expected.page_faults
        assert loaded.other_cpi == expected.other_cpi

    def test_stream_reader_windows_and_chunks(self, plane, monkeypatch):
        monkeypatch.setenv("REPRO_STREAM_CHUNK", "4096")
        trace, key, _ = _publish("mpeg_play", "ultrix")
        stream = tracestore.open_stream(key)
        assert stream is not None
        assert len(stream) == len(trace)
        assert stream.count("ifetch_physical") == len(trace.ifetch_physical())
        assert np.array_equal(
            stream.read("addresses", 100, 300), trace.addresses[100:300]
        )
        # Chunk iteration covers the trace exactly once, in order.
        covered = []
        for start, stop, fields in stream.chunks(("addresses", "kinds")):
            covered.append((start, stop))
            assert np.array_equal(fields["addresses"], trace.addresses[start:stop])
            assert np.array_equal(fields["kinds"], trace.kinds[start:stop])
        assert covered[0][0] == 0
        assert covered[-1][1] == len(trace)
        assert all(a[1] == b[0] for a, b in zip(covered, covered[1:]))

    def test_window_trace_matches_slice(self, plane):
        trace, key, _ = _publish("IOzone", "mach")
        stream = tracestore.open_stream(key)
        window = stream.window_trace(1_000, 3_000)
        sliced = trace.slice(1_000, 3_000)
        for name in TRACE_FIELDS:
            assert np.array_equal(getattr(window, name), getattr(sliced, name)), name
        assert np.array_equal(window.ifetch_physical(), sliced.ifetch_physical())

    def test_stream_requires_the_plane(self, plane, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        with pytest.raises(TraceError, match="REPRO_TRACE_CACHE"):
            tracestore.stream("mab", "ultrix", 10_000, seed=5)

    def test_stream_generates_on_miss(self, plane, monkeypatch):
        monkeypatch.setenv("REPRO_STREAM_CHUNK", "4096")
        stream = tracestore.stream("mpeg_play", "mach", REFERENCES, seed=3)
        expected = generate_trace("mpeg_play", "mach", REFERENCES, seed=3)
        assert stream.references == len(expected)
        assert np.array_equal(stream.read("physical"), expected.physical)

    def test_get_trace_streams_large_misses(self, plane, monkeypatch):
        # A miss longer than one chunk is generated chunk-streaming and
        # served as a memmap of the published entry.
        monkeypatch.setenv("REPRO_STREAM_CHUNK", "4096")
        trace = tracestore.get_trace("mpeg_play", "mach", REFERENCES, seed=3)
        assert isinstance(trace.addresses, np.memmap)
        expected = generate_trace("mpeg_play", "mach", REFERENCES, seed=3)
        assert np.array_equal(trace.addresses, expected.addresses)

    def test_writer_rejects_unbalanced_finalize(self, plane, tmp_path):
        key = tracestore.key_for("mab", "mach", 128, seed=1)
        writer = tracestore.StreamingTraceWriter(tmp_path / "w.trace", key, 64)
        writer.append_virtual(
            np.zeros(64, dtype=np.int64),
            np.zeros(64, dtype=np.uint8),
            np.zeros(64, dtype=np.uint8),
            np.zeros(64, dtype=bool),
            np.zeros(64, dtype=bool),
        )
        # No physical appends: reference-field counts disagree.
        with pytest.raises(TraceError, match="unbalanced"):
            writer.finalize()
        writer.close()


class TestKeying:
    def test_generator_version_invalidates_cache(self, plane, monkeypatch):
        _, key, _ = _publish("mpeg_play", "mach")
        assert tracestore.load(key) is not None
        monkeypatch.setattr(
            generator,
            "TRACE_FORMAT_VERSION",
            generator.TRACE_FORMAT_VERSION + 1,
        )
        bumped = tracestore.key_for("mpeg_play", "mach", REFERENCES, seed=3)
        assert bumped != key
        assert tracestore.load(bumped) is None

    def test_scale_is_part_of_the_key(self, plane, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "1.0")
        base = tracestore.key_for("mpeg_play", "mach", REFERENCES, seed=3)
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert tracestore.key_for("mpeg_play", "mach", REFERENCES, seed=3) != base

    def test_key_mismatch_under_hash_collision_is_a_miss(self, plane):
        # Rename an entry onto another key's path: the embedded key no
        # longer matches, so the load must refuse to serve it.
        _, key_a, path_a = _publish("mpeg_play", "mach", seed=3)
        key_b = tracestore.key_for("IOzone", "ultrix", REFERENCES, seed=4)
        target = tracestore.entry_path(key_b)
        os.replace(path_a, target)
        assert tracestore.load(key_b) is None


class TestConfig:
    def test_disabled_plane_generates_without_writing(self, plane, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        assert not tracestore.enabled()
        trace = tracestore.get_trace("mab", "ultrix", 10_000, seed=5)
        assert len(trace) >= 10_000
        assert not plane.exists()

    def test_default_directory(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
        assert tracestore.trace_cache_dir() is not None
        assert tracestore.trace_cache_dir().name == ".repro-trace-cache"

    def test_bad_max_entries_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE_MAX", "many")
        with pytest.raises(ConfigError, match="REPRO_TRACE_CACHE_MAX"):
            tracestore.max_entries()
        monkeypatch.setenv("REPRO_TRACE_CACHE_MAX", "0")
        with pytest.raises(ConfigError, match="REPRO_TRACE_CACHE_MAX"):
            tracestore.max_entries()

    def test_bad_stream_chunk_rejected(self, monkeypatch):
        for bad in ("soon", "0", "-64", "100"):
            monkeypatch.setenv("REPRO_STREAM_CHUNK", bad)
            with pytest.raises(ConfigError, match="REPRO_STREAM_CHUNK"):
                tracestore.stream_chunk_references()
        monkeypatch.setenv("REPRO_STREAM_CHUNK", "128")
        assert tracestore.stream_chunk_references() == 128

    def test_prune_drops_oldest_beyond_cap(self, plane, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE_MAX", "2")
        _, key_old, path_old = _publish("mpeg_play", "mach", seed=1)
        os.utime(path_old, ns=(1, 1))  # unambiguously the oldest
        _, key_mid, path_mid = _publish("mpeg_play", "mach", seed=2)
        os.utime(path_mid, ns=(2, 2))
        _, key_new, path_new = _publish("mpeg_play", "mach", seed=3)
        assert not path_old.exists()
        assert path_mid.exists() and path_new.exists()
        assert tracestore.load(key_old) is None
        assert tracestore.load(key_new) is not None

    def test_prune_is_lru_not_publish_order(self, plane, monkeypatch):
        # Regression: REPRO_TRACE_CACHE_MAX used to evict by *publish*
        # time because loads never refreshed the entry mtime, so the
        # hottest trace could be the first one dropped.
        monkeypatch.setenv("REPRO_TRACE_CACHE_MAX", "2")
        _, key_a, path_a = _publish("mpeg_play", "mach", seed=1)
        os.utime(path_a, ns=(1, 1))
        _, key_b, path_b = _publish("mpeg_play", "mach", seed=2)
        os.utime(path_b, ns=(2, 2))
        # A is oldest by publish order, but gets *used* now.
        assert tracestore.load(key_a) is not None
        _, key_c, path_c = _publish("mpeg_play", "mach", seed=3)
        # The untouched middle entry is evicted; the recently-used
        # oldest-published one survives.
        assert path_a.exists()
        assert not path_b.exists()
        assert path_c.exists()

    def test_open_stream_also_refreshes_lru(self, plane, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE_MAX", "2")
        _, key_a, path_a = _publish("mpeg_play", "mach", seed=1)
        os.utime(path_a, ns=(1, 1))
        _, key_b, path_b = _publish("mpeg_play", "mach", seed=2)
        os.utime(path_b, ns=(2, 2))
        assert tracestore.open_stream(key_a) is not None
        _, key_c, path_c = _publish("mpeg_play", "mach", seed=3)
        assert path_a.exists()
        assert not path_b.exists()
        assert path_c.exists()
