"""Stateless consistent-hash router for the serving fleet.

The router is an :class:`~repro.service.eventloop.EventLoopHTTPServer`
whose "engine" (:class:`RouterEngine`) forwards instead of computing:
``POST /v1/query`` (JSON, batch, and binary-batch) is validated
on-loop, hashed to its priced-space shard key, and proxied to the
key's replica set in preference order — alive nodes first, but every
replica is attempted before giving up, so a stale health view can
slow an answer, never lose one.  Failover triggers on connect errors,
torn upstream connections, 429, and any 5xx; 400/422 answers are the
request's own fault and re-raise as the same typed error (the client
sees exactly the status a single server would have sent).

Reusing the event-loop machinery buys the router every data-plane
property of a worker for free: bounded buffers with 431/413 rejection,
429 + ``Retry-After`` shedding when its upstream executor budget is
exhausted, pipelining, idle reaping, graceful drain, and the ETag
contract — upstream validators pass through untouched, so a client's
``If-None-Match`` revalidates *at the router* (shards compute the same
strong ETag over the same bytes, which is also why failover cannot
change an answer: every shard opens the same immutable
content-addressed store).

What the router deliberately does **not** do is cache: the raw-body
memo is disabled, every query consults a shard.  Statelessness is the
property that makes N routers interchangeable.

``GET /v1/metrics`` on the router is the fleet view: it scrapes every
shard (off-loop), merges counters and histogram buckets *exactly*
(:func:`~repro.obs.merge_registry_snapshots` — sums, not averages of
percentiles), sums the engine-cache and fault counters, and labels
each node's contribution, alongside the router's own proxy counters.
``GET /v1/health`` reports topology, ring membership, per-node health
state, and replica factor without touching the network.

When every replica of a shard is down the router answers a structured
``503`` carrying ``Retry-After`` (:class:`NoShardAvailableError`), the
signal the retrying :class:`ServiceClient` already backs off on.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import socket
import threading
import time

from repro.errors import BudgetError, RequestError, StoreError
from repro.obs import merge_registry_snapshots
from repro.service import binproto
from repro.service.eventloop import EventLoopHTTPServer
from repro.service.http import make_server
from repro.service.requests import validate_request
from repro.fleet.health import HealthChecker
from repro.fleet.ring import Ring, shard_key

DEFAULT_REPLICAS = 2
DEFAULT_UPSTREAM_TIMEOUT_S = 10.0
SCRAPE_TIMEOUT_S = 5.0

# Upstream statuses that mean "this replica can't answer right now but
# another might": overload shedding and store trouble.  Any other 5xx
# is treated the same way — failover is the router's whole job.
_FAILOVER_STATUS = (429, 503)


class NoShardAvailableError(StoreError):
    """Every replica of a shard failed; maps to 503 + ``Retry-After``."""


class RouterEngine:
    """An engine-shaped proxy: same probe/query surface as
    :class:`~repro.service.engine.QueryEngine`, but every miss is an
    upstream HTTP call instead of a ranking.

    Args:
        topology: node label -> ``(host, port)`` of each shard.
        replicas: R — how many distinct nodes hold each shard key
            (clamped to the node count).
        ring: the consistent-hash ring (default: one over the
            topology's labels at 128 vnodes).
        health: optional :class:`HealthChecker`; used to order replica
            attempts, never to skip them.
        timeout_s: per-upstream-request timeout.

    Thread-safe: upstream keep-alive connections are pooled
    per-executor-thread (``threading.local``), counters sit behind one
    lock.
    """

    def __init__(
        self,
        topology: dict[str, tuple[str, int]],
        replicas: int = DEFAULT_REPLICAS,
        ring: Ring | None = None,
        health: HealthChecker | None = None,
        timeout_s: float = DEFAULT_UPSTREAM_TIMEOUT_S,
    ):
        if not topology:
            raise ValueError("router needs at least one shard node")
        self.topology = {label: tuple(addr) for label, addr in topology.items()}
        self.ring = ring if ring is not None else Ring(self.topology)
        self.replicas = max(1, min(int(replicas), len(self.topology)))
        self.health = health
        self.timeout_s = timeout_s
        self.store = None  # the router holds no store; shards do
        self._local = threading.local()
        self._lock = threading.Lock()
        self._counters = {
            "proxied": 0,
            "failovers": 0,
            "upstream_errors": 0,
            "exhausted": 0,
        }

    # -- engine surface the event loop reads ---------------------------

    @property
    def stats(self) -> dict:
        """Proxy counters (the router's analogue of cache stats)."""
        with self._lock:
            return dict(self._counters)

    def entry_count(self) -> int:
        return 0

    def count_byte_hit(self) -> None:
        pass  # the router's raw memo is disabled; nothing to tally

    def try_cached_bytes(self, request) -> None:
        """Always a miss — but validate on-loop first so malformed
        requests 400 at the edge without an upstream round-trip."""
        validate_request(request)
        return None

    def try_cached_binary(self, payload: bytes) -> None:
        return None  # frame decode happens off-loop in query_binary

    def query_bytes(self, request) -> tuple[bytes, str]:
        """Proxy one JSON query to its shard's replica set."""
        normalized = validate_request(request)
        body = json.dumps(request).encode()
        return self._forward(shard_key(normalized), body, "application/json")

    def query_binary(self, payload: bytes) -> tuple[bytes, str]:
        """Proxy one binary batch frame payload, re-framed upstream."""
        request = binproto.decode_batch_request(payload)
        normalized = validate_request(request)
        body = binproto.frame(binproto.REQUEST_MAGIC, payload)
        return self._forward(
            shard_key(normalized), body, binproto.CONTENT_TYPE
        )

    # -- upstream transport --------------------------------------------

    def candidates(self, key: str) -> list[str]:
        """The key's replica set, alive nodes first.

        Marked-down nodes are *appended*, not dropped: health ordering
        is latency advice, and a key's answer must survive a health
        view that is stale in either direction.
        """
        preference = self.ring.preference(key, self.replicas)
        if self.health is None:
            return preference
        alive = self.health.alive()
        up = [label for label in preference if label in alive]
        down = [label for label in preference if label not in alive]
        return up + down

    def _pool(self) -> dict:
        pool = getattr(self._local, "conns", None)
        if pool is None:
            pool = self._local.conns = {}
        return pool

    def _connect(self, label: str, timeout: float) -> http.client.HTTPConnection:
        host, port = self.topology[label]
        conn = http.client.HTTPConnection(host, port, timeout=timeout)
        conn.connect()
        try:
            conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        return conn

    def _send(
        self,
        label: str,
        method: str,
        path: str,
        body: bytes | None,
        content_type: str | None,
        timeout: float | None = None,
    ) -> tuple[int, bytes, str | None]:
        """One request to one node over its pooled connection.

        A pooled socket the shard idled out is replayed once on a
        fresh connection (queries are pure reads, so the replay is
        safe); a failure on a fresh connection propagates — that node
        is genuinely unreachable right now.
        """
        timeout = self.timeout_s if timeout is None else timeout
        pool = self._pool()
        headers = {"Content-Type": content_type} if content_type else {}
        for attempt in range(2):
            conn = pool.pop(label, None)
            fresh = conn is None
            if fresh:
                conn = self._connect(label, timeout)
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                status = response.status
                etag = response.headers.get("ETag")
                if response.will_close:
                    conn.close()
                else:
                    pool[label] = conn
                return status, raw, etag
            except (OSError, http.client.HTTPException):
                try:
                    conn.close()
                except OSError:
                    pass
                if fresh or attempt:
                    raise
        raise AssertionError("unreachable")

    def _forward(
        self, key: str, body: bytes, content_type: str
    ) -> tuple[bytes, str]:
        """Send one query to the key's replicas until one answers."""
        labels = self.candidates(key)
        failures: list[str] = []
        for position, label in enumerate(labels):
            try:
                status, raw, etag = self._send(
                    label, "POST", "/v1/query", body, content_type
                )
            except (OSError, http.client.HTTPException) as exc:
                with self._lock:
                    self._counters["upstream_errors"] += 1
                failures.append(f"{label}: {type(exc).__name__}: {exc}")
                continue
            if status == 200:
                with self._lock:
                    self._counters["proxied"] += 1
                    if position:
                        self._counters["failovers"] += 1
                if etag is None:  # defensive: recompute the shard formula
                    etag = '"' + hashlib.sha256(raw).hexdigest()[:20] + '"'
                return raw, etag
            if status not in _FAILOVER_STATUS and status < 500:
                # The request itself is wrong; every replica would say
                # the same.  Re-raise as the matching typed error so
                # the loop's mapper regenerates the shard's status.
                message = _upstream_message(raw, status)
                with self._lock:
                    self._counters["proxied"] += 1
                if status == 422:
                    raise BudgetError(message)
                raise RequestError(message)
            with self._lock:
                self._counters["upstream_errors"] += 1
            failures.append(f"{label}: HTTP {status}")
        with self._lock:
            self._counters["exhausted"] += 1
        raise NoShardAvailableError(
            f"all {len(labels)} replica(s) of shard key {key!r} failed: "
            + "; ".join(failures)
        )

    # -- fleet metrics --------------------------------------------------

    def fleet_metrics(self) -> dict:
        """Scrape every shard and merge the fleet view exactly.

        Counters and histogram buckets sum across nodes (percentiles
        are re-read from the merged buckets by
        :func:`merge_registry_snapshots`, never averaged); engine-cache
        and fault trip counts sum; each node's own contribution stays
        visible under its label, with unreachable nodes reported as
        ``down`` rather than silently omitted.
        """
        nodes: dict[str, dict] = {}
        views: list[dict] = []
        engine_cache: dict[str, int] = {}
        faults: dict[str, int] = {}
        for label in sorted(self.topology):
            try:
                status, raw, _ = self._send(
                    label, "GET", "/v1/metrics", None, None,
                    timeout=SCRAPE_TIMEOUT_S,
                )
                if status != 200:
                    raise OSError(f"HTTP {status}")
                view = json.loads(raw).get("result", {})
            except (OSError, ValueError, http.client.HTTPException) as exc:
                nodes[label] = {
                    "status": "down",
                    "error": f"{type(exc).__name__}: {exc}",
                }
                continue
            views.append(view)
            for key, value in view.get("engine_cache", {}).items():
                if isinstance(value, (int, float)) and key != "hit_rate":
                    engine_cache[key] = engine_cache.get(key, 0) + value
            for key, value in view.get("faults", {}).items():
                faults[key] = faults.get(key, 0) + value
            nodes[label] = {
                "status": "up",
                "uptime_s": view.get("uptime_s"),
                "workers": view.get("workers"),
                "engine_cache": view.get("engine_cache"),
                "responses": view.get("counters", {})
                .get("http_responses", {})
                .get("by_label"),
            }
        merged = merge_registry_snapshots(
            [
                {
                    kind: view[kind]
                    for kind in ("counters", "histograms", "gauges")
                    if kind in view
                }
                for view in views
            ]
        )
        result: dict = {
            "role": "router",
            "nodes": nodes,
            "nodes_up": sorted(
                label for label, info in nodes.items()
                if info["status"] == "up"
            ),
            "engine_cache": engine_cache,
            "faults": faults,
        }
        result.update(merged)
        return result

    def close(self) -> None:
        """Drop this thread's pooled upstream connections."""
        pool = getattr(self._local, "conns", None)
        if pool:
            for conn in pool.values():
                try:
                    conn.close()
                except OSError:
                    pass
            pool.clear()


def _upstream_message(raw: bytes, status: int) -> str:
    try:
        payload = json.loads(raw)
        return payload["error"]["message"]
    except (ValueError, KeyError, TypeError):
        return f"upstream shard answered HTTP {status}"


class RouterHTTPServer(EventLoopHTTPServer):
    """The event-loop server specialized for routing.

    Differences from a worker: 503s carry ``Retry-After`` (a fleet
    with a dead shard set *is* a retry-later condition), the raw-body
    memo is disabled (stateless: every query consults a shard), and
    the GET endpoints answer for the fleet — health from local state,
    metrics via an off-loop cross-node scrape.
    """

    retry_after_statuses = (429, 503)

    def _memoize_raw(self, body: bytes, entry: tuple[bytes, str]) -> None:
        pass  # stateless by construction

    def _respond_mapped_error(self, conn, req, exc) -> None:
        if isinstance(exc, NoShardAvailableError):
            self._respond_error(conn, req, 503, "no_shard_available", str(exc))
            return
        super()._respond_mapped_error(conn, req, exc)

    def _router_health_view(self) -> dict:
        engine: RouterEngine = self.engine
        states = (
            engine.health.snapshot() if engine.health is not None else {}
        )
        nodes = {}
        for label, (host, port) in sorted(engine.topology.items()):
            nodes[label] = {"address": f"{host}:{port}"}
            nodes[label].update(states.get(label, {"alive": None}))
        return {
            "status": "serving",
            "role": "router",
            "replicas": engine.replicas,
            "ring": {
                "nodes": list(engine.ring.nodes),
                "vnodes": engine.ring.vnodes,
            },
            "nodes": nodes,
            "proxy": engine.stats,
            "inflight": self.metrics.gauge("http_inflight").snapshot(),
        }

    def _fleet_metrics_view(self) -> dict:
        view = self.engine.fleet_metrics()
        view["uptime_s"] = round(
            time.monotonic() - self.started_monotonic, 3
        )
        view["router"] = {
            "proxy": self.engine.stats,
            **self.metrics.snapshot(),
        }
        return view

    def _do_get(self, conn, req) -> None:
        if req.path in ("/v1/health", "/health"):
            self._respond_json(
                conn, req, 200,
                {"ok": True, "result": self._router_health_view()},
            )
            return
        if req.path in ("/v1/metrics", "/metrics"):
            # The scrape is blocking network IO: run it off-loop with
            # the same inflight bookkeeping as an engine miss so a
            # hung shard can't stall query traffic.
            self._inflight_count += 1
            self.metrics.gauge("http_inflight").add(1)
            conn.pending = True
            self._update_interest(conn)

            def _scrape(conn=conn, req=req):
                try:
                    body = json.dumps(
                        {"ok": True, "result": self._fleet_metrics_view()}
                    ).encode()
                    etag = (
                        '"' + hashlib.sha256(body).hexdigest()[:20] + '"'
                    )
                    outcome = ("ok", (body, etag), False, b"")
                except BaseException as exc:
                    outcome = ("err", exc, False, b"")
                self._completions.append((conn, req, outcome))
                self._wake()

            self._executor.submit(_scrape)
            return
        self._respond_error(
            conn, req, 404, "not_found", f"unknown path {req.path}"
        )


def make_router(
    topology: dict[str, tuple[str, int]],
    replicas: int = DEFAULT_REPLICAS,
    host: str = "127.0.0.1",
    port: int = 0,
    ring: Ring | None = None,
    health: HealthChecker | None = None,
    upstream_timeout_s: float = DEFAULT_UPSTREAM_TIMEOUT_S,
    **server_kwargs,
) -> RouterHTTPServer:
    """A ready-to-run router server over a shard topology.

    The caller owns the :class:`HealthChecker` lifecycle (``start()``
    it alongside ``serve_forever``, ``stop()`` it on shutdown); extra
    keyword arguments flow to :func:`repro.service.http.make_server`
    (``verbose``, ``max_inflight``, ``executor_threads``, ...).
    """
    engine = RouterEngine(
        topology,
        replicas=replicas,
        ring=ring,
        health=health,
        timeout_s=upstream_timeout_s,
    )
    return make_server(
        engine,
        host=host,
        port=port,
        server_cls=RouterHTTPServer,
        **server_kwargs,
    )
