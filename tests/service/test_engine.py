"""Differential tests: the query engine vs the brute-force allocator.

The service's promise is bit-identity — anything it answers must match
``Allocator.rank`` exactly, including tie order.  Curves here are
measured over the full Table 5 space (short trace) so the engine
prices exactly what production prices.
"""

import numpy as np
import pytest

from repro.core.allocator import DEFAULT_BUDGET_RBES, Allocator
from repro.core.measure import BenefitCurves, measure_workload
from repro.errors import BudgetError, RequestError, StoreError
from repro.service.engine import QueryEngine, maybe_engine, pareto_frontier
from repro.store import CurveStore, StoreKey

TEST_REFERENCES = 60_000


@pytest.fixture(scope="module")
def curves():
    """Full-Table-5 curves for one workload (short trace)."""
    single = measure_workload("ousterhout", "mach", references=TEST_REFERENCES)
    return BenefitCurves(os_name="mach", per_workload=[single])


@pytest.fixture(scope="module")
def store(tmp_path_factory, curves):
    store = CurveStore(tmp_path_factory.mktemp("svc-store") / "store")
    store.build(curves, StoreKey.current("mach", suite=("ousterhout",)))
    return store


@pytest.fixture(scope="module")
def engine(store):
    return QueryEngine(store)


class TestBitIdentity:
    def test_paper_budget_equals_brute_force(self, engine, curves):
        """The acceptance criterion: at 250k rbe the service's ranked
        list equals Allocator.rank output exactly."""
        direct = Allocator(curves, budget_rbes=DEFAULT_BUDGET_RBES).rank()
        served = engine.point("mach", DEFAULT_BUDGET_RBES)
        assert served == direct

    def test_restricted_assoc_equals_brute_force(self, engine, curves):
        direct = Allocator(curves, budget_rbes=DEFAULT_BUDGET_RBES).rank(
            max_cache_assoc=2
        )
        served = engine.point(
            "mach", DEFAULT_BUDGET_RBES, max_cache_assoc=2
        )
        assert served == direct

    def test_random_budget_sweep(self, engine, curves):
        """Differential sweep over >= 20 random budgets, spanning
        infeasible through unconstrained."""
        priced = engine.priced_space("mach")
        lo, hi = priced.min_area(), float(priced.area_grid.max())
        rng = np.random.default_rng(42)
        budgets = list(rng.uniform(lo * 0.8, hi * 1.2, size=24))
        assert len(budgets) >= 20
        for budget in budgets:
            allocator = Allocator(curves, budget_rbes=budget)
            try:
                direct = allocator.rank(limit=50)
            except BudgetError:
                with pytest.raises(BudgetError):
                    engine.point("mach", budget)
                continue
            assert engine.point("mach", budget, limit=50) == direct

    def test_store_round_trip_preserves_floats(self, engine, curves):
        """Curves loaded from disk score identically to in-memory ones."""
        loaded = engine.curves_for("mach")
        assert loaded == curves


class TestBatch:
    def test_batch_matches_point_queries(self, engine):
        budgets = [150_000.0, 250_000.0, 400_000.0]
        results = engine.batch(["mach"], budgets, limit=3)
        assert [b for _, b, _ in results] == budgets
        for os_name, budget, ranked in results:
            assert ranked == engine.point(os_name, budget, limit=3)

    def test_infeasible_budget_yields_empty(self, engine):
        results = engine.batch(["mach"], [1.0], limit=1)
        assert results[0][2] == []

    def test_priced_space_is_reused(self, engine):
        engine.batch(["mach"], [100_000.0, 200_000.0])
        assert ("mach", None, None) in engine._priced


class TestPareto:
    def test_frontier_is_nondominated(self, engine):
        frontier = engine.pareto("mach", max_budget=DEFAULT_BUDGET_RBES)
        full = engine.point("mach", DEFAULT_BUDGET_RBES)
        for point in frontier:
            dominated = any(
                q.area_rbe <= point.area_rbe
                and q.cpi <= point.cpi
                and (q.area_rbe < point.area_rbe or q.cpi < point.cpi)
                for q in full
            )
            assert not dominated

    def test_every_nondominated_point_is_on_frontier(self, engine):
        frontier = engine.pareto("mach", max_budget=DEFAULT_BUDGET_RBES)
        full = engine.point("mach", DEFAULT_BUDGET_RBES)
        frontier_set = {(a.area_rbe, a.cpi) for a in frontier}
        for point in full:
            dominated = any(
                q.area_rbe <= point.area_rbe
                and q.cpi <= point.cpi
                and (q.area_rbe < point.area_rbe or q.cpi < point.cpi)
                for q in full
            )
            if not dominated:
                assert (point.area_rbe, point.cpi) in frontier_set

    def test_ties_keep_rank_order(self, engine):
        """Among exact (area, cpi) ties the frontier keeps the config
        the brute-force ranking lists first."""
        frontier = engine.pareto("mach", max_budget=DEFAULT_BUDGET_RBES)
        full = engine.point("mach", DEFAULT_BUDGET_RBES)
        first_by_score = {}
        for allocation in full:
            first_by_score.setdefault(
                (allocation.cpi, allocation.area_rbe), allocation
            )
        for allocation in frontier:
            assert (
                first_by_score[(allocation.cpi, allocation.area_rbe)]
                == allocation
            )

    def test_frontier_monotone(self, engine):
        frontier = engine.pareto("mach")
        cpis = [a.cpi for a in frontier]
        areas = [a.area_rbe for a in frontier]
        assert cpis == sorted(cpis)
        assert areas == sorted(areas, reverse=True)

    def test_pareto_frontier_helper_empty(self):
        assert pareto_frontier([]) == []


class TestQueryApi:
    def test_point_response_shape(self, engine):
        response = engine.query(
            {"type": "point", "os": "mach", "budget": 250_000, "limit": 2}
        )
        assert response["count"] == 2
        row = response["allocations"][0]
        assert row["rank"] == 1
        assert {"tlb", "icache", "dcache", "area_rbe", "cpi"} <= set(row)

    def test_lru_cache_hit_on_respelled_request(self, engine):
        misses_before = engine.stats["misses"]
        r1 = engine.query({"type": "point", "os": "mach", "budget": 123_456})
        r2 = engine.query(
            {"type": "point", "os": "mach", "budget": 123_456.0, "limit": None}
        )
        assert r2 is r1
        assert engine.stats["misses"] == misses_before + 1
        assert engine.stats["hits"] >= 1

    def test_lru_eviction(self, store):
        engine = QueryEngine(store, result_cache_size=2)
        for budget in (101_000, 102_000, 103_000):
            engine.query(
                {"type": "point", "os": "mach", "budget": budget, "limit": 1}
            )
        assert len(engine._results) == 2

    def test_batch_response(self, engine):
        response = engine.query(
            {
                "type": "batch",
                "os": "mach",
                "budgets": [1.0, 250_000],
            }
        )
        assert response["count"] == 2
        assert response["results"][0]["feasible"] is False
        assert response["results"][1]["feasible"] is True
        assert len(response["results"][1]["allocations"]) == 1

    def test_invalid_requests_name_the_field(self, engine):
        with pytest.raises(RequestError, match="'budget'"):
            engine.query({"type": "point", "os": "mach"})
        with pytest.raises(RequestError, match="'type'"):
            engine.query({"type": "sideways"})
        with pytest.raises(RequestError, match="unknown field"):
            engine.query({"type": "point", "os": "mach", "budget": 1,
                          "bogus": True})

    def test_unknown_os_is_store_error(self, engine):
        with pytest.raises(StoreError, match="ultrix"):
            engine.query({"type": "point", "os": "ultrix", "budget": 250_000})


class TestMaybeEngine:
    def test_none_without_store(self, tmp_path):
        assert maybe_engine("mach", CurveStore(tmp_path / "nothing")) is None

    def test_engine_with_store(self, store):
        engine = maybe_engine("mach", store)
        assert engine is not None
        assert engine.point("mach", DEFAULT_BUDGET_RBES, limit=1)

    def test_none_for_unserved_os(self, store):
        assert maybe_engine("ultrix", store) is None
