"""End-to-end integration tests: the pipeline from workload model to
ranked allocation, plus the paper's headline qualitative claims."""

import numpy as np
import pytest

from repro.core.allocator import Allocator
from repro.core.configs import CacheConfig, TlbConfig
from repro.core.cpi import CpiModel
from repro.core.measure import measure_workload
from repro.memsim.timing import DECSTATION_3100, simulate_system
from repro.monitor.monster import Monster
from repro.trace.generator import generate_trace

GRID = dict(
    capacities=(4096, 8192, 16384),
    lines=(4, 8, 16),
    assocs=(1, 2),
    tlb_entries=(64, 256, 512),
    tlb_assocs=(2, 8),
    tlb_full_max=64,
    references=120_000,
)


@pytest.fixture(scope="module")
def mach_curves():
    return measure_workload("ousterhout", "mach", **GRID)


@pytest.fixture(scope="module")
def ultrix_curves():
    return measure_workload("ousterhout", "ultrix", **GRID)


class TestHeadlineClaims:
    """Section 4/5: the structural effects of a multiple-API OS."""

    def test_mach_tlb_pressure_an_order_of_magnitude_higher(
        self, mach_curves, ultrix_curves
    ):
        config = TlbConfig(64, "full")
        mach_user, mach_kernel = mach_curves.tlb_misses_per_instr(config)
        ultrix_user, ultrix_kernel = ultrix_curves.tlb_misses_per_instr(config)
        assert (mach_user + mach_kernel) > 3 * (ultrix_user + ultrix_kernel)

    def test_mach_icache_miss_ratio_higher(self, mach_curves, ultrix_curves):
        config = CacheConfig(8192, 4, 1)
        assert mach_curves.icache_miss_ratio(config) > 1.2 * ultrix_curves.icache_miss_ratio(
            config
        )

    def test_large_tlb_removes_most_tlb_cpi(self, mach_curves):
        model = CpiModel()
        small = model.tlb_cpi(mach_curves, TlbConfig(64, 2))
        large = model.tlb_cpi(mach_curves, TlbConfig(512, 8))
        assert large < 0.5 * small

    def test_doubling_line_size_beats_doubling_capacity_under_mach(
        self, mach_curves
    ):
        # Section 5.3's observation for small caches under Mach.
        base = mach_curves.icache_miss_ratio(CacheConfig(4096, 4, 1))
        double_line = mach_curves.icache_miss_ratio(CacheConfig(4096, 8, 1))
        double_size = mach_curves.icache_miss_ratio(CacheConfig(8192, 4, 1))
        assert double_line < double_size < base

    def test_allocator_prefers_large_tlb_and_big_icache(self, mach_curves):
        from repro.core.space import enumerate_cache_configs, enumerate_tlb_configs

        caches = enumerate_cache_configs(
            capacities=GRID["capacities"], lines=GRID["lines"], assocs=GRID["assocs"]
        )
        allocator = Allocator(mach_curves, budget_rbes=250_000)
        best = allocator.best(
            tlbs=enumerate_tlb_configs(
                entries=GRID["tlb_entries"],
                assocs=GRID["tlb_assocs"],
                full_max_entries=GRID["tlb_full_max"],
            ),
            icaches=caches,
            dcaches=caches,
        )
        # Even for this single (D-heavy) workload on a reduced grid,
        # the large set-associative TLB always wins; the I-cache >=
        # 2x D-cache property is suite-level and asserted by the
        # table6 experiment test instead.
        assert best.config.tlb.entries >= 256
        assert best.config.icache.line_words >= 8


class TestCrossToolConsistency:
    """The three measurement approaches must agree (Section 3)."""

    def test_monster_and_curves_agree_on_tlb(self, mach_curves):
        trace = generate_trace("ousterhout", "mach", 120_000, seed=1)
        monster = Monster(warmup_fraction=0.4)
        timing = monster.simulate(trace)
        # The DECstation TLB is 64-entry FA; compare misses/instr.
        user, kernel = mach_curves.tlb_misses_per_instr(TlbConfig(64, "full"))
        monster_rate = (
            timing.tlb_user_misses + timing.tlb_kernel_misses
        ) / timing.instructions
        assert monster_rate == pytest.approx(user + kernel, rel=0.2)

    def test_curve_grid_matches_direct_timing(self, mach_curves):
        trace = generate_trace("ousterhout", "mach", 120_000, seed=1)
        config = DECSTATION_3100
        direct = simulate_system(trace, config, warmup_fraction=0.4)
        # An 8-KB 4-word DM I-cache timing run vs. the measured grid.
        from dataclasses import replace

        small = replace(
            config, icache_bytes=8192, icache_line_words=4, icache_assoc=1
        )
        timing = simulate_system(trace, small, warmup_fraction=0.4)
        grid_ratio = mach_curves.icache_miss_ratio(CacheConfig(8192, 4, 1))
        timing_ratio = timing.icache_misses / timing.instructions
        assert timing_ratio == pytest.approx(grid_ratio, rel=0.15)
        assert direct.instructions == timing.instructions


class TestDeterminismEndToEnd:
    def test_full_pipeline_reproducible(self):
        results = []
        for _ in range(2):
            curves = measure_workload(
                "IOzone", "mach", use_cache=False,
                capacities=(4096,), lines=(4,), assocs=(1,),
                tlb_entries=(64,), tlb_assocs=(2,), tlb_full_max=64,
                references=60_000,
            )
            results.append(curves.icache[(4096, 4, 1)])
        assert results[0] == results[1]
