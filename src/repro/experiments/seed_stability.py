"""Seed stability of the Table 4 contrasts.

Synthetic workloads carry placement and phase randomness (a real
machine carries boot-time placement and scheduling randomness — the
paper's numbers are also one draw).  This experiment re-measures the
Ultrix-vs-Mach CPI contrast over several seeds and reports how robust
each headline claim is.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    WARMUP_FRACTION,
    format_table,
    suite,
    trace_references,
)
from repro.monitor.monster import Monster
from repro.trace.generator import generate_trace

DEFAULT_SEEDS = (1, 2, 3)


def run(seeds: tuple[int, ...] = DEFAULT_SEEDS) -> list[dict]:
    """Return per-workload seed-averaged OS contrasts."""
    monster = Monster(warmup_fraction=WARMUP_FRACTION)
    references = trace_references()
    rows = []
    for workload in suite():
        deltas = {"cpi": [], "tlb": [], "icache": [], "dcache_share": []}
        for seed in seeds:
            reports = {
                os_name: monster.measure(
                    generate_trace(workload, os_name, references, seed=seed)
                )
                for os_name in ("ultrix", "mach")
            }
            deltas["cpi"].append(reports["mach"].cpi - reports["ultrix"].cpi)
            deltas["tlb"].append(
                reports["mach"].components["tlb"] - reports["ultrix"].components["tlb"]
            )
            deltas["icache"].append(
                reports["mach"].components["icache"]
                - reports["ultrix"].components["icache"]
            )
            deltas["dcache_share"].append(
                reports["mach"].fractions["dcache"]
                - reports["ultrix"].fractions["dcache"]
            )
        rows.append(
            {
                "workload": workload,
                "seeds": len(seeds),
                "d_cpi_mean": round(float(np.mean(deltas["cpi"])), 3),
                "d_cpi_std": round(float(np.std(deltas["cpi"])), 3),
                "d_tlb_mean": round(float(np.mean(deltas["tlb"])), 3),
                "d_icache_mean": round(float(np.mean(deltas["icache"])), 3),
                "d_dcache_share": round(float(np.mean(deltas["dcache_share"])), 3),
            }
        )
    return rows


def main() -> None:
    """Print the seed-stability table (Mach minus Ultrix deltas)."""
    print("Seed stability of the OS contrast (Mach - Ultrix deltas, "
          f"{len(DEFAULT_SEEDS)} seeds)")
    print(format_table(run()))


if __name__ == "__main__":
    main()
