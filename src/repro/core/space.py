"""The configuration space of Table 5.

TLBs from 64 to 512 entries (1/2/4/8-way set-associative, plus fully
associative up to 64 entries) and caches from 2 to 32 Kbytes with
1/2/4/8-way associativity and 1-32 word lines.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator

from repro.areamodel.tlb_area import FULLY_ASSOCIATIVE
from repro.core.configs import CacheConfig, MemSystemConfig, TlbConfig
from repro.units import KB

TABLE5_TLB_ENTRIES = (64, 128, 256, 512)
TABLE5_TLB_ASSOCS = (1, 2, 4, 8)
TABLE5_TLB_FULL_MAX_ENTRIES = 64

TABLE5_CACHE_CAPACITIES = tuple(k * KB for k in (2, 4, 8, 16, 32))
TABLE5_CACHE_ASSOCS = (1, 2, 4, 8)
TABLE5_CACHE_LINES = (1, 2, 4, 8, 16, 32)

TABLE5_TLB_CONFIGS: tuple[TlbConfig, ...] = tuple(
    TlbConfig(entries, assoc)
    for entries in TABLE5_TLB_ENTRIES
    for assoc in TABLE5_TLB_ASSOCS
) + tuple(
    TlbConfig(entries, FULLY_ASSOCIATIVE)
    for entries in TABLE5_TLB_ENTRIES
    if entries <= TABLE5_TLB_FULL_MAX_ENTRIES
)


def enumerate_tlb_configs(
    entries: tuple[int, ...] = TABLE5_TLB_ENTRIES,
    assocs: tuple[int, ...] = TABLE5_TLB_ASSOCS,
    full_max_entries: int = TABLE5_TLB_FULL_MAX_ENTRIES,
) -> list[TlbConfig]:
    """TLB design points considered by the study."""
    configs = [TlbConfig(n, a) for n in entries for a in assocs if a <= n]
    configs.extend(
        TlbConfig(n, FULLY_ASSOCIATIVE) for n in entries if n <= full_max_entries
    )
    return configs


def enumerate_cache_configs(
    capacities: tuple[int, ...] = TABLE5_CACHE_CAPACITIES,
    lines: tuple[int, ...] = TABLE5_CACHE_LINES,
    assocs: tuple[int, ...] = TABLE5_CACHE_ASSOCS,
) -> list[CacheConfig]:
    """Cache design points considered by the study.

    Geometrically infeasible combinations (fewer lines than ways) are
    skipped.
    """
    configs = []
    for capacity, line_words, assoc in product(capacities, lines, assocs):
        if capacity // (line_words * 4) >= assoc:
            configs.append(CacheConfig(capacity, line_words, assoc))
    return configs


def enumerate_memory_systems(
    tlbs: list[TlbConfig] | None = None,
    icaches: list[CacheConfig] | None = None,
    dcaches: list[CacheConfig] | None = None,
    max_cache_assoc: int | None = None,
) -> Iterator[MemSystemConfig]:
    """Yield every TLB x I-cache x D-cache combination.

    Args:
        tlbs / icaches / dcaches: design points (Table 5 defaults).
        max_cache_assoc: optional cap on cache associativity — the
            paper's Table 7 restricts caches to 1- or 2-way because
            higher associativities may not meet access-time goals.
    """
    tlbs = tlbs if tlbs is not None else enumerate_tlb_configs()
    icaches = icaches if icaches is not None else enumerate_cache_configs()
    dcaches = dcaches if dcaches is not None else enumerate_cache_configs()
    if max_cache_assoc is not None:
        icaches = [c for c in icaches if c.assoc <= max_cache_assoc]
        dcaches = [c for c in dcaches if c.assoc <= max_cache_assoc]
    for tlb in tlbs:
        for icache in icaches:
            for dcache in dcaches:
                yield MemSystemConfig(tlb=tlb, icache=icache, dcache=dcache)
