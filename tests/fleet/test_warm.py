"""Fleet trace warm-up: every shard pre-generates its ring's entries.

Drives the real ``FleetSupervisor.warm_traces`` fan-out (forked
shards, ``POST /v1/warm_traces``) against a shared on-disk trace
cache, and asserts the contract the CLI flag rides on: after one
warm-up pass every assigned entry is published, and a second pass
publishes nothing — warm restarts never regenerate.
"""

import pytest

from repro.fleet.local import FleetSupervisor
from repro.fleet.ring import shard_key
from repro.trace import tracestore

pytestmark = [pytest.mark.fleet, pytest.mark.concurrency]

WARM_REFERENCES = 40_000
OS_NAMES = ("mach", "ultrix")
WORKLOADS = ("ousterhout",)


@pytest.fixture()
def plane(tmp_path, monkeypatch):
    # Set before start() so forked shards inherit the shared cache and
    # write compressed format-3 entries.
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    monkeypatch.setenv("REPRO_TRACE_COMPRESS", "zlib")
    return tmp_path / "traces"


@pytest.fixture()
def fleet(store, plane):
    supervisor = FleetSupervisor(store.root, nodes=2, replicas=1)
    supervisor.start()
    yield supervisor
    supervisor.stop()


class TestFleetWarmup:
    def test_warm_publishes_every_assigned_entry_once(self, fleet, plane):
        report = fleet.warm_traces(
            references=WARM_REFERENCES,
            workloads=WORKLOADS,
            os_names=OS_NAMES,
        )
        assert report["errors"] == []
        assert sorted(report["os_names"]) == sorted(OS_NAMES)
        # Every OS landed on the shard its ring position names.
        assigned = sorted(
            os_name
            for warmed in report["assignments"].values()
            for os_name in warmed
        )
        assert assigned == sorted(OS_NAMES)
        assert report["published"] == len(OS_NAMES) * len(WORKLOADS)
        assert report["entries"] == report["published"]

        for os_name in OS_NAMES:
            for workload in WORKLOADS:
                key = tracestore.key_for(
                    workload, os_name, WARM_REFERENCES, 1
                )
                assert tracestore.has(key), (workload, os_name)

        again = fleet.warm_traces(
            references=WARM_REFERENCES,
            workloads=WORKLOADS,
            os_names=OS_NAMES,
        )
        assert again["errors"] == []
        assert again["published"] == 0
        assert again["entries"] == len(OS_NAMES) * len(WORKLOADS)

    def test_assignments_follow_the_ring(self, fleet):
        report = fleet.warm_traces(
            references=WARM_REFERENCES,
            workloads=WORKLOADS,
            os_names=OS_NAMES,
        )
        for os_name in OS_NAMES:
            key = shard_key({
                "os": os_name,
                "max_cache_assoc": None,
                "max_access_time_ns": None,
            })
            expected = fleet.ring.preference(key, 1)
            for label, warmed in report["assignments"].items():
                if os_name in warmed:
                    assert label in expected
