"""Per-structure benefit curves, measured once and reused everywhere.

Like the paper, the allocation sweep does not simulate every candidate
system; it composes total CPI from independently measured curves:
I-cache and D-cache miss-ratio grids over the Table 5 space and a TLB
miss table split into user/kernel misses.  One synthetic trace per
(workload, OS) feeds single-pass stack simulations; results are cached
on disk so reruns (tests, benchmarks, the allocator) are cheap.

Set ``REPRO_SCALE`` to scale trace lengths (1.0 default; larger values
tighten estimates at the cost of runtime) and ``REPRO_CACHE_DIR`` to
move the cache (default ``.repro-cache`` under the working directory).
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.areamodel.tlb_area import FULLY_ASSOCIATIVE
from repro.core.configs import CacheConfig, TlbConfig
from repro.core.space import (
    TABLE5_CACHE_ASSOCS,
    TABLE5_CACHE_CAPACITIES,
    TABLE5_CACHE_LINES,
    TABLE5_TLB_ASSOCS,
    TABLE5_TLB_ENTRIES,
    TABLE5_TLB_FULL_MAX_ENTRIES,
)
from repro.memsim.multiconfig import cache_miss_ratio_grid, dedupe_consecutive
from repro.memsim.stackdist import (
    fully_associative_miss_split,
    set_associative_miss_split,
)
from repro.memsim.timing import DECSTATION_3100, simulate_system
from repro.trace.generator import generate_trace
from repro.units import PAGE_SHIFT, VPN_BITS

DEFAULT_REFERENCES = 700_000
DEFAULT_WARMUP = 0.4
CACHE_FORMAT_VERSION = 4


def scale() -> float:
    """The REPRO_SCALE multiplier for trace lengths."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def cache_dir() -> Path:
    """Directory for measurement caching (created on demand)."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro-cache"))


@dataclass
class StructureCurves:
    """Measured benefit data for one (workload, OS) pair.

    Attributes:
        workload / os_name: identity.
        instructions: instructions in the measured (post-warmup) window.
        loads_per_instr / stores_per_instr: data-reference rates.
        mapped_per_instr: TLB-translated references per instruction.
        other_cpi: the workload's non-memory interlock CPI.
        wb_stall_per_instr: write-buffer stall cycles per instruction,
            measured at the reference (DECstation-like) configuration.
        page_fault_per_instr: page-fault rate (the "Other" TLB service
            component of Figure 7).
        icache: (capacity, line_words, assoc) -> misses per ifetch.
        dcache: (capacity, line_words, assoc) -> misses per load.
        tlb: (entries, assoc) -> (user_misses, kernel_misses) per
            measured window, normalized per instruction via
            ``instructions``.
    """

    workload: str
    os_name: str
    instructions: int
    loads_per_instr: float
    stores_per_instr: float
    mapped_per_instr: float
    other_cpi: float
    wb_stall_per_instr: float
    page_fault_per_instr: float
    icache: dict = field(default_factory=dict)
    dcache: dict = field(default_factory=dict)
    tlb: dict = field(default_factory=dict)

    def icache_miss_ratio(self, config: CacheConfig) -> float:
        """Misses per instruction fetch for an I-cache design point."""
        return self.icache[(config.capacity_bytes, config.line_words, config.assoc)]

    def dcache_miss_ratio(self, config: CacheConfig) -> float:
        """Misses per load for a D-cache design point."""
        return self.dcache[(config.capacity_bytes, config.line_words, config.assoc)]

    def tlb_misses_per_instr(self, config: TlbConfig) -> tuple[float, float]:
        """(user, kernel) TLB misses per instruction for a design point."""
        user, kernel = self.tlb[(config.entries, config.assoc)]
        return user / self.instructions, kernel / self.instructions


def _cache_key(**kwargs) -> str:
    text = repr(sorted(kwargs.items())) + f"|v{CACHE_FORMAT_VERSION}"
    return hashlib.sha256(text.encode()).hexdigest()[:24]


def _load_cached(key: str):
    path = cache_dir() / f"{key}.pkl"
    if not path.exists():
        return None
    try:
        with open(path, "rb") as handle:
            return pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError):
        return None


def _store_cached(key: str, value) -> None:
    directory = cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{key}.pkl"
    tmp = path.with_suffix(".tmp")
    with open(tmp, "wb") as handle:
        pickle.dump(value, handle)
    tmp.replace(path)


def _tlb_table(
    trace,
    entries_list: tuple[int, ...],
    assocs: tuple[int, ...],
    full_max_entries: int,
    warm: int,
) -> dict:
    """Measure the TLB miss table with warmup-aware stack passes."""
    mapped_idx = np.flatnonzero(trace.mapped)
    vpns = trace.addresses[mapped_idx] >> PAGE_SHIFT
    ids = (trace.asids[mapped_idx].astype(np.int64) << VPN_BITS) | vpns
    kernel = trace.kernel[mapped_idx]
    count_from = int((mapped_idx < warm).sum())
    # Consecutive same-page references are guaranteed hits.
    deduped, kernel_d = dedupe_consecutive(ids, kernel)
    keep = np.empty(len(ids), dtype=bool)
    keep[0] = True
    np.not_equal(ids[1:], ids[:-1], out=keep[1:])
    deduped_from = int(keep[:count_from].sum())

    table: dict = {}
    max_assoc = max(assocs)
    # Set-associative points: one pass per distinct set count.
    set_counts = sorted({n // a for n in entries_list for a in assocs if a <= n})
    for n_sets in set_counts:
        misses, kernel_misses = set_associative_miss_split(
            deduped, n_sets, max_assoc, kernel_d, count_from=deduped_from
        )
        for assoc in assocs:
            entries = n_sets * assoc
            if entries in entries_list:
                total = int(misses[assoc - 1])
                k = int(kernel_misses[assoc - 1])
                table[(entries, assoc)] = (total - k, k)
    # Fully-associative points in a single stack pass.
    fa_sizes = [n for n in entries_list if n <= full_max_entries]
    if fa_sizes:
        misses, kernel_misses = fully_associative_miss_split(
            deduped, fa_sizes, kernel_d, count_from=deduped_from
        )
        for size, total, k in zip(fa_sizes, misses, kernel_misses):
            table[(size, FULLY_ASSOCIATIVE)] = (int(total) - int(k), int(k))
    return table


def measure_workload(
    workload: str,
    os_name: str,
    capacities: tuple[int, ...] = TABLE5_CACHE_CAPACITIES,
    lines: tuple[int, ...] = TABLE5_CACHE_LINES,
    assocs: tuple[int, ...] = TABLE5_CACHE_ASSOCS,
    tlb_entries: tuple[int, ...] = TABLE5_TLB_ENTRIES,
    tlb_assocs: tuple[int, ...] = TABLE5_TLB_ASSOCS,
    tlb_full_max: int = TABLE5_TLB_FULL_MAX_ENTRIES,
    references: int | None = None,
    warmup_fraction: float = DEFAULT_WARMUP,
    seed: int = 1,
    use_cache: bool = True,
) -> StructureCurves:
    """Measure all benefit curves for one (workload, OS) pair.

    Results are cached on disk keyed by every parameter, so repeated
    calls (from tests, benches and the allocator) cost one pickle load.
    """
    references = int(
        references if references is not None else DEFAULT_REFERENCES * scale()
    )
    key = _cache_key(
        kind="curves",
        workload=workload,
        os_name=os_name,
        capacities=capacities,
        lines=lines,
        assocs=assocs,
        tlb_entries=tlb_entries,
        tlb_assocs=tlb_assocs,
        tlb_full_max=tlb_full_max,
        references=references,
        warmup=warmup_fraction,
        seed=seed,
    )
    if use_cache:
        cached = _load_cached(key)
        if cached is not None:
            return cached

    trace = generate_trace(workload, os_name, references, seed=seed)
    warm = int(len(trace) * warmup_fraction)
    kinds = trace.kinds[warm:]
    instructions = int((kinds == 0).sum())
    loads = int((kinds == 1).sum())
    stores = int((kinds == 2).sum())
    mapped = int(trace.mapped[warm:].sum())

    ifetch_phys = trace.ifetch_physical()
    ifetch_warm = int((np.flatnonzero(trace.kinds == 0) < warm).sum())
    icache = cache_miss_ratio_grid(
        ifetch_phys,
        list(capacities),
        list(lines),
        list(assocs),
        warmup_fraction=ifetch_warm / max(len(ifetch_phys), 1),
    )

    load_phys = trace.load_physical()
    load_warm = int((np.flatnonzero(trace.kinds == 1) < warm).sum())
    dcache = cache_miss_ratio_grid(
        load_phys,
        list(capacities),
        list(lines),
        list(assocs),
        warmup_fraction=load_warm / max(len(load_phys), 1),
    )
    # Convert D-cache ratios from per-load basis used downstream: the
    # grid normalizes by counted references, which here are loads.

    tlb = _tlb_table(trace, tlb_entries, tlb_assocs, tlb_full_max, warm)

    reference_timing = simulate_system(
        trace, DECSTATION_3100, warmup_fraction=warmup_fraction
    )
    curves = StructureCurves(
        workload=workload,
        os_name=os_name,
        instructions=instructions,
        loads_per_instr=loads / instructions,
        stores_per_instr=stores / instructions,
        mapped_per_instr=mapped / instructions,
        other_cpi=trace.other_cpi,
        wb_stall_per_instr=reference_timing.cpi_components["write_buffer"],
        page_fault_per_instr=trace.page_faults / max(trace.instructions, 1),
        icache=icache,
        dcache=dcache,
        tlb=tlb,
    )
    if use_cache:
        _store_cached(key, curves)
    return curves


def measure_suite(
    os_name: str,
    workloads: tuple[str, ...] | None = None,
    **kwargs,
) -> list[StructureCurves]:
    """Measure every workload of the suite under one OS."""
    from repro.workloads.registry import workload_names

    names = workloads if workloads is not None else tuple(workload_names())
    return [measure_workload(name, os_name, **kwargs) for name in names]


@dataclass
class BenefitCurves:
    """Suite-averaged benefit curves (what the allocator consumes)."""

    os_name: str
    per_workload: list[StructureCurves]

    def icache_miss_ratio(self, config: CacheConfig) -> float:
        """Suite-average I-cache misses per instruction fetch."""
        return float(
            np.mean([c.icache_miss_ratio(config) for c in self.per_workload])
        )

    def dcache_miss_ratio(self, config: CacheConfig) -> float:
        """Suite-average D-cache misses per load."""
        return float(
            np.mean([c.dcache_miss_ratio(config) for c in self.per_workload])
        )

    def tlb_misses_per_instr(self, config: TlbConfig) -> tuple[float, float]:
        """Suite-average (user, kernel) TLB misses per instruction."""
        pairs = [c.tlb_misses_per_instr(config) for c in self.per_workload]
        return (
            float(np.mean([p[0] for p in pairs])),
            float(np.mean([p[1] for p in pairs])),
        )

    @property
    def loads_per_instr(self) -> float:
        """Suite-average loads per instruction."""
        return float(np.mean([c.loads_per_instr for c in self.per_workload]))

    @property
    def other_cpi(self) -> float:
        """Suite-average non-memory interlock CPI."""
        return float(np.mean([c.other_cpi for c in self.per_workload]))

    @property
    def wb_stall_per_instr(self) -> float:
        """Suite-average write-buffer stall CPI."""
        return float(np.mean([c.wb_stall_per_instr for c in self.per_workload]))

    @classmethod
    def for_suite(cls, os_name: str, **kwargs) -> "BenefitCurves":
        """Measure (or load cached) curves for the whole suite."""
        return cls(os_name=os_name, per_workload=measure_suite(os_name, **kwargs))
