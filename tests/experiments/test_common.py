"""Tests for the shared experiment infrastructure."""

import pytest

from repro.experiments import common


class TestFormatTable:
    def test_aligned_columns(self):
        rows = [{"a": 1, "bb": "x"}, {"a": 100, "bb": "yyyy"}]
        text = common.format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4  # header, divider, two rows
        assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2

    def test_empty(self):
        assert common.format_table([]) == "(no rows)"

    def test_explicit_column_order(self):
        rows = [{"z": 1, "a": 2}]
        text = common.format_table(rows, columns=["a", "z"])
        assert text.splitlines()[0].startswith("a")

    def test_missing_cells_render_empty(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = common.format_table(rows, columns=["a", "b"])
        assert "3" in text


class TestScaling:
    def test_trace_references_honours_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert common.trace_references() == pytest.approx(350_000, rel=0.01)

    def test_projection_factor(self):
        factor = common.projection_factor(1_000_000)
        assert factor == pytest.approx(common.NOMINAL_RUN_INSTRUCTIONS / 1e6)
        assert common.projection_factor(0) > 0  # guards divide-by-zero

    def test_suite_order_matches_paper(self):
        assert common.suite() == [
            "mpeg_play", "mab", "jpeg_play", "ousterhout", "IOzone", "video_play",
        ]

    def test_get_trace_memoized(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        common.get_trace.cache_clear()
        a = common.get_trace("IOzone", "ultrix")
        b = common.get_trace("IOzone", "ultrix")
        assert a is b
        common.get_trace.cache_clear()

    def test_get_trace_key_includes_scale(self, monkeypatch):
        """Regression: the memo key must include the REPRO_SCALE-derived
        reference count, or a scale change mid-process silently replays
        a trace of the old length."""
        monkeypatch.setenv("REPRO_SCALE", "0.2")
        common.get_trace.cache_clear()
        small = common.get_trace("mpeg_play", "ultrix")

        monkeypatch.setenv("REPRO_SCALE", "0.4")
        rescaled = common.get_trace("mpeg_play", "ultrix")
        assert rescaled is not small
        assert len(rescaled) > len(small)

        # Flipping back still hits the memo for the original scale.
        monkeypatch.setenv("REPRO_SCALE", "0.2")
        assert common.get_trace("mpeg_play", "ultrix") is small
        common.get_trace.cache_clear()
