"""Tests for the Wada-style access-time extension."""

from repro.areamodel.access_time import cache_access_time_ns, tlb_access_time_ns
from repro.units import KB


class TestCacheAccessTime:
    def test_positive_and_reasonable(self):
        t = cache_access_time_ns(8 * KB, 4, 1)
        assert 1.0 < t < 20.0

    def test_grows_with_capacity(self):
        times = [cache_access_time_ns(c * KB, 4, 1) for c in (2, 8, 32)]
        assert times == sorted(times)

    def test_grows_with_associativity(self):
        assert cache_access_time_ns(8 * KB, 4, 8) > cache_access_time_ns(8 * KB, 4, 1)


class TestTlbAccessTime:
    def test_large_fa_tlb_slow(self):
        # Section 5.2: large fully-associative TLBs have excessively
        # long access times — the reason the paper studies SA TLBs.
        fa = tlb_access_time_ns(512, "full")
        sa = tlb_access_time_ns(512, 8)
        assert fa > sa

    def test_small_fa_tlb_fine(self):
        assert tlb_access_time_ns(32, "full") < tlb_access_time_ns(512, "full")
