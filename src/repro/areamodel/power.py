"""First-order power model for on-chip memory structures.

The ISCA paper budgets die *area*; the natural second budget on a
modern die is power.  This module provides a deliberately first-order
dynamic-power estimate in the same spirit as
:mod:`repro.areamodel.access_time`: per-access energy grows with the
bits swung on a lookup (all ways of one set read in parallel, plus tag
compares), CAM TLBs pay a match-line term across every entry, and a
fixed leakage-like floor scales with storage bits.  The absolute scale
is nominal milliwatts at a fixed reference frequency — the allocator
only ever *ranks* configurations and tests *budget* feasibility, so
relative ordering is what matters, exactly how the access-time
extension is used.

Monotonicity properties the optimizer relies on (held by tests):
power is non-decreasing in capacity/entries at fixed geometry, and
higher associativity costs more power at fixed capacity (more ways
read per access; CAMs most of all).
"""

from __future__ import annotations

from repro.areamodel.cache_area import CacheGeometry
from repro.areamodel.tlb_area import TlbGeometry

# Nominal coefficients (mW at the reference frequency).
_BASE_MW = 0.8
_DYNAMIC_MW_PER_KBIT_READ = 1.6
"""Per-access read energy: all ways of one set swing their bitlines."""
_TAG_COMPARE_MW_PER_WAY = 0.35
_DECODE_MW_PER_KROW = 0.5
_LEAKAGE_MW_PER_KBIT = 0.012
"""Storage floor: retention/leakage proportional to total bits."""
_CAM_MATCH_MW_PER_KENTRY = 9.0
"""CAM TLBs drive every match line on every lookup."""


def cache_power_mw(capacity_bytes: int, line_words: int, assoc: int) -> float:
    """First-order per-access power estimate for a cache, in mW."""
    geom = CacheGeometry.from_config(capacity_bytes, line_words, assoc)
    bits_read = geom.bits_per_line * geom.assoc
    dynamic = _DYNAMIC_MW_PER_KBIT_READ * bits_read / 1024.0
    compare = _TAG_COMPARE_MW_PER_WAY * geom.assoc
    decode = _DECODE_MW_PER_KROW * geom.sets / 1024.0
    leakage = _LEAKAGE_MW_PER_KBIT * geom.storage_bits / 1024.0
    return _BASE_MW + dynamic + compare + decode + leakage


def tlb_power_mw(entries: int, assoc: int | str) -> float:
    """First-order per-access power estimate for a TLB, in mW."""
    geom = TlbGeometry.from_config(entries, assoc)
    leakage = _LEAKAGE_MW_PER_KBIT * geom.storage_bits / 1024.0
    if geom.fully_associative:
        match = _CAM_MATCH_MW_PER_KENTRY * geom.entries / 1024.0
        read = _DYNAMIC_MW_PER_KBIT_READ * geom.bits_per_entry / 1024.0
        return _BASE_MW + match + read + leakage
    bits_read = geom.bits_per_entry * geom.assoc
    dynamic = _DYNAMIC_MW_PER_KBIT_READ * bits_read / 1024.0
    compare = _TAG_COMPARE_MW_PER_WAY * geom.assoc
    decode = _DECODE_MW_PER_KROW * geom.sets / 1024.0
    return _BASE_MW + dynamic + compare + decode + leakage
