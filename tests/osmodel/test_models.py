"""Structural tests of the Ultrix and Mach OS models.

These check the *mechanisms* the paper identifies, not tuned numbers:
where code runs, what is mapped, and how long the invocation paths are.
"""

import numpy as np
import pytest

from repro.memsim.types import AccessKind
from repro.osmodel.context import GenerationContext
from repro.osmodel.mach import (
    EMU_CALL_INSTRUCTIONS,
    IPC_SEND_INSTRUCTIONS,
    KTRAP_INSTRUCTIONS,
    SERVER_DISPATCH_INSTRUCTIONS,
    EMU_RETURN_INSTRUCTIONS,
    IPC_REPLY_INSTRUCTIONS,
    SERVER_REPLY_INSTRUCTIONS,
    MachModel,
)
from repro.osmodel.services import SERVICE_CATALOG, lookup_service
from repro.osmodel.ultrix import (
    RETURN_INSTRUCTIONS,
    TRAP_INSTRUCTIONS,
    UltrixModel,
)
from repro.workloads.registry import get_workload


@pytest.fixture
def workload():
    return get_workload("mpeg_play")


def invoke_once(model, service_name="read"):
    """Run one service invocation and return the resulting trace."""
    ctx = GenerationContext(seed=5, target_references=10**9)
    model._setup_emitters(ctx)
    model.invoke_service(ctx, lookup_service(service_name))
    return ctx.builder.build()


class TestPathLengths:
    def test_ultrix_round_trip_under_100_instructions(self):
        # Section 4.1: the Ultrix call+return path is < 100 instructions.
        assert TRAP_INSTRUCTIONS + RETURN_INSTRUCTIONS < 100

    def test_mach_call_path_about_1000_instructions(self):
        call = (
            KTRAP_INSTRUCTIONS
            + EMU_CALL_INSTRUCTIONS
            + IPC_SEND_INSTRUCTIONS
            + SERVER_DISPATCH_INSTRUCTIONS
        )
        assert 900 <= call <= 1100

    def test_mach_return_path_about_850_instructions(self):
        ret = (
            SERVER_REPLY_INSTRUCTIONS
            + IPC_REPLY_INSTRUCTIONS
            + EMU_RETURN_INSTRUCTIONS
        )
        assert 750 <= ret <= 950

    def test_mach_invocation_executes_more_instructions(self, workload):
        ultrix = invoke_once(UltrixModel(workload, seed=1))
        mach = invoke_once(MachModel(workload, seed=1))
        assert mach.instructions > ultrix.instructions + 1000


class TestAddressSpaceStructure:
    def test_ultrix_has_no_server_spaces(self, workload):
        model = UltrixModel(workload, seed=1)
        assert "bsd_server" not in model.spaces
        assert "pager" not in model.spaces

    def test_mach_has_server_and_pager(self, workload):
        model = MachModel(workload, seed=1)
        assert "bsd_server" in model.spaces
        assert "pager" in model.spaces
        assert "emu_text" in model.spaces["task"].segments

    def test_distinct_asids(self, workload):
        model = MachModel(workload, seed=1)
        asids = [space.asid for space in model.spaces.values()]
        assert len(asids) == len(set(asids))
        assert model.spaces["kernel"].asid == 0

    def test_kernel_text_unmapped_both_systems(self, workload):
        for cls in (UltrixModel, MachModel):
            model = cls(workload, seed=1)
            assert not model.spaces["kernel"].segment("text").mapped

    def test_mach_kernel_mapped_pool_larger(self, workload):
        # Section 4.2: more address spaces mean more PTEs and IPC state
        # held in mapped kernel memory.
        assert (
            MachModel(workload, seed=1).kernel_mapped_pages()
            > UltrixModel(workload, seed=1).kernel_mapped_pages()
        )


class TestServiceInvocationTraces:
    def test_ultrix_service_code_is_unmapped_kernel(self, workload):
        trace = invoke_once(UltrixModel(workload, seed=1))
        fetch_mask = trace.kinds == AccessKind.IFETCH
        unmapped_fetches = (~trace.mapped[fetch_mask]).mean()
        assert unmapped_fetches > 0.95

    def test_mach_service_code_mostly_mapped(self, workload):
        # Emulation library + server code run mapped at user level.
        trace = invoke_once(MachModel(workload, seed=1))
        fetch_mask = trace.kinds == AccessKind.IFETCH
        mapped_fetches = trace.mapped[fetch_mask].mean()
        assert mapped_fetches > 0.5

    def test_mach_invocation_touches_more_address_spaces(self, workload):
        ultrix = invoke_once(UltrixModel(workload, seed=1))
        mach = invoke_once(MachModel(workload, seed=1))
        assert len(np.unique(mach.asids)) > len(np.unique(ultrix.asids))

    def test_mach_invocation_touches_more_mapped_pages(self, workload):
        ultrix = invoke_once(UltrixModel(workload, seed=1))
        mach = invoke_once(MachModel(workload, seed=1))

        def mapped_pages(trace):
            keys = (trace.asids[trace.mapped].astype(np.int64) << 20) | (
                trace.addresses[trace.mapped] >> 12
            )
            return len(np.unique(keys))

        assert mapped_pages(mach) > mapped_pages(ultrix)

    def test_ultrix_copies_payload_twice_per_byte(self, workload):
        """The Ultrix read() path copies: loads from the buffer cache
        and stores to the user buffer, word by word."""
        trace = invoke_once(UltrixModel(workload, seed=1), "read")
        words = workload.payload_bytes // 4
        assert trace.stores >= words * 0.8

    def test_mach_moves_payload_out_of_line(self, workload):
        """Mach remaps instead of copying twice: far fewer stores per
        payload byte than Ultrix."""
        ultrix = invoke_once(UltrixModel(workload, seed=1), "read")
        mach = invoke_once(MachModel(workload, seed=1), "read")
        assert mach.stores < ultrix.stores

    def test_non_copy_service_moves_no_payload(self, workload):
        trace = invoke_once(UltrixModel(workload, seed=1), "gettimeofday")
        assert trace.stores < workload.payload_bytes // 8


class TestFaultAndDisplayPaths:
    def test_mach_fault_path_runs_pager_space(self, workload):
        model = MachModel(workload, seed=1)
        ctx = GenerationContext(seed=5, target_references=10**9)
        model._setup_emitters(ctx)
        model.handle_page_fault(ctx)
        trace = ctx.builder.build()
        pager_asid = model.spaces["pager"].asid
        assert (trace.asids == pager_asid).any()

    def test_ultrix_fault_stays_in_kernel(self, workload):
        model = UltrixModel(workload, seed=1)
        ctx = GenerationContext(seed=5, target_references=10**9)
        model._setup_emitters(ctx)
        model.handle_page_fault(ctx)
        trace = ctx.builder.build()
        fetch_mask = trace.kinds == AccessKind.IFETCH
        assert (~trace.mapped[fetch_mask]).all()

    def test_x_interaction_runs_xserver(self, workload):
        for cls in (UltrixModel, MachModel):
            model = cls(workload, seed=1)
            ctx = GenerationContext(seed=5, target_references=10**9)
            model._setup_emitters(ctx)
            model.x_interaction(ctx)
            trace = ctx.builder.build()
            x_asid = model.spaces["xserver"].asid
            assert (trace.asids == x_asid).any()


class TestServiceCatalog:
    def test_catalog_contents(self):
        assert "read" in SERVICE_CATALOG
        assert SERVICE_CATALOG["read"].copies_payload
        assert not SERVICE_CATALOG["stat"].copies_payload

    def test_distinct_body_offsets(self):
        offsets = [s.body_offset for s in SERVICE_CATALOG.values()]
        assert len(offsets) == len(set(offsets))

    def test_lookup_error(self):
        with pytest.raises(KeyError, match="unknown service"):
            lookup_service("teleport")
