"""Reference set-associative cache simulator.

This is the readable, per-access simulator used to validate the fast
stack-distance sweeps and to run one-off configurations (e.g. the
DECstation 3100 off-chip caches of Table 3).  It models a physically
indexed, physically tagged cache — matching the R2000-based systems in
the paper, where all address spaces share the cache and interference
between user, kernel and server code is part of the measured effect.

Write handling follows the DECstation 3100: write-through with no
write-allocate by default (stores update the cache only on hit and are
passed to the write buffer).  Write-back/write-allocate variants are
provided for completeness and exercised by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.memsim.replacement import ReplacementPolicy, make_policy
from repro.memsim.types import AccessKind
from repro.units import WORD_BYTES, is_pow2, log2i


@dataclass
class CacheResult:
    """Aggregate outcome of a cache simulation.

    Attributes:
        accesses: total references presented to the cache.
        misses: references that missed (for no-write-allocate caches,
            store misses are counted here but do not fill the cache).
        read_misses: ifetch + load misses only — the component that
            stalls the processor in the paper's CPI model.
        writebacks: dirty lines evicted (write-back caches only).
        miss_flags: optional per-access boolean miss array.
    """

    accesses: int = 0
    misses: int = 0
    read_misses: int = 0
    writebacks: int = 0
    miss_flags: np.ndarray | None = None

    @property
    def miss_ratio(self) -> float:
        """Misses per access (0.0 for an empty simulation)."""
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """A set-associative cache with configurable geometry and policies.

    Args:
        capacity_bytes: total data capacity (power of two).
        line_words: line size in 4-byte words (power of two).
        assoc: set associativity, 1 for direct-mapped.
        policy: replacement policy name ('lru', 'fifo', 'random').
        write_back: True for write-back, False for write-through.
        write_allocate: whether store misses allocate a line.
        seed: seed for the random replacement policy.
    """

    def __init__(
        self,
        capacity_bytes: int,
        line_words: int,
        assoc: int,
        policy: str = "lru",
        write_back: bool = False,
        write_allocate: bool = False,
        seed: int = 0,
    ):
        if not (is_pow2(capacity_bytes) and is_pow2(line_words) and is_pow2(assoc)):
            raise ConfigurationError("cache geometry must use powers of two")
        line_bytes = line_words * WORD_BYTES
        lines = capacity_bytes // line_bytes
        if lines < assoc:
            raise ConfigurationError(
                f"{capacity_bytes}B / {line_bytes}B lines cannot hold {assoc} ways"
            )
        self.capacity_bytes = capacity_bytes
        self.line_bytes = line_bytes
        self.line_words = line_words
        self.assoc = assoc
        self.sets = lines // assoc
        self.write_back = write_back
        self.write_allocate = write_allocate
        self._offset_bits = log2i(line_bytes)
        self._index_bits = log2i(self.sets)
        self._set_mask = self.sets - 1
        self._sets: list[ReplacementPolicy] = [
            make_policy(policy, assoc, seed=seed + i) for i in range(self.sets)
        ]
        self._dirty: list[set[int]] = [set() for _ in range(self.sets)]
        self.result = CacheResult()

    def line_id(self, address: int) -> int:
        """Map a byte address to its global line identifier."""
        return address >> self._offset_bits

    def set_index(self, address: int) -> int:
        """Map a byte address to its set index."""
        return (address >> self._offset_bits) & self._set_mask

    def access(self, address: int, kind: AccessKind = AccessKind.LOAD) -> bool:
        """Present one reference; returns True on hit.

        Misses are recorded in :attr:`result`.  Store misses on a
        no-write-allocate cache bypass the array (no fill).
        """
        line = address >> self._offset_bits
        set_index = line & self._set_mask
        tag = line >> self._index_bits
        policy = self._sets[set_index]
        dirty = self._dirty[set_index]

        is_store = kind == AccessKind.STORE
        resident_before = set(policy.contents())
        hit = tag in resident_before

        self.result.accesses += 1
        if hit:
            policy.access(tag)
            if is_store and self.write_back:
                dirty.add(tag)
            return True

        self.result.misses += 1
        if not is_store:
            self.result.read_misses += 1
        if is_store and not self.write_allocate:
            return False

        policy.access(tag)
        resident_after = set(policy.contents())
        evicted = resident_before - resident_after
        for victim in evicted:
            if victim in dirty:
                dirty.discard(victim)
                self.result.writebacks += 1
        if is_store and self.write_back:
            dirty.add(tag)
        return False

    def simulate(
        self,
        addresses: np.ndarray,
        kinds: np.ndarray | None = None,
        record_flags: bool = False,
    ) -> CacheResult:
        """Run a whole reference stream through the cache.

        Args:
            addresses: byte addresses (any integer dtype).
            kinds: optional per-access :class:`AccessKind` values; all
                loads when omitted.
            record_flags: store a per-access miss flag array on the result.

        Returns:
            The accumulated :class:`CacheResult` (also kept on ``self``).
        """
        flags = np.zeros(len(addresses), dtype=bool) if record_flags else None
        if kinds is None:
            for i, addr in enumerate(addresses):
                hit = self.access(int(addr), AccessKind.LOAD)
                if flags is not None:
                    flags[i] = not hit
        else:
            for i, (addr, kind) in enumerate(zip(addresses, kinds)):
                hit = self.access(int(addr), AccessKind(int(kind)))
                if flags is not None:
                    flags[i] = not hit
        if flags is not None:
            self.result.miss_flags = flags
        return self.result

    def contents(self) -> list[list[int]]:
        """Resident tags per set (for tests and debugging)."""
        return [policy.contents() for policy in self._sets]
