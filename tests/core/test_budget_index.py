"""Differential tests: the budget index vs the brute-force ranking.

The :class:`~repro.core.allocator.BudgetIndex` answers point, batch
and Pareto queries without scanning the grid; these tests hold it
bit-identical to :func:`rank_priced` (itself held bit-identical to
``Allocator._rank_reference``) over adversarial budgets — random
sweeps, exact entry areas, exact feasibility thresholds, and their
one-ULP neighbours on either side, under both OS models.
"""

import numpy as np
import pytest

from repro.core.allocator import (
    Allocator,
    batch_best_indexed,
    pareto_indexed,
    rank_indexed,
    rank_priced,
)
from repro.core.measure import measure_workload
from repro.core.space import enumerate_cache_configs, enumerate_tlb_configs
from repro.errors import BudgetError
from repro.service.engine import pareto_frontier
from repro.units import KB

SMALL_GRID = dict(
    capacities=(2 * KB, 4 * KB, 8 * KB),
    lines=(4, 8),
    assocs=(1, 2),
    tlb_entries=(64, 128),
    tlb_assocs=(1, 2),
    tlb_full_max=64,
    references=60_000,
)


@pytest.fixture(scope="module", params=["mach", "ultrix"])
def priced(request):
    curves = measure_workload("ousterhout", request.param, **SMALL_GRID)
    caches = enumerate_cache_configs(
        capacities=SMALL_GRID["capacities"],
        lines=SMALL_GRID["lines"],
        assocs=SMALL_GRID["assocs"],
    )
    return Allocator(curves).price(
        tlbs=enumerate_tlb_configs(
            entries=SMALL_GRID["tlb_entries"],
            assocs=SMALL_GRID["tlb_assocs"],
            full_max_entries=SMALL_GRID["tlb_full_max"],
        ),
        icaches=caches,
        dcaches=caches,
    )


def _adversarial_budgets(priced, seed=7, n_random=120):
    """Random budgets plus every exact edge the index could get wrong."""
    rng = np.random.default_rng(seed)
    lo = 0.5 * priced.min_area()
    hi = 1.2 * float(priced.area_grid.max())
    budgets = list(rng.uniform(lo, hi, n_random))
    # Exact entry areas and exact index thresholds are the boundary
    # cases; their one-ULP neighbours catch any <= vs < slip.
    edges = np.concatenate(
        [np.unique(priced.area_grid), np.unique(priced.budget_index.thresholds)]
    )
    edges = rng.permutation(edges)[:40]
    for edge in edges.tolist():
        budgets.extend(
            [edge, np.nextafter(edge, -np.inf), np.nextafter(edge, np.inf)]
        )
    return budgets


def _rows(allocations):
    return [(a.config, a.area_rbe, a.cpi) for a in allocations]


class TestRankIndexed:
    def test_full_ranking_matches_reference(self, priced):
        for budget in _adversarial_budgets(priced, n_random=40):
            try:
                expected = rank_priced(priced, budget)
            except BudgetError:
                with pytest.raises(BudgetError):
                    rank_indexed(priced, budget)
                continue
            assert _rows(rank_indexed(priced, budget)) == _rows(expected)

    def test_top1_matches_reference(self, priced):
        for budget in _adversarial_budgets(priced, seed=11):
            try:
                expected = rank_priced(priced, budget, limit=1)
            except BudgetError:
                with pytest.raises(BudgetError):
                    rank_indexed(priced, budget, limit=1)
                continue
            assert _rows(rank_indexed(priced, budget, limit=1)) == _rows(expected)

    def test_limited_ranking_matches_reference(self, priced):
        for budget in _adversarial_budgets(priced, seed=13, n_random=25):
            for limit in (2, 5, 17):
                try:
                    expected = rank_priced(priced, budget, limit=limit)
                except BudgetError:
                    continue
                got = rank_indexed(priced, budget, limit=limit)
                assert _rows(got) == _rows(expected)


class TestBatchBestIndexed:
    def test_batch_equals_per_point_loop(self, priced):
        budgets = _adversarial_budgets(priced, seed=23)
        batched = batch_best_indexed(priced, budgets)
        for budget, got in zip(budgets, batched):
            try:
                expected = rank_priced(priced, budget, limit=1)
            except BudgetError:
                expected = []
            assert _rows(got) == _rows(expected)

    def test_empty_batch(self, priced):
        assert batch_best_indexed(priced, []) == []


class TestParetoIndexed:
    def test_unconstrained_frontier_matches_reference(self, priced):
        everything = rank_priced(priced, float(priced.area_grid.max()))
        expected = pareto_frontier(everything)
        assert _rows(pareto_indexed(priced)) == _rows(expected)

    def test_capped_frontier_matches_reference(self, priced):
        for budget in _adversarial_budgets(priced, seed=29, n_random=30):
            try:
                ranked = rank_priced(priced, budget)
            except BudgetError:
                with pytest.raises(BudgetError):
                    pareto_indexed(priced, budget)
                continue
            expected = pareto_frontier(ranked)
            assert _rows(pareto_indexed(priced, budget)) == _rows(expected)

    def test_cap_above_all_thresholds_is_the_cached_frontier(self, priced):
        cap = float(priced.area_grid.max()) * 2
        assert _rows(pareto_indexed(priced, cap)) == _rows(pareto_indexed(priced))


class TestIndexInternals:
    def test_thresholds_reproduce_feasibility_exactly(self, priced):
        """Each entry's threshold is the minimal budget at which the
        reference ``budget_left`` arithmetic admits it."""
        index = priced.budget_index
        rng = np.random.default_rng(31)
        sample = rng.choice(index.size, size=min(200, index.size), replace=False)
        n_d = len(priced.dcache_keys)
        n_i = len(priced.icache_keys)
        for flat in sample.tolist():
            t, rem = divmod(flat, n_i * n_d)
            i, d = divmod(rem, n_d)
            thr = index.thresholds[flat]
            for budget in (thr, np.nextafter(thr, -np.inf)):
                left = (budget - priced.t_area[t]) - priced.i_area[i]
                feasible = left >= 0 and priced.d_area[d] <= left
                assert feasible == (budget >= thr)

    def test_index_is_cached_per_space(self, priced):
        assert priced.budget_index is priced.budget_index
