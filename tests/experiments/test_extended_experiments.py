"""Tests for the extended experiments (D-cache study, seed stability)."""

import pytest


@pytest.fixture(scope="module", autouse=True)
def _small_scale(tmp_path_factory):
    import os

    old_scale = os.environ.get("REPRO_SCALE")
    old_cache = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_SCALE"] = "0.15"
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("ext-cache"))
    from repro.experiments import common

    common.get_trace.cache_clear()
    yield
    common.get_trace.cache_clear()
    for key, value in (("REPRO_SCALE", old_scale), ("REPRO_CACHE_DIR", old_cache)):
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value


class TestDcacheStudy:
    def test_section_5_3_claims(self):
        from repro.experiments import dcache_study

        ultrix = {r["capacity_kb"]: r for r in dcache_study.run("ultrix")["miss_ratio"]}
        mach = {r["capacity_kb"]: r for r in dcache_study.run("mach")["miss_ratio"]}
        # Small-cache D miss ratios comparable across OSes (the paper:
        # Mach higher for small caches, but the gap is modest compared
        # to the I-cache gap).
        assert mach[2]["4w"] < 3 * ultrix[2]["4w"]
        # D-cache CPI rises for long lines (pollution beyond ~4-8 words
        # with the paper's penalty model), under both OSes.
        for panels in (dcache_study.run("ultrix"), dcache_study.run("mach")):
            cpi8 = {r["capacity_kb"]: r for r in panels["cpi"]}[8]
            best_line = min((v, k) for k, v in cpi8.items() if k != "capacity_kb")[1]
            assert best_line in ("2w", "4w", "8w")
            assert cpi8["32w"] > cpi8[best_line]

    def test_grids_cover_space(self):
        from repro.experiments import dcache_study

        panels = dcache_study.run("mach")
        assert len(panels["miss_ratio"]) == 5
        assert len(panels["cpi"]) == 5


class TestSeedStability:
    def test_tlb_contrast_positive_across_seeds(self):
        from repro.experiments import seed_stability

        rows = seed_stability.run(seeds=(1, 2))
        assert len(rows) == 6
        # The TLB contrast (Mach minus Ultrix) is positive for every
        # workload even when averaged over seeds.
        assert all(r["d_tlb_mean"] > 0 for r in rows)

    def test_icache_contrast_positive_on_average(self):
        from repro.experiments import seed_stability

        rows = seed_stability.run(seeds=(1, 2))
        mean_delta = sum(r["d_icache_mean"] for r in rows) / len(rows)
        assert mean_delta > 0
