"""Open-loop load generator for the query service.

Closed-loop clients (a fixed pool of workers, each waiting for its
answer before asking again) cannot see queueing collapse: when the
server slows down, a closed loop *slows its own offered rate* to
match, so tail latency looks flat right up to the cliff.  An
**open-loop** generator fires request *i* at the scheduled instant
``t0 + i/rate`` whether or not earlier answers came back, and measures
latency **from the scheduled fire time** — exactly the waiting time a
real arrival process would experience.  Past saturation the measured
tails grow without bound instead of flattering the server, which is
what makes tail-latency-vs-offered-load curves honest (and makes
graceful shedding visible as a rising 429 share with *bounded* 200
tails).

Implementation notes:

* raw non-blocking sockets on one ``selectors`` loop — an
  ``http.client`` round-trip costs ~150 us of client CPU, which on a
  small host saturates the *generator* long before the server; the
  hand-rolled path keeps per-request client cost low enough to offer
  2x the server's capacity from the same core;
* a fixed fleet of keep-alive connections; each scheduled request is
  assigned round-robin and pipelined onto its connection (bounded
  depth), so offered load keeps arriving even while answers are in
  flight — the open-loop property;
* responses are parsed with a minimal state machine (status line +
  ``Content-Length`` / ``Connection: close``), statuses and latencies
  recorded per request;
* a closed-loop mode (``rate=None``) keeps every connection at depth 1
  and measures sustained capacity — used to find saturation before
  sweeping offered rates around it.

Shared by ``benchmarks/bench_service.py`` (the
``latency_vs_offered_load`` section), the overload burst test, and the
CI smoke phase; also runnable standalone::

    python benchmarks/loadgen.py --base http://127.0.0.1:8023 \
        --rate 2000 --duration 5 --connections 8
"""

from __future__ import annotations

import argparse
import json
import selectors
import socket
import time

DEFAULT_CONNECTIONS = 8
DEFAULT_PIPELINE_DEPTH = 64
RECV_CHUNK = 262144


def percentile(sorted_values: list[float], q: float) -> float | None:
    """Nearest-rank percentile of an already-sorted list."""
    if not sorted_values:
        return None
    index = max(0, min(len(sorted_values) - 1,
                       int(q * len(sorted_values) + 0.5) - 1))
    return sorted_values[index]


def _parse_base(base_url: str) -> tuple[str, int]:
    import urllib.parse

    parsed = urllib.parse.urlparse(base_url)
    return parsed.hostname or "127.0.0.1", parsed.port or 80


def build_post(path: str, body: bytes,
               content_type: str = "application/json") -> bytes:
    """One pre-rendered keep-alive POST, ready to write verbatim."""
    return (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: loadgen\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"\r\n"
    ).encode() + body


class _Response:
    """Minimal parse state for one pipelined response."""

    __slots__ = ("status", "headers_done", "body_remaining", "retry_after",
                 "body")

    def __init__(self):
        self.status = 0
        self.headers_done = False
        self.body_remaining = 0
        self.retry_after = False
        self.body = bytearray()


class _GenConn:
    """One generator connection: queued sends, in-order responses."""

    __slots__ = ("sock", "fd", "outbuf", "inbuf", "inflight", "cur",
                 "depth", "alive", "events", "close_hint")

    def __init__(self, host: str, port: int):
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.sock.connect((host, port))
        self.sock.setblocking(False)
        self.fd = self.sock.fileno()
        self.outbuf = bytearray()
        self.inbuf = bytearray()
        self.inflight: list = []  # [scheduled_t, payload_index] FIFO
        self.cur: _Response | None = None
        self.depth = 0
        self.alive = True
        self.events = 0
        self.close_hint = False


class OpenLoopResult(dict):
    """Plain dict of the run's numbers (JSON-ready); attribute sugar."""

    __getattr__ = dict.__getitem__


def run_load(
    base_url: str,
    payloads: list[bytes],
    rate: float | None,
    duration_s: float | None = None,
    total: int | None = None,
    connections: int = DEFAULT_CONNECTIONS,
    pipeline_depth: int = DEFAULT_PIPELINE_DEPTH,
    path: str = "/v1/query",
    content_type: str = "application/json",
    collect_bodies: bool = False,
    timeout_s: float = 30.0,
) -> OpenLoopResult:
    """Fire ``payloads`` (cycled) at the service; return the ledger.

    Args:
        rate: offered requests/second, or None for closed-loop mode
            (every connection kept at depth 1 — measures capacity).
        duration_s: stop scheduling after this long (open loop).
        total: stop after this many requests (either mode).
        pipeline_depth: per-connection cap on queued-but-unanswered
            requests in open-loop mode; past it the *scheduled* request
            is still charged its queueing delay (it just waits client-
            side), so the open-loop latency accounting stays honest.
        collect_bodies: keep each response body for differential
            checking (memory-heavy; tests only).

    Returns:
        OpenLoopResult with status counts, latency percentiles (ms,
        measured from each request's scheduled fire time), achieved
        and offered rates, and optionally the body ledger.
    """
    host, port = _parse_base(base_url)
    if total is None:
        if rate is None or duration_s is None:
            raise ValueError("need total=, or rate= plus duration_s=")
        total = max(1, int(rate * duration_s))

    requests = [build_post(path, p, content_type) for p in payloads]
    conns = [_GenConn(host, port) for _ in range(connections)]
    selector = selectors.DefaultSelector()
    for conn in conns:
        selector.register(conn.sock, selectors.EVENT_READ, conn)
        conn.events = selectors.EVENT_READ

    statuses: dict[int, int] = {}
    latencies_ms: list[float] = []
    ok_latencies_ms: list[float] = []
    bodies: list[tuple[int, int, bytes]] = []  # (payload_idx, status, body)
    retry_after_seen = 0
    dropped_conns = 0

    t0 = time.perf_counter()
    scheduled = 0  # requests handed to a connection
    completed = 0
    next_slot = 0  # round-robin cursor

    def _interest(conn):
        want = selectors.EVENT_READ
        if conn.outbuf:
            want |= selectors.EVENT_WRITE
        if want != conn.events:
            selector.modify(conn.sock, want, conn)
            conn.events = want

    def _pump_out(conn):
        while conn.outbuf:
            try:
                sent = conn.sock.send(conn.outbuf)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                _kill(conn)
                return
            del conn.outbuf[:sent]
        _interest(conn)

    def _kill(conn):
        nonlocal dropped_conns, completed
        if not conn.alive:
            return
        conn.alive = False
        dropped_conns += 1
        # Every unanswered request on this connection is a failure.
        for sched_t, _idx in conn.inflight:
            statuses[0] = statuses.get(0, 0) + 1
            completed += 1
        conn.inflight.clear()
        try:
            selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass

    def _pump_in(conn):
        nonlocal completed, retry_after_seen
        try:
            chunk = conn.sock.recv(RECV_CHUNK)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            _kill(conn)
            return
        if not chunk:
            _kill(conn)
            return
        conn.inbuf += chunk
        while True:
            if conn.cur is None:
                head_end = conn.inbuf.find(b"\r\n\r\n")
                if head_end < 0:
                    return
                head = bytes(conn.inbuf[:head_end]).decode(
                    "latin-1", "replace"
                )
                del conn.inbuf[:head_end + 4]
                resp = _Response()
                lines = head.split("\r\n")
                try:
                    resp.status = int(lines[0].split()[1])
                except (IndexError, ValueError):
                    _kill(conn)
                    return
                close_after = False
                for line in lines[1:]:
                    lower = line.lower()
                    if lower.startswith("content-length:"):
                        resp.body_remaining = int(line.split(":", 1)[1])
                    elif lower.startswith("retry-after:"):
                        resp.retry_after = True
                    elif lower.startswith("connection:") and "close" in lower:
                        close_after = True
                resp.headers_done = True
                conn.cur = resp
                conn.close_hint = close_after
            resp = conn.cur
            take = min(resp.body_remaining, len(conn.inbuf))
            if take:
                if collect_bodies:
                    resp.body += conn.inbuf[:take]
                del conn.inbuf[:take]
                resp.body_remaining -= take
            if resp.body_remaining:
                return
            # One response complete: pair with the oldest in-flight.
            conn.cur = None
            if conn.inflight:
                sched_t, payload_idx = conn.inflight.pop(0)
                lat_ms = (time.perf_counter() - sched_t) * 1e3
                latencies_ms.append(lat_ms)
                if resp.status == 200:
                    ok_latencies_ms.append(lat_ms)
                if resp.retry_after:
                    retry_after_seen += 1
                statuses[resp.status] = statuses.get(resp.status, 0) + 1
                if collect_bodies:
                    bodies.append(
                        (payload_idx, resp.status, bytes(resp.body))
                    )
                completed += 1
                conn.depth -= 1
            if getattr(conn, "close_hint", False):
                _kill(conn)
                return

    def _offer(conn, sched_t, payload_idx):
        conn.outbuf += requests[payload_idx % len(requests)]
        conn.inflight.append((sched_t, payload_idx))
        conn.depth += 1
        _pump_out(conn)

    deadline = t0 + (duration_s if duration_s is not None else 3600.0)
    hard_stop = deadline + timeout_s

    while completed < total:
        now = time.perf_counter()
        if now > hard_stop:
            break
        live = [c for c in conns if c.alive]
        if not live:
            break

        if rate is None:
            # Closed loop: keep every live connection at depth 1.
            for conn in live:
                if scheduled < total and conn.depth == 0:
                    _offer(conn, time.perf_counter(), scheduled)
                    scheduled += 1
            timeout = 0.05
        else:
            # Open loop: release every request whose scheduled time
            # has arrived, charging latency from that instant.
            due = min(total, int((now - t0) * rate) + 1)
            while scheduled < due:
                sched_t = t0 + scheduled / rate
                conn = live[next_slot % len(live)]
                next_slot += 1
                if conn.depth >= pipeline_depth:
                    # Find any connection with headroom this tick.
                    for candidate in live:
                        if candidate.depth < pipeline_depth:
                            conn = candidate
                            break
                    else:
                        break  # all saturated: retry next tick
                _offer(conn, sched_t, scheduled)
                scheduled += 1
            if scheduled >= total:
                timeout = 0.05
            else:
                next_fire = t0 + scheduled / rate
                timeout = max(0.0, min(0.05, next_fire - time.perf_counter()))

        for key, mask in selector.select(timeout):
            conn = key.data
            if not conn.alive:
                continue
            if mask & selectors.EVENT_WRITE:
                _pump_out(conn)
            if conn.alive and mask & selectors.EVENT_READ:
                _pump_in(conn)

    wall_s = time.perf_counter() - t0
    for conn in conns:
        if conn.alive:
            try:
                selector.unregister(conn.sock)
            except (KeyError, ValueError):
                pass
            conn.sock.close()
    selector.close()

    latencies_ms.sort()
    ok_latencies_ms.sort()
    result = OpenLoopResult(
        mode="closed_loop" if rate is None else "open_loop",
        offered_rate_qps=round(rate, 1) if rate is not None else None,
        scheduled=scheduled,
        completed=completed,
        wall_s=round(wall_s, 3),
        achieved_qps=round(completed / wall_s, 1) if wall_s > 0 else 0.0,
        statuses={str(k): v for k, v in sorted(statuses.items())},
        shed_429=statuses.get(429, 0),
        shed_rate=round(statuses.get(429, 0) / completed, 4)
        if completed else 0.0,
        retry_after_seen=retry_after_seen,
        dropped_conns=dropped_conns,
        latency_ms={
            "p50": round(percentile(latencies_ms, 0.50) or 0.0, 3),
            "p95": round(percentile(latencies_ms, 0.95) or 0.0, 3),
            "p99": round(percentile(latencies_ms, 0.99) or 0.0, 3),
            "max": round(latencies_ms[-1], 3) if latencies_ms else None,
        },
        ok_latency_ms={
            "p50": round(percentile(ok_latencies_ms, 0.50) or 0.0, 3),
            "p95": round(percentile(ok_latencies_ms, 0.95) or 0.0, 3),
            "p99": round(percentile(ok_latencies_ms, 0.99) or 0.0, 3),
        },
    )
    if collect_bodies:
        result["bodies"] = bodies
    return result


def find_saturation(
    base_url: str,
    payloads: list[bytes],
    total: int = 4000,
    connections: int = DEFAULT_CONNECTIONS,
    **kwargs,
) -> float:
    """Closed-loop capacity in q/s — the saturation anchor for sweeps."""
    result = run_load(
        base_url, payloads, rate=None, total=total,
        connections=connections, **kwargs,
    )
    return result["achieved_qps"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Open-loop load generator for the repro query service."
    )
    parser.add_argument("--base", required=True,
                        help="service base URL, e.g. http://127.0.0.1:8023")
    parser.add_argument("--rate", type=float, default=None,
                        help="offered q/s (omit for closed-loop capacity)")
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--total", type=int, default=None)
    parser.add_argument("--connections", type=int,
                        default=DEFAULT_CONNECTIONS)
    parser.add_argument("--pipeline-depth", type=int,
                        default=DEFAULT_PIPELINE_DEPTH)
    parser.add_argument(
        "--request", default=json.dumps(
            {"type": "point", "os": "mach", "budget": 250000, "limit": 1}
        ),
        help="request JSON to fire (default: a mach point query)",
    )
    args = parser.parse_args(argv)
    result = run_load(
        args.base,
        [args.request.encode()],
        rate=args.rate,
        duration_s=args.duration if args.rate is not None else None,
        total=args.total,
        connections=args.connections,
        pipeline_depth=args.pipeline_depth,
    )
    json.dump(result, __import__("sys").stdout, indent=2)
    print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
