"""IOzone: sequential file I/O writing then reading a 10-MB file.

Nearly pure data movement: big sequential payloads through the file
system with almost no computation between calls.  Under Ultrix the
kernel's copy loops dominate (Table 4: D-cache 0.65 + write buffer
0.17 of CPI); under Mach the same payloads flow through the BSD server
and IPC machinery, shifting stalls to the I-cache and TLB.
"""

from repro.workloads.base import WorkloadSpec

IOZONE = WorkloadSpec(
    name="IOzone",
    description="sequential write + read of a 10-MB file",
    load_frac=0.20,
    store_frac=0.11,
    other_cpi=0.07,
    compute_instructions=5_000,
    hot_loop_bodies=(120,),
    hot_loop_fraction=0.30,
    loop_iterations=15,
    code_footprint_bytes=12 * 1024,
    text_bytes=96 * 1024,
    heap_pages=8,
    heap_record_words=4,
    stream_bytes=4 * 1024 * 1024,
    stream_run_words=16,
    stream_frac=0.35,
    service_mix={"read": 0.5, "write": 0.5},
    payload_bytes=4 * 1024,
    services_per_cycle=1,
    x_interaction_rate=0.0,
    page_fault_rate=0.02,
)
