"""Tests for the versioned, content-addressed curve store."""

import json

import pytest

from repro.core.measure import BenefitCurves, measure_workload
from repro.errors import ConfigError, StaleStoreError, StoreError, StoreIntegrityError
from repro.store import SCHEMA_VERSION, CurveStore, StoreKey
from repro.store.curvestore import REBUILD_HINT, load_retries

SMALL_GRID = dict(
    capacities=(2048, 4096),
    lines=(4,),
    assocs=(1, 2),
    tlb_entries=(64,),
    tlb_assocs=(1, 2),
    tlb_full_max=64,
    references=50_000,
)


@pytest.fixture(scope="module")
def curves():
    single = measure_workload("ousterhout", "mach", **SMALL_GRID)
    return BenefitCurves(os_name="mach", per_workload=[single])


@pytest.fixture
def key():
    return StoreKey.current("mach", suite=("ousterhout",))


class TestRoundTrip:
    def test_build_then_load_is_identical(self, tmp_path, curves, key):
        store = CurveStore(tmp_path / "store")
        manifest = store.build(curves, key)
        assert manifest["schema"] == SCHEMA_VERSION
        loaded = store.load(key)
        assert loaded == curves

    def test_has_and_exists(self, tmp_path, curves, key):
        store = CurveStore(tmp_path / "store")
        assert not store.exists()
        assert not store.has(key)
        store.build(curves, key)
        assert store.exists()
        assert store.has(key)

    def test_content_addressing_dedupes_objects(self, tmp_path, curves, key):
        store = CurveStore(tmp_path / "store")
        other_key = StoreKey.current("mach", suite=("ousterhout",), seed=2)
        m1 = store.build(curves, key)
        m2 = store.build(curves, other_key)
        assert m1["object_sha256"] == m2["object_sha256"]
        assert len(list((tmp_path / "store" / "objects").glob("*.bin"))) == 1
        assert len(list((tmp_path / "store" / "keys").glob("*.json"))) == 2

    def test_no_temp_files_left_behind(self, tmp_path, curves, key):
        store = CurveStore(tmp_path / "store")
        store.build(curves, key)
        strays = [
            p for p in (tmp_path / "store").rglob("*") if p.suffix == ".tmp"
        ]
        assert strays == []

    def test_entries_lists_manifests(self, tmp_path, curves, key):
        store = CurveStore(tmp_path / "store")
        assert store.entries() == []
        store.build(curves, key)
        entries = store.entries()
        assert len(entries) == 1
        assert entries[0]["key"]["os_name"] == "mach"


class TestValidation:
    def test_missing_entry_names_rebuild(self, tmp_path, key):
        store = CurveStore(tmp_path / "store")
        with pytest.raises(StoreError, match="rebuild"):
            store.load(key)

    def test_stale_schema_refused_with_hint(self, tmp_path, curves, key):
        store = CurveStore(tmp_path / "store")
        store.build(curves, key)
        path = store._manifest_path(key)
        manifest = json.loads(path.read_text())
        manifest["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(manifest))
        with pytest.raises(StaleStoreError, match="rebuild"):
            store.load(key)

    def test_corrupt_object_fails_integrity(self, tmp_path, curves, key):
        store = CurveStore(tmp_path / "store")
        manifest = store.build(curves, key)
        obj = tmp_path / "store" / "objects" / f"{manifest['object_sha256']}.bin"
        data = bytearray(obj.read_bytes())
        data[len(data) // 2] ^= 0xFF
        obj.write_bytes(bytes(data))
        with pytest.raises(StoreIntegrityError, match="integrity"):
            store.load(key)

    def test_empty_object_is_integrity_error(self, tmp_path, curves, key):
        store = CurveStore(tmp_path / "store")
        manifest = store.build(curves, key)
        obj = tmp_path / "store" / "objects" / f"{manifest['object_sha256']}.bin"
        obj.write_bytes(b"")
        with pytest.raises(StoreIntegrityError, match="empty"):
            store.load(key, retries=0)

    def test_load_retries_env_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_RETRIES", "5")
        assert load_retries() == 5
        monkeypatch.setenv("REPRO_STORE_RETRIES", "many")
        with pytest.raises(ConfigError, match="REPRO_STORE_RETRIES"):
            load_retries()
        monkeypatch.setenv("REPRO_STORE_RETRIES", "-1")
        with pytest.raises(ConfigError, match=">= 0"):
            load_retries()
        monkeypatch.delenv("REPRO_STORE_RETRIES")
        assert load_retries() == 2

    def test_foreign_manifest_refused(self, tmp_path, curves, key):
        store = CurveStore(tmp_path / "store")
        store.build(curves, key)
        store._manifest_path(key).write_text('{"not": "a manifest"}')
        with pytest.raises(StoreError, match="manifest"):
            store.load(key)

    def test_missing_object_detected(self, tmp_path, curves, key):
        store = CurveStore(tmp_path / "store")
        manifest = store.build(curves, key)
        (tmp_path / "store" / "objects" / f"{manifest['object_sha256']}.bin").unlink()
        with pytest.raises(StoreError, match="missing object"):
            store.load(key)

    def test_rebuild_hint_mentions_cli(self):
        assert "python -m repro.service build" in REBUILD_HINT


class TestEntryCount:
    def test_matches_entries_and_updates_on_publish(
        self, tmp_path, curves, key
    ):
        store = CurveStore(tmp_path / "store")
        assert store.entry_count() == 0
        store.build(curves, key)
        assert store.entry_count() == 1
        other_key = StoreKey.current("mach", suite=("ousterhout",), seed=2)
        store.build(curves, other_key)  # publish invalidates the cache
        assert store.entry_count() == 2
        assert store.entry_count() == len(store.entries())

    def test_cached_between_probes(self, tmp_path, curves, key, monkeypatch):
        store = CurveStore(tmp_path / "store")
        store.build(curves, key)
        assert store.entry_count() == 1
        # A second probe must not re-list the store.
        calls = {"entries": 0}
        real_entries = store.entries

        def counting_entries():
            calls["entries"] += 1
            return real_entries()

        monkeypatch.setattr(store, "entries", counting_entries)
        for _ in range(5):
            assert store.entry_count() == 1
        assert calls["entries"] == 0

    def test_out_of_process_publish_detected(self, tmp_path, curves, key):
        """A second handle publishing under the same root must show up
        (the mtime check) without this handle ever publishing."""
        root = tmp_path / "store"
        reader = CurveStore(root)
        writer = CurveStore(root)
        writer.build(curves, key)
        assert reader.entry_count() == 1
        other_key = StoreKey.current("mach", suite=("ousterhout",), seed=2)
        writer.build(curves, other_key)
        assert reader.entry_count() == 2


class TestFindCurrent:
    def test_exact_key_preferred(self, tmp_path, curves):
        store = CurveStore(tmp_path / "store")
        key = StoreKey.current("mach")
        store.build(curves, key)
        assert store.find_current("mach") == key

    def test_reduced_suite_fallback(self, tmp_path, curves, key):
        store = CurveStore(tmp_path / "store")
        store.build(curves, key)
        found = store.find_current("mach")
        assert found == key
        assert store.load(found) == curves

    def test_other_os_not_served(self, tmp_path, curves, key):
        store = CurveStore(tmp_path / "store")
        store.build(curves, key)
        assert store.find_current("ultrix") is None

    def test_scale_mismatch_not_served(self, tmp_path, curves, key, monkeypatch):
        store = CurveStore(tmp_path / "store")
        store.build(curves, key)
        monkeypatch.setenv("REPRO_SCALE", "7.5")
        assert store.find_current("mach") is None
