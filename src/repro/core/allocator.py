"""Budgeted allocation of on-chip memory (Tables 6 and 7).

Enumerate the Table 5 configuration space, price every TLB + I-cache +
D-cache combination with the MQF model, keep those under the area
budget, score each with composed CPI, and rank.

Pricing is independent of the budget, so it is factored into
:class:`PricedSpace` — per-structure area and CPI arrays plus the
precomputed cross-product grids — and :func:`rank_priced` answers any
budget against a priced space without re-pricing.  The query service
(``repro.service``) keeps priced spaces warm to answer budget sweeps;
:meth:`Allocator.rank` is the same two steps composed.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.configs import CacheConfig, MemSystemConfig, TlbConfig
from repro.core.cpi import CpiModel
from repro.core.measure import BenefitCurves, StructureCurves
from repro.core.space import enumerate_cache_configs, enumerate_tlb_configs
from repro.errors import BudgetError

DEFAULT_BUDGET_RBES = 250_000
"""The paper's die-area budget, chosen from the Table 1 survey."""


@dataclass(frozen=True)
class Allocation:
    """One scored candidate allocation."""

    config: MemSystemConfig
    area_rbe: float
    cpi: float

    def row(self) -> dict:
        """Table row matching the paper's column layout."""
        return {
            "tlb": self.config.tlb.label(),
            "icache": self.config.icache.label(),
            "dcache": self.config.dcache.label(),
            "total_cost_rbe": round(self.area_rbe),
            "total_cpi": round(self.cpi, 3),
        }


@dataclass(frozen=True)
class PricedSpace:
    """A configuration space priced once, ready for any budget.

    Holds per-structure area/CPI arrays in enumeration order and the
    raveled (tlb, icache, dcache) cross-product grids.  The grids are
    computed with the exact float-operation order of the original
    triple loop, so any subset indexed out of them is bit-identical to
    pricing that subset directly.
    """

    tlb_keys: tuple[TlbConfig, ...]
    icache_keys: tuple[CacheConfig, ...]
    dcache_keys: tuple[CacheConfig, ...]
    t_area: np.ndarray
    i_area: np.ndarray
    d_area: np.ndarray
    fixed_cpi: float
    area_grid: np.ndarray
    cpi_grid: np.ndarray
    # Per-structure CPI contributions in enumeration order; the greedy
    # marginal-utility path (repro.core.multiopt) optimizes over these
    # instead of the raveled grids.
    t_cpi: np.ndarray | None = None
    i_cpi: np.ndarray | None = None
    d_cpi: np.ndarray | None = None

    @property
    def size(self) -> int:
        """Number of (tlb, icache, dcache) combinations in the grid."""
        return self.area_grid.size

    def min_area(self) -> float:
        """Area of the cheapest combination (the smallest satisfiable
        budget)."""
        return float(self.area_grid.min())

    @cached_property
    def sorted_order(self) -> np.ndarray:
        """Flat grid indices in ascending (cpi, area) stable order.

        Computed once per priced space; filtering this order by a
        budget's feasibility mask yields the same ranking as sorting
        the feasible subset (a stable sort of a subset preserves the
        subset's relative order in the full stable sort), so repeated
        budget queries skip the per-query lexsort entirely.
        """
        return np.lexsort((self.area_grid, self.cpi_grid))

    @cached_property
    def budget_index(self) -> "BudgetIndex":
        """The precomputed budget index (built once per priced space)."""
        return build_budget_index(self)

    @cached_property
    def power_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-structure power (mW) in enumeration order (computed once)."""
        from repro.areamodel.power import cache_power_mw, tlb_power_mw

        t_power = np.array(
            [tlb_power_mw(t.entries, t.assoc) for t in self.tlb_keys],
            dtype=np.float64,
        )
        i_power = np.array(
            [
                cache_power_mw(c.capacity_bytes, c.line_words, c.assoc)
                for c in self.icache_keys
            ],
            dtype=np.float64,
        )
        d_power = np.array(
            [
                cache_power_mw(c.capacity_bytes, c.line_words, c.assoc)
                for c in self.dcache_keys
            ],
            dtype=np.float64,
        )
        return t_power, i_power, d_power

    @cached_property
    def power_grid(self) -> np.ndarray:
        """Raveled total-power grid, same float order as ``area_grid``."""
        t_power, i_power, d_power = self.power_arrays
        return (
            (t_power[:, None] + i_power[None, :])[:, :, None] + d_power
        ).ravel()

    def structure_curves(self, with_power: bool = False) -> list:
        """The three per-structure curves in (tlb, icache, dcache) order.

        This is the view :mod:`repro.core.multiopt` optimizes over.
        Requires the per-structure CPI arrays (spaces priced by
        :meth:`Allocator.price`; spaces built by hand without them
        raise).
        """
        from repro.core.multiopt import StructureCurve

        if self.t_cpi is None or self.i_cpi is None or self.d_cpi is None:
            raise ValueError(
                "priced space lacks per-structure CPI arrays; "
                "re-price with Allocator.price"
            )
        powers = self.power_arrays if with_power else (None, None, None)
        return [
            StructureCurve(
                "tlb", self.t_area, self.t_cpi, self.tlb_keys, powers[0]
            ),
            StructureCurve(
                "icache", self.i_area, self.i_cpi, self.icache_keys, powers[1]
            ),
            StructureCurve(
                "dcache", self.d_area, self.d_cpi, self.dcache_keys, powers[2]
            ),
        ]


def rank_priced(
    priced: PricedSpace, budget_rbes: float, limit: int | None = None
) -> list[Allocation]:
    """Rank feasible allocations of a priced space under one budget.

    Bit-identical to :meth:`Allocator._rank_reference`: the feasibility
    mask replays the reference loop's ``budget_left`` arithmetic, and
    the stable lexsort keeps ties on (cpi, area) in flat enumeration
    order, exactly like ``list.sort`` on the loop-built list.

    Raises:
        BudgetError: if no combination fits the budget.
    """
    t_area, i_area, d_area = priced.t_area, priced.i_area, priced.d_area
    budget_left = budget_rbes - t_area[:, None] - i_area[None, :]
    feasible_mask = (budget_left[:, :, None] >= 0) & (
        d_area[None, None, :] <= budget_left[:, :, None]
    )
    # Filter the once-per-space sorted order by feasibility instead of
    # lexsorting the feasible subset per budget: same ranking (stable
    # sort), no per-query sort.
    order_all = priced.sorted_order
    ranked = order_all[feasible_mask.ravel()[order_all]]
    if ranked.size == 0:
        raise BudgetError(f"no configuration fits within {budget_rbes} rbes")
    if limit is not None:
        ranked = ranked[:limit]
    return allocations_from_flat(priced, ranked)


def allocations_from_flat(
    priced: PricedSpace, flat: np.ndarray
) -> list[Allocation]:
    """Materialize :class:`Allocation` objects for flat grid indices.

    The area/CPI values come straight from the priced grids, so any
    caller that selects the same indices as the brute-force path gets
    bit-identical allocations.
    """
    area = priced.area_grid[flat]
    cpi = priced.cpi_grid[flat]
    n_d = len(priced.dcache_keys)
    ti, rem = np.divmod(flat, len(priced.icache_keys) * n_d)
    ii, di = np.divmod(rem, n_d)
    return [
        Allocation(
            config=MemSystemConfig(
                priced.tlb_keys[t], priced.icache_keys[i], priced.dcache_keys[d]
            ),
            area_rbe=float(a),
            cpi=float(c),
        )
        for t, i, d, a, c in zip(
            ti.tolist(), ii.tolist(), di.tolist(),
            area.tolist(), cpi.tolist(),
        )
    ]


@dataclass(frozen=True)
class BudgetIndex:
    """Precomputed query structure over one :class:`PricedSpace`.

    The paper's allocation answer is a fixed ranking over a priced
    space, so every budget query is an index lookup in disguise.  This
    index precomputes, once per priced space:

    * ``thresholds`` — per flat grid entry, the *exact* smallest
      float64 budget at which :func:`rank_priced`'s feasibility test
      (``budget_left = (B - t_area) - i_area; budget_left >= 0 and
      d_area <= budget_left``) holds.  The test is monotone in ``B``
      (float subtraction is monotone), but its float rounding means
      the threshold can sit a few ULPs off the entry's ``area_grid``
      value — so the threshold is found by a bounded ``nextafter``
      walk and verified against the reference predicate, making
      ``thresholds[j] <= B`` *bit-identical* to the reference mask for
      every float budget, including budgets landing exactly on (or one
      ULP around) an entry's area.
    * ``thr_by_rank`` — thresholds permuted into ``sorted_order`` (the
      (cpi, area, enumeration) total order), so a ranked feasible list
      is one boolean gather instead of a 3-D broadcast mask.
    * ``thr_sorted`` / ``best_prefix`` — thresholds ascending plus a
      running minimum of rank position over that order: the best
      allocation under budget ``B`` is ``searchsorted`` + one lookup,
      and a batch of M budgets is answered in a single broadcast pass.
    * ``frontier_ranks`` — the full-space (area, CPI) Pareto frontier
      as positions into ``sorted_order``, so unconstrained Pareto
      queries return a cached slice.
    """

    thresholds: np.ndarray
    thr_by_rank: np.ndarray
    thr_sorted: np.ndarray
    best_prefix: np.ndarray
    frontier_ranks: np.ndarray

    @property
    def size(self) -> int:
        return self.thresholds.size


_THRESHOLD_WALK_LIMIT = 128
"""ULP-walk bound for threshold search; the rounding error of the
feasibility arithmetic is a handful of ULPs, so hitting this bound
means the monotonicity assumption broke and the index must not be
trusted."""


def _feasible_at(
    budgets: np.ndarray,
    t_flat: np.ndarray,
    i_flat: np.ndarray,
    d_flat: np.ndarray,
) -> np.ndarray:
    """Element-wise replay of the reference feasibility predicate."""
    budget_left = (budgets - t_flat) - i_flat
    return (budget_left >= 0) & (d_flat <= budget_left)


def _feasibility_thresholds(priced: PricedSpace) -> np.ndarray:
    """Exact per-entry feasibility thresholds (see :class:`BudgetIndex`).

    Starts each entry at its ``area_grid`` value, walks up one ULP at a
    time until the reference predicate holds, then walks down while the
    next-lower float still satisfies it — yielding the minimal float
    budget per entry.  Both walks are vectorized over the unsettled
    subset and bounded; the predicate's rounding error is a few ULPs,
    so the bound is never approached on real spaces.
    """
    n_i, n_d = len(priced.icache_keys), len(priced.dcache_keys)
    t_flat = np.repeat(priced.t_area, n_i * n_d)
    i_flat = np.tile(np.repeat(priced.i_area, n_d), len(priced.tlb_keys))
    d_flat = np.tile(priced.d_area, len(priced.tlb_keys) * n_i)
    thresholds = priced.area_grid.astype(np.float64).copy()

    # Walk up until feasible at the candidate budget.
    pending = np.flatnonzero(
        ~_feasible_at(thresholds, t_flat, i_flat, d_flat)
    )
    for _ in range(_THRESHOLD_WALK_LIMIT):
        if pending.size == 0:
            break
        thresholds[pending] = np.nextafter(thresholds[pending], np.inf)
        ok = _feasible_at(
            thresholds[pending], t_flat[pending], i_flat[pending],
            d_flat[pending],
        )
        pending = pending[~ok]
    else:
        raise AssertionError(
            "budget-index threshold search did not converge upward; "
            "the feasibility predicate is not behaving monotonically"
        )

    # Walk down while the next-lower float is still feasible.
    pending = np.arange(thresholds.size)
    for _ in range(_THRESHOLD_WALK_LIMIT):
        lower = np.nextafter(thresholds[pending], -np.inf)
        ok = _feasible_at(
            lower, t_flat[pending], i_flat[pending], d_flat[pending]
        )
        if not ok.any():
            break
        thresholds[pending[ok]] = lower[ok]
        pending = pending[ok]
    else:
        raise AssertionError(
            "budget-index threshold search did not converge downward; "
            "the feasibility predicate is not behaving monotonically"
        )
    return thresholds


def _frontier_positions(areas_by_rank: np.ndarray) -> np.ndarray:
    """Frontier membership over a (cpi, area)-ranked area sequence.

    Exactly :func:`~repro.service.engine.pareto_frontier`'s scan: a
    rank position joins iff its area is strictly below every earlier
    area.  Vectorized as a running minimum.
    """
    if areas_by_rank.size == 0:
        return np.empty(0, dtype=np.intp)
    keep = np.empty(areas_by_rank.size, dtype=bool)
    keep[0] = True
    keep[1:] = areas_by_rank[1:] < np.minimum.accumulate(areas_by_rank)[:-1]
    return np.flatnonzero(keep)


def build_budget_index(priced: PricedSpace) -> BudgetIndex:
    """Build the budget index for a priced space (see :class:`BudgetIndex`)."""
    thresholds = _feasibility_thresholds(priced)
    order = priced.sorted_order
    thr_by_rank = thresholds[order]
    # Rank position per threshold-sorted entry; the best feasible
    # allocation under B is the smallest rank among entries whose
    # threshold is <= B, read off a prefix minimum.
    thr_argsort = np.argsort(thresholds, kind="stable")
    thr_sorted = thresholds[thr_argsort]
    inv_rank = np.empty(order.size, dtype=np.intp)
    inv_rank[order] = np.arange(order.size)
    best_prefix = np.minimum.accumulate(inv_rank[thr_argsort])
    frontier_ranks = _frontier_positions(priced.area_grid[order])
    return BudgetIndex(
        thresholds=thresholds,
        thr_by_rank=thr_by_rank,
        thr_sorted=thr_sorted,
        best_prefix=best_prefix,
        frontier_ranks=frontier_ranks,
    )


def rank_indexed(
    priced: PricedSpace, budget_rbes: float, limit: int | None = None
) -> list[Allocation]:
    """Index-backed twin of :func:`rank_priced` — bit-identical output.

    ``limit=1`` is ``searchsorted`` + one prefix-minimum lookup;
    other limits gather the feasible prefix of the precomputed rank
    order.  Neither path re-sorts or builds the 3-D feasibility mask.

    Raises:
        BudgetError: if no combination fits the budget.
    """
    index = priced.budget_index
    if limit == 1:
        position = int(
            np.searchsorted(index.thr_sorted, budget_rbes, side="right")
        )
        if position == 0:
            raise BudgetError(
                f"no configuration fits within {budget_rbes} rbes"
            )
        ranks = index.best_prefix[position - 1 : position]
    else:
        ranks = np.flatnonzero(index.thr_by_rank <= budget_rbes)
        if ranks.size == 0:
            raise BudgetError(
                f"no configuration fits within {budget_rbes} rbes"
            )
        if limit is not None:
            ranks = ranks[:limit]
    return allocations_from_flat(priced, priced.sorted_order[ranks])


def batch_best_indexed(
    priced: PricedSpace, budgets_rbes: np.ndarray | list[float]
) -> list[list[Allocation]]:
    """The best allocation per budget, for M budgets in one pass.

    One vectorized ``searchsorted`` + gather answers the whole sweep —
    no per-budget ranking.  Infeasible budgets yield empty lists, the
    same degradation :meth:`QueryEngine.batch` applies.
    """
    budgets = np.asarray(budgets_rbes, dtype=np.float64)
    index = priced.budget_index
    if index.size == 0:
        return [[] for _ in budgets]
    positions = np.searchsorted(index.thr_sorted, budgets, side="right")
    feasible = positions > 0
    ranks = index.best_prefix[np.maximum(positions - 1, 0)]
    flat = priced.sorted_order[ranks]
    best = allocations_from_flat(priced, flat)
    return [
        [best[i]] if feasible[i] else [] for i in range(len(budgets))
    ]


def pareto_indexed(
    priced: PricedSpace, max_budget: float | None = None
) -> list[Allocation]:
    """The (area, CPI) Pareto frontier under a budget, off the index.

    Unconstrained queries slice the cached full-space frontier; budget-
    capped queries re-run the running-minimum scan over the feasible
    prefix of the rank order (one vectorized pass), because the
    restricted frontier is *not* always a subset of the full one when
    a budget lands between two equal-area entries' thresholds.

    Raises:
        BudgetError: if no combination fits the budget.
    """
    index = priced.budget_index
    if index.size == 0:
        raise BudgetError("the priced space is empty; nothing is feasible")
    if max_budget is None or max_budget >= index.thr_sorted[-1]:
        ranks = index.frontier_ranks
    else:
        feasible_ranks = np.flatnonzero(index.thr_by_rank <= max_budget)
        if feasible_ranks.size == 0:
            raise BudgetError(
                f"no configuration fits within {max_budget} rbes"
            )
        areas = priced.area_grid[priced.sorted_order[feasible_ranks]]
        ranks = feasible_ranks[_frontier_positions(areas)]
    return allocations_from_flat(priced, priced.sorted_order[ranks])


# ---------------------------------------------------------------------------
# Ordering contract (tie-breaks at exact-budget boundaries)
#
# Every ranking path — rank_priced, rank_indexed, batch_best_indexed,
# pareto_indexed, and the exact fallbacks below — orders allocations by
# ascending (cpi, area_rbe, flat enumeration index), where the flat
# index is (tlb, icache, dcache) position in the priced space's key
# tuples.  Feasibility at a budget B uses the *reference predicate*
# ``budget_left = (B - t_area) - i_area; budget_left >= 0 and d_area <=
# budget_left`` — float subtraction order included — so a budget equal
# to a configuration's area to the ULP admits exactly the entries the
# interpreted triple loop admits.  rank_indexed reproduces that
# predicate through the ULP-walked thresholds of BudgetIndex, which is
# why the two paths are bit-identical even one ULP either side of a
# boundary (tests/core/test_tie_breaks.py holds this).
#
# The greedy/power paths below use mathematical sums (area_grid /
# power_grid) instead of the reference predicate: rankings are the same
# except possibly at budgets within a few ULPs of an entry's area.
# Callers needing exact boundary semantics use rank_indexed.
# ---------------------------------------------------------------------------


def flat_index(priced: PricedSpace, t: int, i: int, d: int) -> int:
    """The flat grid index of a (tlb, icache, dcache) key triple."""
    return (t * len(priced.icache_keys) + i) * len(priced.dcache_keys) + d


def rank_greedy(
    priced: PricedSpace,
    budget_rbes: float,
    power_budget_mw: float | None = None,
) -> list[Allocation]:
    """The greedy marginal-utility best allocation (top-1).

    Runs :func:`repro.core.multiopt.greedy_allocate` over the space's
    per-structure curves and materializes the winner straight out of
    the priced grids, so its (area, cpi) is bit-identical to the
    exhaustive path picking the same configuration.  The differential
    suite holds the *choice* identical to :func:`rank_priced`'s top-1
    across the paper grid (see multiopt's exactness contract).  With a
    ``power_budget_mw`` the answer is a fast feasible upper bound, not
    a guaranteed optimum — prefer :func:`rank_auto` for exact
    semantics.

    Raises:
        BudgetError: if no combination fits the budget(s).
    """
    from repro.core.multiopt import greedy_allocate

    curves = priced.structure_curves(with_power=power_budget_mw is not None)
    # Pass the space's fixed CPI so greedy's internal totals accumulate
    # ((fixed + t) + i) + d — bitwise the cpi_grid entries — and its
    # comparisons resolve ULP-close candidates exactly as the grid does.
    result = greedy_allocate(
        curves,
        budget_rbes,
        fixed_cpi=priced.fixed_cpi,
        power_budget=power_budget_mw,
    )
    flat = flat_index(priced, *result.choice)
    return allocations_from_flat(priced, np.asarray([flat], dtype=np.intp))


def rank_priced_power(
    priced: PricedSpace,
    budget_rbes: float,
    power_budget_mw: float,
    limit: int | None = None,
) -> list[Allocation]:
    """Exact ranking under a joint area x power budget.

    Same (cpi, area, enumeration) order as :func:`rank_priced`;
    feasibility is the mathematical ``area_grid <= budget and
    power_grid <= power_budget`` (see the ordering contract above —
    the power axis has no ULP-walked index, so this is the exact-rank
    fallback the greedy path validates against).

    Raises:
        BudgetError: if no combination fits the budgets.
    """
    feasible = (priced.area_grid <= budget_rbes) & (
        priced.power_grid <= power_budget_mw
    )
    order_all = priced.sorted_order
    ranked = order_all[feasible[order_all]]
    if ranked.size == 0:
        raise BudgetError(
            f"no configuration fits within {budget_rbes} rbes "
            f"and {power_budget_mw} mW"
        )
    if limit is not None:
        ranked = ranked[:limit]
    return allocations_from_flat(priced, ranked)


def rank_auto(
    priced: PricedSpace,
    budget_rbes: float,
    limit: int | None = None,
    power_budget_mw: float | None = None,
    method: str = "auto",
) -> list[Allocation]:
    """Dispatch a ranking to the right backend.

    * no power budget -> :func:`rank_indexed` (ULP-exact, vectorized;
      ``method="greedy"`` with ``limit == 1`` forces the greedy path,
      which the differential suite holds identical on the paper grid);
    * power budget -> :func:`rank_priced_power` (exact).  Greedy under
      a *joint* area x power budget is a two-constraint knapsack — the
      hull walk plus repair is a fast upper bound, not an optimum — so
      it only answers when explicitly forced with ``method="greedy"``
      and ``limit == 1``.

    ``method`` is "auto" (exact semantics everywhere, greedy only
    where validated identical), "greedy" (force the heuristic,
    raising if the query shape doesn't support it), or "exact".
    """
    if method not in ("auto", "greedy", "exact"):
        raise ValueError(f"unknown ranking method {method!r}")
    if method == "greedy":
        if limit != 1:
            raise ValueError("greedy ranking answers top-1 queries only")
        return rank_greedy(priced, budget_rbes, power_budget_mw)
    if power_budget_mw is None:
        return rank_indexed(priced, budget_rbes, limit=limit)
    return rank_priced_power(priced, budget_rbes, power_budget_mw, limit=limit)


class Allocator:
    """Cost/benefit allocator over the Table 5 space.

    Args:
        curves: measured benefit curves (typically the Mach suite).
        cpi_model: penalty model (paper defaults).
        budget_rbes: area budget (250,000 rbe in the paper).
    """

    def __init__(
        self,
        curves: BenefitCurves | StructureCurves,
        cpi_model: CpiModel | None = None,
        budget_rbes: float = DEFAULT_BUDGET_RBES,
    ):
        self.curves = curves
        self.cpi_model = cpi_model if cpi_model is not None else CpiModel()
        self.budget_rbes = budget_rbes

    def price(
        self,
        max_cache_assoc: int | None = None,
        tlbs: list[TlbConfig] | None = None,
        icaches: list[CacheConfig] | None = None,
        dcaches: list[CacheConfig] | None = None,
        max_access_time_ns: float | None = None,
    ) -> PricedSpace:
        """Price the configuration space once, independent of budget.

        Args:
            max_cache_assoc: cap on cache associativity (2 reproduces
                Table 7's access-time restriction; None gives Table 6).
            tlbs / icaches / dcaches: override the Table 5 points.
            max_access_time_ns: optional cycle-time constraint applied
                with the Wada-style access-time extension — the
                paper's named future work: structures slower than this
                bound are excluded instead of approximating the bound
                with an associativity cap.
        """
        tlbs = tlbs if tlbs is not None else enumerate_tlb_configs()
        icaches = icaches if icaches is not None else enumerate_cache_configs()
        dcaches = dcaches if dcaches is not None else enumerate_cache_configs()
        if max_access_time_ns is not None:
            from repro.areamodel.access_time import (
                cache_access_time_ns,
                tlb_access_time_ns,
            )

            tlbs = [
                t
                for t in tlbs
                if tlb_access_time_ns(t.entries, t.assoc) <= max_access_time_ns
            ]
            icaches = [
                c
                for c in icaches
                if cache_access_time_ns(c.capacity_bytes, c.line_words, c.assoc)
                <= max_access_time_ns
            ]
            dcaches = [
                c
                for c in dcaches
                if cache_access_time_ns(c.capacity_bytes, c.line_words, c.assoc)
                <= max_access_time_ns
            ]

        # Per-structure areas and CPI contributions are independent, so
        # precompute them once instead of per combination.
        tlb_cost = {t: (t.area_rbe(), self.cpi_model.tlb_cpi(self.curves, t)) for t in tlbs}
        icache_cost = {
            c: (c.area_rbe(), self.cpi_model.icache_cpi(self.curves, c))
            for c in icaches
            if max_cache_assoc is None or c.assoc <= max_cache_assoc
        }
        dcache_cost = {
            c: (c.area_rbe(), self.cpi_model.dcache_cpi(self.curves, c))
            for c in dcaches
            if max_cache_assoc is None or c.assoc <= max_cache_assoc
        }
        fixed_cpi = 1.0 + self.curves.other_cpi + self.curves.wb_stall_per_instr

        # Vectorized pricing: per-structure areas and CPI contributions
        # broadcast over the (tlb, icache, dcache) cross product.  The
        # float-operation order matches the interpreted triple loop in
        # _rank_reference (held identical by the tests), so results are
        # bit-for-bit the same, including tie-breaking by enumeration
        # order once rank_priced's stable lexsort runs.
        tlb_keys = list(tlb_cost)
        ic_keys = list(icache_cost)
        dc_keys = list(dcache_cost)
        t_area = np.array([tlb_cost[t][0] for t in tlb_keys], dtype=np.float64)
        t_cpi = np.array([tlb_cost[t][1] for t in tlb_keys], dtype=np.float64)
        i_area = np.array([icache_cost[c][0] for c in ic_keys], dtype=np.float64)
        i_cpi = np.array([icache_cost[c][1] for c in ic_keys], dtype=np.float64)
        d_area = np.array([dcache_cost[c][0] for c in dc_keys], dtype=np.float64)
        d_cpi = np.array([dcache_cost[c][1] for c in dc_keys], dtype=np.float64)

        area_grid = (
            (t_area[:, None] + i_area[None, :])[:, :, None] + d_area
        ).ravel()
        cpi_grid = (
            ((fixed_cpi + t_cpi)[:, None] + i_cpi)[:, :, None] + d_cpi
        ).ravel()
        return PricedSpace(
            tlb_keys=tuple(tlb_keys),
            icache_keys=tuple(ic_keys),
            dcache_keys=tuple(dc_keys),
            t_area=t_area,
            i_area=i_area,
            d_area=d_area,
            fixed_cpi=fixed_cpi,
            area_grid=area_grid,
            cpi_grid=cpi_grid,
            t_cpi=t_cpi,
            i_cpi=i_cpi,
            d_cpi=d_cpi,
        )

    def rank(
        self,
        max_cache_assoc: int | None = None,
        tlbs: list[TlbConfig] | None = None,
        icaches: list[CacheConfig] | None = None,
        dcaches: list[CacheConfig] | None = None,
        limit: int | None = None,
        max_access_time_ns: float | None = None,
    ) -> list[Allocation]:
        """Rank feasible allocations by total CPI (best first).

        Accepts the same space arguments as :meth:`price`; ``limit``
        truncates the ranking.  Equivalent to pricing once and calling
        :func:`rank_priced` with this allocator's budget.

        Raises:
            BudgetError: if no configuration fits the budget.
        """
        priced = self.price(
            max_cache_assoc=max_cache_assoc,
            tlbs=tlbs,
            icaches=icaches,
            dcaches=dcaches,
            max_access_time_ns=max_access_time_ns,
        )
        return rank_priced(priced, self.budget_rbes, limit=limit)

    def _rank_reference(
        self,
        max_cache_assoc: int | None = None,
        tlbs: list[TlbConfig] | None = None,
        icaches: list[CacheConfig] | None = None,
        dcaches: list[CacheConfig] | None = None,
        limit: int | None = None,
    ) -> list[Allocation]:
        """Interpreted twin of :meth:`rank` (the original triple loop).

        Kept as the baseline the differential tests hold :meth:`rank`
        bit-identical to.
        """
        tlbs = tlbs if tlbs is not None else enumerate_tlb_configs()
        icaches = icaches if icaches is not None else enumerate_cache_configs()
        dcaches = dcaches if dcaches is not None else enumerate_cache_configs()
        tlb_cost = {t: (t.area_rbe(), self.cpi_model.tlb_cpi(self.curves, t)) for t in tlbs}
        icache_cost = {
            c: (c.area_rbe(), self.cpi_model.icache_cpi(self.curves, c))
            for c in icaches
            if max_cache_assoc is None or c.assoc <= max_cache_assoc
        }
        dcache_cost = {
            c: (c.area_rbe(), self.cpi_model.dcache_cpi(self.curves, c))
            for c in dcaches
            if max_cache_assoc is None or c.assoc <= max_cache_assoc
        }
        fixed_cpi = 1.0 + self.curves.other_cpi + self.curves.wb_stall_per_instr

        feasible: list[Allocation] = []
        for tlb, (tlb_area, tlb_cpi) in tlb_cost.items():
            for icache, (i_area, i_cpi) in icache_cost.items():
                budget_left = self.budget_rbes - tlb_area - i_area
                if budget_left < 0:
                    continue
                for dcache, (d_area, d_cpi) in dcache_cost.items():
                    if d_area > budget_left:
                        continue
                    feasible.append(
                        Allocation(
                            config=MemSystemConfig(tlb, icache, dcache),
                            area_rbe=tlb_area + i_area + d_area,
                            cpi=fixed_cpi + tlb_cpi + i_cpi + d_cpi,
                        )
                    )
        if not feasible:
            raise BudgetError(
                f"no configuration fits within {self.budget_rbes} rbes"
            )
        feasible.sort(key=lambda a: (a.cpi, a.area_rbe))
        return feasible[:limit] if limit is not None else feasible

    def best(self, **kwargs) -> Allocation:
        """The single lowest-CPI feasible allocation."""
        return self.rank(limit=1, **kwargs)[0]
