"""Quickstart: simulate one on-chip memory configuration.

Generates a synthetic mpeg_play trace under Mach 3.0, runs it through
a complete memory system (I-cache + D-cache + TLB + write buffer) and
prints the CPI breakdown the way the paper's Monster tool reports it.

Run:  python examples/quickstart.py
"""

from repro.areamodel import cache_area_rbe, tlb_area_rbe
from repro.memsim.timing import SystemConfig
from repro.monitor.monster import COMPONENT_LABELS, Monster
from repro.trace.generator import generate_trace


def main() -> None:
    # A candidate on-chip memory system: 16-KB I-cache with 8-word
    # lines, 8-KB D-cache, 512-entry 8-way TLB (the paper's Table 6
    # winner).
    config = SystemConfig(
        icache_bytes=16 * 1024,
        icache_line_words=8,
        icache_assoc=8,
        dcache_bytes=8 * 1024,
        dcache_line_words=8,
        dcache_assoc=8,
        tlb_entries=512,
        tlb_assoc=8,
    )

    area = (
        cache_area_rbe(config.icache_bytes, config.icache_line_words, config.icache_assoc)
        + cache_area_rbe(config.dcache_bytes, config.dcache_line_words, config.dcache_assoc)
        + tlb_area_rbe(config.tlb_entries, config.tlb_assoc)
    )
    print(f"Configuration area (MQF model): {area:,.0f} rbe "
          f"(budget in the paper: 250,000 rbe)\n")

    for os_name in ("ultrix", "mach"):
        trace = generate_trace("mpeg_play", os_name, target_references=400_000, seed=1)
        report = Monster(config).measure(trace)
        print(f"mpeg_play under {os_name}: CPI = {report.cpi:.3f}")
        for key, label in COMPONENT_LABELS.items():
            print(
                f"  {label:<13} {report.components[key]:6.3f} "
                f"({report.fractions[key]:5.1%} of stalls)"
            )
        print()


if __name__ == "__main__":
    main()
