"""Stdlib HTTP front end for the allocation query engine.

A thin ``http.server`` layer — no framework — exposing:

* ``GET /v1/health`` — liveness plus store metadata (entry count is
  cached against the store directory's mtime, not re-listed per probe);
* ``GET /v1/metrics`` — request counts, latency histograms, cache
  hit-rate, responses by status code, fault-injection trip counts;
* ``POST /v1/query`` — one JSON request (see
  :mod:`repro.service.requests`), answered by the shared
  :class:`~repro.service.engine.QueryEngine`.

Every response is JSON and carries an ``X-Request-Id`` header (echoed
from the client's, or generated).  Success wraps the engine's answer
as ``{"ok": true, "result": ...}``; failures return a structured error
``{"ok": false, "error": {"code", "message"}, "request_id": ...}``
with a status code matched to the failure class (400 malformed, 404
unknown path, 411 chunked body, 413 oversized body, 422 unsatisfiable
budget, 429 overload, 503 store problems) — an unexpected exception
still produces a structured 500, never a bare traceback page.

Built for concurrency: the server is threading, per-connection sockets
carry a read/write timeout so a stalled client can't pin a handler
thread forever, query concurrency is bounded by a semaphore (excess
load is shed with 429 + ``Retry-After`` instead of queueing without
bound), and :func:`drain` gives shutdown a grace period for in-flight
queries.  Each request emits one structured JSON log line when
logging is on, and the shared :class:`~repro.obs.MetricsRegistry`
feeds ``/v1/metrics``.
"""

from __future__ import annotations

import json
import os
import socket
import sys
import threading
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.errors import (
    BudgetError,
    RequestError,
    StaleStoreError,
    StoreError,
    StoreIntegrityError,
)
from repro.obs import (
    JsonLogger,
    MetricsRegistry,
    NullLogger,
    merge_registry_snapshots,
    trace_span,
)
from repro.service.engine import QueryEngine
from repro.service.faults import FaultInjector, get_injector

MAX_BODY_BYTES = 4 * 1024 * 1024
DEFAULT_REQUEST_TIMEOUT_S = 30.0
DEFAULT_MAX_INFLIGHT = 64
DEFAULT_DRAIN_S = 5.0
RETRY_AFTER_S = 1
METRICS_EXPORT_INTERVAL_S = 0.25

# Ordered most-specific first: subclasses must precede their bases.
_ERROR_STATUS = (
    (RequestError, 400, "invalid_request"),
    (BudgetError, 422, "budget_unsatisfiable"),
    (StaleStoreError, 503, "stale_store"),
    (StoreIntegrityError, 503, "store_corrupt"),
    (StoreError, 503, "store_unavailable"),
)

_KNOWN_ROUTES = {
    "/v1/health": "health",
    "/health": "health",
    "/v1/metrics": "metrics",
    "/metrics": "metrics",
    "/v1/query": "query",
    "/query": "query",
}


class _DropConnection(Exception):
    """Raised when fault injection wants the socket closed unanswered."""


class ServiceHandler(BaseHTTPRequestHandler):
    """Request handler bound to the server's engine."""

    server_version = "repro-service/2"
    protocol_version = "HTTP/1.1"
    # Keep-alive POSTs arrive as separate header/body segments; with
    # Nagle on, each response can stall ~40 ms behind the peer's
    # delayed ACK, flattening throughput at ~25 req/s per connection.
    disable_nagle_algorithm = True

    def setup(self):
        # StreamRequestHandler applies self.timeout to the connection
        # socket, bounding every read/write on this client.
        self.timeout = self.server.request_timeout
        self.request_id = "-"
        super().setup()

    # -- response plumbing --------------------------------------------

    def _send_json(self, status: int, payload: dict, close: bool = False) -> None:
        self._send_body(status, json.dumps(payload).encode(), close=close)

    def _send_body(
        self,
        status: int,
        body: bytes,
        close: bool = False,
        etag: str | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Request-Id", self.request_id)
        if etag is not None:
            self.send_header("ETag", etag)
        if status == 429:
            self.send_header("Retry-After", str(RETRY_AFTER_S))
        if close:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _send_not_modified(self, etag: str) -> None:
        # RFC 9110: 304 carries no body; the validator lets the client
        # keep serving its cached representation.
        self.send_response(304)
        self.send_header("ETag", etag)
        self.send_header("X-Request-Id", self.request_id)
        self.end_headers()

    def _send_error_json(
        self, status: int, code: str, message: str, close: bool = False
    ) -> None:
        self._send_json(
            status,
            {
                "ok": False,
                "error": {"code": code, "message": message},
                "request_id": self.request_id,
            },
            close=close,
        )

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        # Stdlib-internal notices (timeouts, protocol errors) join the
        # structured log rather than printing bare lines.
        self.server.obs_logger.log(
            "http_server", message=format % args, request_id=self.request_id
        )

    def log_request(self, code="-", size="-"):
        # _handle emits one structured line per request; the stdlib's
        # per-response line would duplicate it.
        pass

    # -- dispatch with logging / metrics / faults ---------------------

    def do_GET(self):
        self._handle(self._do_get)

    def do_POST(self):
        self._handle(self._do_post)

    def _handle(self, method) -> None:
        started = time.perf_counter()
        self.request_id = (
            self.headers.get("X-Request-Id") or uuid.uuid4().hex[:12]
        )
        route = _KNOWN_ROUTES.get(self.path, "other")
        server = self.server
        status: int | str = 500
        try:
            injector: FaultInjector = server.faults
            if injector.active:
                injected_ms = injector.maybe_latency()
                if injected_ms:
                    server.metrics.counter("faults_injected_latency").inc()
                if self.command == "POST" and injector.trip("drop_conn"):
                    raise _DropConnection
            with trace_span(
                "http.request",
                method=self.command,
                path=self.path,
                request_id=self.request_id,
            ):
                status = method()
        except _DropConnection:
            # Close without a response: exercises client-side retry.
            status = "dropped"
            self.close_connection = True
            server.metrics.counter("faults_dropped_connections").inc()
            try:
                self.connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        except (BrokenPipeError, ConnectionResetError, TimeoutError):
            status = "client_gone"
            self.close_connection = True
        except Exception as exc:  # last-ditch: structured, never a traceback
            status = 500
            try:
                self._send_error_json(
                    500, "internal", f"{type(exc).__name__}: {exc}", close=True
                )
            except OSError:
                self.close_connection = True
        dur_ms = (time.perf_counter() - started) * 1e3
        server.metrics.counter("http_requests").inc(
            label=f"{self.command} {route}"
        )
        server.metrics.counter("http_responses").inc(label=str(status))
        server.metrics.histogram("http_latency_ms").observe(dur_ms)
        server.obs_logger.log(
            "request",
            request_id=self.request_id,
            method=self.command,
            path=self.path,
            status=status,
            dur_ms=round(dur_ms, 3),
            remote=self.client_address[0],
        )
        if server.worker_metrics_dir is not None:
            export_worker_metrics(server)

    # -- GET: health and metrics --------------------------------------

    def _do_get(self) -> int:
        engine: QueryEngine = self.server.engine
        if self.path in ("/v1/health", "/health"):
            store = engine.store
            result = {
                "status": "serving",
                "store": str(store.root) if store is not None else None,
                "entries": engine.entry_count(),
                "cache": engine.stats,
                "inflight": self.server.metrics.gauge(
                    "http_inflight"
                ).snapshot(),
            }
            if self.server.worker_metrics_dir is not None:
                result["worker"] = self.server.worker_label
            self._send_json(200, {"ok": True, "result": result})
            return 200
        if self.path in ("/v1/metrics", "/metrics"):
            self._send_json(200, {"ok": True, "result": _metrics_view(self.server)})
            return 200
        self._send_error_json(404, "not_found", f"unknown path {self.path}")
        return 404

    # -- POST: the query endpoint -------------------------------------

    def _do_post(self) -> int:
        if self.path not in ("/v1/query", "/query"):
            self._send_error_json(404, "not_found", f"unknown path {self.path}")
            return 404
        server = self.server
        if not server.inflight_sem.acquire(blocking=False):
            server.metrics.counter("http_overload_rejections").inc()
            self._send_error_json(
                429, "overloaded",
                f"server is at its {server.max_inflight}-request "
                f"concurrency limit; retry after {RETRY_AFTER_S}s",
            )
            return 429
        server.metrics.gauge("http_inflight").add(1)
        try:
            return self._answer_query()
        finally:
            server.metrics.gauge("http_inflight").sub(1)
            server.inflight_sem.release()

    def _answer_query(self) -> int:
        transfer_encoding = self.headers.get("Transfer-Encoding", "")
        if "chunked" in transfer_encoding.lower():
            # We never read chunked bodies; draining one we can't parse
            # would desync keep-alive, so refuse and close cleanly.
            self._send_error_json(
                411, "length_required",
                "chunked transfer encoding is not supported; "
                "send Content-Length",
                close=True,
            )
            return 411
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_error_json(
                400, "invalid_request", "malformed Content-Length header"
            )
            return 400
        if length <= 0:
            self._send_error_json(
                400, "invalid_request", "request body is required"
            )
            return 400
        if length > MAX_BODY_BYTES:
            # The unread body would poison the next keep-alive request
            # on this connection, so close instead of draining 4 MiB+.
            self._send_error_json(
                413, "payload_too_large",
                f"request body exceeds {MAX_BODY_BYTES} bytes",
                close=True,
            )
            return 413
        body = self.rfile.read(length)
        if len(body) < length:
            self._send_error_json(
                400, "invalid_request",
                f"body truncated: got {len(body)} of {length} bytes",
                close=True,
            )
            return 400
        try:
            request = json.loads(body)
        except ValueError as exc:
            self._send_error_json(400, "invalid_json", f"body is not JSON: {exc}")
            return 400
        try:
            body_bytes, etag = self.server.engine.query_bytes(request)
        except Exception as exc:  # mapped to structured errors below
            for exc_type, status, code in _ERROR_STATUS:
                if isinstance(exc, exc_type):
                    self._send_error_json(status, code, str(exc))
                    return status
            self._send_error_json(500, "internal", f"{type(exc).__name__}: {exc}")
            return 500
        if self.headers.get("If-None-Match") == etag:
            # The client already holds these exact bytes; skip the body.
            self.server.metrics.counter("http_not_modified").inc()
            self._send_not_modified(etag)
            return 304
        self._send_body(200, body_bytes, etag=etag)
        return 200


def _metrics_view(server: ThreadingHTTPServer) -> dict:
    """The ``/v1/metrics`` payload, fleet-aggregated when pre-forked.

    Single-process servers render their own registry.  A pre-fork
    worker first force-exports its own snapshot, then merges every
    sibling's last export from the shared metrics directory, so any
    worker can answer for the whole fleet (load balancing means the
    scrape may land anywhere).
    """
    engine: QueryEngine = server.engine
    view: dict = {
        "uptime_s": round(time.monotonic() - server.started_monotonic, 3),
    }
    if server.worker_metrics_dir is None:
        stats = engine.stats
        view["engine_cache"] = _with_hit_rate(stats)
        view["faults"] = server.faults.trip_counts()
        view.update(server.metrics.snapshot())
        return view

    export_worker_metrics(server, force=True)
    snapshots = read_worker_snapshots(server.worker_metrics_dir)
    engine_cache: dict[str, int] = {}
    faults: dict[str, int] = {}
    for snap in snapshots.values():
        for key, value in snap.get("engine_cache", {}).items():
            engine_cache[key] = engine_cache.get(key, 0) + value
        for key, value in snap.get("faults", {}).items():
            faults[key] = faults.get(key, 0) + value
    view["worker"] = server.worker_label
    view["workers"] = sorted(snapshots)
    view["engine_cache"] = _with_hit_rate(engine_cache)
    view["faults"] = faults
    view.update(
        merge_registry_snapshots(
            [snap.get("instruments", {}) for snap in snapshots.values()]
        )
    )
    return view


def _with_hit_rate(stats: dict) -> dict:
    lookups = stats.get("hits", 0) + stats.get("misses", 0)
    return {
        **stats,
        "hit_rate": round(stats["hits"] / lookups, 4) if lookups else None,
    }


def _worker_snapshot(server: ThreadingHTTPServer) -> dict:
    return {
        "worker": server.worker_label,
        "pid": os.getpid(),
        "engine_cache": server.engine.stats,
        "faults": server.faults.trip_counts(),
        "instruments": server.metrics.snapshot(),
    }


def export_worker_metrics(server: ThreadingHTTPServer, force: bool = False) -> None:
    """Write this worker's snapshot to the shared metrics directory.

    Time-gated (``METRICS_EXPORT_INTERVAL_S``) so the per-request
    epilogue stays cheap under load; the write is atomic (tmp +
    ``os.replace``) so a sibling aggregating mid-write never reads a
    torn JSON file.
    """
    now = time.monotonic()
    if not force and now - server.last_metrics_export < METRICS_EXPORT_INTERVAL_S:
        return
    server.last_metrics_export = now
    directory = Path(server.worker_metrics_dir)
    target = directory / f"worker-{server.worker_label}.json"
    tmp = directory / f".worker-{server.worker_label}.json.tmp"
    try:
        tmp.write_text(json.dumps(_worker_snapshot(server)))
        os.replace(tmp, target)
    except OSError:
        pass  # metrics export must never take down a request


def read_worker_snapshots(directory: str | os.PathLike) -> dict[str, dict]:
    """All workers' last exported snapshots, keyed by worker label."""
    snapshots: dict[str, dict] = {}
    for path in sorted(Path(directory).glob("worker-*.json")):
        try:
            snap = json.loads(path.read_text())
        except (OSError, ValueError):
            continue  # sibling died mid-replace or file vanished
        label = snap.get("worker") or path.stem.removeprefix("worker-")
        snapshots[str(label)] = snap
    return snapshots


def make_server(
    engine: QueryEngine,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT_S,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    log_stream=None,
    faults: FaultInjector | None = None,
    metrics: MetricsRegistry | None = None,
    sock: socket.socket | None = None,
    worker_metrics_dir: str | os.PathLike | None = None,
    worker_label: str | None = None,
) -> ThreadingHTTPServer:
    """A ready-to-run server; ``port=0`` binds an ephemeral port.

    Args:
        request_timeout: per-connection socket timeout in seconds — a
            stalled client gets disconnected, not a parked thread.
        max_inflight: concurrent ``/v1/query`` bound; excess gets 429.
        log_stream: stream for JSON request logs (None + verbose →
            stderr; None + quiet → no logs).
        faults: fault injector (default: the process one, usually off).
        metrics: share a registry across servers (default: fresh).
        sock: an already-bound listening socket to adopt instead of
            binding ``(host, port)`` — how pre-fork workers share one
            address (SO_REUSEPORT siblings or an inherited socket).
        worker_metrics_dir: directory for per-worker metric snapshots;
            enables fleet aggregation on ``/v1/metrics``.
        worker_label: this worker's name in exported snapshots.
    """
    if sock is not None:
        server = ThreadingHTTPServer(
            sock.getsockname()[:2], ServiceHandler, bind_and_activate=False
        )
        server.socket.close()  # discard the unbound one from __init__
        server.socket = sock
        server.server_address = sock.getsockname()
        server.server_port = server.server_address[1]
        server.server_activate()
    else:
        server = ThreadingHTTPServer((host, port), ServiceHandler)
    server.engine = engine
    server.verbose = verbose
    server.request_timeout = request_timeout
    server.max_inflight = max_inflight
    server.inflight_sem = threading.BoundedSemaphore(max_inflight)
    server.metrics = metrics if metrics is not None else MetricsRegistry()
    server.faults = faults if faults is not None else get_injector()
    server.started_monotonic = time.monotonic()
    server.worker_metrics_dir = worker_metrics_dir
    server.worker_label = worker_label or str(os.getpid())
    server.last_metrics_export = 0.0
    if log_stream is not None:
        server.obs_logger = JsonLogger(log_stream)
    elif verbose:
        server.obs_logger = JsonLogger(sys.stderr)
    else:
        server.obs_logger = NullLogger()
    return server


def drain(server: ThreadingHTTPServer, deadline_s: float = DEFAULT_DRAIN_S) -> bool:
    """Graceful shutdown: wait for in-flight queries, then close.

    The caller must already have stopped the accept loop (``serve_forever``
    returned or ``server.shutdown()`` was called from another thread).
    Returns True if the server drained fully inside the deadline.
    """
    deadline = time.monotonic() + deadline_s
    gauge = server.metrics.gauge("http_inflight")
    drained = False
    while time.monotonic() < deadline:
        if gauge.snapshot()["current"] == 0:
            drained = True
            break
        time.sleep(0.01)
    server.server_close()
    server.obs_logger.log("shutdown", drained=drained)
    return drained


def shutdown_gracefully(
    server: ThreadingHTTPServer, deadline_s: float = DEFAULT_DRAIN_S
) -> bool:
    """Stop accepting, drain in-flight queries, close.  Call from a
    thread other than the one running ``serve_forever``."""
    server.shutdown()
    return drain(server, deadline_s)


def serve(
    engine: QueryEngine,
    host: str = "127.0.0.1",
    port: int = 8023,
    verbose: bool = True,
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT_S,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    faults: FaultInjector | None = None,
) -> None:
    """Serve until interrupted (the CLI's ``serve`` subcommand)."""
    server = make_server(
        engine,
        host,
        port,
        verbose=verbose,
        request_timeout=request_timeout,
        max_inflight=max_inflight,
        faults=faults,
    )
    bound_host, bound_port = server.server_address[:2]
    print(f"repro.service listening on http://{bound_host}:{bound_port}/v1/query")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        drain(server)
