"""Ablation: access-time-aware allocation (the paper's future work).

Section 6 proposes adding an access-time model (Wada et al.) as
another dimension of the cost/benefit analysis.  This bench sweeps a
cycle-time target: as the clock tightens, big/associative structures
drop out and the best achievable CPI rises — a finer-grained version
of Table 7's blanket 2-way restriction.
"""

from repro.core.allocator import Allocator
from repro.core.measure import BenefitCurves
from repro.experiments.common import format_table


def sweep():
    curves = BenefitCurves.for_suite("mach")
    allocator = Allocator(curves)
    rows = []
    for bound_ns in (12.0, 9.0, 7.5, 6.5):
        best = allocator.best(max_access_time_ns=bound_ns)
        rows.append({"max_access_ns": bound_ns, **best.row()})
    return rows


def test_access_time_ablation(benchmark, show):
    rows = benchmark(sweep)
    show("Ablation: best allocation vs access-time bound", format_table(rows))
    cpis = [r["total_cpi"] for r in rows]
    assert cpis == sorted(cpis)  # tighter clock, worse (or equal) CPI
