"""Figure 10: performance of set-associative instruction caches.

Miss ratio and CPI contribution vs cache size and associativity at a
fixed 4-word line, suite-averaged, under both OSes.  The paper's
shape: Ultrix gains mostly from 1-way -> 2-way on small caches, while
associativity keeps helping Mach over a broader range — but even an
8-way 4-KB I-cache cannot absorb Mach's long code paths (miss ratio
still over 0.03).
"""

from __future__ import annotations

from repro.core.configs import CacheConfig
from repro.core.cpi import CpiModel
from repro.core.measure import BenefitCurves
from repro.experiments.common import format_table
from repro.units import KB

CAPACITIES = tuple(k * KB for k in (2, 4, 8, 16, 32))
ASSOCS = (1, 2, 4, 8)
LINE_WORDS = 4


def run(os_name: str) -> dict[str, list[dict]]:
    """Return {"miss_ratio": rows, "cpi": rows} for one OS."""
    curves = BenefitCurves.for_suite(os_name)
    model = CpiModel()
    miss_rows = []
    cpi_rows = []
    for capacity in CAPACITIES:
        miss_row = {"capacity_kb": capacity // KB}
        cpi_row = {"capacity_kb": capacity // KB}
        for assoc in ASSOCS:
            config = CacheConfig(capacity, LINE_WORDS, assoc)
            miss_row[f"{assoc}-way"] = round(curves.icache_miss_ratio(config), 4)
            cpi_row[f"{assoc}-way"] = round(model.icache_cpi(curves, config), 3)
        miss_rows.append(miss_row)
        cpi_rows.append(cpi_row)
    return {"miss_ratio": miss_rows, "cpi": cpi_rows}


def main() -> None:
    """Print all four Figure 10 panels."""
    for os_name in ("ultrix", "mach"):
        panels = run(os_name)
        print(f"Figure 10 ({os_name}): I-cache miss ratio, 4-word line")
        print(format_table(panels["miss_ratio"]))
        print(f"\nFigure 10 ({os_name}): I-cache CPI contribution")
        print(format_table(panels["cpi"]))
        print()


if __name__ == "__main__":
    main()
