"""mpeg_play: Berkeley MPEG decoder displaying 610 compressed frames.

Structure per the paper (Section 4, Figure 2): reads a compressed
stream from the file system, spends most of its user time in decode
kernels (IDCT, dithering — small hot loops), and ships each frame to
the X display server.  OS interaction is therefore a mix of file reads
and display traffic; roughly 60% of its execution time lands in the
kernel, BSD server and X server under Mach.
"""

from repro.workloads.base import WorkloadSpec

MPEG_PLAY = WorkloadSpec(
    name="mpeg_play",
    description="mpeg_play V2.0 displaying 610 frames of compressed video",
    load_frac=0.20,
    store_frac=0.10,
    other_cpi=0.14,
    compute_instructions=25_000,
    hot_loop_bodies=(300, 800),
    hot_loop_fraction=0.75,
    loop_iterations=60,
    code_footprint_bytes=24 * 1024,
    text_bytes=384 * 1024,
    heap_pages=8,
    heap_record_words=4,
    stream_bytes=2 * 1024 * 1024,
    stream_run_words=8,
    stream_frac=0.12,
    service_mix={"read": 0.6, "ioctl": 0.15, "gettimeofday": 0.25},
    payload_bytes=1024,
    services_per_cycle=1,
    x_interaction_rate=0.50,
    page_fault_rate=0.03,
)
