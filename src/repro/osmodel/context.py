"""Generation context: turns modelled code paths into trace references.

The OS and workload models describe *what* executes (a routine of N
instructions in some segment, with data references drawn from given
emitters); the context turns that into interleaved, program-ordered
reference chunks and accumulates them in a trace builder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.memsim.types import AccessKind
from repro.osmodel.addrspace import AddressSpace, Segment
from repro.trace.events import TraceChunkBuilder
from repro.units import WORD_BYTES


@dataclass
class DataPart:
    """One batch of data references to interleave into a code run.

    Attributes:
        addresses: word addresses, in the order they should appear.
        kind: AccessKind.LOAD or AccessKind.STORE.
        mapped / kernel: translation attributes of the touched pages.
        asid: address space the translation belongs to.
        run_words: spatial run length — consecutive addresses in a run
            stay adjacent in program order when interleaved.
    """

    addresses: np.ndarray
    kind: AccessKind
    mapped: bool
    kernel: bool
    asid: int
    run_words: int = 1


class GenerationContext:
    """Mutable state threaded through one trace generation run.

    Args:
        seed: seed for the private random generator.
        target_references: generation stops soon after the builder holds
            this many references.
        builder: optional pre-built trace builder (the streaming path
            injects a :class:`~repro.trace.events.ChunkedTraceBuilder`
            here); defaults to an in-memory :class:`TraceChunkBuilder`.
    """

    def __init__(
        self,
        seed: int,
        target_references: int,
        builder: TraceChunkBuilder | None = None,
    ):
        self.rng = np.random.default_rng(seed)
        self.builder = TraceChunkBuilder() if builder is None else builder
        self.target_references = target_references
        self.page_faults = 0

    @property
    def done(self) -> bool:
        """True once the target reference count has been reached."""
        return self.builder.count >= self.target_references

    # -- code-address construction ----------------------------------------

    def straight_code(
        self,
        segment: Segment,
        offset: int,
        n_instr: int,
        basic_block_mean: int = 16,
        gap_mean: int = 10,
    ) -> np.ndarray:
        """Fetch addresses for one pass over a code path.

        Code is not perfectly sequential: the fetch stream consists of
        executed basic blocks (geometric length, mean
        ``basic_block_mean``) separated by *skipped* words (mean
        ``gap_mean``) — untaken branches, error paths and alignment
        padding that occupy line words without ever being fetched.
        Those gaps are what limit the payoff of very long cache lines:
        once the line exceeds the block length, each fill drags in
        words that are never executed, reproducing the paper's CPI
        upturn at 16-word I-cache lines and the sub-1/L miss-ratio
        scaling of Figure 9.  Pass ``basic_block_mean=None`` for a
        perfectly sequential path.  Paths longer than the segment wrap.
        """
        size_words = max(segment.size // WORD_BYTES, 1)
        start_word = (offset // WORD_BYTES) % size_words
        if basic_block_mean is None or n_instr <= 8:
            words = (np.arange(n_instr, dtype=np.int64) + start_word) % size_words
            return segment.base + words * WORD_BYTES
        estimated = max(int(2 * n_instr / basic_block_mean), 4)
        lengths = self.rng.geometric(1.0 / basic_block_mean, size=estimated)
        while lengths.sum() < n_instr:
            lengths = np.concatenate(
                [lengths, self.rng.geometric(1.0 / basic_block_mean, size=estimated)]
            )
        ends = np.cumsum(lengths)
        n_blocks = min(int(np.searchsorted(ends, n_instr) + 1), len(lengths))
        lengths = lengths[:n_blocks].astype(np.int64)
        gaps = self.rng.geometric(1.0 / max(gap_mean, 1), size=n_blocks).astype(
            np.int64
        )
        # Heavy tail: some gaps are entire never-executed functions
        # (error paths, unused library entries), far longer than any
        # cache line — lines falling wholly inside them are never
        # fetched at any line size, which is what finally turns long
        # lines into pure overhead.
        cold_function = self.rng.random(n_blocks) < 0.12
        gaps = np.where(
            cold_function, gaps + self.rng.integers(32, 160, size=n_blocks), gaps
        )
        gaps[0] = 0
        # Block i starts after all previous blocks and the skipped gaps.
        block_starts = start_word + np.cumsum(lengths + gaps) - lengths
        block_starts %= size_words
        ends = np.cumsum(lengths)
        total = int(ends[-1])
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            ends - lengths, lengths
        )
        words = (np.repeat(block_starts, lengths) + offsets) % size_words
        return (segment.base + words * WORD_BYTES)[:n_instr]

    def loop_code(
        self,
        segment: Segment,
        offset: int,
        body_instr: int,
        iterations: int,
        basic_block_mean: int = 16,
    ) -> np.ndarray:
        """Fetch addresses for a loop executed ``iterations`` times.

        The body's internal branch structure is generated once and
        repeated — a real loop body takes the same branches each pass.
        """
        body = self.straight_code(segment, offset, body_instr, basic_block_mean)
        return np.tile(body, iterations)

    # -- emission -----------------------------------------------------------

    def emit(
        self,
        space: AddressSpace,
        code_segment: Segment,
        code_addresses: np.ndarray,
        data_parts: list[DataPart] | None = None,
    ) -> None:
        """Interleave a code run with its data references and record it.

        Data runs are inserted at random instruction boundaries, with
        each spatial run kept contiguous, preserving program order
        within every part.
        """
        n_code = len(code_addresses)
        parts = [p for p in (data_parts or []) if len(p.addresses)]
        if not parts:
            self.builder.append(
                code_addresses,
                int(AccessKind.IFETCH),
                space.asid,
                code_segment.mapped,
                code_segment.kernel,
            )
            return

        data_addr = []
        data_kind = []
        data_mapped = []
        data_kernel = []
        data_asid = []
        positions = []
        for part in parts:
            n = len(part.addresses)
            run = max(1, part.run_words)
            n_runs = (n + run - 1) // run
            run_positions = np.sort(
                self.rng.integers(0, n_code + 1, size=n_runs)
            )
            pos = np.repeat(run_positions, run)[:n]
            positions.append(pos)
            data_addr.append(np.asarray(part.addresses, dtype=np.int64))
            data_kind.append(np.full(n, int(part.kind), dtype=np.uint8))
            data_mapped.append(np.full(n, part.mapped, dtype=bool))
            data_kernel.append(np.full(n, part.kernel, dtype=bool))
            data_asid.append(np.full(n, part.asid, dtype=np.uint8))

        positions = np.concatenate(positions)
        order = np.argsort(positions, kind="stable")
        positions = positions[order]
        data_addr = np.concatenate(data_addr)[order]
        data_kind = np.concatenate(data_kind)[order]
        data_mapped = np.concatenate(data_mapped)[order]
        data_kernel = np.concatenate(data_kernel)[order]
        data_asid = np.concatenate(data_asid)[order]

        addresses = np.insert(code_addresses, positions, data_addr)
        kinds = np.insert(
            np.full(n_code, int(AccessKind.IFETCH), dtype=np.uint8),
            positions,
            data_kind,
        )
        asids = np.insert(
            np.full(n_code, space.asid, dtype=np.uint8), positions, data_asid
        )
        mapped = np.insert(
            np.full(n_code, code_segment.mapped, dtype=bool), positions, data_mapped
        )
        kernel = np.insert(
            np.full(n_code, code_segment.kernel, dtype=bool), positions, data_kernel
        )
        self.builder.append_raw(addresses, kinds, asids, mapped, kernel)

    def split_loads_stores(
        self, n_instr: int, load_frac: float, store_frac: float
    ) -> tuple[int, int]:
        """Poisson-jittered load/store counts for a run of instructions."""
        loads = int(self.rng.poisson(max(n_instr * load_frac, 0.0)))
        stores = int(self.rng.poisson(max(n_instr * store_frac, 0.0)))
        return loads, stores
