"""Tests for CPI composition and the budgeted allocator."""

import pytest

from repro.core.allocator import Allocator
from repro.core.configs import CacheConfig, MemSystemConfig, TlbConfig
from repro.core.cpi import CpiModel
from repro.core.measure import measure_workload
from repro.errors import BudgetError
from repro.units import KB

SMALL_GRID = dict(
    capacities=(2 * KB, 4 * KB, 8 * KB),
    lines=(4, 8),
    assocs=(1, 2),
    tlb_entries=(64, 128),
    tlb_assocs=(1, 2),
    tlb_full_max=64,
    references=70_000,
)


@pytest.fixture(scope="module")
def curves():
    return measure_workload("ousterhout", "mach", **SMALL_GRID)


@pytest.fixture(scope="module")
def space_kwargs():
    from repro.core.space import enumerate_cache_configs, enumerate_tlb_configs

    return dict(
        tlbs=enumerate_tlb_configs(entries=(64, 128), assocs=(1, 2)),
        icaches=enumerate_cache_configs(
            capacities=(2 * KB, 4 * KB, 8 * KB), lines=(4, 8), assocs=(1, 2)
        ),
        dcaches=enumerate_cache_configs(
            capacities=(2 * KB, 4 * KB, 8 * KB), lines=(4, 8), assocs=(1, 2)
        ),
    )


class TestCpiModel:
    def test_cache_penalty(self):
        model = CpiModel()
        assert model.cache_penalty(1) == 6
        assert model.cache_penalty(8) == 13

    def test_total_is_sum_of_parts(self, curves):
        model = CpiModel()
        config = MemSystemConfig(
            TlbConfig(64, 2), CacheConfig(8 * KB, 4, 1), CacheConfig(4 * KB, 4, 1)
        )
        total = model.total_cpi(curves, config)
        parts = (
            1.0
            + curves.other_cpi
            + curves.wb_stall_per_instr
            + model.icache_cpi(curves, config.icache)
            + model.dcache_cpi(curves, config.dcache)
            + model.tlb_cpi(curves, config.tlb)
        )
        assert total == pytest.approx(parts)

    def test_include_fixed_false(self, curves):
        model = CpiModel()
        config = MemSystemConfig(
            TlbConfig(64, 2), CacheConfig(8 * KB, 4, 1), CacheConfig(4 * KB, 4, 1)
        )
        variable = model.total_cpi(curves, config, include_fixed=False)
        assert variable < model.total_cpi(curves, config)

    def test_penalties_are_parameters(self, curves):
        cheap = CpiModel(tlb_kernel_penalty=20)
        costly = CpiModel(tlb_kernel_penalty=800)
        config = TlbConfig(64, 1)
        assert costly.tlb_cpi(curves, config) >= cheap.tlb_cpi(curves, config)


class TestAllocator:
    def test_respects_budget(self, curves, space_kwargs):
        allocator = Allocator(curves, budget_rbes=80_000)
        for allocation in allocator.rank(**space_kwargs):
            assert allocation.area_rbe <= 80_000

    def test_sorted_by_cpi(self, curves, space_kwargs):
        allocator = Allocator(curves, budget_rbes=120_000)
        ranking = allocator.rank(**space_kwargs)
        cpis = [a.cpi for a in ranking]
        assert cpis == sorted(cpis)

    def test_best_is_first(self, curves, space_kwargs):
        allocator = Allocator(curves, budget_rbes=120_000)
        assert allocator.best(**space_kwargs) == allocator.rank(**space_kwargs)[0]

    def test_limit(self, curves, space_kwargs):
        allocator = Allocator(curves, budget_rbes=120_000)
        assert len(allocator.rank(limit=5, **space_kwargs)) == 5

    def test_assoc_restriction_never_improves_best(self, curves, space_kwargs):
        # Table 7's story: restricting cache associativity cannot beat
        # the unrestricted optimum.
        allocator = Allocator(curves, budget_rbes=120_000)
        free = allocator.best(**space_kwargs)
        restricted = allocator.best(max_cache_assoc=1, **space_kwargs)
        assert restricted.cpi >= free.cpi

    def test_bigger_budget_never_hurts(self, curves, space_kwargs):
        small = Allocator(curves, budget_rbes=60_000).best(**space_kwargs)
        large = Allocator(curves, budget_rbes=200_000).best(**space_kwargs)
        assert large.cpi <= small.cpi

    def test_impossible_budget_raises(self, curves, space_kwargs):
        allocator = Allocator(curves, budget_rbes=1_000)
        with pytest.raises(BudgetError):
            allocator.rank(**space_kwargs)

    def test_row_rendering(self, curves, space_kwargs):
        allocation = Allocator(curves, budget_rbes=120_000).best(**space_kwargs)
        row = allocation.row()
        assert {"tlb", "icache", "dcache", "total_cost_rbe", "total_cpi"} == set(row)


def _constant_curves(space_kwargs):
    """Synthetic curves where every same-line-size config scores the
    same CPI — a tie-heavy space for order-stability tests."""
    from repro.core.measure import StructureCurves

    icache = {
        (c.capacity_bytes, c.line_words, c.assoc): 0.01
        for c in space_kwargs["icaches"]
    }
    dcache = {
        (c.capacity_bytes, c.line_words, c.assoc): 0.02
        for c in space_kwargs["dcaches"]
    }
    tlb = {(t.entries, t.assoc): (50.0, 10.0) for t in space_kwargs["tlbs"]}
    return StructureCurves(
        workload="synthetic",
        os_name="mach",
        instructions=10_000,
        loads_per_instr=0.2,
        stores_per_instr=0.1,
        mapped_per_instr=1.1,
        other_cpi=0.3,
        wb_stall_per_instr=0.05,
        page_fault_per_instr=0.0,
        icache=icache,
        dcache=dcache,
        tlb=tlb,
    )


class TestAllocatorEdges:
    def test_budget_below_cheapest_raises(self, curves, space_kwargs):
        priced = Allocator(curves).price(**space_kwargs)
        cheapest = priced.min_area()
        allocator = Allocator(curves, budget_rbes=cheapest - 1.0)
        with pytest.raises(BudgetError):
            allocator.rank(**space_kwargs)

    def test_exact_budget_boundary_is_feasible(self, curves, space_kwargs):
        """A budget exactly equal to the cheapest configuration's area
        admits that configuration (<=, not <)."""
        priced = Allocator(curves).price(**space_kwargs)
        cheapest = priced.min_area()
        ranking = Allocator(curves, budget_rbes=cheapest).rank(**space_kwargs)
        assert len(ranking) >= 1
        assert all(a.area_rbe <= cheapest for a in ranking)
        assert any(a.area_rbe == cheapest for a in ranking)

    def test_exact_budget_admits_boundary_config(self, curves, space_kwargs):
        """Setting the budget to any mid-list configuration's exact
        area keeps that configuration feasible."""
        full = Allocator(curves, budget_rbes=float("inf")).rank(**space_kwargs)
        target = full[len(full) // 2]
        ranking = Allocator(curves, budget_rbes=target.area_rbe).rank(
            **space_kwargs
        )
        assert target in ranking
        assert all(a.area_rbe <= target.area_rbe for a in ranking)

    def test_cpi_ties_rank_in_stable_enumeration_order(self, space_kwargs):
        """With constant miss curves whole bands of configs tie on CPI;
        the vectorized rank must order them exactly like the reference
        loop (stable by enumeration order), run after run."""
        synthetic = _constant_curves(space_kwargs)
        allocator = Allocator(synthetic, budget_rbes=200_000)
        first = allocator.rank(**space_kwargs)
        second = allocator.rank(**space_kwargs)
        reference = allocator._rank_reference(**space_kwargs)
        assert first == second
        assert first == reference
        # The space really is tie-heavy — otherwise this tests nothing.
        cpis = [a.cpi for a in first]
        assert len(set(cpis)) < len(cpis)

    def test_priced_rank_matches_rank(self, curves, space_kwargs):
        from repro.core.allocator import rank_priced

        allocator = Allocator(curves, budget_rbes=120_000)
        priced = allocator.price(**space_kwargs)
        assert rank_priced(priced, 120_000) == allocator.rank(**space_kwargs)
