"""Length-prefixed binary batch protocol for the query service.

High-QPS batch clients spend most of their cycles JSON-encoding budget
sweeps and JSON-decoding allocation tables.  This module defines a
compact binary framing for exactly the ``batch`` query shape, spoken
over the normal ``POST /v1/query`` endpoint with::

    Content-Type: application/x-repro-batch

Every frame is ``magic (4 bytes) + u32 payload length (LE) + payload``;
a frame whose declared length disagrees with the bytes on the wire is
rejected (truncated frames get a structured 400, oversized ones a 413)
instead of being guessed at.  All floats cross the wire as raw IEEE-754
little-endian doubles, so ``area_rbe``/``cpi`` round-trip **bit-exactly**
— the decoded response reconstructs the same dict the JSON path
produces, including the derived ``total_cost_rbe``/``total_cpi`` columns
(``round`` over an identical double is deterministic), which is what the
differential tests hold.

Request payload::

    u16 n_os     + n_os x (u16 len, utf-8 os name)
    u32 n_budget + n_budget x f64 budget
    u32 limit            (0 encodes "unset" -> server default of 1)
    u32 max_cache_assoc  (0 encodes None)
    f64 max_access_time_ns (NaN encodes None)

Response payload::

    u32 n_results
    per result: u16 os len + os, f64 budget, u8 feasible,
                u32 n_alloc, per allocation:
                    f64 area_rbe, f64 cpi,
                    3 x (u16 len + label) for tlb / icache / dcache

Frame errors raise :class:`~repro.errors.RequestError` (mapped to a
structured 400 by the HTTP layer); the server bounds accepted payloads
with :data:`MAX_FRAME_PAYLOAD` (413 past it).
"""

from __future__ import annotations

import math
import struct

from repro.errors import RequestError

CONTENT_TYPE = "application/x-repro-batch"
REQUEST_MAGIC = b"RBQ1"
RESPONSE_MAGIC = b"RBR1"
MAX_FRAME_PAYLOAD = 4 * 1024 * 1024
"""Hard cap on a frame's declared payload length (matches the JSON
body cap; anything larger is shed with a 413 before it is parsed)."""

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_F64 = struct.Struct("<d")
_ALLOC_FIXED = struct.Struct("<dd")


class _Reader:
    """Bounds-checked cursor over one frame payload."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise RequestError(
                f"binary frame truncated: needed {n} bytes at offset "
                f"{self.pos}, payload is {len(self.data)} bytes"
            )
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def u16(self) -> int:
        return _U16.unpack(self.take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def f64(self) -> float:
        return _F64.unpack(self.take(8))[0]

    def string(self) -> str:
        raw = self.take(self.u16())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise RequestError(f"binary frame string is not UTF-8: {exc}")

    def done(self) -> None:
        if self.pos != len(self.data):
            raise RequestError(
                f"binary frame has {len(self.data) - self.pos} trailing "
                "bytes after the payload"
            )


def _frame(magic: bytes, payload: bytes) -> bytes:
    return magic + _U32.pack(len(payload)) + payload


def frame(magic: bytes, payload: bytes) -> bytes:
    """The inverse of :func:`split_frame`: wrap a payload in the
    ``magic + u32 length`` header.  The fleet router uses this to
    re-frame an already-split payload before proxying it upstream.
    """
    return _frame(magic, payload)


def split_frame(body: bytes, magic: bytes) -> bytes:
    """Strip and verify the ``magic + u32 length`` prefix.

    Raises:
        RequestError: bad magic, or declared length disagreeing with
            the actual body (truncated or trailing bytes).
    """
    if len(body) < 8:
        raise RequestError(
            f"binary frame too short for a header: {len(body)} bytes"
        )
    if body[:4] != magic:
        raise RequestError(
            f"binary frame magic {body[:4]!r} != expected {magic!r}"
        )
    declared = _U32.unpack(body[4:8])[0]
    actual = len(body) - 8
    if declared != actual:
        kind = "truncated" if actual < declared else "oversized"
        raise RequestError(
            f"binary frame {kind}: header declares {declared} payload "
            f"bytes, got {actual}"
        )
    return body[8:]


def frame_payload_length(body: bytes, magic: bytes) -> int | None:
    """The declared payload length, or None if the header is malformed.

    Used by the server to shed oversized frames (413) *before* parsing.
    """
    if len(body) < 8 or body[:4] != magic:
        return None
    return _U32.unpack(body[4:8])[0]


def _string(value: str) -> bytes:
    raw = value.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise RequestError(f"string field too long for the wire: {len(raw)}")
    return _U16.pack(len(raw)) + raw


# -- requests ----------------------------------------------------------


def encode_batch_request(request: dict) -> bytes:
    """One JSON-shaped batch request dict -> a framed binary request.

    Accepts the same spellings as the JSON endpoint (``os`` or
    ``os_names``); validation proper stays server-side.
    """
    os_names = request.get("os_names")
    if os_names is None:
        os_name = request.get("os")
        os_names = [os_name] if isinstance(os_name, str) else []
    budgets = request.get("budgets") or []
    limit = request.get("limit")
    max_cache_assoc = request.get("max_cache_assoc")
    max_access_time_ns = request.get("max_access_time_ns")
    parts = [_U16.pack(len(os_names))]
    parts += [_string(name) for name in os_names]
    parts.append(_U32.pack(len(budgets)))
    parts += [_F64.pack(float(b)) for b in budgets]
    parts.append(_U32.pack(int(limit) if limit else 0))
    parts.append(_U32.pack(int(max_cache_assoc) if max_cache_assoc else 0))
    parts.append(
        _F64.pack(
            float(max_access_time_ns)
            if max_access_time_ns is not None
            else math.nan
        )
    )
    return _frame(REQUEST_MAGIC, b"".join(parts))


def decode_batch_request(payload: bytes) -> dict:
    """A binary request payload -> the JSON-shaped batch request dict.

    The result goes through the same ``validate_request`` as JSON
    input, so limits (batch size, positivity) are enforced identically.
    """
    reader = _Reader(payload)
    os_names = [reader.string() for _ in range(reader.u16())]
    budgets = [reader.f64() for _ in range(reader.u32())]
    limit = reader.u32()
    max_cache_assoc = reader.u32()
    max_access_time_ns = reader.f64()
    reader.done()
    request: dict = {
        "type": "batch",
        "os_names": os_names,
        "budgets": budgets,
    }
    if limit:
        request["limit"] = limit
    if max_cache_assoc:
        request["max_cache_assoc"] = max_cache_assoc
    if not math.isnan(max_access_time_ns):
        request["max_access_time_ns"] = max_access_time_ns
    return request


# -- responses ---------------------------------------------------------


def encode_batch_response(result: dict) -> bytes:
    """The engine's batch result dict -> a framed binary response."""
    parts = [_U32.pack(len(result["results"]))]
    for row in result["results"]:
        parts.append(_string(row["os"]))
        parts.append(_F64.pack(row["budget"]))
        parts.append(bytes((1 if row["feasible"] else 0,)))
        allocations = row["allocations"]
        parts.append(_U32.pack(len(allocations)))
        for alloc in allocations:
            parts.append(_ALLOC_FIXED.pack(alloc["area_rbe"], alloc["cpi"]))
            parts.append(_string(alloc["tlb"]))
            parts.append(_string(alloc["icache"]))
            parts.append(_string(alloc["dcache"]))
    return _frame(RESPONSE_MAGIC, b"".join(parts))


def decode_batch_response(body: bytes) -> dict:
    """A framed binary response -> the JSON path's result dict.

    ``rank``/``total_cost_rbe``/``total_cpi`` are re-derived exactly as
    :func:`repro.service.engine.allocation_entry` derives them, from
    bit-identical doubles — so the decoded dict compares equal to the
    JSON endpoint's answer for the same question.
    """
    reader = _Reader(split_frame(body, RESPONSE_MAGIC))
    results = []
    for _ in range(reader.u32()):
        os_name = reader.string()
        budget = reader.f64()
        feasible = bool(reader.take(1)[0])
        allocations = []
        for rank in range(1, reader.u32() + 1):
            area_rbe, cpi = _ALLOC_FIXED.unpack(reader.take(16))
            allocations.append(
                {
                    "rank": rank,
                    "tlb": reader.string(),
                    "icache": reader.string(),
                    "dcache": reader.string(),
                    "total_cost_rbe": round(area_rbe),
                    "total_cpi": round(cpi, 3),
                    "area_rbe": area_rbe,
                    "cpi": cpi,
                }
            )
        results.append(
            {
                "os": os_name,
                "budget": budget,
                "feasible": feasible,
                "allocations": allocations,
            }
        )
    reader.done()
    return {"type": "batch", "count": len(results), "results": results}
