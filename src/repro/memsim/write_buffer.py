"""Write-buffer timing model.

The DECstation 3100 places a 4-entry write buffer between its
write-through D-cache and memory.  Stores enter the buffer and retire
at memory speed; the processor stalls only when a store finds the
buffer full.  The paper measures this component directly with Monster
(the "Write Buffer" CPI column of Tables 3 and 4); here it is
reproduced with an event-driven model over store arrival times.

Two implementations share the semantics:

* :class:`WriteBuffer` — the scalar event loop, one ``store(now)``
  call per store.  This is the executable specification; the
  differential tests run every stream through it.
* :class:`StreamingWriteBuffer` — the production path, a vectorized
  carried-state kernel that is **bit-identical** to the scalar loop
  for the non-decreasing arrival streams the timing pipeline produces
  (and falls back to the scalar loop, exactly, for anything else).

The vectorization rests on three identities of the scalar loop, valid
while presented arrival times ``b_k`` are non-decreasing (``b_k`` is
the raw time plus all accumulated stall *slip*):

1. ``finish_k = max(b_k, finish_{k-1}) + retire`` — whether or not
   store ``k`` stalls, memory starts it when both the store and the
   previous retire are ready.
2. store ``k`` stalls iff the buffer still holds ``depth`` entries
   after the completion sweep, which reduces to
   ``finish_{k-depth} > b_k``; the stall is exactly
   ``finish_{k-depth} - b_k``.
3. the buffer state is fully captured by the last ``depth`` finish
   times (zero-filled before the first store) plus the accumulated
   slip — a stall at ``k`` always evicts ``finish_{k-depth}`` and
   nothing older can still be resident.

Identity 1 is a Lindley recurrence: substituting
``c_k = finish_k - retire * (k+1)`` turns it into
``c_k = max(b_k - retire * k, c_{k-1})``, i.e. a running maximum,
which NumPy computes for a whole chunk at once.  Identity 2 then
yields every stall in the chunk — but each stall invalidates the
``b`` values *after* it (slip grows), so the kernel is optimistic:
assume no stall, compute the chunk, commit everything up to and
including the first violation (exact by identities 1-2, since slip
was genuinely constant up to there), absorb that one stall into the
slip, step a short scalar run to get past the stall cluster, and
resume vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_SCALAR_RUN = 32
"""Stores stepped scalar-ly after a stall before re-vectorizing —
stalls cluster (a full buffer usually stays nearly full for a few
stores), so retrying the vector path immediately would mostly waste
the setup."""

_SEG_MIN = 128
_SEG_MAX = 1 << 20


@dataclass
class WriteBufferResult:
    """Outcome of a write-buffer simulation.

    Attributes:
        stores: number of stores presented.
        stall_cycles: processor cycles lost waiting for a free slot.
    """

    stores: int = 0
    stall_cycles: int = 0


class WriteBuffer:
    """A depth-limited store buffer retiring one entry per fixed interval.

    Args:
        depth: number of buffered stores (4 on the DECstation 3100).
        retire_cycles: cycles for memory to retire one store.
    """

    def __init__(self, depth: int = 4, retire_cycles: int = 6):
        if depth < 1:
            raise ValueError("write buffer needs at least one entry")
        self.depth = depth
        self.retire_cycles = retire_cycles
        # Completion times of buffered stores, oldest first.
        self._completions: list[int] = []
        self._memory_free_at = 0
        self.result = WriteBufferResult()

    def store(self, now: int) -> int:
        """Present a store at cycle *now*; return the stall in cycles."""
        completions = self._completions
        while completions and completions[0] <= now:
            completions.pop(0)
        stall = 0
        if len(completions) >= self.depth:
            stall = completions[0] - now
            now = completions[0]
            completions.pop(0)
        start = max(now, self._memory_free_at)
        finish = start + self.retire_cycles
        completions.append(finish)
        self._memory_free_at = finish
        self.result.stores += 1
        self.result.stall_cycles += stall
        return stall


class StreamingWriteBuffer:
    """Write-buffer simulation fed store arrival times chunk by chunk.

    Carries the buffer occupancy and the accumulated *slip* (stall
    cycles that push every later arrival back) between chunks, so a
    chunked run is bit-identical to one :func:`simulate_write_buffer`
    call over the concatenated arrival times.

    Chunks whose presented arrivals stay non-decreasing run through
    the vectorized kernel (see the module docstring); the first
    out-of-order arrival drops the instance into the scalar event loop
    permanently — identity 3's window state is only equivalent to the
    buffer deque under monotone arrivals, so exactness requires
    staying scalar from then on.
    """

    def __init__(self, depth: int = 4, retire_cycles: int = 6):
        if depth < 1:
            raise ValueError("write buffer needs at least one entry")
        self.depth = depth
        self.retire_cycles = retire_cycles
        # Last `depth` finish times, oldest first; zero = "long done".
        self._fin = np.zeros(depth, dtype=np.int64)
        self._slip = 0
        self._last_b = 0
        self._counted_stalls = 0
        self._counted_stores = 0
        self._scalar: WriteBuffer | None = None

    # -- state conversion ------------------------------------------------

    def _go_scalar(self) -> WriteBuffer:
        """Materialize the scalar buffer from the window state (sticky)."""
        if self._scalar is None:
            wb = WriteBuffer(depth=self.depth, retire_cycles=self.retire_cycles)
            # Under monotone history the deque holds exactly the
            # windowed finishes still after the last presented arrival.
            wb._completions = [int(f) for f in self._fin if f > self._last_b]
            wb._memory_free_at = int(self._fin[-1])
            self._scalar = wb
        return self._scalar

    # -- feeding ---------------------------------------------------------

    def feed(self, store_times: np.ndarray, count_from: int = 0) -> None:
        """Present one chunk of arrival times; ``count_from`` is
        chunk-relative (earlier stores warm the buffer uncounted)."""
        t = np.asarray(store_times, dtype=np.int64).ravel()
        n = int(t.size)
        self._counted_stores += max(n - count_from, 0)
        if n == 0:
            return
        if self._scalar is None:
            monotone = bool((t[1:] >= t[:-1]).all()) and (
                int(t[0]) + self._slip >= self._last_b
            )
            if monotone:
                self._feed_vector(t, count_from)
                return
        self._feed_scalar(t, count_from)

    def _feed_scalar(self, t: np.ndarray, count_from: int) -> None:
        wb = self._go_scalar()
        slip = self._slip
        stalls = 0
        for i, tt in enumerate(t.tolist()):
            stall = wb.store(tt + slip)
            slip += stall
            if i >= count_from:
                stalls += stall
        self._slip = slip
        self._counted_stalls += stalls

    def _feed_vector(self, t: np.ndarray, count_from: int) -> None:
        depth = self.depth
        retire = self.retire_cycles
        fin = self._fin
        n = int(t.size)
        i = 0
        seg_len = min(max(n, _SEG_MIN), _SEG_MAX)
        while i < n:
            m = min(n - i, seg_len)
            b = t[i : i + m] + self._slip  # optimistic: slip constant
            # Lindley recurrence for the finish times (identity 1).
            k = np.arange(m, dtype=np.int64)
            c = b - retire * k
            c[0] = max(int(c[0]), int(fin[-1]))
            np.maximum.accumulate(c, out=c)
            f = c + retire * (k + 1)
            # Stall test (identity 2): finish_{k-depth} vs b_k.
            head = min(depth, m)
            prev = np.concatenate([fin[:head], f[: max(m - depth, 0)]])
            viol = np.flatnonzero(prev > b)
            if viol.size == 0:
                commit = m
                stall = 0
            else:
                commit = int(viol[0]) + 1
                stall = int(prev[viol[0]] - b[viol[0]])
                # Everything strictly before the first violation is
                # exact; the violating store's own b and finish are
                # exact too, so commit through it and absorb its
                # stall into the slip.  (Its finish per identity 1 is
                # unaffected by the stall.)
            if commit >= depth:
                fin = f[commit - depth : commit].copy()
            else:
                fin = np.concatenate([fin[commit:], f[:commit]])
            self._fin = fin
            self._last_b = int(b[commit - 1])
            if stall:
                self._slip += stall
                if i + commit - 1 >= count_from:
                    self._counted_stalls += stall
                # Adaptive segment sizing: an early violation means a
                # mostly-wasted vector pass, so shrink; a clean pass
                # earns a longer one.
                if commit < seg_len // 4:
                    seg_len = max(_SEG_MIN, seg_len // 2)
                i += commit
                i = self._scalar_run(t, i, count_from)
                fin = self._fin
            else:
                seg_len = min(_SEG_MAX, seg_len * 2)
                i += commit

    def _scalar_run(self, t: np.ndarray, i: int, count_from: int) -> int:
        """Step up to ``_SCALAR_RUN`` stores through the recurrences."""
        depth = self.depth
        retire = self.retire_cycles
        fin = self._fin.tolist()
        stop = min(i + _SCALAR_RUN, int(t.size))
        while i < stop:
            b = int(t[i]) + self._slip
            stall = fin[0] - b
            if stall > 0:
                self._slip += stall
                if i >= count_from:
                    self._counted_stalls += stall
            f = max(b + max(stall, 0), fin[-1]) + retire
            fin.pop(0)
            fin.append(f)
            self._last_b = b
            i += 1
        self._fin = np.asarray(fin, dtype=np.int64)
        return i

    def result(self) -> WriteBufferResult:
        """Aggregate result over the counted stores fed so far."""
        return WriteBufferResult(
            stores=self._counted_stores, stall_cycles=self._counted_stalls
        )


def simulate_write_buffer(
    store_times: np.ndarray,
    depth: int = 4,
    retire_cycles: int = 6,
    count_from: int = 0,
) -> WriteBufferResult:
    """Run a sequence of store arrival times through a write buffer.

    Args:
        store_times: non-decreasing cycle numbers at which stores issue
            (ignoring write-buffer stalls themselves; each stall pushes
            subsequent arrivals back, which the model accounts for).
        depth: buffer depth.
        retire_cycles: memory cycles per retired store.
        count_from: index of the first store whose stall is counted
            (earlier stores still warm the buffer state).

    Returns:
        Aggregate :class:`WriteBufferResult` covering the counted stores.
    """
    sim = StreamingWriteBuffer(depth=depth, retire_cycles=retire_cycles)
    sim.feed(store_times, count_from=count_from)
    return sim.result()


def simulate_write_buffer_reference(
    store_times: np.ndarray,
    depth: int = 4,
    retire_cycles: int = 6,
    count_from: int = 0,
) -> WriteBufferResult:
    """The scalar event-loop run of :func:`simulate_write_buffer`.

    Exists for the differential tests (and for callers that want the
    executable specification regardless of input shape); the
    vectorized path is asserted bit-identical to this one.
    """
    wb = WriteBuffer(depth=depth, retire_cycles=retire_cycles)
    slip = 0
    stalls = 0
    times = np.asarray(store_times).ravel()
    for i, t in enumerate(times.tolist()):
        stall = wb.store(int(t) + slip)
        slip += stall
        if i >= count_from:
            stalls += stall
    return WriteBufferResult(
        stores=max(int(times.size) - count_from, 0), stall_cycles=stalls
    )
