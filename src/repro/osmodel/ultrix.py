"""Ultrix structure model: a single-API monolithic kernel.

Service invocation is one trap into the kernel (the paper measures the
round-trip call/return path at under 100 instructions), the service
body runs in kernel text, and almost all kernel code and data live in
the unmapped k0seg window — so Ultrix exerts nearly no TLB pressure.
Payloads move with kernel copy loops between the unmapped buffer cache
and mapped user buffers, which is what drives Ultrix's large D-cache
and write-buffer stall components (Tables 3/4).
"""

from __future__ import annotations

from repro.memsim.types import AccessKind
from repro.osmodel.base import OperatingSystemModel
from repro.osmodel.context import DataPart, GenerationContext
from repro.osmodel.datastate import StreamBuffer
from repro.osmodel.services import ServiceSpec, lookup_service

TRAP_OFFSET = 0x2E000
RETURN_OFFSET = 0x2F000
FAULT_OFFSET = 0x74000

TRAP_INSTRUCTIONS = 45
RETURN_INSTRUCTIONS = 45


class UltrixModel(OperatingSystemModel):
    """Executable model of the Ultrix 3.1 structure (Figure 1, left)."""

    name = "ultrix"

    def _build_os_spaces(self) -> None:
        # Everything Ultrix adds lives in the kernel space built by the
        # base class; there are no extra server address spaces.
        pass

    def kernel_mapped_pages(self) -> int:
        # Only u-areas and page tables are mapped (kseg2); the active
        # set is small.
        return 8

    def _setup_os_emitters(self, ctx: GenerationContext) -> None:
        kernel = self.spaces["kernel"]
        self._emitters["file_cache"] = StreamBuffer(
            kernel.segment("data_unmapped"), 16, ctx.rng
        )

    # -- service invocation --------------------------------------------------

    def invoke_service(
        self, ctx: GenerationContext, service: ServiceSpec, caller: str = "task"
    ) -> None:
        kernel = self.spaces["kernel"]
        text = kernel.segment("text")
        caller_space = self.spaces[caller]

        # (a) one trap into the kernel ...
        ctx.emit(kernel, text, ctx.straight_code(text, TRAP_OFFSET, TRAP_INSTRUCTIONS, 32))

        # ... the service body, reading unmapped kernel metadata with a
        # sprinkle of mapped u-area/page-table references.
        self.run_service_body(
            ctx,
            service,
            kernel,
            text,
            self._emitters["kernel_meta"],
            metadata_mapped=False,
            metadata_kernel=True,
        )
        uarea = self._emitters["kernel_mapped"]
        ctx.emit(
            kernel,
            text,
            ctx.straight_code(text, service.body_offset + 0x400, 24),
            [DataPart(uarea.addresses(4), AccessKind.LOAD, True, True, 0, run_words=4)],
        )

        if service.copies_payload:
            self._copy_payload(ctx, service, caller_space)

        # (b) return directly to the caller.
        ctx.emit(
            kernel, text, ctx.straight_code(text, RETURN_OFFSET, RETURN_INSTRUCTIONS, 32)
        )

    def _copy_payload(
        self, ctx: GenerationContext, service: ServiceSpec, caller_space
    ) -> None:
        """Kernel copyin/copyout between the buffer cache and user memory."""
        kernel = self.spaces["kernel"]
        text = kernel.segment("text")
        words = self.workload.payload_bytes // 4
        cache = self._emitters["file_cache"]
        user_buffer = self._user_buffer(caller_space)
        reading = service.name in ("read", "socket_recv")
        cache_part = DataPart(
            cache.addresses(words),
            AccessKind.LOAD if reading else AccessKind.STORE,
            False,
            True,
            0,
            run_words=16,
        )
        user_part = DataPart(
            user_buffer.addresses(words),
            AccessKind.STORE if reading else AccessKind.LOAD,
            True,
            False,
            caller_space.asid,
            run_words=self.workload.stream_run_words or 8,
        )
        src, dst = (cache_part, user_part) if reading else (user_part, cache_part)
        self.emit_copy(
            ctx, kernel, text, service.body_offset + 0x800, words, src, dst
        )

    def _user_buffer(self, space):
        if space.name == "task" and "task_stream" in self._emitters:
            return self._emitters["task_stream"]
        if space.name == "xserver":
            return self._emitters["x_heap"]
        return self._emitters["task_heap"]

    # -- faults and display ---------------------------------------------------

    def handle_page_fault(self, ctx: GenerationContext) -> None:
        """In-kernel fault handling plus zero-fill of the new page."""
        kernel = self.spaces["kernel"]
        task = self.spaces["task"]
        text = kernel.segment("text")
        tables = self._emitters["kernel_mapped"]
        ctx.emit(
            kernel,
            text,
            ctx.straight_code(text, FAULT_OFFSET, 1400),
            [
                DataPart(
                    tables.addresses(20), AccessKind.LOAD, True, True, 0, run_words=4
                ),
                DataPart(
                    tables.addresses(6), AccessKind.STORE, True, True, 0, run_words=4
                ),
            ],
        )
        page = self._emitters["task_heap"].addresses(1024)
        self.emit_copy(
            ctx,
            kernel,
            text,
            FAULT_OFFSET + 0x1800,
            512,
            DataPart(page[:512], AccessKind.STORE, True, False, task.asid, 16),
            DataPart(page[512:], AccessKind.STORE, True, False, task.asid, 16),
        )

    def x_interaction(self, ctx: GenerationContext) -> None:
        """Task sends display data over a socket; the X server consumes it."""
        xserver = self.spaces["xserver"]
        self.invoke_service(ctx, lookup_service("socket_send"), caller="task")
        self.invoke_service(ctx, lookup_service("socket_recv"), caller="xserver")
        # X server renders: its own compute plus framebuffer stores.
        text = xserver.segment("text")
        code = ctx.loop_code(text, 0x2000, 600, 4)
        fb = self._emitters["x_fb"]
        heap = self._emitters["x_heap"]
        stack = self._emitters["x_stack"]
        ctx.emit(
            xserver,
            text,
            code,
            [
                DataPart(
                    heap.addresses(300), AccessKind.LOAD, True, False, xserver.asid, 8
                ),
                DataPart(
                    stack.addresses(200), AccessKind.LOAD, True, False, xserver.asid
                ),
                DataPart(
                    fb.addresses(700), AccessKind.STORE, True, False, xserver.asid, 16
                ),
            ],
        )
