"""Fault injection: the degradation paths, exercised on demand.

Covers the injector itself (spec parsing, determinism, trip budgets),
the store-read corruption seam and its retry loop, the HTTP-level
latency/drop faults, and the client helper's retry contract — the
point being that with faults armed the service still never emits an
unstructured 500.
"""

import threading

import pytest

from repro.core.measure import BenefitCurves, measure_workload
from repro.errors import ConfigError, StoreIntegrityError
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.engine import QueryEngine
from repro.service.faults import (
    DISABLED,
    FaultInjector,
    parse_faults,
    set_injector,
)
from repro.service.http import make_server
from repro.store import CurveStore, StoreKey

TEST_REFERENCES = 60_000


@pytest.fixture(scope="module")
def curves():
    single = measure_workload("ousterhout", "mach", references=TEST_REFERENCES)
    return BenefitCurves(os_name="mach", per_workload=[single])


@pytest.fixture(scope="module")
def store(tmp_path_factory, curves):
    store = CurveStore(tmp_path_factory.mktemp("faults-store") / "store")
    store.build(curves, StoreKey.current("mach", suite=("ousterhout",)))
    return store


@pytest.fixture
def process_injector():
    """Install an injector for the store seam; always restore."""
    installed = []

    def install(injector):
        installed.append(set_injector(injector))
        return injector

    yield install
    for previous in reversed(installed):
        set_injector(previous)


@pytest.fixture
def server(store):
    """A served engine whose lifetime the test controls."""
    servers = []

    def start(**kwargs):
        server = make_server(QueryEngine(store), port=0, **kwargs)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append(server)
        host, port = server.server_address[:2]
        return server, f"http://{host}:{port}"

    yield start
    for server in servers:
        server.shutdown()
        server.server_close()


class TestInjector:
    def test_parse_full_spec(self):
        injector = parse_faults(
            "corrupt_store=0.5,corrupt_store_limit=3,latency_ms=10,"
            "latency_prob=0.25,drop_conn=0.1,drop_conn_limit=2,seed=9"
        )
        assert injector.active
        assert injector.latency_ms == 10.0

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ConfigError, match="unknown fault spec key"):
            parse_faults("explode=1.0")

    def test_parse_rejects_bad_number(self):
        with pytest.raises(ConfigError, match="not a valid number"):
            parse_faults("corrupt_store=lots")

    def test_parse_rejects_bare_token(self):
        with pytest.raises(ConfigError, match="key=value"):
            parse_faults("corrupt_store")

    def test_probability_range_checked(self):
        with pytest.raises(ConfigError, match=r"\[0, 1\]"):
            FaultInjector(corrupt_store=1.5)

    def test_disabled_by_default(self):
        assert not DISABLED.active
        assert not DISABLED.trip("corrupt_store")
        assert DISABLED.maybe_latency() == 0.0

    def test_trip_budget_disarms(self):
        injector = FaultInjector(corrupt_store=1.0, corrupt_store_limit=2)
        assert injector.trip("corrupt_store")
        assert injector.trip("corrupt_store")
        assert not injector.trip("corrupt_store")
        assert not injector.active
        assert injector.trip_counts()["corrupt_store"] == 2

    def test_same_seed_same_draws(self):
        draws_a = [
            FaultInjector(drop_conn=0.5, seed=42).trip("drop_conn")
            for _ in range(1)
        ]
        injector_a = FaultInjector(drop_conn=0.5, seed=42)
        injector_b = FaultInjector(drop_conn=0.5, seed=42)
        draws_a = [injector_a.trip("drop_conn") for _ in range(50)]
        draws_b = [injector_b.trip("drop_conn") for _ in range(50)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)

    def test_corrupt_read_flips_one_byte(self):
        injector = FaultInjector(corrupt_store=1.0, seed=5)
        data = bytes(range(256))
        corrupted = injector.corrupt_read(data)
        assert corrupted != data
        assert len(corrupted) == len(data)
        assert sum(a != b for a, b in zip(corrupted, data)) == 1


class TestStoreSeam:
    def test_transient_corruption_recovers_via_retry(
        self, store, process_injector
    ):
        """One corrupted read, then clean: the load retries and wins."""
        process_injector(
            FaultInjector(corrupt_store=1.0, corrupt_store_limit=1, seed=2)
        )
        key = store.find_current("mach")
        loaded = store.load(key)
        assert loaded.os_name == "mach"

    def test_persistent_corruption_surfaces_typed_error(
        self, store, process_injector
    ):
        injector = process_injector(FaultInjector(corrupt_store=1.0, seed=2))
        key = store.find_current("mach")
        with pytest.raises(StoreIntegrityError, match="integrity"):
            store.load(key, retries=2)
        # initial attempt + both retries each drew a corruption
        assert injector.trip_counts()["corrupt_store"] == 3

    def test_retries_zero_fails_fast(self, store, process_injector):
        injector = process_injector(FaultInjector(corrupt_store=1.0, seed=2))
        key = store.find_current("mach")
        with pytest.raises(StoreIntegrityError):
            store.load(key, retries=0)
        assert injector.trip_counts()["corrupt_store"] == 1


class TestHttpSeams:
    def test_dropped_connections_recovered_by_client(self, server):
        srv, base = server(
            faults=FaultInjector(drop_conn=1.0, drop_conn_limit=2, seed=4)
        )
        client = ServiceClient(base, retries=4, backoff_s=0.01)
        result = client.query(
            {"type": "point", "os": "mach", "budget": 250_000, "limit": 1}
        )
        assert result["count"] == 1
        assert client.retries_used >= 2
        assert (
            srv.metrics.counter("faults_dropped_connections").total == 2
        )

    def test_latency_injection_shows_in_histogram(self, server):
        srv, base = server(faults=FaultInjector(latency_ms=30.0, seed=4))
        client = ServiceClient(base, retries=0)
        client.query({"type": "point", "os": "mach", "budget": 250_000})
        snapshot = srv.metrics.histogram("http_latency_ms").snapshot()
        assert snapshot["count"] >= 1
        assert snapshot["max_ms"] >= 30.0
        assert srv.metrics.counter("faults_injected_latency").total >= 1

    def test_no_unstructured_500_with_all_faults_armed(
        self, server, process_injector
    ):
        """The acceptance bar: chaos on, every response structured."""
        injector = process_injector(
            FaultInjector(
                corrupt_store=0.5,
                latency_ms=5.0,
                latency_prob=0.3,
                drop_conn=0.3,
                seed=11,
            )
        )
        srv, base = server(faults=injector)
        client = ServiceClient(base, retries=6, backoff_s=0.01)
        ok, unavailable = 0, 0
        for i in range(40):
            try:
                client.query(
                    {"type": "point", "os": "mach",
                     "budget": 150_000 + i * 1_000, "limit": 1}
                )
                ok += 1
            except ServiceClientError as exc:
                # Retries exhausted against a typed 503 is a legal
                # degraded outcome; an unstructured 500 is not.
                assert exc.status in (None, 503), exc
                assert exc.code in (None, "store_corrupt",
                                    "store_unavailable"), exc
                unavailable += 1
        assert ok > 0
        responses = srv.metrics.counter("http_responses").snapshot()
        assert "500" not in responses.get("by_label", {})


class TestClient:
    def test_non_retryable_error_fails_fast(self, server):
        _, base = server()
        client = ServiceClient(base, retries=5)
        with pytest.raises(ServiceClientError) as excinfo:
            client.query({"type": "point", "os": "mach"})  # missing budget
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid_request"
        assert excinfo.value.attempts == 1
        assert client.retries_used == 0

    def test_connect_refused_exhausts_retries(self):
        client = ServiceClient("http://127.0.0.1:9", retries=2,
                               backoff_s=0.01)
        with pytest.raises(ServiceClientError, match="retries exhausted"):
            client.query({"type": "point", "os": "mach", "budget": 1000})
        assert client.attempts_made == 3

    def test_retry_on_503_until_store_appears(self, tmp_path, store):
        """503s retry: a server over an empty store starts answering
        once curves are published under it."""
        empty_root = tmp_path / "late-store"
        engine = QueryEngine(CurveStore(empty_root))
        server = make_server(engine, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            client = ServiceClient(
                f"http://{host}:{port}", retries=8, backoff_s=0.05
            )

            def publish_soon():
                import shutil
                import time

                time.sleep(0.12)
                shutil.copytree(store.root, empty_root)

            publisher = threading.Thread(target=publish_soon)
            publisher.start()
            result = client.query(
                {"type": "point", "os": "mach", "budget": 250_000,
                 "limit": 1}
            )
            publisher.join()
            assert result["count"] == 1
            assert client.retries_used >= 1
        finally:
            server.shutdown()
            server.server_close()
