"""Differential and property tests for the greedy allocator.

The contract under test (see :mod:`repro.core.multiopt`): under a
single area budget the greedy optimum equals the exhaustive optimum —
bit-identical on measured spaces, within ``VALIDATED_RELATIVE_GAP``
in general; under a joint area x power budget greedy is a feasible
upper bound and ``rank_auto`` keeps exact semantics by dispatching to
the power-masked exhaustive ranking.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocator import (
    Allocator,
    rank_auto,
    rank_greedy,
    rank_priced,
    rank_priced_power,
)
from repro.core.measure import measure_workload
from repro.core.multiopt import (
    VALIDATED_RELATIVE_GAP,
    StructureCurve,
    exhaustive_best,
    greedy_allocate,
    pareto_surface,
    sweep_budgets,
)
from repro.core.space import enumerate_cache_configs, enumerate_tlb_configs
from repro.errors import BudgetError
from repro.units import KB

SMALL_GRID = dict(
    capacities=(2 * KB, 4 * KB, 8 * KB),
    lines=(4, 8),
    assocs=(1, 2),
    tlb_entries=(64, 128),
    tlb_assocs=(1, 2),
    tlb_full_max=64,
    references=60_000,
)


@pytest.fixture(scope="module", params=["mach", "ultrix"])
def priced(request):
    curves = measure_workload("ousterhout", request.param, **SMALL_GRID)
    allocator = Allocator(curves)
    return allocator.price(
        tlbs=enumerate_tlb_configs(
            SMALL_GRID["tlb_entries"],
            SMALL_GRID["tlb_assocs"],
            SMALL_GRID["tlb_full_max"],
        ),
        icaches=enumerate_cache_configs(
            SMALL_GRID["capacities"],
            SMALL_GRID["lines"],
            SMALL_GRID["assocs"],
        ),
        dcaches=enumerate_cache_configs(
            SMALL_GRID["capacities"],
            SMALL_GRID["lines"],
            SMALL_GRID["assocs"],
        ),
    )


def _random_budgets(priced, n=40, seed=7):
    """Random budgets spanning infeasible through unconstrained —
    never bitwise-equal to an entry area, so the grid and reference
    feasibility predicates agree (see the ordering contract; exact
    boundaries are tests/core/test_tie_breaks.py's job)."""
    grid = np.asarray(priced.area_grid).ravel()
    rng = np.random.default_rng(seed)
    return rng.uniform(float(grid.min()) * 0.5, float(grid.max()) * 1.1, n)


def _exact_budgets(priced, n=40, seed=7):
    """Budgets bitwise-equal to entry areas (boundary points)."""
    grid = np.asarray(priced.area_grid).ravel()
    rng = np.random.default_rng(seed)
    return rng.choice(grid, size=min(n, grid.size), replace=False)


class TestGreedyMatchesExhaustive:
    def test_small_grid_bitwise(self, priced):
        """Greedy == brute-force ranking, bit for bit, across budgets."""
        for budget in _random_budgets(priced):
            try:
                best = rank_priced(priced, float(budget), limit=1)[0]
            except BudgetError:
                with pytest.raises(BudgetError):
                    rank_greedy(priced, float(budget))
                continue
            greedy = rank_greedy(priced, float(budget))[0]
            assert greedy.cpi == best.cpi
            assert greedy.area_rbe == best.area_rbe
            assert greedy.config == best.config

    def test_small_grid_exact_boundaries(self, priced):
        """At exact entry-area budgets greedy matches the optimum under
        its grid feasibility predicate (rank_priced_power with an
        unbounded power budget ranks under exactly that mask)."""
        for budget in _exact_budgets(priced):
            best = rank_priced_power(
                priced, float(budget), float("inf"), limit=1
            )[0]
            greedy = rank_greedy(priced, float(budget))[0]
            assert greedy.cpi == best.cpi
            assert greedy.config == best.config

    @pytest.mark.slow
    def test_full_table5_grid_bitwise(self):
        """The paper-grid differential: greedy == Allocator.rank optima
        on the full Table 5 enumeration (random budgets), and the
        grid-predicate optima at exact entry areas."""
        curves = measure_workload("ousterhout", "mach", references=60_000)
        priced = Allocator(curves).price()
        grid = np.asarray(priced.area_grid).ravel()
        rng = np.random.default_rng(11)
        for budget in rng.uniform(float(grid.min()), float(grid.max()), 25):
            best = rank_priced(priced, float(budget), limit=1)[0]
            greedy = rank_greedy(priced, float(budget))[0]
            assert greedy.cpi == best.cpi
            assert greedy.config == best.config
        for budget in rng.choice(grid, size=25, replace=False):
            best = rank_priced_power(
                priced, float(budget), float("inf"), limit=1
            )[0]
            greedy = rank_greedy(priced, float(budget))[0]
            assert greedy.cpi == best.cpi
            assert greedy.config == best.config


class TestRankAuto:
    def test_auto_no_power_is_exact(self, priced):
        for budget in _random_budgets(priced, n=10):
            try:
                expect = rank_priced(priced, float(budget), limit=3)
            except BudgetError:
                continue
            assert rank_auto(priced, float(budget), limit=3) == expect

    def test_auto_power_uses_exact_ranking(self, priced):
        grid = np.asarray(priced.area_grid).ravel()
        budget = float(np.median(grid))
        power = float(np.median(np.asarray(priced.power_grid).ravel()))
        expect = rank_priced_power(priced, budget, power, limit=2)
        assert rank_auto(priced, budget, limit=2, power_budget_mw=power) == expect

    def test_forced_greedy_requires_limit_one(self, priced):
        with pytest.raises(ValueError):
            rank_auto(priced, 60_000.0, limit=3, method="greedy")

    def test_power_ranking_respects_both_budgets(self, priced):
        grid = np.asarray(priced.area_grid).ravel()
        power_grid = np.asarray(priced.power_grid).ravel()
        budget = float(np.quantile(grid, 0.6))
        power = float(np.quantile(power_grid, 0.4))
        for a in rank_priced_power(priced, budget, power, limit=50):
            assert a.area_rbe <= budget
        top = rank_priced_power(priced, budget, power, limit=1)[0]
        unconstrained = rank_priced(priced, budget, limit=1)[0]
        assert top.cpi >= unconstrained.cpi


def _synthetic(curves_spec, powers=None):
    out = []
    for idx, (areas, cpis) in enumerate(curves_spec):
        areas = np.asarray(areas, dtype=np.float64)
        cpis = np.asarray(cpis, dtype=np.float64)
        out.append(
            StructureCurve(
                name=f"s{idx}",
                areas=areas,
                cpis=cpis,
                keys=tuple(range(len(areas))),
                powers=(
                    np.asarray(powers[idx], dtype=np.float64)
                    if powers is not None
                    else None
                ),
            )
        )
    return out


class TestNonConvexRepair:
    def test_off_hull_optimum_is_recovered(self):
        """The optimum uses a point strictly above the convex hull —
        the hull walk can't reach it, the repair pass must."""
        structures = _synthetic(
            [
                # Point 1 (area 10, cpi 0.5) lies above the hull of
                # (0, 1.0) -> (20, 0.0); under budget 10 it is optimal.
                ([0.0, 10.0, 20.0], [1.0, 0.5, 0.0]),
                ([0.0], [0.0]),
            ]
        )
        result = greedy_allocate(structures, 10.0)
        exact = exhaustive_best(structures, 10.0)
        assert result.cpi == exact.cpi == 0.5
        assert result.choice[0] == 1

    def test_three_coordinate_trade(self):
        """An optimum differing from the greedy seed in three
        coordinates at once — pairwise trades alone cannot reach it,
        the anchored descent must."""
        structures = _synthetic(
            [
                ([0.0, 4.0, 6.0], [3.0, 1.4, 1.0]),
                ([0.0, 4.0, 6.0], [3.0, 1.4, 1.0]),
                ([0.0, 4.0, 6.0], [3.0, 1.4, 1.0]),
            ]
        )
        for budget in (12.0, 14.0, 16.0, 18.0):
            result = greedy_allocate(structures, budget)
            exact = exhaustive_best(structures, budget)
            gap = result.cpi - exact.cpi
            assert gap <= VALIDATED_RELATIVE_GAP * max(abs(exact.cpi), 1.0)

    def test_random_staircases_match_exhaustive(self):
        rng = np.random.default_rng(3)
        for _ in range(40):
            spec = []
            for _s in range(3):
                n = int(rng.integers(2, 7))
                areas = np.sort(rng.uniform(0, 50, n))
                cpis = np.sort(rng.uniform(0, 4, n))[::-1].copy()
                spec.append((areas, cpis))
            structures = _synthetic(spec)
            lo = float(sum(s.areas.min() for s in structures))
            hi = float(sum(s.areas.max() for s in structures))
            for budget in rng.uniform(lo, hi, 5):
                result = greedy_allocate(structures, float(budget))
                exact = exhaustive_best(structures, float(budget))
                gap = result.cpi - exact.cpi
                assert gap <= VALIDATED_RELATIVE_GAP * max(abs(exact.cpi), 1.0)


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(1.0, 500.0), min_size=1, max_size=8),
           st.integers(0, 2**32 - 1))
    def test_optimum_monotone_in_budget(self, budgets, seed):
        """More area can never hurt: optimum CPI is non-increasing as
        the budget grows."""
        rng = np.random.default_rng(seed)
        spec = []
        for _s in range(3):
            n = int(rng.integers(2, 6))
            areas = np.sort(rng.uniform(0, 60, n))
            cpis = np.sort(rng.uniform(0, 3, n))[::-1].copy()
            spec.append((areas, cpis))
        structures = _synthetic(spec)
        results = sweep_budgets(structures, sorted(budgets))
        cpis = [r.cpi for r in results if r is not None]
        assert cpis == sorted(cpis, reverse=True)
        # Feasibility is monotone too: once a budget fits, all larger
        # budgets fit.
        feas = [r is not None for r in results]
        assert feas == sorted(feas)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.floats(10.0, 400.0))
    def test_greedy_never_beats_exhaustive(self, seed, budget):
        rng = np.random.default_rng(seed)
        spec, powers = [], []
        for _s in range(3):
            n = int(rng.integers(2, 6))
            areas = np.sort(rng.uniform(0, 60, n))
            cpis = np.sort(rng.uniform(0, 3, n))[::-1].copy()
            spec.append((areas, cpis))
            powers.append(rng.uniform(0.1, 10, n))
        use_power = bool(rng.integers(0, 2))
        structures = _synthetic(spec, powers if use_power else None)
        power_budget = float(rng.uniform(5, 25)) if use_power else None
        try:
            result = greedy_allocate(
                structures, budget, power_budget=power_budget
            )
        except BudgetError:
            if power_budget is None:
                # Area-only feasibility is exact: greedy infeasible
                # implies truly infeasible.
                with pytest.raises(BudgetError):
                    exhaustive_best(structures, budget)
            # Under a joint budget greedy may miss a feasible point
            # (documented heuristic) — no claim to check.
            return
        exact = exhaustive_best(structures, budget, power_budget=power_budget)
        # Greedy answers are always feasible, never better than exact.
        assert result.area <= budget
        if power_budget is not None:
            assert result.power <= power_budget
        assert result.cpi >= exact.cpi or np.isclose(result.cpi, exact.cpi)


class TestParetoSurface:
    def test_cells_feasible_and_nondominated(self):
        rng = np.random.default_rng(5)
        spec, powers = [], []
        for _s in range(3):
            areas = np.sort(rng.uniform(0, 60, 5))
            cpis = np.sort(rng.uniform(0, 3, 5))[::-1].copy()
            spec.append((areas, cpis))
            powers.append(rng.uniform(0.1, 10, 5))
        structures = _synthetic(spec, powers)
        cells = pareto_surface(
            structures, [40.0, 80.0, 160.0], [6.0, 12.0, 24.0]
        )
        assert cells
        for cell in cells:
            assert cell.result.area <= cell.area_budget
            assert cell.result.power <= cell.power_budget
        # No two surviving cells share an achieved point, and none is
        # strictly dominated on the achieved (area, power, cpi) axes —
        # the surface's documented contract.
        achieved = [
            (c.result.area, c.result.power, c.result.cpi) for c in cells
        ]
        assert len(set(achieved)) == len(achieved)
        for a in cells:
            for b in cells:
                if a is b:
                    continue
                dominates = (
                    a.result.area <= b.result.area
                    and a.result.power <= b.result.power
                    and a.result.cpi <= b.result.cpi
                    and (
                        a.result.area < b.result.area
                        or a.result.power < b.result.power
                        or a.result.cpi < b.result.cpi
                    )
                )
                assert not dominates, (a, b)
