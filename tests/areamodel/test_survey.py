"""Tests for the Table 1 processor survey."""

from repro.areamodel.survey import PROCESSOR_SURVEY, survey_table


class TestSurvey:
    def test_all_thirteen_processors_present(self):
        assert len(PROCESSOR_SURVEY) == 13
        names = [p.name for p in PROCESSOR_SURVEY]
        assert "MIPS R4000" in names
        assert "Intel Pentium" in names
        assert "DEC 21064 (Alpha)" in names

    def test_table_rendering_columns(self):
        rows = survey_table()
        assert len(rows) == 13
        for row in rows:
            assert {"processor", "die_mm2", "icache", "dcache", "tlb"} <= set(row)

    def test_unified_caches_marked(self):
        rows = {r["processor"]: r for r in survey_table()}
        assert rows["Intel i486DX"]["dcache"] == "(unified)"
        assert rows["PowerPC 601"]["dcache"] == "(unified)"

    def test_area_predictions_within_survey_budget_scale(self):
        # Section 5.4 derives a 250,000 rbe budget from this survey;
        # priced designs should be in that neighbourhood (the PowerPC
        # 601's 32-KB unified cache is the big outlier allowed for).
        rows = survey_table()
        priced = [r["predicted_rbe"] for r in rows if r.get("predicted_rbe")]
        assert len(priced) >= 10
        assert all(10_000 < area < 400_000 for area in priced)

    def test_split_tlbs_priced_as_two_structures(self):
        pentium = next(p for p in PROCESSOR_SURVEY if p.name == "Intel Pentium")
        alpha = next(p for p in PROCESSOR_SURVEY if "21064" in p.name)
        assert len(pentium.tlb_parts) == 2
        assert len(alpha.tlb_parts) == 2
        assert pentium.total_memory_rbe() > 0

    def test_missing_data_yields_none(self):
        tera = next(p for p in PROCESSOR_SURVEY if p.name == "TeraSPARC")
        assert tera.total_memory_rbe() is None

    def test_non_power_of_two_interpolation(self):
        # SuperSPARC: 20-KB 5-way I-cache, 96-entry TLB on the R4000.
        viking = next(p for p in PROCESSOR_SURVEY if "SuperSPARC" in p.name)
        r4000 = next(p for p in PROCESSOR_SURVEY if p.name == "MIPS R4000")
        assert viking.total_memory_rbe() > 0
        assert r4000.total_memory_rbe() > 0
