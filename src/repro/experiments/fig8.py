"""Figure 8: set-associative TLB performance relative to a 256-entry
fully-associative TLB (video_play under Mach).

Performance is the ratio of the 256-entry FA TLB's service time to the
configuration's service time (1.0 = equal; higher = better).  The
paper's findings: >= 2-way set-associative TLBs of 128+ entries are
close to the FA reference, and 512-entry set-associative TLBs match it;
direct-mapped TLBs are poor and excluded from the plot.
"""

from __future__ import annotations

from repro.core.measure import measure_workload
from repro.experiments.common import format_table
from repro.monitor.tapeworm import PAGE_FAULT_SERVICE_CYCLES

WORKLOAD = "video_play"
SIZES = (64, 128, 256, 512)
ASSOCS = (2, 4, 8)
USER_PENALTY = 20
KERNEL_PENALTY = 400


def _service_cycles(curves, key) -> float:
    user, kernel = curves.tlb[key]
    other = (
        curves.page_fault_per_instr * curves.instructions * PAGE_FAULT_SERVICE_CYCLES
    )
    return user * USER_PENALTY + kernel * KERNEL_PENALTY + other


def run(os_name: str = "mach") -> list[dict]:
    """Return relative-performance rows per TLB size."""
    curves = measure_workload(
        WORKLOAD,
        os_name,
        tlb_entries=SIZES,
        tlb_full_max=256,
    )
    reference = _service_cycles(curves, (256, "full"))
    rows = []
    for size in SIZES:
        row = {"entries": size}
        for assoc in ASSOCS:
            cycles = _service_cycles(curves, (size, assoc))
            row[f"{assoc}-way"] = round(reference / cycles, 3) if cycles else None
        rows.append(row)
    return rows


def main() -> None:
    """Print the Figure 8 series."""
    print("Figure 8: set-associative TLB performance relative to a "
          "256-entry fully-associative TLB (video_play, Mach)")
    print(format_table(run()))


if __name__ == "__main__":
    main()
