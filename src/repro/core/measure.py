"""Per-structure benefit curves, measured once and reused everywhere.

Like the paper, the allocation sweep does not simulate every candidate
system; it composes total CPI from independently measured curves:
I-cache and D-cache miss-ratio grids over the Table 5 space and a TLB
miss table split into user/kernel misses.  One synthetic trace per
(workload, OS) feeds single-pass stack simulations; results are cached
on disk so reruns (tests, benchmarks, the allocator) are cheap.

Measurement decomposes into independent units — one per (workload, OS,
structure, line size) plus the TLB table and the timing pass — which
can fan out over a process pool.  Performance knobs:

* ``REPRO_SCALE`` scales trace lengths (default 1.0; larger values
  tighten estimates at the cost of runtime).
* ``REPRO_JOBS`` sets the worker-process count.  Explicit ``jobs``
  arguments (and the runner's ``--jobs`` flag) take precedence over
  the environment variable; the default is 1 (serial, in-process).
* ``REPRO_CACHE_DIR`` moves the measurement cache (default
  ``.repro-cache`` under the working directory).
* ``REPRO_TRACE_CACHE`` moves (or, set to ``off``, disables) the
  zero-copy trace plane (default ``.repro-trace-cache``): generated
  traces are published once as raw arrays and memory-mapped by every
  worker, so parallel measurement shares one physical copy instead of
  regenerating per process.

Worker processes persist across measurement calls (one shared pool per
``jobs`` count), so ``measure_suite`` and ``runner --all --jobs`` reuse
warm workers — and their trace memos — across workloads.

Cache writes go to a unique temporary file and are published with an
atomic ``os.replace``, so concurrent workers and interrupted runs
never corrupt the cache; corrupt or stale-format entries are evicted
and remeasured instead of crashing.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.areamodel.tlb_area import FULLY_ASSOCIATIVE
from repro.core.configs import CacheConfig, TlbConfig
from repro.errors import ConfigError
from repro.core.space import (
    TABLE5_CACHE_ASSOCS,
    TABLE5_CACHE_CAPACITIES,
    TABLE5_CACHE_LINES,
    TABLE5_TLB_ASSOCS,
    TABLE5_TLB_ENTRIES,
    TABLE5_TLB_FULL_MAX_ENTRIES,
)
from repro.memsim.multiconfig import (
    cache_miss_ratio_grid,
    cache_miss_ratio_grid_chunked,
    dedupe_consecutive,
)
from repro.memsim.stackdist import (
    StreamingStackDistance,
    fully_associative_miss_split,
    set_associative_miss_split,
)
from repro.memsim.timing import (
    DECSTATION_3100,
    simulate_system,
    simulate_system_stream,
)
from repro.trace import tracestore
from repro.units import PAGE_SHIFT, VPN_BITS

DEFAULT_REFERENCES = 700_000
DEFAULT_WARMUP = 0.4
CACHE_FORMAT_VERSION = 5


def _env_number(name: str, default: str, parse):
    """Parse a numeric environment variable, naming it on failure."""
    raw = os.environ.get(name, default)
    try:
        return parse(raw)
    except (TypeError, ValueError):
        raise ConfigError(
            f"{name} must be {'an integer' if parse is int else 'a number'}, "
            f"got {raw!r}"
        ) from None


def scale() -> float:
    """The REPRO_SCALE multiplier for trace lengths."""
    value = _env_number("REPRO_SCALE", "1.0", float)
    if value <= 0:
        raise ConfigError(f"REPRO_SCALE must be > 0, got {value!r}")
    return value


def cache_dir() -> Path:
    """Directory for measurement caching (created on demand)."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro-cache"))


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit argument, then REPRO_JOBS, then 1."""
    if jobs is None:
        jobs = _env_number("REPRO_JOBS", "1", int)
        if jobs < 1:
            raise ConfigError(f"REPRO_JOBS must be >= 1, got {jobs}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


@dataclass
class StructureCurves:
    """Measured benefit data for one (workload, OS) pair.

    Attributes:
        workload / os_name: identity.
        instructions: instructions in the measured (post-warmup) window.
        loads_per_instr / stores_per_instr: data-reference rates.
        mapped_per_instr: TLB-translated references per instruction.
        other_cpi: the workload's non-memory interlock CPI.
        wb_stall_per_instr: write-buffer stall cycles per instruction,
            measured at the reference (DECstation-like) configuration.
        page_fault_per_instr: page-fault rate (the "Other" TLB service
            component of Figure 7).
        icache: (capacity, line_words, assoc) -> misses per ifetch.
        dcache: (capacity, line_words, assoc) -> misses per load.
        tlb: (entries, assoc) -> (user_misses, kernel_misses) per
            measured window, normalized per instruction via
            ``instructions``.
    """

    workload: str
    os_name: str
    instructions: int
    loads_per_instr: float
    stores_per_instr: float
    mapped_per_instr: float
    other_cpi: float
    wb_stall_per_instr: float
    page_fault_per_instr: float
    icache: dict = field(default_factory=dict)
    dcache: dict = field(default_factory=dict)
    tlb: dict = field(default_factory=dict)

    def icache_miss_ratio(self, config: CacheConfig) -> float:
        """Misses per instruction fetch for an I-cache design point."""
        return self.icache[(config.capacity_bytes, config.line_words, config.assoc)]

    def dcache_miss_ratio(self, config: CacheConfig) -> float:
        """Misses per load for a D-cache design point."""
        return self.dcache[(config.capacity_bytes, config.line_words, config.assoc)]

    def tlb_misses_per_instr(self, config: TlbConfig) -> tuple[float, float]:
        """(user, kernel) TLB misses per instruction for a design point."""
        user, kernel = self.tlb[(config.entries, config.assoc)]
        return user / self.instructions, kernel / self.instructions


def _cache_key(**kwargs) -> str:
    text = repr(sorted(kwargs.items())) + f"|v{CACHE_FORMAT_VERSION}"
    return hashlib.sha256(text.encode()).hexdigest()[:24]


def _evict(path: Path) -> None:
    try:
        path.unlink()
    except OSError:
        pass


def _load_cached(key: str):
    """Load a cache entry, evicting corrupt or stale-format files.

    Entries are ``{"version": CACHE_FORMAT_VERSION, "value": ...}``
    payloads; anything unreadable (truncated write from a crashed run,
    a foreign file, an old payload format) is deleted and remeasured.
    """
    path = cache_dir() / f"{key}.pkl"
    if not path.exists():
        return None
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except Exception:
        # Truncated pickles raise UnpicklingError/EOFError; entries
        # from modules that have since moved raise ImportError or
        # AttributeError.  All mean the same thing: remeasure.
        _evict(path)
        return None
    if (
        not isinstance(payload, dict)
        or payload.get("version") != CACHE_FORMAT_VERSION
        or "value" not in payload
    ):
        _evict(path)
        return None
    return payload["value"]


def _store_cached(key: str, value) -> None:
    """Atomically publish a cache entry (safe under concurrent writers).

    Each writer dumps to its own temporary file and renames it into
    place, so readers only ever see complete pickles and the last
    writer wins without corruption.
    """
    directory = cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{key}.pkl"
    payload = {"version": CACHE_FORMAT_VERSION, "value": value}
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{key}-", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(payload, handle)
        os.replace(tmp_name, path)
    except BaseException:
        _evict(Path(tmp_name))
        raise


def _tlb_table(
    trace,
    entries_list: tuple[int, ...],
    assocs: tuple[int, ...],
    full_max_entries: int,
    warm: int,
) -> dict:
    """Measure the TLB miss table with warmup-aware stack passes."""
    mapped_idx = np.flatnonzero(trace.mapped)
    vpns = trace.addresses[mapped_idx] >> PAGE_SHIFT
    ids = (trace.asids[mapped_idx].astype(np.int64) << VPN_BITS) | vpns
    kernel = trace.kernel[mapped_idx]
    count_from = int((mapped_idx < warm).sum())
    # Consecutive same-page references are guaranteed hits.
    deduped, kernel_d = dedupe_consecutive(ids, kernel)
    if len(ids):
        keep = np.empty(len(ids), dtype=bool)
        keep[0] = True
        np.not_equal(ids[1:], ids[:-1], out=keep[1:])
        deduped_from = int(keep[:count_from].sum())
    else:
        deduped_from = 0

    table: dict = {}
    max_assoc = max(assocs)
    # Set-associative points: one pass per distinct set count.
    set_counts = sorted({n // a for n in entries_list for a in assocs if a <= n})
    for n_sets in set_counts:
        misses, kernel_misses = set_associative_miss_split(
            deduped, n_sets, max_assoc, kernel_d, count_from=deduped_from
        )
        for assoc in assocs:
            entries = n_sets * assoc
            if entries in entries_list:
                total = int(misses[assoc - 1])
                k = int(kernel_misses[assoc - 1])
                table[(entries, assoc)] = (total - k, k)
    # Fully-associative points in a single stack pass.
    fa_sizes = [n for n in entries_list if n <= full_max_entries]
    if fa_sizes:
        misses, kernel_misses = fully_associative_miss_split(
            deduped, fa_sizes, kernel_d, count_from=deduped_from
        )
        for size, total, k in zip(fa_sizes, misses, kernel_misses):
            table[(size, FULLY_ASSOCIATIVE)] = (int(total) - int(k), int(k))
    return table


def _tlb_table_stream(
    stream,
    entries_list: tuple[int, ...],
    assocs: tuple[int, ...],
    full_max_entries: int,
    warm: int,
) -> dict:
    """Chunk-streaming twin of :func:`_tlb_table` (bit-identical).

    The mapped-reference filter, the warmup boundary, the consecutive-
    duplicate dedupe (its last id carried across chunk boundaries) and
    every stack pass accumulate exactly the quantities the batch path
    computes over whole arrays.
    """
    max_assoc = max(assocs)
    set_counts = sorted({n // a for n in entries_list for a in assocs if a <= n})
    sims = {
        n_sets: StreamingStackDistance(n_sets, max_assoc, track_flags=True)
        for n_sets in set_counts
    }
    fa_sizes = [n for n in entries_list if n <= full_max_entries]
    fa_sim = (
        StreamingStackDistance(1, max(fa_sizes), track_flags=True)
        if fa_sizes
        else None
    )
    last_id = None
    for start, _stop, fields in stream.chunks(
        ("addresses", "asids", "mapped", "kernel")
    ):
        mapped_local = np.flatnonzero(fields["mapped"])
        if not len(mapped_local):
            continue
        vpns = fields["addresses"][mapped_local] >> PAGE_SHIFT
        ids = (fields["asids"][mapped_local].astype(np.int64) << VPN_BITS) | vpns
        kernel = np.asarray(fields["kernel"], dtype=bool)[mapped_local]
        raw_count_from = int((start + mapped_local < warm).sum())
        keep = np.empty(len(ids), dtype=bool)
        keep[0] = last_id is None or ids[0] != last_id
        np.not_equal(ids[1:], ids[:-1], out=keep[1:])
        deduped = ids[keep]
        kernel_d = kernel[keep]
        deduped_from = int(keep[:raw_count_from].sum())
        last_id = int(ids[-1])
        for sim in sims.values():
            sim.feed(deduped, kernel_d, count_from=deduped_from)
        if fa_sim is not None:
            fa_sim.feed(deduped, kernel_d, count_from=deduped_from)

    table: dict = {}
    for n_sets, sim in sims.items():
        misses = sim.miss_counts()
        kernel_misses = sim.flagged_miss_counts()
        for assoc in assocs:
            entries = n_sets * assoc
            if entries in entries_list:
                total = int(misses[assoc - 1])
                k = int(kernel_misses[assoc - 1])
                table[(entries, assoc)] = (total - k, k)
    if fa_sim is not None:
        sizes = np.asarray(fa_sizes, dtype=np.int64)
        misses = fa_sim.miss_counts()[sizes - 1]
        kernel_misses = fa_sim.flagged_miss_counts()[sizes - 1]
        for size, total, k in zip(fa_sizes, misses, kernel_misses):
            table[(size, FULLY_ASSOCIATIVE)] = (int(total) - int(k), int(k))
    return table


# ---------------------------------------------------------------------------
# Unit-level measurement: one (workload, OS) measurement decomposes
# into independent units — a cache grid per (structure, line size), the
# TLB table, and the reference timing pass — that run serially or fan
# out over a process pool.  Traces come from the zero-copy trace plane
# (repro.trace.tracestore): generated once, published to an mmap-backed
# on-disk cache, and shared by every worker through the OS page cache.
# A small per-process LRU memo keeps the hottest trace handles alive.

_worker_traces: dict[tuple, object] = {}


_WORKER_TRACE_CAP = 2


def _trace_for(workload: str, os_name: str, references: int, seed: int):
    key = (workload, os_name, references, seed)
    trace = _worker_traces.get(key)
    if trace is not None:
        # True LRU: refresh recency on hits too, otherwise the cap
        # evicts by insertion order and interleaved units can drop the
        # hottest trace.
        _worker_traces[key] = _worker_traces.pop(key)
        return trace
    # Evict only the least-recently-used entry (dict preserves
    # insertion order, and hits re-insert): clearing the whole memo
    # would drop a still-hot sibling trace and force interleaved units
    # to reload it every time.
    while len(_worker_traces) >= _WORKER_TRACE_CAP:
        _worker_traces.pop(next(iter(_worker_traces)))
    trace = tracestore.get_trace(workload, os_name, references, seed=seed)
    _worker_traces[key] = trace
    return trace


def _warm_trace(spec: tuple) -> tuple[tuple, bool]:
    """Publish one trace to the plane (pool warm-up task body).

    Returns ``(spec, published)``.  The warming worker also memoizes
    the trace, so the units it receives next hit its in-process LRU;
    a worker that already holds the trace skips the disk entirely.
    Traces long enough for the streaming path skip the memo — units
    will read them in chunks, never whole.
    """
    workload, os_name, references, seed = spec
    if spec in _worker_traces:
        return spec, False
    published = tracestore.ensure(workload, os_name, references, seed=seed)
    if not _use_streaming(references):
        _trace_for(workload, os_name, references, seed)
    return spec, published


def _use_streaming(references: int) -> bool:
    """Whether measurement units consume this trace chunk-streaming.

    Traces longer than one stream chunk are generated, stored and
    simulated in fixed-size windows so peak RSS stays bounded by the
    chunk size (``REPRO_STREAM_CHUNK``) regardless of ``REPRO_SCALE``.
    Requires the on-disk plane; with ``REPRO_TRACE_CACHE=off`` there is
    nowhere to stage chunks, so everything stays materialized.
    """
    return tracestore.enabled() and references > tracestore.stream_chunk_references()


# ---------------------------------------------------------------------------
# Persistent measurement pool: workers stay warm across measure_suite /
# runner --all calls, so their trace memos and imports amortize over a
# whole run instead of being re-paid per (workload, OS) measurement.
# The pool is keyed by the worker count plus the environment its
# workers inherited at fork; changing either retires the old pool.

_POOL_ENV_KEYS = (
    "REPRO_TRACE_CACHE",
    "REPRO_TRACE_CACHE_MAX",
    "REPRO_CACHE_DIR",
    "REPRO_SCALE",
    "REPRO_ENGINE",
    "REPRO_STREAM_CHUNK",
    "REPRO_TRACE_COMPRESS",
    "REPRO_TRACE_COMPRESS_LEVEL",
    "REPRO_TRACE_COMPRESS_BLOCK",
)

_pool: ProcessPoolExecutor | None = None
_pool_key: tuple | None = None


def _pool_env_snapshot() -> tuple:
    return tuple(os.environ.get(name) for name in _POOL_ENV_KEYS)


def _measurement_pool(jobs: int) -> ProcessPoolExecutor:
    """The shared worker pool for ``jobs`` workers (created on demand)."""
    global _pool, _pool_key
    key = (jobs, _pool_env_snapshot())
    if _pool is not None and _pool_key == key:
        return _pool
    shutdown_measurement_pool()
    _pool = ProcessPoolExecutor(max_workers=jobs)
    _pool_key = key
    return _pool


def shutdown_measurement_pool() -> None:
    """Retire the persistent pool (tests, atexit, broken-pool recovery)."""
    global _pool, _pool_key
    if _pool is not None:
        _pool.shutdown(wait=True, cancel_futures=True)
    _pool = None
    _pool_key = None


atexit.register(shutdown_measurement_pool)


def _pool_map(jobs: int, fn, items: list) -> list:
    """Map over the persistent pool, rebuilding it once if it broke.

    A worker killed mid-run (OOM, signal) poisons a process pool for
    every later submission; retiring and rebuilding it once retries the
    batch on fresh workers before giving up.
    """
    for attempt in (0, 1):
        pool = _measurement_pool(jobs)
        try:
            return list(pool.map(fn, items))
        except BrokenProcessPool:
            shutdown_measurement_pool()
            if attempt:
                raise
    raise AssertionError("unreachable")


def _measure_unit_stream(spec: tuple):
    """Chunk-streaming twin of :func:`_measure_unit` (bit-identical).

    Opens the trace as an on-disk :class:`~repro.trace.tracestore.
    TraceStream` and feeds every kernel one ``REPRO_STREAM_CHUNK``-sized
    window at a time, so peak RSS is bounded by the chunk size instead
    of the trace length.
    """
    (unit, workload, os_name, references, seed, warmup_fraction, params) = spec
    stream = tracestore.stream(workload, os_name, references, seed=seed)
    warm = int(stream.references * warmup_fraction)
    if unit in ("icache", "dcache"):
        capacities, line_words, assocs = params
        kind_code = 0 if unit == "icache" else 1
        field = "ifetch_physical" if unit == "icache" else "load_physical"
        # How many of the first `warm` references are this kind — the
        # same count the batch path gets from flatnonzero(kinds) < warm.
        stream_warm = 0
        for start, _stop, fields in stream.chunks(("kinds",)):
            if start >= warm:
                break
            head = fields["kinds"][: warm - start]
            stream_warm += int((head == kind_code).sum())
        stream_len = stream.count(field)
        return cache_miss_ratio_grid_chunked(
            (fields[field] for _s, _e, fields in stream.chunks((field,))),
            stream_len,
            list(capacities),
            [line_words],
            list(assocs),
            warmup_fraction=stream_warm / max(stream_len, 1),
        )
    if unit == "tlb":
        tlb_entries, tlb_assocs, tlb_full_max = params
        return _tlb_table_stream(
            stream, tlb_entries, tlb_assocs, tlb_full_max, warm
        )
    if unit == "timing":
        totals = {"instructions": 0, "loads": 0, "stores": 0, "mapped": 0}

        def chunks_with_counts():
            for start, _stop, fields in stream.chunks(
                ("addresses", "physical", "kinds", "asids", "mapped", "kernel")
            ):
                kinds = fields["kinds"]
                lo = min(max(warm - start, 0), len(kinds))
                counted = kinds[lo:]
                totals["instructions"] += int((counted == 0).sum())
                totals["loads"] += int((counted == 1).sum())
                totals["stores"] += int((counted == 2).sum())
                totals["mapped"] += int(fields["mapped"][lo:].sum())
                yield fields

        reference_timing = simulate_system_stream(
            chunks_with_counts(),
            stream.references,
            stream.other_cpi,
            DECSTATION_3100,
            warmup_fraction=warmup_fraction,
        )
        return {
            "instructions": totals["instructions"],
            "loads": totals["loads"],
            "stores": totals["stores"],
            "mapped": totals["mapped"],
            "other_cpi": stream.other_cpi,
            "wb_stall": reference_timing.cpi_components["write_buffer"],
            "page_fault_per_instr": stream.page_faults
            / max(stream.count("ifetch_physical"), 1),
        }
    raise ValueError(f"unknown measurement unit {unit!r}")


def _measure_unit(spec: tuple):
    """Compute one measurement unit; runs in-process or in a worker."""
    (unit, workload, os_name, references, seed, warmup_fraction, params) = spec
    if _use_streaming(references):
        return _measure_unit_stream(spec)
    trace = _trace_for(workload, os_name, references, seed)
    warm = int(len(trace) * warmup_fraction)
    if unit in ("icache", "dcache"):
        capacities, line_words, assocs = params
        kind_code = 0 if unit == "icache" else 1
        stream = (
            trace.ifetch_physical() if unit == "icache" else trace.load_physical()
        )
        stream_warm = int((np.flatnonzero(trace.kinds == kind_code) < warm).sum())
        return cache_miss_ratio_grid(
            stream,
            list(capacities),
            [line_words],
            list(assocs),
            warmup_fraction=stream_warm / max(len(stream), 1),
        )
    if unit == "tlb":
        tlb_entries, tlb_assocs, tlb_full_max = params
        return _tlb_table(trace, tlb_entries, tlb_assocs, tlb_full_max, warm)
    if unit == "timing":
        kinds = trace.kinds[warm:]
        instructions = int((kinds == 0).sum())
        reference_timing = simulate_system(
            trace, DECSTATION_3100, warmup_fraction=warmup_fraction
        )
        return {
            "instructions": instructions,
            "loads": int((kinds == 1).sum()),
            "stores": int((kinds == 2).sum()),
            "mapped": int(trace.mapped[warm:].sum()),
            "other_cpi": trace.other_cpi,
            "wb_stall": reference_timing.cpi_components["write_buffer"],
            "page_fault_per_instr": trace.page_faults
            / max(trace.instructions, 1),
        }
    raise ValueError(f"unknown measurement unit {unit!r}")


@dataclass(frozen=True)
class _MeasureOpts:
    capacities: tuple[int, ...]
    lines: tuple[int, ...]
    assocs: tuple[int, ...]
    tlb_entries: tuple[int, ...]
    tlb_assocs: tuple[int, ...]
    tlb_full_max: int
    references: int
    warmup_fraction: float
    seed: int

    def cache_key(self, workload: str, os_name: str) -> str:
        return _cache_key(
            kind="curves",
            workload=workload,
            os_name=os_name,
            capacities=self.capacities,
            lines=self.lines,
            assocs=self.assocs,
            tlb_entries=self.tlb_entries,
            tlb_assocs=self.tlb_assocs,
            tlb_full_max=self.tlb_full_max,
            references=self.references,
            warmup=self.warmup_fraction,
            seed=self.seed,
        )

    def unit_specs(self, workload: str, os_name: str) -> list[tuple]:
        common = (
            workload,
            os_name,
            self.references,
            self.seed,
            self.warmup_fraction,
        )
        specs = [
            ("icache", *common, (self.capacities, lw, self.assocs))
            for lw in self.lines
        ]
        specs += [
            ("dcache", *common, (self.capacities, lw, self.assocs))
            for lw in self.lines
        ]
        specs.append(
            ("tlb", *common, (self.tlb_entries, self.tlb_assocs, self.tlb_full_max))
        )
        specs.append(("timing", *common, None))
        return specs


def _assemble_curves(
    workload: str, os_name: str, specs: list[tuple], outputs: list
) -> StructureCurves:
    icache: dict = {}
    dcache: dict = {}
    tlb: dict = {}
    stats: dict = {}
    for spec, output in zip(specs, outputs):
        unit = spec[0]
        if unit == "icache":
            icache.update(output)
        elif unit == "dcache":
            dcache.update(output)
        elif unit == "tlb":
            tlb = output
        else:
            stats = output
    instructions = stats["instructions"]
    return StructureCurves(
        workload=workload,
        os_name=os_name,
        instructions=instructions,
        loads_per_instr=stats["loads"] / instructions,
        stores_per_instr=stats["stores"] / instructions,
        mapped_per_instr=stats["mapped"] / instructions,
        other_cpi=stats["other_cpi"],
        wb_stall_per_instr=stats["wb_stall"],
        page_fault_per_instr=stats["page_fault_per_instr"],
        icache=icache,
        dcache=dcache,
        tlb=tlb,
    )


def _measure_pairs(
    pairs: list[tuple[str, str]],
    opts: _MeasureOpts,
    use_cache: bool,
    jobs: int,
) -> list[StructureCurves]:
    """Measure several (workload, OS) pairs, fanning units over a pool."""
    results: dict[tuple[str, str], StructureCurves] = {}
    todo: list[tuple[str, str]] = []
    for pair in pairs:
        cached = _load_cached(opts.cache_key(*pair)) if use_cache else None
        if cached is not None:
            results[pair] = cached
        else:
            todo.append(pair)

    if todo:
        pair_specs = {pair: opts.unit_specs(*pair) for pair in todo}
        flat = [spec for specs in pair_specs.values() for spec in specs]
        if jobs > 1:
            if tracestore.enabled():
                # Publish every *missing* trace once (generation fans
                # out across the pool, one pair per worker) so the unit
                # fan-out memmaps shared bytes instead of regenerating
                # the same trace in every worker.  Already-published
                # entries skip the warm-up round trip: workers memmap
                # them on demand.
                missing = [
                    (w, o, opts.references, opts.seed)
                    for w, o in todo
                    if not tracestore.has(
                        tracestore.key_for(w, o, opts.references, opts.seed)
                    )
                ]
                if missing:
                    _pool_map(jobs, _warm_trace, missing)
            flat_outputs = _pool_map(jobs, _measure_unit, flat)
        else:
            flat_outputs = [_measure_unit(spec) for spec in flat]
        cursor = 0
        for pair in todo:
            specs = pair_specs[pair]
            outputs = flat_outputs[cursor : cursor + len(specs)]
            cursor += len(specs)
            curves = _assemble_curves(*pair, specs, outputs)
            if use_cache:
                _store_cached(opts.cache_key(*pair), curves)
            results[pair] = curves
    return [results[pair] for pair in pairs]


def measure_workload(
    workload: str,
    os_name: str,
    capacities: tuple[int, ...] = TABLE5_CACHE_CAPACITIES,
    lines: tuple[int, ...] = TABLE5_CACHE_LINES,
    assocs: tuple[int, ...] = TABLE5_CACHE_ASSOCS,
    tlb_entries: tuple[int, ...] = TABLE5_TLB_ENTRIES,
    tlb_assocs: tuple[int, ...] = TABLE5_TLB_ASSOCS,
    tlb_full_max: int = TABLE5_TLB_FULL_MAX_ENTRIES,
    references: int | None = None,
    warmup_fraction: float = DEFAULT_WARMUP,
    seed: int = 1,
    use_cache: bool = True,
    jobs: int | None = None,
) -> StructureCurves:
    """Measure all benefit curves for one (workload, OS) pair.

    Results are cached on disk keyed by every parameter, so repeated
    calls (from tests, benches and the allocator) cost one pickle load.
    ``jobs`` (argument, then REPRO_JOBS, then 1) fans the measurement
    units out over worker processes.
    """
    opts = _MeasureOpts(
        capacities=tuple(capacities),
        lines=tuple(lines),
        assocs=tuple(assocs),
        tlb_entries=tuple(tlb_entries),
        tlb_assocs=tuple(tlb_assocs),
        tlb_full_max=tlb_full_max,
        references=int(
            references if references is not None else DEFAULT_REFERENCES * scale()
        ),
        warmup_fraction=warmup_fraction,
        seed=seed,
    )
    return _measure_pairs(
        [(workload, os_name)], opts, use_cache, resolve_jobs(jobs)
    )[0]


def measure_suite(
    os_name: str,
    workloads: tuple[str, ...] | None = None,
    capacities: tuple[int, ...] = TABLE5_CACHE_CAPACITIES,
    lines: tuple[int, ...] = TABLE5_CACHE_LINES,
    assocs: tuple[int, ...] = TABLE5_CACHE_ASSOCS,
    tlb_entries: tuple[int, ...] = TABLE5_TLB_ENTRIES,
    tlb_assocs: tuple[int, ...] = TABLE5_TLB_ASSOCS,
    tlb_full_max: int = TABLE5_TLB_FULL_MAX_ENTRIES,
    references: int | None = None,
    warmup_fraction: float = DEFAULT_WARMUP,
    seed: int = 1,
    use_cache: bool = True,
    jobs: int | None = None,
) -> list[StructureCurves]:
    """Measure every workload of the suite under one OS.

    With ``jobs > 1`` the units of *all* uncached workloads are pooled
    into one process-pool submission, so parallelism spans workloads as
    well as structures.
    """
    from repro.workloads.registry import workload_names

    names = workloads if workloads is not None else tuple(workload_names())
    opts = _MeasureOpts(
        capacities=tuple(capacities),
        lines=tuple(lines),
        assocs=tuple(assocs),
        tlb_entries=tuple(tlb_entries),
        tlb_assocs=tuple(tlb_assocs),
        tlb_full_max=tlb_full_max,
        references=int(
            references if references is not None else DEFAULT_REFERENCES * scale()
        ),
        warmup_fraction=warmup_fraction,
        seed=seed,
    )
    return _measure_pairs(
        [(name, os_name) for name in names], opts, use_cache, resolve_jobs(jobs)
    )


def warm_traces(
    os_names: tuple[str, ...] | None = None,
    workloads: tuple[str, ...] | None = None,
    references: int | None = None,
    seed: int = 1,
    jobs: int | None = None,
) -> list[tuple[str, str, bool]]:
    """Pre-publish every (workload, OS) trace to the trace plane.

    Returns ``(workload, os_name, published)`` per pair, where
    ``published`` is False for traces that were already cached.  With
    ``jobs > 1`` generation fans out over the persistent pool, one
    pair per worker.  Raises :class:`~repro.errors.ConfigError` when
    the plane is disabled (``REPRO_TRACE_CACHE=off``) — there is
    nowhere to warm.
    """
    if not tracestore.enabled():
        raise ConfigError(
            "cannot warm traces: the trace cache is disabled "
            "(REPRO_TRACE_CACHE=off)"
        )
    if os_names is None:
        from repro.trace.generator import OS_MODELS

        os_names = tuple(sorted(OS_MODELS))
    if workloads is None:
        from repro.workloads.registry import workload_names

        workloads = tuple(workload_names())
    if references is None:
        references = int(DEFAULT_REFERENCES * scale())
    specs = [
        (workload, os_name, references, seed)
        for os_name in os_names
        for workload in workloads
    ]
    jobs = resolve_jobs(jobs)
    if jobs > 1:
        outcomes = _pool_map(jobs, _warm_trace, specs)
    else:
        outcomes = [_warm_trace(spec) for spec in specs]
    return [
        (spec[0], spec[1], published) for spec, published in outcomes
    ]


@dataclass
class BenefitCurves:
    """Suite-averaged benefit curves (what the allocator consumes)."""

    os_name: str
    per_workload: list[StructureCurves]

    def icache_miss_ratio(self, config: CacheConfig) -> float:
        """Suite-average I-cache misses per instruction fetch."""
        return float(
            np.mean([c.icache_miss_ratio(config) for c in self.per_workload])
        )

    def dcache_miss_ratio(self, config: CacheConfig) -> float:
        """Suite-average D-cache misses per load."""
        return float(
            np.mean([c.dcache_miss_ratio(config) for c in self.per_workload])
        )

    def tlb_misses_per_instr(self, config: TlbConfig) -> tuple[float, float]:
        """Suite-average (user, kernel) TLB misses per instruction."""
        pairs = [c.tlb_misses_per_instr(config) for c in self.per_workload]
        return (
            float(np.mean([p[0] for p in pairs])),
            float(np.mean([p[1] for p in pairs])),
        )

    @property
    def loads_per_instr(self) -> float:
        """Suite-average loads per instruction."""
        return float(np.mean([c.loads_per_instr for c in self.per_workload]))

    @property
    def other_cpi(self) -> float:
        """Suite-average non-memory interlock CPI."""
        return float(np.mean([c.other_cpi for c in self.per_workload]))

    @property
    def wb_stall_per_instr(self) -> float:
        """Suite-average write-buffer stall CPI."""
        return float(np.mean([c.wb_stall_per_instr for c in self.per_workload]))

    @classmethod
    def for_suite(cls, os_name: str, **kwargs) -> "BenefitCurves":
        """Measure (or load cached) curves for the whole suite."""
        return cls(os_name=os_name, per_workload=measure_suite(os_name, **kwargs))
