"""Workload models for the paper's benchmark suite (Table 2).

Each benchmark is described by a :class:`~repro.workloads.base.WorkloadSpec`
capturing the properties the memory system actually sees: instruction
mix, hot-loop structure, code footprint, data working set, streaming
behaviour, OS-service mix and rate, and interaction with the X display
server.  Parameters are derived from the paper's descriptions and
published measurements (Tables 2-4) — see each module's docstring.
"""

from repro.workloads.base import WorkloadSpec
from repro.workloads.registry import WORKLOADS, get_workload, workload_names

__all__ = ["WorkloadSpec", "WORKLOADS", "get_workload", "workload_names"]
