"""Tests for the CSV export utility."""

import csv
import os

import pytest


@pytest.fixture(autouse=True)
def _tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.1")
    from repro.experiments import common

    common.get_trace.cache_clear()
    yield
    common.get_trace.cache_clear()


class TestExport:
    def test_export_area_experiments(self, tmp_path):
        from repro.experiments.export import export_all

        paths = export_all(tmp_path, names=("fig4", "fig5", "fig6", "table1"))
        assert len(paths) == 4
        for path in paths:
            assert path.exists()
            with open(path) as handle:
                rows = list(csv.DictReader(handle))
            assert rows

    def test_fig4_csv_contents(self, tmp_path):
        from repro.experiments.export import export_all

        (path,) = export_all(tmp_path, names=("fig4",))
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["entries"] == "8"
        assert "full" in rows[0]

    def test_multi_panel_experiment_exports_per_panel(self, tmp_path):
        from repro.experiments.export import rows_for

        # Use table5 (cheap, dict-valued) to check the dict path.
        out = rows_for("table5")
        assert list(out) == ["table5"]
        assert out["table5"][0]["cache_points"] == 120
