"""Allocation query service: budget/Pareto queries over stored curves."""

from repro.service.client import ServiceClient, ServiceClientError
from repro.service.engine import QueryEngine, maybe_engine, pareto_frontier
from repro.service.faults import (
    FaultInjector,
    get_injector,
    parse_faults,
    set_injector,
)
from repro.service.requests import validate_request

__all__ = [
    "FaultInjector",
    "QueryEngine",
    "ServiceClient",
    "ServiceClientError",
    "get_injector",
    "maybe_engine",
    "parse_faults",
    "pareto_frontier",
    "set_injector",
    "validate_request",
]
