"""A small stdlib client for the query service, with retries.

The service sheds load (429) and surfaces transient store trouble
(503, e.g. an integrity failure racing a publish) as *retryable*
structured errors, and fault injection can drop a connection outright.
:class:`ServiceClient` wraps one endpoint and retries exactly those
failures with capped full-jitter exponential backoff (each wait is
uniform over ``[0, min(max_backoff_s, backoff_s * 2**(attempt-1))]``,
so synchronized clients don't restrike a recovering server in
lockstep), so callers — the smoke script, the
fault-injection tests, operators' scripts — see either a good answer
or a definitive error:

* retried: HTTP 503 and 429, dropped/reset connections, truncated
  reads, connect refusals (the server may still be binding);
* not retried: 400/404/411/413/422 (the request itself is wrong) and
  HTTP 500 (a bug — hiding it behind a retry would mask the signal).

Raises :class:`ServiceClientError` carrying the last status and
structured error code once attempts are exhausted.

The client holds **one persistent keep-alive connection** and reuses
it across requests — no TCP handshake per query.  A reused idle socket
can be legitimately stale (the server timed it out or restarted
between requests); for *idempotent GETs* the client transparently
reconnects and replays once on ECONNRESET-class failures without
consuming the retry budget (``stale_retries`` counts them).  POSTs are
never replayed transparently — a dropped POST always goes through the
visible retry loop.

Queries are *conditionally* cached: the service tags each query
response with a strong ``ETag`` over the exact body bytes, and the
client remembers the last validator per canonical request.  A repeat
query sends ``If-None-Match``; a ``304 Not Modified`` answer carries
no body, and the client replays its cached result — zero bytes of
JSON cross the wire or get re-parsed for a repeated question.

Batch queries can optionally ride the service's length-prefixed
binary protocol (``binary_batch=True``): the request is framed by
:mod:`repro.service.binproto` instead of JSON-encoded, and the binary
response decodes to a result dict equal to the JSON path's (floats
cross the wire as raw doubles, so equality is bit-exact).  Non-batch
queries fall back to JSON automatically.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
import urllib.parse
from collections import OrderedDict

from repro.errors import ReproError
from repro.service import binproto

DEFAULT_RETRIES = 4
DEFAULT_BACKOFF_S = 0.05
DEFAULT_MAX_BACKOFF_S = 2.0
DEFAULT_ETAG_CACHE_SIZE = 256
RETRYABLE_STATUS = (429, 503)

# A reused keep-alive socket failing with one of these on a GET means
# the server closed it between requests — reconnect-and-replay is safe.
_STALE_SOCKET_ERRORS = (
    ConnectionResetError,
    BrokenPipeError,
    http.client.RemoteDisconnected,
    http.client.BadStatusLine,
    http.client.CannotSendRequest,
)


class ServiceClientError(ReproError):
    """A request failed definitively (or retries ran out).

    Attributes:
        status: last HTTP status code, or None for connection failures.
        code: the structured error code from the response body, if any.
        attempts: how many attempts were made.
    """

    def __init__(
        self,
        message: str,
        status: int | None = None,
        code: str | None = None,
        attempts: int = 1,
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.attempts = attempts


def _decode(raw: bytes) -> dict:
    try:
        payload = json.loads(raw)
    except ValueError:
        payload = {}
    return payload if isinstance(payload, dict) else {}


class ServiceClient:
    """Client for one service base URL (``http://host:port``).

    Not thread-safe: the persistent connection is single-lane.  Use
    one client per thread (the concurrency tests do exactly this).

    Args:
        binary_batch: send ``type: batch`` queries over the binary
            protocol (``application/x-repro-batch``) instead of JSON.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 10.0,
        retries: int = DEFAULT_RETRIES,
        backoff_s: float = DEFAULT_BACKOFF_S,
        max_backoff_s: float = DEFAULT_MAX_BACKOFF_S,
        etag_cache_size: int = DEFAULT_ETAG_CACHE_SIZE,
        binary_batch: bool = False,
    ):
        self.base_url = base_url.rstrip("/")
        parsed = urllib.parse.urlparse(self.base_url)
        if parsed.scheme not in ("http", ""):
            raise ServiceClientError(
                f"only http:// endpoints are supported, got {base_url!r}"
            )
        self._host = parsed.hostname or "127.0.0.1"
        self._port = parsed.port or 80
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        self.binary_batch = binary_batch
        self._rng = random.Random()
        self.attempts_made = 0
        self.retries_used = 0
        self.not_modified_hits = 0
        self.stale_retries = 0
        self._conn: http.client.HTTPConnection | None = None
        # canonical request JSON -> (etag, cached payload)
        self._etag_cache: OrderedDict[str, tuple[str, dict]] = OrderedDict()
        self._etag_cache_size = etag_cache_size

    # -- transport ----------------------------------------------------

    def close(self) -> None:
        """Drop the persistent connection (reconnects on next use)."""
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    def _connection(self) -> tuple[http.client.HTTPConnection, bool]:
        """The live connection plus whether it was freshly opened."""
        if self._conn is not None:
            return self._conn, False
        conn = http.client.HTTPConnection(
            self._host, self._port, timeout=self.timeout
        )
        conn.connect()
        try:
            conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        self._conn = conn
        return conn, True

    def _once(
        self, method: str, path: str, body: bytes | None, headers: dict
    ) -> tuple[int, dict, str | None]:
        """One request over the persistent connection.

        A stale reused socket on a GET is replayed once on a fresh
        connection without touching the retry counters; every other
        failure closes the connection and propagates to the visible
        retry loop in :meth:`_request`.
        """
        replayed = False
        while True:
            conn, fresh = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                resp = conn.getresponse()
                raw = resp.read()
                status = resp.status
                etag = resp.headers.get("ETag")
                content_type = resp.headers.get("Content-Type", "")
                if resp.will_close:
                    self.close()
                break
            except _STALE_SOCKET_ERRORS:
                self.close()
                if method == "GET" and not fresh and not replayed:
                    self.stale_retries += 1
                    replayed = True
                    continue
                raise
            except BaseException:
                self.close()
                raise
        if status == 200 and content_type.startswith(binproto.CONTENT_TYPE):
            return (
                status,
                {"ok": True, "result": binproto.decode_batch_response(raw)},
                etag,
            )
        return status, _decode(raw), etag

    def _request(
        self,
        path: str,
        body: bytes | None,
        etag: str | None = None,
        content_type: str = "application/json",
    ) -> tuple[dict, int, str | None]:
        method = "POST" if body is not None else "GET"
        headers = {"Content-Type": content_type} if body is not None else {}
        if etag is not None:
            headers["If-None-Match"] = etag
        last: tuple[int | None, str | None, str] = (None, None, "no attempt")
        attempts = self.retries + 1
        for attempt in range(attempts):
            self.attempts_made += 1
            if attempt:
                self.retries_used += 1
                # Full jitter: sleep uniformly within the (capped)
                # exponential window, so a herd of clients retrying the
                # same recovering shard spreads out instead of striking
                # it in lockstep at deterministic multiples of backoff_s.
                window = min(
                    self.max_backoff_s, self.backoff_s * (2 ** (attempt - 1))
                )
                time.sleep(self._rng.uniform(0.0, window))
            try:
                status, payload, resp_etag = self._once(
                    method, path, body, headers
                )
            except (
                ConnectionError,
                http.client.HTTPException,
                TimeoutError,
            ) as exc:
                last = (None, None, f"connection failed: {exc}")
                continue
            if status in RETRYABLE_STATUS:
                error = payload.get("error", {})
                last = (
                    status,
                    error.get("code"),
                    error.get("message", f"HTTP {status}"),
                )
                continue
            if status == 304:
                return payload, status, resp_etag
            if payload.get("ok"):
                return payload, status, resp_etag
            error = payload.get("error", {})
            raise ServiceClientError(
                f"HTTP {status}: {error.get('message', 'unstructured error')}",
                status=status,
                code=error.get("code"),
                attempts=attempt + 1,
            )
        status, code, message = last
        raise ServiceClientError(
            f"retries exhausted after {attempts} attempts; last: {message}",
            status=status,
            code=code,
            attempts=attempts,
        )

    # -- endpoints ----------------------------------------------------

    def query(self, request: dict) -> dict:
        """POST one query; returns the engine's result dict.

        Repeat queries revalidate with ``If-None-Match``; a 304 reply
        short-circuits to the locally cached result.  With
        ``binary_batch`` on, batch requests travel framed binary both
        ways and decode to the same result dict as JSON.
        """
        binary = self.binary_batch and request.get("type") == "batch"
        if binary:
            body = binproto.encode_batch_request(request)
            content_type = binproto.CONTENT_TYPE
            cache_key = "bin:" + json.dumps(request, sort_keys=True)
        else:
            body = json.dumps(request).encode()
            content_type = "application/json"
            cache_key = json.dumps(request, sort_keys=True)
        cached = self._etag_cache.get(cache_key)
        payload, status, etag = self._request(
            "/v1/query",
            body,
            etag=cached[0] if cached else None,
            content_type=content_type,
        )
        if status == 304 and cached is not None:
            self.not_modified_hits += 1
            self._etag_cache.move_to_end(cache_key)
            return cached[1]["result"]
        if etag is not None:
            self._etag_cache[cache_key] = (etag, payload)
            self._etag_cache.move_to_end(cache_key)
            while len(self._etag_cache) > self._etag_cache_size:
                self._etag_cache.popitem(last=False)
        return payload["result"]

    def health(self) -> dict:
        return self._request("/v1/health", None)[0]["result"]

    def metrics(self) -> dict:
        return self._request("/v1/metrics", None)[0]["result"]
