"""Boundary regression tests for the ordering contract.

The contract (documented above :class:`~repro.core.allocator.
Allocator`): rankings ascend by (cpi, area_rbe, flat enumeration
index), and feasibility at a budget uses the reference predicate
``budget_left = (B - t_area) - i_area; budget_left >= 0 and d_area <=
budget_left`` — float subtraction order included.  These tests pin the
contract at the adversarial points: budgets equal to an entry's exact
area and their one-ULP neighbours, where a wrong association order
admits or drops entries.

The greedy path has its own boundary obligation: at a budget exactly
equal to a configuration's area, swap combinations with bitwise-equal
totals but different CPIs must still resolve to the exhaustive
optimum (the repair pass decides feasibility by the same
left-associated totals the grid uses — a regression here once cost
2.3e-3 CPI on the small ultrix grid).
"""

import numpy as np
import pytest

from repro.core.allocator import (
    Allocator,
    flat_index,
    rank_greedy,
    rank_indexed,
    rank_priced,
    rank_priced_power,
)
from repro.core.measure import measure_workload
from repro.core.space import enumerate_cache_configs, enumerate_tlb_configs
from repro.errors import BudgetError
from repro.units import KB

SMALL_GRID = dict(
    capacities=(2 * KB, 4 * KB, 8 * KB),
    lines=(4, 8),
    assocs=(1, 2),
    tlb_entries=(64, 128),
    tlb_assocs=(1, 2),
    tlb_full_max=64,
    references=60_000,
)


@pytest.fixture(scope="module", params=["mach", "ultrix"])
def fixture(request):
    curves = measure_workload("ousterhout", request.param, **SMALL_GRID)
    allocator = Allocator(curves)
    kwargs = dict(
        tlbs=enumerate_tlb_configs(
            SMALL_GRID["tlb_entries"],
            SMALL_GRID["tlb_assocs"],
            SMALL_GRID["tlb_full_max"],
        ),
        icaches=enumerate_cache_configs(
            SMALL_GRID["capacities"],
            SMALL_GRID["lines"],
            SMALL_GRID["assocs"],
        ),
        dcaches=enumerate_cache_configs(
            SMALL_GRID["capacities"],
            SMALL_GRID["lines"],
            SMALL_GRID["assocs"],
        ),
    )
    return allocator, allocator.price(**kwargs), kwargs


def _boundary_budgets(priced, n=12, seed=23):
    """Exact entry areas and their one-ULP neighbours."""
    areas = np.unique(np.asarray(priced.area_grid).ravel())
    rng = np.random.default_rng(seed)
    picks = rng.choice(areas, size=min(n, areas.size), replace=False)
    out = []
    for a in picks:
        out.extend([a, np.nextafter(a, -np.inf), np.nextafter(a, np.inf)])
    return out


def _rows(allocations):
    return [(a.config, a.area_rbe, a.cpi) for a in allocations]


class TestOrderingContract:
    def test_ranking_ascends_by_cpi_area_flat_index(self, fixture):
        """The documented sort key, verified against the flat index."""
        allocator, priced, kwargs = fixture
        budget = float(np.median(np.asarray(priced.area_grid).ravel()))
        ranked = rank_priced(priced, budget)
        keys = []
        for a in ranked:
            t = priced.tlb_keys.index(a.config.tlb)
            i = priced.icache_keys.index(a.config.icache)
            d = priced.dcache_keys.index(a.config.dcache)
            keys.append((a.cpi, a.area_rbe, flat_index(priced, t, i, d)))
        assert keys == sorted(keys)

    def test_reference_predicate_at_boundaries(self, fixture):
        """rank_priced == the interpreted triple loop, at exact entry
        areas and one ULP either side."""
        allocator, priced, kwargs = fixture
        for budget in _boundary_budgets(priced):
            allocator.budget_rbes = float(budget)
            expected = allocator._rank_reference(
                tlbs=list(kwargs["tlbs"]),
                icaches=list(kwargs["icaches"]),
                dcaches=list(kwargs["dcaches"]),
            )
            if not expected:
                with pytest.raises(BudgetError):
                    rank_priced(priced, float(budget))
                continue
            assert _rows(rank_priced(priced, float(budget))) == _rows(expected)

    def test_indexed_equals_priced_at_boundaries(self, fixture):
        allocator, priced, kwargs = fixture
        for budget in _boundary_budgets(priced, seed=29):
            try:
                expected = rank_priced(priced, float(budget))
            except BudgetError:
                with pytest.raises(BudgetError):
                    rank_indexed(priced, float(budget))
                continue
            assert _rows(rank_indexed(priced, float(budget))) == _rows(expected)


class TestGreedyBoundaries:
    def test_greedy_optimal_at_exact_total_areas(self, fixture):
        """At budgets bitwise-equal to a configuration's total area —
        where distinct configurations can share the total to the ULP —
        greedy must return the optimum *under its documented
        feasibility predicate*, the grid comparison ``area_grid <=
        budget``.  ``rank_priced_power`` with an unbounded power budget
        ranks under exactly that predicate, so it is the reference
        here (the ordering contract documents that the reference
        subtraction predicate may differ by ULPs at these budgets)."""
        allocator, priced, kwargs = fixture
        grid = np.asarray(priced.area_grid).ravel()
        rng = np.random.default_rng(31)
        for budget in rng.choice(grid, size=min(40, grid.size), replace=False):
            best = rank_priced_power(
                priced, float(budget), float("inf"), limit=1
            )[0]
            greedy = rank_greedy(priced, float(budget))[0]
            assert greedy.cpi == best.cpi
            assert greedy.config == best.config

    def test_greedy_matches_rank_priced_off_boundary(self, fixture):
        """Away from entry areas the two feasibility predicates admit
        the same set, so greedy must equal the brute-force top-1
        bitwise.  Budgets are midpoints between well-separated entry
        areas — guaranteed more than a few ULPs from any boundary."""
        allocator, priced, kwargs = fixture
        grid = np.unique(np.asarray(priced.area_grid).ravel())
        gaps = np.flatnonzero(np.diff(grid) > 1.0)
        rng = np.random.default_rng(41)
        picks = rng.choice(gaps, size=min(20, gaps.size), replace=False)
        for g in picks:
            budget = float((grid[g] + grid[g + 1]) / 2.0)
            try:
                best = rank_priced(priced, budget, limit=1)[0]
            except BudgetError:
                continue
            greedy = rank_greedy(priced, budget)[0]
            assert greedy.cpi == best.cpi
            assert greedy.config == best.config

    def test_power_ranking_at_power_boundaries(self, fixture):
        """rank_priced_power at power budgets equal to an entry's exact
        power: the mask is ``power_grid <= power_budget``, so the exact
        value is admitted and one ULP below is not."""
        allocator, priced, kwargs = fixture
        area_budget = float(np.asarray(priced.area_grid).max())
        powers = np.unique(np.asarray(priced.power_grid).ravel())
        rng = np.random.default_rng(37)
        for power in rng.choice(powers, size=min(8, powers.size), replace=False):
            at = rank_priced_power(priced, area_budget, float(power))
            below = rank_priced_power(
                priced, area_budget, float(np.nextafter(power, -np.inf))
            )
            served_at = {a.config for a in at}
            served_below = {a.config for a in below}
            assert served_below <= served_at
            dropped = served_at - served_below
            # Everything dropped by the one-ULP-lower budget sits at
            # exactly the boundary power.
            power_grid = np.asarray(priced.power_grid)
            for a in at:
                if a.config in dropped:
                    t = priced.tlb_keys.index(a.config.tlb)
                    i = priced.icache_keys.index(a.config.icache)
                    d = priced.dcache_keys.index(a.config.dcache)
                    assert power_grid[flat_index(priced, t, i, d)] == power
