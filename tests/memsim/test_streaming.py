"""Streaming simulation kernels must be bit-identical to batch passes.

Every chunked kernel carries its state (LRU stacks, dedupe boundary,
completion-time cursor, write-buffer occupancy) across chunk
boundaries; these tests drive each one against the whole-array kernel
on the same data, at chunk sizes chosen to land mid-pattern.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.memsim.multiconfig import (
    cache_miss_ratio_grid,
    cache_miss_ratio_grid_chunked,
)
from repro.memsim.stackdist import (
    StreamingStackDistance,
    fully_associative_miss_curve,
    set_associative_hit_counts,
)
from repro.memsim.timing import (
    DECSTATION_3100,
    simulate_system,
    simulate_system_stream,
)
from repro.memsim.write_buffer import StreamingWriteBuffer, simulate_write_buffer

CHUNKS = (64, 1000, 4096, 7104)


def _chunked(array: np.ndarray, size: int):
    for start in range(0, len(array), size):
        yield array[start : start + size]


class TestStreamingStackDistance:
    @pytest.mark.parametrize("n_sets", [1, 4, 16])
    @pytest.mark.parametrize("chunk", CHUNKS)
    def test_matches_batch_misses(self, rng, n_sets, chunk):
        ids = rng.integers(0, 400, size=20_000)
        max_assoc = 8
        count_from = 5_000
        sim = StreamingStackDistance(n_sets, max_assoc)
        consumed = 0
        for part in _chunked(ids, chunk):
            sim.feed(part, count_from=max(count_from - consumed, 0))
            consumed += len(part)
        expected = set_associative_hit_counts(
            ids, n_sets, max_assoc, count_from=count_from
        )
        assert np.array_equal(sim.hit_counts(), expected)

    @pytest.mark.parametrize("chunk", CHUNKS)
    def test_fully_associative_with_flags(self, rng, chunk):
        ids = rng.integers(0, 300, size=15_000)
        flags = rng.random(15_000) < 0.3
        sizes = [4, 16, 64]
        sim = StreamingStackDistance(1, max(sizes), track_flags=True)
        for start in range(0, len(ids), chunk):
            sim.feed(ids[start : start + chunk], flags[start : start + chunk])
        expected = fully_associative_miss_curve(ids, sizes)
        got = sim.miss_counts()[np.asarray(sizes) - 1]
        assert np.array_equal(got, expected)
        # Flagged misses never exceed total misses.
        flagged = sim.flagged_miss_counts()[np.asarray(sizes) - 1]
        assert np.all(flagged <= got)


class TestChunkedCacheGrid:
    @pytest.mark.parametrize("chunk", CHUNKS)
    @pytest.mark.parametrize("warmup", [0.0, 0.4])
    def test_matches_batch_grid(self, ultrix_trace, chunk, warmup):
        stream = ultrix_trace.ifetch_physical()
        capacities = [1024, 4096, 16384]
        lines = [4, 16]
        assocs = [1, 2, 4]
        batch = cache_miss_ratio_grid(
            stream, capacities, lines, assocs, warmup_fraction=warmup
        )
        chunked = cache_miss_ratio_grid_chunked(
            _chunked(stream, chunk),
            len(stream),
            capacities,
            lines,
            assocs,
            warmup_fraction=warmup,
        )
        assert chunked == batch

    def test_rejects_short_chunk_supply(self):
        with pytest.raises(ValueError, match="expected"):
            cache_miss_ratio_grid_chunked(
                iter([np.arange(10)]), 100, [1024], [4], [1]
            )


class TestStreamingWriteBuffer:
    @pytest.mark.parametrize("chunk", [7, 100, 999])
    def test_matches_batch(self, rng, chunk):
        gaps = rng.integers(1, 12, size=5_000)
        times = np.cumsum(gaps)
        count_from = 1_234
        batch = simulate_write_buffer(times, count_from=count_from)
        sim = StreamingWriteBuffer()
        consumed = 0
        for part in _chunked(times, chunk):
            sim.feed(part, count_from=max(count_from - consumed, 0))
            consumed += len(part)
        assert sim.result() == batch


class TestStreamingSystemTiming:
    @pytest.mark.parametrize("chunk", [4096, 7104])
    @pytest.mark.parametrize("warmup", [0.0, 0.4])
    def test_matches_batch(self, ultrix_trace, chunk, warmup):
        trace = ultrix_trace

        def chunks():
            for start in range(0, len(trace), chunk):
                stop = min(start + chunk, len(trace))
                yield {
                    "addresses": trace.addresses[start:stop],
                    "physical": trace.physical[start:stop],
                    "kinds": trace.kinds[start:stop],
                    "asids": trace.asids[start:stop],
                    "mapped": trace.mapped[start:stop],
                    "kernel": trace.kernel[start:stop],
                }

        batch = simulate_system(trace, DECSTATION_3100, warmup_fraction=warmup)
        streamed = simulate_system_stream(
            chunks(),
            len(trace),
            trace.other_cpi,
            DECSTATION_3100,
            warmup_fraction=warmup,
        )
        assert streamed == batch

    def test_rejects_short_chunk_supply(self, ultrix_trace):
        def one_chunk():
            yield {
                "addresses": ultrix_trace.addresses[:100],
                "physical": ultrix_trace.physical[:100],
                "kinds": ultrix_trace.kinds[:100],
                "asids": ultrix_trace.asids[:100],
                "mapped": ultrix_trace.mapped[:100],
                "kernel": ultrix_trace.kernel[:100],
            }

        with pytest.raises(ValueError, match="expected"):
            simulate_system_stream(
                one_chunk(), len(ultrix_trace), 0.0, DECSTATION_3100
            )
