"""video_play: mpeg_play modified to display uncompressed frames.

The same display pipeline as mpeg_play but the input stream is raw
frames, so far more data moves through the file system and to the X
server per unit of computation.  The paper's Table 4 shows it with the
highest CPI of the suite and (under Mach) the largest TLB component —
the big streamed working set and heavy server traffic are what the
model expresses below.
"""

from repro.workloads.base import WorkloadSpec

VIDEO_PLAY = WorkloadSpec(
    name="video_play",
    description="modified mpeg_play displaying 610 uncompressed frames",
    load_frac=0.21,
    store_frac=0.12,
    other_cpi=0.03,
    compute_instructions=14_000,
    hot_loop_bodies=(250, 600),
    hot_loop_fraction=0.42,
    loop_iterations=30,
    code_footprint_bytes=56 * 1024,
    text_bytes=384 * 1024,
    heap_pages=12,
    heap_record_words=4,
    stream_bytes=8 * 1024 * 1024,
    stream_run_words=16,
    stream_frac=0.45,
    service_mix={"read": 0.75, "ioctl": 0.25},
    payload_bytes=4 * 1024,
    services_per_cycle=2,
    x_interaction_rate=0.70,
    page_fault_rate=0.05,
)
