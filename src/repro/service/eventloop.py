"""Selectors-based non-blocking HTTP data plane for the query service.

One thread, one ``selectors`` loop, zero per-connection threads.  Each
pre-fork worker (or a bare ``make_server``) runs exactly one
:class:`EventLoopHTTPServer`:

* **accept** — the listening socket is non-blocking; one ready event
  drains the whole accept backlog;
* **read** — per-connection bounded read buffers; request heads are
  hand-parsed (no ``http.server`` machinery), oversized heads get a
  431 and oversized bodies a 413, both with ``Connection: close``;
  pipelined requests in one buffer are answered back-to-back;
* **serve** — the hot path is a byte-cache probe against
  :meth:`QueryEngine.try_cached_bytes` (or the raw-frame probe for the
  binary batch protocol): a hit writes the cached body bytes straight
  to the socket as ``memoryview`` slices — no re-validation loops, no
  re-serialization, no copies of the body;
* **miss** — cold queries run in a small bounded ``ThreadPoolExecutor``
  so pricing a space or loading curves never stalls the loop; the
  worker thread queues the outcome and wakes the loop via a socketpair;
* **shed** — when the in-flight executor budget is exhausted, or the
  loop's total buffered response bytes pass their cap (slow clients),
  query POSTs get a structured 429 + ``Retry-After`` instead of
  queueing without bound;
* **back-pressure** — a connection whose write buffer is full stops
  being read until it drains; a connection waiting on an off-loop
  query stops being read until the answer is written (no unbounded
  pipelining into a stalled engine).

Fault injection keeps working on this path: injected latency parks the
request on a loop timer (same draws and trip counts as the blocking
seam), and ``drop_conn`` closes before writing, exactly like the
threaded server did.

Graceful drain: ``shutdown()`` stops the accept loop, lets in-flight
queries finish and write buffers flush (bounded by ``drain_grace_s``),
then returns — so the SIGTERM path of the pre-fork workers behaves as
before.  The public object model (``serve_forever`` / ``shutdown`` /
``server_close`` / ``server_address``) matches the stdlib server the
rest of the repo was written against.
"""

from __future__ import annotations

import heapq
import json
import os
import selectors
import socket
import time
import uuid
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.errors import (
    BudgetError,
    RequestError,
    StaleStoreError,
    StoreError,
    StoreIntegrityError,
)
from repro.obs import merge_registry_snapshots, trace_span
from repro.service import binproto

MAX_BODY_BYTES = 4 * 1024 * 1024
MAX_HEADER_BYTES = 32 * 1024
MAX_WRITE_BUFFER_BYTES = 1 * 1024 * 1024
"""Per-connection cap on unflushed response bytes; past it the
connection is not read (back-pressure) until the client drains."""
MAX_TOTAL_BUFFERED_BYTES = 32 * 1024 * 1024
"""Loop-wide cap on buffered response bytes; past it query POSTs are
shed with 429 — a fleet of stalled readers cannot OOM a worker."""
DEFAULT_REQUEST_TIMEOUT_S = 30.0
DEFAULT_MAX_INFLIGHT = 64
DEFAULT_EXECUTOR_THREADS = 4
DEFAULT_DRAIN_S = 5.0
RETRY_AFTER_S = 1
METRICS_EXPORT_INTERVAL_S = 0.25
SWEEP_INTERVAL_S = 0.25
ACCEPT_BATCH = 64

# Ordered most-specific first: subclasses must precede their bases.
_ERROR_STATUS = (
    (RequestError, 400, "invalid_request"),
    (BudgetError, 422, "budget_unsatisfiable"),
    (StaleStoreError, 503, "stale_store"),
    (StoreIntegrityError, 503, "store_corrupt"),
    (StoreError, 503, "store_unavailable"),
)

_KNOWN_ROUTES = {
    "/v1/health": "health",
    "/health": "health",
    "/v1/metrics": "metrics",
    "/metrics": "metrics",
    "/v1/query": "query",
    "/query": "query",
    "/v1/warm_traces": "warm_traces",
    "/warm_traces": "warm_traces",
}

_REASONS = {
    200: "OK", 304: "Not Modified", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 411: "Length Required",
    413: "Payload Too Large", 422: "Unprocessable Entity",
    429: "Too Many Requests", 431: "Request Header Fields Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
}

RAW_MEMO_SIZE = 1024
"""Entries in the per-loop raw-body memo: exact request bytes →
cached (body, etag).  A memo hit answers without JSON parsing,
validation, or normalization — the hot path of a steady query mix."""

# Pre-rendered header template for the dominant response shape.
_HEAD_200 = (
    b"HTTP/1.1 200 OK\r\n"
    b"Server: repro-service/3\r\n"
    b"Content-Type: %s\r\n"
    b"Content-Length: %d\r\n"
    b"X-Request-Id: %s\r\n"
    b"ETag: %s\r\n"
    b"\r\n"
)
_CTYPE_JSON = b"application/json"
_CTYPE_BINARY = binproto.CONTENT_TYPE.encode()


class _Request:
    """One parsed request head, carried through dispatch/completion."""

    __slots__ = (
        "method", "path", "route", "headers", "body_len", "reject",
        "request_id", "started", "keep_alive",
    )

    def __init__(self):
        self.method = ""
        self.path = ""
        self.route = "other"
        self.headers: dict[str, str] = {}
        self.body_len = 0
        self.reject: tuple[int, str, str] | None = None
        self.request_id = "-"
        self.started = 0.0
        self.keep_alive = True


class _Connection:
    """Per-socket state machine: read buffer, parse cursor, write queue."""

    __slots__ = (
        "sock", "fd", "addr", "rbuf", "wq", "wbytes", "last_activity",
        "cur", "head_len", "pending", "close_after_flush", "closed",
        "read_eof", "events", "parsing",
    )

    def __init__(self, sock: socket.socket, addr):
        self.sock = sock
        self.fd = sock.fileno()
        self.addr = addr
        self.rbuf = bytearray()
        self.wq: deque = deque()  # memoryviews awaiting send
        self.wbytes = 0
        self.last_activity = time.monotonic()
        self.cur: _Request | None = None
        self.head_len = 0
        self.pending = False  # a query is off-loop (or on a fault timer)
        self.close_after_flush = False
        self.closed = False
        self.read_eof = False
        self.events = 0  # currently registered selector mask
        self.parsing = False  # re-entrancy guard: inside _process_rbuf


class EventLoopHTTPServer:
    """The non-blocking server behind :func:`repro.service.http.make_server`.

    Construction binds (or adopts) the listening socket only; the loop
    runs inside :meth:`serve_forever`.  All ``server.*`` attributes the
    repo's tooling reads (``engine``, ``metrics``, ``faults``,
    ``obs_logger``, ``worker_metrics_dir`` ...) are plain attributes
    assigned by ``make_server``, exactly as before.
    """

    allow_reuse_address = True
    # Statuses that carry a Retry-After header.  Subclasses widen this:
    # the fleet router adds 503 (all replicas of a shard down is a
    # retry-later condition, not a permanent failure).
    retry_after_statuses: tuple[int, ...] = (429,)

    def __init__(
        self,
        address: tuple[str, int],
        sock: socket.socket | None = None,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT_S,
        executor_threads: int = DEFAULT_EXECUTOR_THREADS,
        drain_grace_s: float = DEFAULT_DRAIN_S,
        max_write_buffer: int = MAX_WRITE_BUFFER_BYTES,
        max_total_buffered: int = MAX_TOTAL_BUFFERED_BYTES,
    ):
        import threading

        if sock is not None:
            self.socket = sock
        else:
            self.socket = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            try:
                self.socket.setsockopt(
                    socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
                )
                self.socket.bind(address)
                self.socket.listen(256)
            except BaseException:
                self.socket.close()
                raise
        self.socket.setblocking(False)
        self.server_address = self.socket.getsockname()
        self.server_port = self.server_address[1]
        self.max_inflight = max_inflight
        self.request_timeout = request_timeout
        self.drain_grace_s = drain_grace_s
        self.max_write_buffer = max_write_buffer
        self.max_total_buffered = max_total_buffered

        self._selector: selectors.BaseSelector | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, executor_threads),
            thread_name_prefix="repro-query",
        )
        self._conns: dict[int, _Connection] = {}
        self._completions: deque = deque()  # (conn, req, kind, value)
        self._timers: list = []  # (deadline, seq, conn, req, body)
        self._timer_seq = 0
        self._inflight_count = 0
        self._buffered_total = 0
        self._raw_memo: OrderedDict[bytes, tuple[bytes, str]] = OrderedDict()
        self._rid_prefix = uuid.uuid4().hex[:4]
        self._rid_counter = 0
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._shutdown_requested = False
        self._draining = False
        self._closed = False
        self._stopped = threading.Event()
        self._stopped.set()  # not running yet

    # -- lifecycle -----------------------------------------------------

    def serve_forever(self, poll_interval: float | None = None) -> None:
        """Run the loop until :meth:`shutdown` drains it."""
        self._stopped.clear()
        selector = self._selector = selectors.DefaultSelector()
        listener_open = True
        selector.register(self.socket, selectors.EVENT_READ, "accept")
        selector.register(self._wake_r, selectors.EVENT_READ, "wake")
        next_sweep = time.monotonic() + SWEEP_INTERVAL_S
        drain_deadline = None
        try:
            while True:
                now = time.monotonic()
                if self._shutdown_requested and not self._draining:
                    self._draining = True
                    drain_deadline = now + self.drain_grace_s
                    if listener_open:
                        selector.unregister(self.socket)
                        listener_open = False
                    # Idle connections have nothing to drain.
                    for conn in list(self._conns.values()):
                        if not conn.pending and not conn.wq:
                            self._close_conn(conn)
                if self._draining:
                    busy = [
                        c for c in self._conns.values()
                        if c.pending or c.wq
                    ]
                    if not busy or now >= drain_deadline:
                        break
                timeout = min(SWEEP_INTERVAL_S, max(next_sweep - now, 0.0))
                if self._timers:
                    timeout = min(
                        timeout, max(self._timers[0][0] - now, 0.0)
                    )
                if self._draining:
                    timeout = min(timeout, max(drain_deadline - now, 0.01))
                try:
                    events = selector.select(timeout)
                except OSError:
                    if self._closed:
                        break
                    raise
                for key, mask in events:
                    kind = key.data
                    if kind == "accept":
                        self._accept_batch()
                    elif kind == "wake":
                        try:
                            while self._wake_r.recv(4096):
                                pass
                        except (BlockingIOError, InterruptedError):
                            pass
                    else:
                        conn = kind
                        if conn.closed:
                            continue
                        if mask & selectors.EVENT_WRITE:
                            self._flush(conn)
                        if not conn.closed and mask & selectors.EVENT_READ:
                            self._on_readable(conn)
                self._run_completions()
                self._run_timers()
                now = time.monotonic()
                if now >= next_sweep:
                    next_sweep = now + SWEEP_INTERVAL_S
                    self._sweep(now)
        finally:
            for conn in list(self._conns.values()):
                self._close_conn(conn, quiet=True)
            if listener_open:
                try:
                    selector.unregister(self.socket)
                except (KeyError, ValueError):
                    pass
            try:
                selector.unregister(self._wake_r)
            except (KeyError, ValueError):
                pass
            selector.close()
            self._selector = None
            self._stopped.set()

    def shutdown(self) -> None:
        """Stop accepting, drain in-flight work, and stop the loop.

        Callable from any thread; blocks until the loop exits (bounded
        by ``drain_grace_s`` plus margin).  Safe to call repeatedly or
        on a server that never served.
        """
        self._shutdown_requested = True
        self._wake()
        self._stopped.wait(timeout=self.drain_grace_s + 5.0)

    def server_close(self) -> None:
        """Release sockets and the executor.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._shutdown_requested = True
        self._wake()
        self._stopped.wait(timeout=self.drain_grace_s + 5.0)
        for sock in (self.socket, self._wake_r, self._wake_w):
            try:
                sock.close()
            except OSError:
                pass
        self._executor.shutdown(wait=False, cancel_futures=True)

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\x01")
        except (BlockingIOError, BrokenPipeError, OSError):
            pass  # pipe full means the loop is already waking

    # -- accept / read / write ----------------------------------------

    def _accept_batch(self) -> None:
        for _ in range(ACCEPT_BATCH):
            try:
                sock, addr = self.socket.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listener closed under us mid-drain
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            conn = _Connection(sock, addr)
            self._conns[conn.fd] = conn
            self._register(conn, selectors.EVENT_READ)

    def _register(self, conn: _Connection, events: int) -> None:
        if conn.closed or events == conn.events:
            return
        selector = self._selector
        if selector is None:
            return
        if conn.events == 0:
            if events:
                selector.register(conn.sock, events, conn)
        elif events == 0:
            selector.unregister(conn.sock)
        else:
            selector.modify(conn.sock, events, conn)
        conn.events = events

    def _wanted_events(self, conn: _Connection) -> int:
        events = 0
        if conn.wq:
            events |= selectors.EVENT_WRITE
        if (
            not conn.read_eof
            and not conn.pending
            and not conn.close_after_flush
            and conn.wbytes < self.max_write_buffer
        ):
            events |= selectors.EVENT_READ
        return events

    def _update_interest(self, conn: _Connection) -> None:
        self._register(conn, self._wanted_events(conn))

    def _on_readable(self, conn: _Connection) -> None:
        try:
            chunk = conn.sock.recv(262144)
        except (BlockingIOError, InterruptedError):
            return
        except (ConnectionResetError, OSError):
            self._client_gone(conn)
            return
        conn.last_activity = time.monotonic()
        if not chunk:
            conn.read_eof = True
            self._on_read_eof(conn)
            return
        conn.rbuf += chunk
        self._process_rbuf(conn)

    def _on_read_eof(self, conn: _Connection) -> None:
        if conn.pending:
            conn.close_after_flush = True
            self._update_interest(conn)
            return
        self._process_rbuf(conn)
        if conn.closed:
            return
        if conn.pending:
            # The leftover buffer started a query; answer it, then close.
            conn.close_after_flush = True
            self._update_interest(conn)
            return
        if conn.cur is not None:
            # Head parsed, body never finished: the client half-closed
            # mid-body.  Answer structurally, then close.
            req = conn.cur
            conn.cur = None
            req.started = time.perf_counter()
            got = len(conn.rbuf) - conn.head_len
            self._respond_error(
                conn, req, 400, "invalid_request",
                f"body truncated: got {got} of {req.body_len} bytes",
                close=True,
            )
            return
        if conn.wq:
            conn.close_after_flush = True
            self._update_interest(conn)
        else:
            self._close_conn(conn)

    def _client_gone(self, conn: _Connection) -> None:
        if conn.cur is not None or conn.pending:
            self.metrics.counter("http_responses").inc(label="client_gone")
        self._close_conn(conn)

    def _flush(self, conn: _Connection) -> None:
        wq = conn.wq
        sock = conn.sock
        while wq:
            try:
                if len(wq) == 1:
                    sent = sock.send(wq[0])
                else:
                    # writev the queued header+body views in one syscall;
                    # cap the iovec well under IOV_MAX.
                    if len(wq) <= 64:
                        bufs = list(wq)
                    else:
                        bufs = [wq[i] for i in range(64)]
                    sent = sock.sendmsg(bufs)
            except (BlockingIOError, InterruptedError):
                break
            except (BrokenPipeError, ConnectionResetError, OSError):
                self._client_gone(conn)
                return
            conn.wbytes -= sent
            self._buffered_total -= sent
            while sent:
                first = wq[0]
                if sent >= len(first):
                    sent -= len(first)
                    wq.popleft()
                else:
                    wq[0] = first[sent:]
                    sent = 0
        conn.last_activity = time.monotonic()
        if not wq and conn.close_after_flush:
            self._close_conn(conn)
            return
        self._update_interest(conn)
        if not wq and not conn.pending and conn.rbuf and not conn.parsing:
            # Back-pressure released: resume parsing pipelined input.
            self._process_rbuf(conn)

    def _enqueue(self, conn: _Connection, data) -> None:
        if conn.closed:
            return
        view = memoryview(data) if not isinstance(data, memoryview) else data
        conn.wq.append(view)
        conn.wbytes += len(view)
        self._buffered_total += len(view)

    def _close_conn(self, conn: _Connection, quiet: bool = False) -> None:
        if conn.closed:
            return
        conn.closed = True
        self._buffered_total -= conn.wbytes
        conn.wbytes = 0
        conn.wq.clear()
        if conn.events and self._selector is not None:
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError, OSError):
                pass
        conn.events = 0
        self._conns.pop(conn.fd, None)
        try:
            conn.sock.close()
        except OSError:
            pass

    # -- parsing -------------------------------------------------------

    def _process_rbuf(self, conn: _Connection) -> None:
        # Responses produced inside the loop are queued, then flushed
        # once at the end — pipelined cache hits leave in one writev.
        conn.parsing = True
        try:
            while not conn.closed and not conn.pending:
                if conn.wbytes >= self.max_write_buffer:
                    break
                rbuf = conn.rbuf
                if conn.cur is None:
                    head_end = rbuf.find(b"\r\n\r\n")
                    if head_end < 0:
                        if len(rbuf) > MAX_HEADER_BYTES:
                            req = _Request()
                            req.started = time.perf_counter()
                            self._respond_error(
                                conn, req, 431, "headers_too_large",
                                f"request head exceeds "
                                f"{MAX_HEADER_BYTES} bytes",
                                close=True,
                            )
                        break
                    req = self._parse_head(bytes(rbuf[:head_end]))
                    if req is None:
                        bad = _Request()
                        bad.started = time.perf_counter()
                        self._respond_error(
                            conn, bad, 400, "invalid_request",
                            "malformed request head", close=True,
                        )
                        break
                    conn.cur = req
                    conn.head_len = head_end + 4
                req = conn.cur
                total = conn.head_len + req.body_len
                if len(rbuf) < total:
                    break  # body still arriving (bounded: reject set if huge)
                body = bytes(rbuf[conn.head_len:total])
                del rbuf[:total]
                conn.cur = None
                conn.head_len = 0
                self._dispatch(conn, req, body)
        finally:
            conn.parsing = False
        if not conn.closed:
            if conn.wq:
                self._flush(conn)
            else:
                self._update_interest(conn)

    def _parse_head(self, raw: bytes) -> _Request | None:
        lines = raw.split(b"\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            return None
        req = _Request()
        try:
            req.method = parts[0].decode("latin-1")
            req.path = parts[1].decode("latin-1")
            version = parts[2].decode("latin-1")
        except UnicodeDecodeError:
            return None
        req.keep_alive = version == "HTTP/1.1"
        headers = req.headers
        for line in lines[1:]:
            name, sep, value = line.partition(b":")
            if not sep:
                continue
            headers[name.strip().lower().decode("latin-1")] = (
                value.strip().decode("latin-1")
            )
        connection = headers.get("connection", "").lower()
        if "close" in connection:
            req.keep_alive = False
        elif not req.keep_alive and "keep-alive" in connection:
            req.keep_alive = True
        req.route = _KNOWN_ROUTES.get(req.path, "other")
        req.request_id = headers.get("x-request-id") or ""
        if req.method == "POST":
            if "chunked" in headers.get("transfer-encoding", "").lower():
                req.reject = (
                    411, "length_required",
                    "chunked transfer encoding is not supported; "
                    "send Content-Length",
                )
            else:
                try:
                    req.body_len = int(headers.get("content-length", "0"))
                except ValueError:
                    req.body_len = 0
                    req.reject = (
                        400, "invalid_request",
                        "malformed Content-Length header",
                    )
                else:
                    if req.body_len > MAX_BODY_BYTES:
                        # Never buffer it: reject on the head alone.
                        req.body_len = 0
                        req.reject = (
                            413, "payload_too_large",
                            f"request body exceeds {MAX_BODY_BYTES} bytes",
                        )
                    elif req.body_len < 0:
                        req.body_len = 0
                        req.reject = (
                            400, "invalid_request",
                            "negative Content-Length",
                        )
        return req

    # -- dispatch ------------------------------------------------------

    def _next_request_id(self) -> str:
        self._rid_counter += 1
        return f"{self._rid_prefix}{self._rid_counter:08x}"

    def _dispatch(self, conn: _Connection, req: _Request, body: bytes) -> None:
        req.started = time.perf_counter()
        injector = self.faults
        if not injector.active and req.method == "POST" and body:
            # Hot path: exact raw bytes seen before → serve the cached
            # response without parsing, validating, or tracing.  The
            # engine still tallies the hit so the byte-cache accounting
            # contract (one counted lookup per query POST) holds.
            memo = self._raw_memo.get(body)
            if memo is not None and req.reject is None and req.route == "query":
                self._raw_memo.move_to_end(body)
                if not req.request_id:
                    req.request_id = self._next_request_id()
                self.engine.count_byte_hit()
                self._respond_query(conn, req, memo, False)
                return
        if not req.request_id:
            req.request_id = self._next_request_id()
        if injector.active:
            delay_ms = injector.draw_latency()
            if delay_ms:
                self.metrics.counter("faults_injected_latency").inc()
                self._timer_seq += 1
                heapq.heappush(
                    self._timers,
                    (
                        time.monotonic() + delay_ms / 1e3,
                        self._timer_seq, conn, req, body,
                    ),
                )
                conn.pending = True
                self._update_interest(conn)
                return
        self._dispatch_faulted(conn, req, body)

    def _dispatch_faulted(
        self, conn: _Connection, req: _Request, body: bytes
    ) -> None:
        """Post-latency dispatch: the drop seam, then the real route."""
        injector = self.faults
        if (
            injector.active
            and req.method == "POST"
            and injector.trip("drop_conn")
        ):
            self.metrics.counter("faults_dropped_connections").inc()
            self._finish_request(conn, req, "dropped")
            try:
                conn.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._close_conn(conn)
            return
        try:
            with trace_span(
                "http.request",
                method=req.method,
                path=req.path,
                request_id=req.request_id,
            ):
                if req.method == "GET":
                    self._do_get(conn, req)
                elif req.method == "POST":
                    self._do_post(conn, req, body)
                else:
                    self._respond_error(
                        conn, req, 405, "method_not_allowed",
                        f"unsupported method {req.method}", close=True,
                    )
        except Exception as exc:  # last-ditch: structured, never a page
            if not conn.closed:
                self._respond_error(
                    conn, req, 500, "internal",
                    f"{type(exc).__name__}: {exc}", close=True,
                )

    def _do_get(self, conn: _Connection, req: _Request) -> None:
        engine = self.engine
        if req.path in ("/v1/health", "/health"):
            store = engine.store
            result = {
                "status": "serving",
                "store": str(store.root) if store is not None else None,
                "entries": engine.entry_count(),
                "cache": engine.stats,
                "inflight": self.metrics.gauge("http_inflight").snapshot(),
            }
            if self.worker_metrics_dir is not None:
                result["worker"] = self.worker_label
            self._respond_json(conn, req, 200, {"ok": True, "result": result})
            return
        if req.path in ("/v1/metrics", "/metrics"):
            self._respond_json(
                conn, req, 200, {"ok": True, "result": _metrics_view(self)}
            )
            return
        self._respond_error(
            conn, req, 404, "not_found", f"unknown path {req.path}"
        )

    def _do_post(self, conn: _Connection, req: _Request, body: bytes) -> None:
        if req.path in ("/v1/warm_traces", "/warm_traces"):
            self._do_warm_traces(conn, req, body)
            return
        if req.path not in ("/v1/query", "/query"):
            self._respond_error(
                conn, req, 404, "not_found", f"unknown path {req.path}"
            )
            return
        if req.reject is not None:
            status, code, message = req.reject
            # An unread/undrainable body would desync keep-alive: close.
            self._respond_error(conn, req, status, code, message, close=True)
            return
        if len(body) == 0:
            self._respond_error(
                conn, req, 400, "invalid_request", "request body is required"
            )
            return
        content_type = req.headers.get("content-type", "")
        binary = content_type.startswith(binproto.CONTENT_TYPE)
        if binary:
            declared = binproto.frame_payload_length(
                body, binproto.REQUEST_MAGIC
            )
            if declared is not None and declared > binproto.MAX_FRAME_PAYLOAD:
                self._respond_error(
                    conn, req, 413, "payload_too_large",
                    f"binary frame payload exceeds "
                    f"{binproto.MAX_FRAME_PAYLOAD} bytes",
                    close=True,
                )
                return
            try:
                payload = binproto.split_frame(body, binproto.REQUEST_MAGIC)
            except RequestError as exc:
                self._respond_error(conn, req, 400, "invalid_frame", str(exc))
                return
            probe = self.engine.try_cached_binary(payload)
            task = payload
        else:
            try:
                request = json.loads(body)
            except ValueError as exc:
                self._respond_error(
                    conn, req, 400, "invalid_json", f"body is not JSON: {exc}"
                )
                return
            try:
                probe = self.engine.try_cached_bytes(request)
            except Exception as exc:
                self._respond_mapped_error(conn, req, exc)
                return
            task = request
        if probe is not None:
            if not binary:
                self._memoize_raw(body, probe)
            self._respond_query(conn, req, probe, binary)
            return
        # Cache miss: the engine may price a space or hit the store —
        # blocking work that must not stall the loop.  Shed instead of
        # queueing without bound.
        if (
            self._inflight_count >= self.max_inflight
            or self._buffered_total >= self.max_total_buffered
        ):
            self.metrics.counter("http_overload_rejections").inc()
            self._respond_error(
                conn, req, 429, "overloaded",
                f"server is at its {self.max_inflight}-request "
                f"concurrency limit; retry after {RETRY_AFTER_S}s",
            )
            return
        self._inflight_count += 1
        self.metrics.gauge("http_inflight").add(1)
        conn.pending = True
        self._update_interest(conn)
        engine = self.engine
        compute = engine.query_binary if binary else engine.query_bytes

        def _run(task=task, conn=conn, req=req, binary=binary, raw=body):
            try:
                outcome = ("ok", compute(task), binary, raw)
            except BaseException as exc:
                outcome = ("err", exc, binary, raw)
            self._completions.append((conn, req, outcome))
            self._wake()

        self._executor.submit(_run)

    def _do_warm_traces(self, conn: _Connection, req: _Request, body: bytes) -> None:
        """Pre-populate this shard's trace-plane entries (blocking, off-loop).

        Trace generation is minutes of CPU at fleet scale, so it runs on
        the executor like a cold query and is subject to the same
        in-flight shedding; the loop keeps serving cached queries while
        the plane warms.
        """
        if req.reject is not None:
            status, code, message = req.reject
            self._respond_error(conn, req, status, code, message, close=True)
            return
        if len(body) == 0:
            request: dict = {}
        else:
            try:
                request = json.loads(body)
            except ValueError as exc:
                self._respond_error(
                    conn, req, 400, "invalid_json", f"body is not JSON: {exc}"
                )
                return
        if not isinstance(request, dict):
            self._respond_error(
                conn, req, 400, "invalid_request",
                "warm_traces body must be a JSON object",
            )
            return
        if self._inflight_count >= self.max_inflight:
            self.metrics.counter("http_overload_rejections").inc()
            self._respond_error(
                conn, req, 429, "overloaded",
                f"server is at its {self.max_inflight}-request "
                f"concurrency limit; retry after {RETRY_AFTER_S}s",
            )
            return
        self._inflight_count += 1
        self.metrics.gauge("http_inflight").add(1)
        conn.pending = True
        self._update_interest(conn)

        def _run(request=request, conn=conn, req=req):
            try:
                outcome = ("warm", _warm_traces_result(request), False, b"")
            except BaseException as exc:
                outcome = ("err", exc, False, b"")
            self._completions.append((conn, req, outcome))
            self._wake()

        self._executor.submit(_run)

    def _memoize_raw(self, body: bytes, entry: tuple[bytes, str]) -> None:
        memo = self._raw_memo
        if body not in memo:
            memo[body] = entry
            while len(memo) > RAW_MEMO_SIZE:
                memo.popitem(last=False)

    # -- completions / timers / sweep ---------------------------------

    def _run_completions(self) -> None:
        completions = self._completions
        while completions:
            try:
                conn, req, (kind, value, binary, raw) = completions.popleft()
            except IndexError:
                break
            self._inflight_count -= 1
            self.metrics.gauge("http_inflight").sub(1)
            if conn.closed:
                self._finish_request(conn, req, "client_gone")
                continue
            conn.pending = False
            if kind == "ok":
                if not binary:
                    self._memoize_raw(raw, value)
                self._respond_query(conn, req, value, binary)
            elif kind == "warm":
                self._respond_json(
                    conn, req, 200, {"ok": True, "result": value}
                )
            else:
                self._respond_mapped_error(conn, req, value)
            if not conn.closed:
                self._update_interest(conn)
                if not conn.pending and conn.rbuf:
                    self._process_rbuf(conn)
                elif conn.read_eof:
                    self._on_read_eof(conn)

    def _run_timers(self) -> None:
        now = time.monotonic()
        while self._timers and self._timers[0][0] <= now:
            _, _, conn, req, body = heapq.heappop(self._timers)
            if conn.closed:
                continue
            conn.pending = False
            self._dispatch_faulted(conn, req, body)
            if not conn.closed:
                self._update_interest(conn)
                if not conn.pending and conn.rbuf:
                    self._process_rbuf(conn)

    def _sweep(self, now: float) -> None:
        """Periodic housekeeping: idle timeouts and loop gauges."""
        timeout = self.request_timeout
        if timeout and timeout > 0:
            for conn in list(self._conns.values()):
                if conn.pending:
                    continue  # an engine answer is coming; don't kill it
                if now - conn.last_activity > timeout:
                    if conn.cur is not None or conn.wq:
                        self.metrics.counter("http_responses").inc(
                            label="timeout"
                        )
                    self._close_conn(conn)
        self.metrics.gauge("loop_connections").set(len(self._conns))
        self.metrics.gauge("loop_ready_queue").set(len(self._completions))
        self.metrics.gauge("loop_buffered_bytes").set(
            max(self._buffered_total, 0)
        )
        if self.worker_metrics_dir is not None:
            export_worker_metrics(self)

    # -- responses -----------------------------------------------------

    def _respond_query(
        self,
        conn: _Connection,
        req: _Request,
        entry: tuple[bytes, str],
        binary: bool,
    ) -> None:
        body, etag = entry
        if req.headers.get("if-none-match") == etag:
            self.metrics.counter("http_not_modified").inc()
            self._respond(conn, req, 304, b"", etag=etag)
            return
        content_type = binproto.CONTENT_TYPE if binary else "application/json"
        self._respond(
            conn, req, 200, body, etag=etag, content_type=content_type
        )

    def _respond_mapped_error(
        self, conn: _Connection, req: _Request, exc: BaseException
    ) -> None:
        for exc_type, status, code in _ERROR_STATUS:
            if isinstance(exc, exc_type):
                self._respond_error(conn, req, status, code, str(exc))
                return
        self._respond_error(
            conn, req, 500, "internal", f"{type(exc).__name__}: {exc}"
        )

    def _respond_json(
        self, conn: _Connection, req: _Request, status: int, payload: dict,
        close: bool = False,
    ) -> None:
        self._respond(
            conn, req, status, json.dumps(payload).encode(), close=close
        )

    def _respond_error(
        self, conn: _Connection, req: _Request, status: int, code: str,
        message: str, close: bool = False,
    ) -> None:
        self._respond_json(
            conn, req, status,
            {
                "ok": False,
                "error": {"code": code, "message": message},
                "request_id": req.request_id,
            },
            close=close,
        )

    def _respond(
        self,
        conn: _Connection,
        req: _Request,
        status: int,
        body: bytes,
        etag: str | None = None,
        content_type: str = "application/json",
        close: bool = False,
    ) -> None:
        if conn.closed:
            self._finish_request(conn, req, "client_gone")
            return
        close = close or not req.keep_alive or conn.close_after_flush
        if status == 200 and etag is not None and not close:
            # The dominant shape (200, keep-alive, tagged): one bytes
            # interpolation instead of string assembly + encode.
            ctype = (
                _CTYPE_JSON
                if content_type == "application/json"
                else content_type.encode("latin-1")
            )
            head = _HEAD_200 % (
                ctype, len(body),
                req.request_id.encode("latin-1"),
                etag.encode("latin-1"),
            )
            self._enqueue(conn, head)
            if body:
                self._enqueue(conn, body)
            self._finish_request(conn, req, 200)
            if not conn.parsing:
                self._flush(conn)
            return
        parts = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Server: repro-service/3",
        ]
        if status != 304:
            parts.append(f"Content-Type: {content_type}")
            parts.append(f"Content-Length: {len(body)}")
        parts.append(f"X-Request-Id: {req.request_id}")
        if etag is not None:
            parts.append(f"ETag: {etag}")
        if status in self.retry_after_statuses:
            parts.append(f"Retry-After: {RETRY_AFTER_S}")
        if close:
            parts.append("Connection: close")
        head = ("\r\n".join(parts) + "\r\n\r\n").encode("latin-1")
        self._enqueue(conn, head)
        if body and status != 304:
            self._enqueue(conn, body)
        if close:
            conn.close_after_flush = True
            conn.read_eof = True  # no further requests on this socket
        self._finish_request(conn, req, status)
        if not conn.parsing:
            self._flush(conn)

    def _finish_request(
        self, conn: _Connection, req: _Request, status: int | str
    ) -> None:
        dur_ms = (time.perf_counter() - req.started) * 1e3
        self.metrics.counter("http_requests").inc(
            label=f"{req.method} {req.route}"
        )
        self.metrics.counter("http_responses").inc(label=str(status))
        self.metrics.histogram("http_latency_ms").observe(dur_ms)
        self.obs_logger.log(
            "request",
            request_id=req.request_id,
            method=req.method,
            path=req.path,
            status=status,
            dur_ms=round(dur_ms, 3),
            remote=conn.addr[0] if conn.addr else "-",
        )
        if self.worker_metrics_dir is not None:
            export_worker_metrics(self)


def _warm_traces_result(request: dict) -> dict:
    """Run a ``/v1/warm_traces`` body through :func:`measure.warm_traces`.

    Executes on an executor thread.  A disabled trace plane is the
    caller's mistake (there is nowhere to warm), so ``ConfigError``
    maps to a 400 via :class:`RequestError`.
    """
    from repro.core import measure
    from repro.errors import ConfigError

    allowed = {"os_names", "workloads", "references", "seed", "jobs"}
    unknown = set(request) - allowed
    if unknown:
        raise RequestError(
            f"unknown warm_traces fields: {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )
    os_names = request.get("os_names")
    workloads = request.get("workloads")
    for name, value in (("os_names", os_names), ("workloads", workloads)):
        if value is not None and (
            not isinstance(value, list)
            or not all(isinstance(item, str) for item in value)
        ):
            raise RequestError(f"{name} must be a list of strings")
    references = request.get("references")
    if references is not None and (
        not isinstance(references, int) or references < 1
    ):
        raise RequestError("references must be a positive integer")
    seed = request.get("seed", 1)
    if not isinstance(seed, int):
        raise RequestError("seed must be an integer")
    jobs = request.get("jobs")
    if jobs is not None and (not isinstance(jobs, int) or jobs < 1):
        raise RequestError("jobs must be a positive integer")
    try:
        outcomes = measure.warm_traces(
            os_names=tuple(os_names) if os_names is not None else None,
            workloads=tuple(workloads) if workloads is not None else None,
            references=references,
            seed=seed,
            jobs=jobs,
        )
    except ConfigError as exc:
        raise RequestError(str(exc)) from exc
    return {
        "warmed": [
            {"workload": workload, "os": os_name, "published": published}
            for workload, os_name, published in outcomes
        ],
        "entries": len(outcomes),
        "published": sum(1 for _, _, published in outcomes if published),
    }


# -- fleet metrics plumbing (shared with the pre-fork master) ----------


def _metrics_view(server) -> dict:
    """The ``/v1/metrics`` payload, fleet-aggregated when pre-forked.

    Single-process servers render their own registry.  A pre-fork
    worker first force-exports its own snapshot, then merges every
    sibling's last export from the shared metrics directory, so any
    worker can answer for the whole fleet (load balancing means the
    scrape may land anywhere).
    """
    engine = server.engine
    view: dict = {
        "uptime_s": round(time.monotonic() - server.started_monotonic, 3),
    }
    if server.worker_metrics_dir is None:
        stats = engine.stats
        view["engine_cache"] = _with_hit_rate(stats)
        view["faults"] = server.faults.trip_counts()
        view.update(_instrument_snapshot(server))
        return view

    export_worker_metrics(server, force=True)
    snapshots = read_worker_snapshots(server.worker_metrics_dir)
    engine_cache: dict[str, int] = {}
    faults: dict[str, int] = {}
    for snap in snapshots.values():
        for key, value in snap.get("engine_cache", {}).items():
            engine_cache[key] = engine_cache.get(key, 0) + value
        for key, value in snap.get("faults", {}).items():
            faults[key] = faults.get(key, 0) + value
    view["worker"] = server.worker_label
    view["workers"] = sorted(snapshots)
    view["engine_cache"] = _with_hit_rate(engine_cache)
    view["faults"] = faults
    view.update(
        merge_registry_snapshots(
            [snap.get("instruments", {}) for snap in snapshots.values()]
        )
    )
    return view


def _with_hit_rate(stats: dict) -> dict:
    lookups = stats.get("hits", 0) + stats.get("misses", 0)
    return {
        **stats,
        "hit_rate": round(stats["hits"] / lookups, 4) if lookups else None,
    }


def _instrument_snapshot(server) -> dict:
    """The server's registry merged with the trace plane's counters.

    The tracestore keeps its own module-level registry (it is used far
    from any server), so the trace_plane_* counters — hits,
    generations, evictions, compactions — ride along in every metrics
    export and scrape rather than needing their own endpoint.
    """
    from repro.trace import tracestore

    return merge_registry_snapshots(
        [server.metrics.snapshot(), tracestore.METRICS.snapshot()]
    )


def _worker_snapshot(server) -> dict:
    return {
        "worker": server.worker_label,
        "pid": os.getpid(),
        "engine_cache": server.engine.stats,
        "faults": server.faults.trip_counts(),
        "instruments": _instrument_snapshot(server),
    }


def export_worker_metrics(server, force: bool = False) -> None:
    """Write this worker's snapshot to the shared metrics directory.

    Time-gated (``METRICS_EXPORT_INTERVAL_S``) so the per-request
    epilogue stays cheap under load; the write is atomic (tmp +
    ``os.replace``) so a sibling aggregating mid-write never reads a
    torn JSON file.
    """
    now = time.monotonic()
    if not force and now - server.last_metrics_export < METRICS_EXPORT_INTERVAL_S:
        return
    server.last_metrics_export = now
    directory = Path(server.worker_metrics_dir)
    target = directory / f"worker-{server.worker_label}.json"
    tmp = directory / f".worker-{server.worker_label}.json.tmp"
    try:
        tmp.write_text(json.dumps(_worker_snapshot(server)))
        os.replace(tmp, target)
    except OSError:
        pass  # metrics export must never take down a request


def read_worker_snapshots(directory: str | os.PathLike) -> dict[str, dict]:
    """All workers' last exported snapshots, keyed by worker label."""
    snapshots: dict[str, dict] = {}
    for path in sorted(Path(directory).glob("worker-*.json")):
        try:
            snap = json.loads(path.read_text())
        except (OSError, ValueError):
            continue  # sibling died mid-replace or file vanished
        label = snap.get("worker") or path.stem.removeprefix("worker-")
        snapshots[str(label)] = snap
    return snapshots
