"""Unit tests for the TLB simulator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.memsim.tlb import FULLY_ASSOCIATIVE, Tlb


class TestGeometry:
    def test_fully_associative_one_set(self):
        tlb = Tlb(64, FULLY_ASSOCIATIVE)
        assert tlb.sets == 1

    def test_set_associative_geometry(self):
        tlb = Tlb(64, 4)
        assert tlb.sets == 16

    def test_rejects_bad_configs(self):
        with pytest.raises(ConfigurationError):
            Tlb(63, 1)
        with pytest.raises(ConfigurationError):
            Tlb(64, 3)
        with pytest.raises(ConfigurationError):
            Tlb(4, 8)


class TestTranslation:
    def test_miss_then_hit(self):
        tlb = Tlb(16, FULLY_ASSOCIATIVE)
        assert tlb.access(100) is False
        assert tlb.access(100) is True

    def test_asid_distinguishes_translations(self):
        """The same VPN in two address spaces needs two entries — the
        R2000's PID-tagged TLB semantics."""
        tlb = Tlb(16, FULLY_ASSOCIATIVE)
        tlb.access(5, asid=1)
        assert tlb.access(5, asid=2) is False
        assert tlb.access(5, asid=1) is True
        assert tlb.access(5, asid=2) is True

    def test_asid_preserved_in_set_associative_tags(self):
        """Regression: the tag must keep all ASID bits even when index
        bits are stripped from the VPN."""
        tlb = Tlb(64, 2)  # 32 sets -> 5 index bits
        tlb.access(32, asid=1)
        assert tlb.access(32, asid=2) is False

    def test_capacity_eviction(self):
        tlb = Tlb(4, FULLY_ASSOCIATIVE)
        for vpn in range(5):
            tlb.access(vpn)
        assert tlb.access(0) is False   # evicted (LRU)
        assert tlb.access(4) is True

    def test_kernel_misses_classified(self):
        tlb = Tlb(16, FULLY_ASSOCIATIVE)
        tlb.access(1, kernel=False)
        tlb.access(2, kernel=True)
        assert tlb.result.user_misses == 1
        assert tlb.result.kernel_misses == 1

    def test_service_cycles(self):
        tlb = Tlb(16, FULLY_ASSOCIATIVE)
        tlb.access(1, kernel=False)
        tlb.access(2, kernel=True)
        assert tlb.result.service_cycles(20, 400) == 420


class TestBulkSimulate:
    def test_simulate_matches_scalar(self):
        rng = np.random.default_rng(0)
        vpns = rng.integers(0, 40, size=500)
        asids = rng.integers(0, 3, size=500).astype(np.uint8)
        kernels = rng.random(500) < 0.2
        bulk = Tlb(16, 4)
        bulk.simulate(vpns, asids, kernels)
        scalar = Tlb(16, 4)
        for v, a, k in zip(vpns, asids, kernels):
            scalar.access(int(v), int(a), bool(k))
        assert bulk.result.misses == scalar.result.misses
        assert bulk.result.kernel_misses == scalar.result.kernel_misses

    def test_record_flags(self):
        tlb = Tlb(16, FULLY_ASSOCIATIVE)
        result = tlb.simulate(np.array([1, 1, 2]), record_flags=True)
        assert result.miss_flags.tolist() == [True, False, True]

    def test_miss_ratio(self):
        tlb = Tlb(16, FULLY_ASSOCIATIVE)
        tlb.simulate(np.array([1, 1, 1, 2]))
        assert tlb.result.miss_ratio == pytest.approx(0.5)
