"""Reference-trace generation, storage and sampling.

The paper collects its traces from DECstation 3100 hardware with a
logic analyzer; this package substitutes a deterministic synthetic
generator driven by the OS-structure models in :mod:`repro.osmodel`
(see DESIGN.md for the substitution argument), plus the Laha-style
trace-sampling estimator the paper uses for its trace-driven runs.
"""

from repro.trace.dinero import read_din, write_din
from repro.trace.events import ReferenceTrace
from repro.trace.generator import (
    TRACE_FORMAT_VERSION,
    TraceGenerator,
    generate_trace,
)
from repro.trace.sampling import SampledEstimate, sample_intervals, sampled_miss_ratio

__all__ = [
    "ReferenceTrace",
    "TraceGenerator",
    "TRACE_FORMAT_VERSION",
    "generate_trace",
    "SampledEstimate",
    "sample_intervals",
    "sampled_miss_ratio",
    "read_din",
    "write_din",
]
