"""Tests for the data-reference emitters."""

import numpy as np
import pytest

from repro.osmodel.addrspace import Segment
from repro.osmodel.datastate import StackModel, StreamBuffer, WorkingSet


def make_segment(size=64 * 4096, base=1 << 20):
    return Segment(name="data", base=base, size=size)


class TestWorkingSet:
    def test_addresses_within_segment(self, rng):
        segment = make_segment()
        ws = WorkingSet(segment, pages=8, record_words=4, rng=rng)
        addrs = ws.addresses(500)
        assert (addrs >= segment.base).all()
        assert (addrs < segment.end).all()

    def test_bounded_page_pool(self, rng):
        segment = make_segment()
        ws = WorkingSet(segment, pages=8, record_words=4, rng=rng)
        pages = np.unique(ws.addresses(5000) >> 12)
        assert len(pages) <= 8

    def test_record_runs_are_contiguous(self, rng):
        segment = make_segment()
        ws = WorkingSet(segment, pages=4, record_words=8, rng=rng, locality=0.0)
        addrs = ws.addresses(16)
        # First 8 addresses are one record: consecutive words.
        deltas = np.diff(addrs[:8])
        assert (deltas == 4).all()

    def test_refresh_changes_pool(self, rng):
        segment = make_segment()
        ws = WorkingSet(segment, pages=8, record_words=4, rng=rng)
        before = set((ws.addresses(2000) >> 12).tolist())
        for _ in range(10):
            ws.refresh(fraction=0.5)
        after = set((ws.addresses(2000) >> 12).tolist())
        assert before != after

    def test_temporal_locality_reuses_recent_records(self, rng):
        segment = make_segment()
        local = WorkingSet(segment, pages=8, record_words=4, rng=rng, locality=0.9)
        local.addresses(64)
        repeat = local.addresses(4000)
        __, counts = np.unique(repeat, return_counts=True)
        # High locality concentrates accesses on few records.
        assert counts.max() > 10

    def test_zero_count(self, rng):
        ws = WorkingSet(make_segment(), pages=4, record_words=4, rng=rng)
        assert len(ws.addresses(0)) == 0


class TestStreamBuffer:
    def test_sequential_runs(self, rng):
        segment = make_segment()
        stream = StreamBuffer(segment, run_words=8, rng=rng)
        addrs = stream.addresses(8)
        assert (np.diff(addrs) == 4).all()

    def test_cursor_advances_between_calls(self, rng):
        segment = make_segment()
        stream = StreamBuffer(segment, run_words=8, rng=rng)
        first = stream.addresses(8)
        second = stream.addresses(8)
        assert second[0] > first[0]

    def test_wraps_at_segment_end(self, rng):
        segment = make_segment(size=4096)
        stream = StreamBuffer(segment, run_words=8, rng=rng)
        addrs = stream.addresses(5000)
        assert (addrs < segment.end).all()
        assert (addrs >= segment.base).all()

    def test_stride_leaves_gaps(self, rng):
        segment = make_segment()
        stream = StreamBuffer(segment, run_words=4, rng=rng, stride_words=8)
        addrs = stream.addresses(8)
        # Second run starts 8 words after the first, not 4.
        assert addrs[4] - addrs[0] == 8 * 4


class TestStackModel:
    def test_hot_region_is_tiny(self, rng):
        segment = make_segment(size=64 * 1024)
        stack = StackModel(segment, rng, hot_bytes=256)
        addrs = stack.addresses(1000)
        assert addrs.max() - addrs.min() <= 256

    def test_within_segment(self, rng):
        segment = make_segment(size=4096)
        stack = StackModel(segment, rng, hot_bytes=1 << 20)
        addrs = stack.addresses(100)
        assert (addrs < segment.end).all()
