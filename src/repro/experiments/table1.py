"""Table 1: on-chip memory in current-generation microprocessors.

Reproduces the survey table and extends it with the calibrated MQF
model's area prediction for each design's on-chip memory (our
addition — it shows every surveyed design fits near or under the
250,000-rbe budget the paper derives from this table).
"""

from __future__ import annotations

from repro.areamodel.survey import survey_table
from repro.experiments.common import format_table


def run(include_area: bool = True) -> list[dict]:
    """Return the survey rows (optionally with predicted rbe)."""
    return survey_table(include_area=include_area)


def main() -> None:
    """Print the survey table."""
    print("Table 1: On-chip memory in current-generation microprocessors")
    print(format_table(run()))


if __name__ == "__main__":
    main()
