"""Shared experiment infrastructure: traces, scaling and formatting."""

from __future__ import annotations

import os
from functools import lru_cache

from repro.core.measure import DEFAULT_REFERENCES, scale
from repro.trace import tracestore
from repro.trace.events import ReferenceTrace
from repro.workloads.registry import workload_names

DEFAULT_SEED = 1
WARMUP_FRACTION = 0.4

R2000_CLOCK_HZ = 16.67e6
"""DECstation 3100 clock."""

NOMINAL_RUN_SECONDS = 150.0
"""The paper tunes benchmark inputs so each run takes 100-200 s under
Mach; service-time figures are projected to this nominal duration."""

NOMINAL_RUN_INSTRUCTIONS = NOMINAL_RUN_SECONDS * R2000_CLOCK_HZ / 2.0
"""Instructions in a nominal run, assuming CPI ~ 2 (Table 4 average)."""


def trace_references() -> int:
    """Per-trace reference target, honouring REPRO_SCALE."""
    return int(DEFAULT_REFERENCES * scale())


@lru_cache(maxsize=16)
def _cached_trace(
    workload: str, os_name: str, references: int, seed: int
) -> ReferenceTrace:
    # The trace plane (mmap-backed on-disk cache) sits behind the
    # in-process memo: warm entries load as shared memory maps, misses
    # generate once and publish for every later process.
    return tracestore.get_trace(workload, os_name, references, seed=seed)


def get_trace(workload: str, os_name: str, seed: int = DEFAULT_SEED) -> ReferenceTrace:
    """Load (trace plane) or generate one workload/OS trace, memoized.

    The memo key includes the REPRO_SCALE-derived reference count, so a
    scale change mid-process (tests flipping REPRO_SCALE, a notebook
    resizing its runs) regenerates instead of replaying a stale length.
    """
    return _cached_trace(workload, os_name, trace_references(), seed)


# Existing callers clear the memo through the public name.
get_trace.cache_clear = _cached_trace.cache_clear
get_trace.cache_info = _cached_trace.cache_info


def get_trace_stream(
    workload: str, os_name: str, seed: int = DEFAULT_SEED
) -> tracestore.TraceStream:
    """Open one workload/OS trace as a chunked on-disk stream.

    Generates and publishes the trace chunk-streaming if it is not in
    the plane yet, so experiments at large REPRO_SCALE never hold more
    than one ``REPRO_STREAM_CHUNK`` window in memory.  Requires the
    trace plane (raises :class:`~repro.errors.TraceError` under
    ``REPRO_TRACE_CACHE=off``).
    """
    return tracestore.stream(workload, os_name, trace_references(), seed=seed)


def suite() -> list[str]:
    """Benchmark names in the paper's order."""
    return workload_names()


def projection_factor(measured_instructions: int) -> float:
    """Scale measured-window counts to a nominal full benchmark run."""
    return NOMINAL_RUN_INSTRUCTIONS / max(measured_instructions, 1)


def format_table(rows: list[dict], columns: list[str] | None = None) -> str:
    """Plain-text table for experiment output."""
    if not rows:
        return "(no rows)"
    columns = columns if columns is not None else list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows)) for c in columns
    }
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    divider = "  ".join("-" * widths[c] for c in columns)
    lines = [header, divider]
    for row in rows:
        lines.append("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def is_quick() -> bool:
    """True when REPRO_QUICK asks experiments to shrink workloads."""
    return os.environ.get("REPRO_QUICK", "0") not in ("0", "", "false")
