"""Thread-safe, stdlib-only metrics primitives for the service.

Three instrument types, all safe to update from ``ThreadingHTTPServer``
handler threads:

* :class:`Counter` — a monotonically increasing integer, optionally
  split by a single label value (``counter.inc(label="200")``);
* :class:`Histogram` — fixed log-spaced buckets over milliseconds with
  exact count/sum/min/max and percentile estimates read off the bucket
  boundaries (no per-sample storage, so observation is O(#buckets)
  and memory is constant under unbounded traffic);
* :class:`Gauge` — a current value with a high-water mark (in-flight
  requests).

A :class:`MetricsRegistry` names and owns instruments and renders one
consistent :meth:`~MetricsRegistry.snapshot` under a single lock, so a
``/v1/metrics`` scrape never observes a counter torn against its
histogram.  Everything here is plain Python — no prometheus client,
no third-party deps — matching the repo's stdlib-only service stack.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

# Log-spaced latency bucket upper bounds, in milliseconds.  Spans the
# service's observed range: ~5 us LRU hits through multi-second faulty
# batch sweeps.  The last bucket is open-ended (+inf).
DEFAULT_BUCKET_BOUNDS_MS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)


class Counter:
    """A monotonic counter, optionally split by one label value."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._total = 0
        self._by_label: dict[str, int] = {}

    def inc(self, n: int = 1, label: str | None = None) -> None:
        with self._lock:
            self._total += n
            if label is not None:
                self._by_label[label] = self._by_label.get(label, 0) + n

    @property
    def total(self) -> int:
        with self._lock:
            return self._total

    def snapshot(self) -> dict:
        with self._lock:
            if self._by_label:
                return {"total": self._total, "by_label": dict(self._by_label)}
            return {"total": self._total}


class Gauge:
    """A current value plus its high-water mark."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0
        self._high = 0

    def add(self, n: int = 1) -> int:
        with self._lock:
            self._value += n
            if self._value > self._high:
                self._high = self._value
            return self._value

    def sub(self, n: int = 1) -> int:
        return self.add(-n)

    def set(self, value: int) -> int:
        """Set an absolute level (event-loop depth/byte gauges, which
        are sampled rather than incrementally maintained)."""
        with self._lock:
            self._value = value
            if value > self._high:
                self._high = value
            return self._value

    def snapshot(self) -> dict:
        with self._lock:
            return {"current": self._value, "high_water": self._high}


class Histogram:
    """Fixed-bucket latency histogram (milliseconds).

    ``observe`` files a sample into the first bucket whose upper bound
    contains it; percentiles are read back as the upper bound of the
    bucket where the target rank falls — an upper-bound estimate with
    resolution equal to the bucket spacing, which is what a capacity
    dashboard needs and all a constant-memory instrument can promise.
    """

    def __init__(self, bounds_ms: tuple[float, ...] = DEFAULT_BUCKET_BOUNDS_MS):
        if list(bounds_ms) != sorted(bounds_ms) or not bounds_ms:
            raise ValueError("histogram bounds must be sorted and non-empty")
        self._lock = threading.Lock()
        self.bounds = tuple(float(b) for b in bounds_ms)
        self._counts = [0] * (len(self.bounds) + 1)  # last = +inf overflow
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = 0.0

    def observe(self, value_ms: float) -> None:
        # First bucket whose upper bound contains the sample (bounds
        # are sorted, so this is a binary search, not a scan).
        index = bisect_left(self.bounds, value_ms)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value_ms
            if value_ms < self._min:
                self._min = value_ms
            if value_ms > self._max:
                self._max = value_ms

    def _percentile_locked(self, q: float) -> float | None:
        if self._count == 0:
            return None
        rank = q * self._count
        seen = 0
        for i, count in enumerate(self._counts):
            seen += count
            if seen >= rank:
                return self.bounds[i] if i < len(self.bounds) else self._max
        return self._max

    def snapshot(self) -> dict:
        with self._lock:
            out = {
                "count": self._count,
                "sum_ms": round(self._sum, 3),
                "min_ms": round(self._min, 4) if self._count else None,
                "max_ms": round(self._max, 3) if self._count else None,
                "p50_ms": self._percentile_locked(0.50),
                "p95_ms": self._percentile_locked(0.95),
                "p99_ms": self._percentile_locked(0.99),
                "buckets": {
                    f"le_{bound:g}": self._counts[i]
                    for i, bound in enumerate(self.bounds)
                },
            }
            out["buckets"]["le_inf"] = self._counts[-1]
            return out


def _merge_counter(snapshots: list[dict]) -> dict:
    total = sum(s.get("total", 0) for s in snapshots)
    by_label: dict[str, int] = {}
    for snap in snapshots:
        for label, count in snap.get("by_label", {}).items():
            by_label[label] = by_label.get(label, 0) + count
    return {"total": total, "by_label": by_label} if by_label else {
        "total": total
    }


def _merge_gauge(snapshots: list[dict]) -> dict:
    # Currents add (total in-flight across workers); each worker's
    # high-water is summed too — an upper bound on the fleet's true
    # simultaneous peak, which per-process sampling cannot recover.
    return {
        "current": sum(s.get("current", 0) for s in snapshots),
        "high_water": sum(s.get("high_water", 0) for s in snapshots),
    }


def _merge_histogram(snapshots: list[dict]) -> dict:
    buckets: dict[str, int] = {}
    for snap in snapshots:
        for key, count in snap.get("buckets", {}).items():
            buckets[key] = buckets.get(key, 0) + count
    count = sum(s.get("count", 0) for s in snapshots)
    mins = [s["min_ms"] for s in snapshots if s.get("min_ms") is not None]
    maxes = [s["max_ms"] for s in snapshots if s.get("max_ms") is not None]
    max_ms = max(maxes) if maxes else None

    bounded = sorted(
        (float(key[3:]), key) for key in buckets if key != "le_inf"
    )

    def percentile(q: float) -> float | None:
        if count == 0:
            return None
        rank = q * count
        seen = 0
        for bound, key in bounded:
            seen += buckets[key]
            if seen >= rank:
                return bound
        return max_ms

    return {
        "count": count,
        "sum_ms": round(sum(s.get("sum_ms", 0.0) for s in snapshots), 3),
        "min_ms": min(mins) if mins else None,
        "max_ms": max_ms,
        "p50_ms": percentile(0.50),
        "p95_ms": percentile(0.95),
        "p99_ms": percentile(0.99),
        "buckets": buckets,
    }


def merge_registry_snapshots(snapshots: list[dict]) -> dict:
    """Combine per-worker :meth:`MetricsRegistry.snapshot` dicts.

    Counters and histogram buckets sum exactly; merged percentiles are
    re-read off the summed buckets, so they carry the same bucket-bound
    resolution as a single registry's.  Used by the pre-fork server to
    render one fleet-wide ``/v1/metrics`` view from worker snapshots.
    """
    merged: dict = {"counters": {}, "histograms": {}, "gauges": {}}
    mergers = {
        "counters": _merge_counter,
        "histograms": _merge_histogram,
        "gauges": _merge_gauge,
    }
    for kind, merge in mergers.items():
        names = sorted({
            name for snap in snapshots for name in snap.get(kind, {})
        })
        for name in names:
            merged[kind][name] = merge(
                [snap[kind][name] for snap in snapshots
                 if name in snap.get(kind, {})]
            )
    return merged


class MetricsRegistry:
    """Named instruments plus one consistent snapshot.

    Instruments are created lazily on first use, so call sites never
    pre-register: ``registry.counter("http_requests").inc()``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._gauges: dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def histogram(
        self,
        name: str,
        bounds_ms: tuple[float, ...] = DEFAULT_BUCKET_BOUNDS_MS,
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(bounds_ms)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
            return instrument

    def snapshot(self) -> dict:
        """All instruments rendered to plain JSON-ready dicts."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
            gauges = dict(self._gauges)
        return {
            "counters": {k: v.snapshot() for k, v in sorted(counters.items())},
            "histograms": {
                k: v.snapshot() for k, v in sorted(histograms.items())
            },
            "gauges": {k: v.snapshot() for k, v in sorted(gauges.items())},
        }
