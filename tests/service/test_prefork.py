"""Pre-fork worker pool tests: fleet identity, drain, respawn.

The pool's whole contract is that N workers are *unobservable* in
response content: the kernel may route any request to any worker, so
every worker must produce byte-identical bodies (and therefore
identical ETags) for the same question.  These tests drive a real
2-worker fleet over loopback and hold exactly that, plus the master's
lifecycle duties — crash respawn, graceful stop, metrics aggregation.
"""

import json
import os
import signal
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.measure import BenefitCurves, measure_workload
from repro.service.engine import QueryEngine
from repro.service.http import make_server
from repro.service.workers import PreforkServer, resolve_workers
from repro.store import CurveStore, StoreKey

pytestmark = pytest.mark.concurrency

TEST_REFERENCES = 60_000


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    single = measure_workload("ousterhout", "mach", references=TEST_REFERENCES)
    curves = BenefitCurves(os_name="mach", per_workload=[single])
    store = CurveStore(tmp_path_factory.mktemp("prefork-store") / "store")
    store.build(curves, StoreKey.current("mach", suite=("ousterhout",)))
    return store


@pytest.fixture()
def pool(store):
    pool = PreforkServer(
        lambda: QueryEngine(CurveStore(store.root)),
        workers=2,
        verbose=False,
    )
    pool.start()
    _wait_serving(pool)
    yield pool
    pool.stop()


def _wait_serving(pool, deadline_s=30.0):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        try:
            _get(pool, "/v1/health")
            return
        except (urllib.error.URLError, ConnectionError, OSError):
            time.sleep(0.05)
    raise TimeoutError("pool never started serving")


def _get(pool, path):
    url = f"http://{pool.host}:{pool.port}{path}"
    with urllib.request.urlopen(url, timeout=10) as resp:
        return json.loads(resp.read())


def _post(pool, body, headers=None):
    request = urllib.request.Request(
        f"http://{pool.host}:{pool.port}/v1/query",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as resp:
            return resp.status, resp.read(), resp.headers.get("ETag")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read(), exc.headers.get("ETag")


class TestResolveWorkers:
    def test_cli_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "8")
        assert resolve_workers(3) == 3

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert resolve_workers(None) == 4

    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1

    def test_floor_is_one(self):
        assert resolve_workers(0) == 1

    def test_garbage_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError):
            resolve_workers(None)


class TestSocketAdoption:
    def test_make_server_adopts_a_bound_socket(self, store):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.bind(("127.0.0.1", 0))
        sock.listen(8)
        port = sock.getsockname()[1]
        engine = QueryEngine(CurveStore(store.root))
        server = make_server(engine, sock=sock)
        try:
            assert server.socket is sock
            assert server.server_port == port
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/v1/health", timeout=10
            ) as resp:
                assert json.loads(resp.read())["ok"]
        finally:
            server.shutdown()
            server.server_close()


class TestFleetServing:
    def test_both_workers_answer(self, pool):
        labels = set()
        deadline = time.monotonic() + 20
        while len(labels) < 2 and time.monotonic() < deadline:
            labels.add(_get(pool, "/v1/health")["result"]["worker"])
        assert labels == {"w0", "w1"}

    def test_batch_matches_per_point_across_the_fleet(self, pool):
        """Batch and point answers are bit-identical no matter which
        worker the kernel routes each request to."""
        budgets = [130_000.0, 180_000.0, 260_000.0, 390_000.0, 520_000.0]
        status, body, _ = _post(
            pool,
            {"type": "batch", "os_names": ["mach"], "budgets": budgets,
             "limit": 1},
        )
        assert status == 200
        batch_rows = json.loads(body)["result"]["results"]
        for row in batch_rows:
            # Issue each point twice so both workers likely see it.
            for _ in range(2):
                status, body, _ = _post(
                    pool,
                    {"type": "point", "os": "mach", "budget": row["budget"],
                     "limit": 1},
                )
                assert status == 200
                point = json.loads(body)["result"]
                assert point["allocations"] == row["allocations"]

    def test_etags_agree_across_workers_and_304(self, pool):
        request = {"type": "point", "os": "mach", "budget": 250_000,
                   "limit": 3}
        etags, bodies = set(), set()
        for _ in range(8):
            status, body, etag = _post(pool, request)
            assert status == 200
            etags.add(etag)
            bodies.add(body)
        # Deterministic encoder + identical stores => one body, one ETag.
        assert len(bodies) == 1 and len(etags) == 1
        etag = etags.pop()
        for _ in range(4):  # any worker must honour the validator
            status, body, resp_etag = _post(
                pool, request, headers={"If-None-Match": etag}
            )
            assert status == 304
            assert body == b""
            assert resp_etag == etag

    def test_metrics_aggregate_the_fleet(self, pool):
        request = {"type": "point", "os": "mach", "budget": 300_000,
                   "limit": 1}
        for _ in range(10):
            assert _post(pool, request)[0] == 200
        # Sibling snapshots flush on a timer; poll until the merged
        # view has caught up with every POST we issued.
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            metrics = _get(pool, "/v1/metrics")["result"]
            posted = metrics["counters"]["http_requests"]["by_label"].get(
                "POST query", 0
            )
            if posted >= 10 and len(metrics["workers"]) == 2:
                break
            time.sleep(0.1)
        assert metrics["workers"] == ["w0", "w1"]
        assert metrics["worker"] in ("w0", "w1")
        assert posted >= 10
        cache = metrics["engine_cache"]
        assert cache["byte_hits"] + cache["byte_misses"] >= 10


class TestLifecycle:
    def test_sigkilled_worker_is_respawned(self, pool):
        waiter = threading.Thread(target=pool.wait, daemon=True)
        waiter.start()
        victim = pool.pids[0]
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            pids = pool.pids
            if victim not in pids and len(pids) == 2:
                break
            time.sleep(0.05)
        else:
            pytest.fail(f"worker {victim} was not respawned: {pool.pids}")
        _wait_serving(pool)
        status, body, _ = _post(
            pool, {"type": "point", "os": "mach", "budget": 250_000,
                   "limit": 1},
        )
        assert status == 200 and json.loads(body)["ok"]

    def test_stop_terminates_every_worker(self, store):
        pool = PreforkServer(
            lambda: QueryEngine(CurveStore(store.root)),
            workers=2,
            verbose=False,
        )
        pool.start()
        _wait_serving(pool)
        pids = pool.pids
        pool.stop()
        assert pool.pids == []
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)  # ESRCH: the process is gone
