"""Least-squares calibration of the area-model constants.

The area of every structure is linear in the six technology constants
once its geometry is fixed, so each anchor row (a sum of three structure
areas with a printed total) yields one linear equation.  Solving the
resulting overdetermined system recovers the constants that best
reproduce the paper's Tables 6 and 7.

An unconstrained solve reproduces the table totals to ±0.5% but drifts
into physically impossible territory (negative comparator area, CAM
cells smaller than SRAM cells) because the tables barely exercise those
terms.  The calibration therefore bounds each constant to a physically
sensible range and adds the paper's *shape* statements as weighted
homogeneous equations:

* Figure 4: a 16-entry 8-way TLB needs ~3x the area of a 16-entry
  direct-mapped TLB.
* Figure 5: a large (512-entry) fully-associative TLB costs ~2x an
  8-way set-associative TLB of the same size.

Run ``python -m repro.areamodel.fitting`` to re-derive the constants and
print the per-anchor residuals; the committed values live in
``repro.areamodel.constants.CALIBRATED_CONSTANTS``.
"""

from __future__ import annotations

import numpy as np

from repro.areamodel.anchors import ALL_ANCHORS, Anchor
from repro.areamodel.cache_area import CacheGeometry
from repro.areamodel.constants import AreaConstants
from repro.areamodel.tlb_area import (
    DATA_BITS,
    FULLY_ASSOCIATIVE,
    STATUS_BITS_PER_ENTRY,
    TlbGeometry,
)

PARAM_NAMES = ("sram_cell", "cam_cell", "sense", "drive", "comparator", "control")

# Physically sensible ranges, in rbe.  The MQF paper pins an SRAM cell
# at 0.6 rbe; a CAM cell embeds a comparator so it must be larger.
PARAM_BOUNDS = {
    "sram_cell": (0.55, 0.65),
    "cam_cell": (0.9, 3.0),
    "sense": (0.0, 20.0),
    "drive": (0.0, 10.0),
    "comparator": (0.0, 30.0),
    "control": (0.0, 5000.0),
}

# (lhs_specs, scale, rhs_specs, weight): soft constraint
#     area(lhs) - scale * area(rhs) == 0, weighted by `weight` relative
#     to the rbe scale of the table anchors.
SHAPE_ANCHORS = [
    # Figure 4: small 8-way TLB ~ 3x direct-mapped of the same size.
    ((("tlb", 16, 8),), 3.0, (("tlb", 16, 1),), 50.0),
    # Figure 5: large fully-associative TLB ~ 2x 8-way of the same size.
    ((("tlb", 512, FULLY_ASSOCIATIVE),), 2.0, (("tlb", 512, 8),), 5.0),
]


def structure_coefficients(spec: tuple) -> np.ndarray:
    """Return the coefficient row of one structure's area in the constants.

    The dot product of this row with ``(sram_cell, cam_cell, sense,
    drive, comparator, control)`` equals the structure's area in rbe.
    """
    kind = spec[0]
    if kind == "cache":
        __, capacity, line_words, assoc = spec
        geom = CacheGeometry.from_config(capacity, line_words, assoc)
        return np.array(
            [
                geom.storage_bits,
                0.0,
                geom.assoc * geom.bits_per_line,
                geom.lines,
                geom.assoc * geom.tag_bits,
                1.0,
            ]
        )
    if kind == "tlb":
        __, entries, assoc = spec
        geom = TlbGeometry.from_config(entries, assoc)
        if geom.fully_associative:
            return np.array(
                [
                    geom.entries * (DATA_BITS + STATUS_BITS_PER_ENTRY),
                    geom.entries * geom.tag_bits,
                    geom.bits_per_entry,
                    geom.entries,
                    0.0,
                    1.0,
                ]
            )
        return np.array(
            [
                geom.storage_bits,
                0.0,
                geom.assoc * geom.bits_per_entry,
                geom.entries,
                geom.assoc * geom.tag_bits,
                1.0,
            ]
        )
    raise ValueError(f"unknown structure kind {kind!r}")


def build_system(anchors: list[Anchor]) -> tuple[np.ndarray, np.ndarray]:
    """Assemble the design matrix and target vector for the anchor set."""
    rows = []
    totals = []
    for specs, total in anchors:
        row = np.zeros(len(PARAM_NAMES))
        for spec in specs:
            row += structure_coefficients(spec)
        rows.append(row)
        totals.append(total)
    return np.array(rows), np.array(totals)


def _shape_rows() -> tuple[np.ndarray, np.ndarray]:
    """Build the weighted homogeneous rows for the shape constraints.

    Shape constraints are ratios (lhs = scale * rhs), which become
    homogeneous linear equations in the constants.  They are scaled up
    to the magnitude of the table anchors so the weights are comparable.
    """
    rows = []
    for lhs_specs, scale, rhs_specs, weight in SHAPE_ANCHORS:
        row = np.zeros(len(PARAM_NAMES))
        for spec in lhs_specs:
            row += structure_coefficients(spec)
        for spec in rhs_specs:
            row -= scale * structure_coefficients(spec)
        rows.append(weight * row)
    return np.array(rows), np.zeros(len(rows))


def fit_constants(anchors: list[Anchor] | None = None) -> AreaConstants:
    """Fit the area constants to the anchors by bounded least squares."""
    from scipy.optimize import lsq_linear

    matrix, totals = build_system(anchors if anchors is not None else ALL_ANCHORS)
    shape_matrix, shape_rhs = _shape_rows()
    full_matrix = np.vstack([matrix, shape_matrix])
    full_rhs = np.concatenate([totals, shape_rhs])
    lower = np.array([PARAM_BOUNDS[name][0] for name in PARAM_NAMES])
    upper = np.array([PARAM_BOUNDS[name][1] for name in PARAM_NAMES])
    result = lsq_linear(full_matrix, full_rhs, bounds=(lower, upper))
    values = dict(zip(PARAM_NAMES, (float(v) for v in result.x)))
    return AreaConstants(**values)


def anchor_residuals(
    constants: AreaConstants, anchors: list[Anchor] | None = None
) -> list[tuple[Anchor, float, float]]:
    """Return (anchor, predicted, relative_error) for each anchor."""
    matrix, totals = build_system(anchors if anchors is not None else ALL_ANCHORS)
    theta = np.array(
        [getattr(constants, name) for name in PARAM_NAMES]
    )
    predicted = matrix @ theta
    used = anchors if anchors is not None else ALL_ANCHORS
    return [
        (anchor, float(pred), float((pred - total) / total))
        for anchor, pred, total in zip(used, predicted, totals)
    ]


def main() -> None:
    """Re-run the calibration and print fitted constants and residuals."""
    fitted = fit_constants()
    print("Fitted constants:")
    for name in PARAM_NAMES:
        print(f"  {name:>10s} = {getattr(fitted, name):10.4f}")
    print("\nPer-anchor relative error:")
    for (specs, total), pred, rel in anchor_residuals(fitted):
        label = " + ".join(
            f"{s[0]}({', '.join(str(x) for x in s[1:])})" for s in specs
        )
        print(f"  {total:>10.0f}  pred {pred:>10.0f}  {100 * rel:+6.2f}%   {label}")

    theta = np.array([getattr(fitted, name) for name in PARAM_NAMES])
    print("\nShape ratios (target in parentheses):")
    for lhs_specs, scale, rhs_specs, __ in SHAPE_ANCHORS:
        lhs = sum(structure_coefficients(s) @ theta for s in lhs_specs)
        rhs = sum(structure_coefficients(s) @ theta for s in rhs_specs)
        print(f"  {lhs_specs} / {rhs_specs} = {lhs / rhs:.2f}  ({scale})")


if __name__ == "__main__":
    main()
