"""Figure 9: instruction-cache performance vs size and line size.

Four panels: miss ratio and CPI contribution for direct-mapped
I-caches of 2-32 KB with 1-32 word lines, suite-averaged, under Ultrix
and Mach.  The paper's shapes: Mach's miss ratios are roughly double
Ultrix's at 8 KB; long lines keep helping Mach (no pollution through
32-word lines) while polluting Ultrix's small caches; and the CPI
curves turn up at 16-word lines.
"""

from __future__ import annotations

from repro.core.configs import CacheConfig
from repro.core.cpi import CpiModel
from repro.core.measure import BenefitCurves
from repro.experiments.common import format_table
from repro.units import KB

CAPACITIES = tuple(k * KB for k in (2, 4, 8, 16, 32))
LINES = (1, 2, 4, 8, 16, 32)


def run(os_name: str) -> dict[str, list[dict]]:
    """Return {"miss_ratio": rows, "cpi": rows} for one OS."""
    curves = BenefitCurves.for_suite(os_name)
    model = CpiModel()
    miss_rows = []
    cpi_rows = []
    for capacity in CAPACITIES:
        miss_row = {"capacity_kb": capacity // KB}
        cpi_row = {"capacity_kb": capacity // KB}
        for line_words in LINES:
            config = CacheConfig(capacity, line_words, 1)
            miss_row[f"{line_words}w"] = round(
                curves.icache_miss_ratio(config), 4
            )
            cpi_row[f"{line_words}w"] = round(model.icache_cpi(curves, config), 3)
        miss_rows.append(miss_row)
        cpi_rows.append(cpi_row)
    return {"miss_ratio": miss_rows, "cpi": cpi_rows}


def main() -> None:
    """Print all four Figure 9 panels."""
    for os_name in ("ultrix", "mach"):
        panels = run(os_name)
        print(f"Figure 9 ({os_name}): I-cache miss ratio, direct-mapped")
        print(format_table(panels["miss_ratio"]))
        print(f"\nFigure 9 ({os_name}): I-cache CPI contribution")
        print(format_table(panels["cpi"]))
        print()


if __name__ == "__main__":
    main()
